"""Streaming runner path: identical results, bounded memory, blob reuse."""

from pathlib import Path

import pytest

from repro.isa import assemble
from repro.runner import (
    ExperimentOptions,
    ResultCache,
    Runner,
    experiment_grid,
)
from repro.sim import DATAFLOW, FOURW, Machine, Memory


def make_runner(tmp_path, subdir="cache", **kwargs):
    return Runner(cache=ResultCache(tmp_path / subdir), **kwargs)


def grid(ciphers=("RC6",), configs=(FOURW, DATAFLOW), **options):
    options.setdefault("session_bytes", 128)
    return experiment_grid(ciphers, configs, **options)


def _result_key(result):
    return (result.cipher, result.config_name, result.instructions,
            result.stats)


def test_stream_and_batch_results_are_identical(tmp_path):
    streamed = make_runner(tmp_path, "a", stream=True).run(grid())
    batch = make_runner(tmp_path, "b", stream=False).run(grid())
    assert [_result_key(r) for r in streamed] == \
        [_result_key(r) for r in batch]


def test_stream_results_identical_across_chunk_sizes(tmp_path):
    baseline = make_runner(tmp_path, "a", stream=False).run(grid())
    for index, chunk_size in enumerate((1, 7, 100000)):
        runner = make_runner(tmp_path, f"c{index}", stream=True,
                             chunk_size=chunk_size)
        assert [_result_key(r) for r in runner.run(grid())] == \
            [_result_key(r) for r in baseline]


def test_decrypt_streams_identically(tmp_path):
    experiments = grid(kind="decrypt")
    streamed = make_runner(tmp_path, "a", stream=True).run(experiments)
    batch = make_runner(tmp_path, "b", stream=False).run(experiments)
    assert [_result_key(r) for r in streamed] == \
        [_result_key(r) for r in batch]


def test_streaming_still_dedups_functional_work(tmp_path):
    runner = make_runner(tmp_path, stream=True)
    runner.run(grid(configs=(FOURW, DATAFLOW)))
    assert runner.stats.functional_runs == 1
    assert runner.stats.timing_runs == 2


def test_streaming_writes_trace_blob_for_later_functional(tmp_path):
    runner = make_runner(tmp_path, stream=True)
    options = ExperimentOptions(cipher="RC6", session_bytes=128)
    runner.run(grid())
    assert runner.stats.functional_runs == 1
    # A later direct functional() call deserializes the blob written
    # during streaming instead of re-executing the kernel.
    run = runner.functional(options)
    assert runner.stats.functional_runs == 1
    assert run.trace is not None
    assert run.instructions == run.trace.instructions_executed


def test_streaming_without_cache_is_chunk_bounded(tmp_path):
    session_bytes = 512
    chunk_size = 64
    runner = Runner(cache=ResultCache.disabled(), stream=True,
                    chunk_size=chunk_size)
    runner.run(grid(configs=(FOURW,), session_bytes=session_bytes))
    assert 0 < runner.stats.peak_trace_bytes <= chunk_size * 16

    batch = Runner(cache=ResultCache.disabled(), stream=False)
    batch.run(grid(configs=(FOURW,), session_bytes=session_bytes))
    assert batch.stats.peak_trace_bytes > runner.stats.peak_trace_bytes


def test_per_experiment_stream_override(tmp_path):
    runner = Runner(cache=ResultCache.disabled(), stream=True)
    runner.run(grid(configs=(FOURW,), stream=False))
    # The batch path materializes, so its trace is memoized in-process.
    options = ExperimentOptions(cipher="RC6", session_bytes=128,
                                stream=False)
    assert runner.functional(options).trace is not None
    assert runner.stats.functional_runs == 1


def test_per_experiment_chunk_size_override(tmp_path):
    wide = make_runner(tmp_path, "a", stream=True, chunk_size=4096)
    narrow_grid = grid(configs=(FOURW,), chunk_size=8)
    baseline = make_runner(tmp_path, "b", stream=True).run(
        grid(configs=(FOURW,))
    )
    results = wide.run(narrow_grid)
    assert results[0].stats == baseline[0].stats


def test_record_values_falls_back_to_batch(tmp_path):
    runner = make_runner(tmp_path, stream=True)
    options = ExperimentOptions(cipher="RC4", session_bytes=64,
                                record_values=True)
    runner.run([*experiment_grid(("RC4",), (FOURW,), session_bytes=64,
                                 record_values=True)])
    run = runner.functional(options)
    assert run.trace is not None
    assert run.trace.values is not None
    assert runner.stats.functional_runs == 1


def test_parallel_jobs_match_serial_streaming(tmp_path):
    experiments = grid(ciphers=("RC4", "RC6"), configs=(FOURW, DATAFLOW))
    serial = make_runner(tmp_path, "a", stream=True).run(experiments)
    parallel = make_runner(tmp_path, "b", stream=True, jobs=2).run(
        experiments
    )
    assert [_result_key(r) for r in parallel] == \
        [_result_key(r) for r in serial]


LOOP = """
    ldiq r1, 40
loop:
    addq r2, r2, #1
    mull r3, r2, r2
    subq r1, r1, #1
    bne r1, loop
    halt
"""


def test_simulate_stream_matches_simulate_trace(tmp_path):
    program = assemble(LOOP)
    trace = Machine(program, Memory(1 << 12)).execute().trace
    runner = Runner(cache=ResultCache.disabled())
    expected = [runner.simulate_trace(trace, config)
                for config in (FOURW, DATAFLOW)]
    source = Machine(program, Memory(1 << 12)).execute(stream=True, chunk_size=16)
    streamed = runner.simulate_stream(source, [FOURW, DATAFLOW])
    assert streamed == expected


def test_simulate_stream_full_cache_hit_never_runs_machine(tmp_path):
    program = assemble(LOOP)
    runner = make_runner(tmp_path)
    key = ["stream-test", program.digest()]
    cold = Machine(program, Memory(1 << 12))
    first = runner.simulate_stream(
        cold.execute(stream=True), [FOURW], key_parts=key
    )
    assert cold.halted

    warm = Machine(program, Memory(1 << 12))
    second = runner.simulate_stream(
        warm.execute(stream=True), [FOURW], key_parts=key
    )
    assert second == first
    assert not warm.halted  # served from cache; the machine never ran
