"""Runner backend threading: same cache, same keys, same results.

Backends are bit-identical, so the runner must treat their results as
interchangeable: the on-disk cache records a run *content*, never which
backend produced it.  A compiled run primes the cache for an interpreter
run and vice versa, and fingerprints/experiment keys are byte-equal
across every backend selection.
"""

import dataclasses

from repro.runner import ExperimentOptions, ResultCache, Runner, experiment_grid
from repro.sim import DATAFLOW, FOURW


def make_runner(tmp_path, subdir="cache", **kwargs):
    return Runner(cache=ResultCache(tmp_path / subdir), **kwargs)


def grid(ciphers=("RC6",), configs=(FOURW, DATAFLOW), **options):
    options.setdefault("session_bytes", 128)
    return experiment_grid(ciphers, configs, **options)


def _result_key(result):
    return (result.cipher, result.config_name, result.instructions,
            result.stats)


def test_backend_results_are_identical(tmp_path):
    compiled = make_runner(tmp_path, "a", backend="compiled").run(grid())
    interp = make_runner(tmp_path, "b", backend="interpreter").run(grid())
    default = make_runner(tmp_path, "c").run(grid())
    assert [_result_key(r) for r in compiled] == \
        [_result_key(r) for r in interp] == \
        [_result_key(r) for r in default]


def test_compiled_run_primes_the_cache_for_interpreter(tmp_path):
    writer = make_runner(tmp_path, backend="compiled")
    first = writer.run(grid())
    assert writer.stats.cache_misses == len(first)

    reader = make_runner(tmp_path, backend="interpreter")
    second = reader.run(grid())
    assert reader.stats.cache_hits == len(second)
    assert reader.stats.functional_runs == 0
    assert [_result_key(r) for r in first] == [_result_key(r) for r in second]


def test_interpreter_run_primes_the_cache_for_compiled(tmp_path):
    make_runner(tmp_path, backend="interpreter").run(grid())
    reader = make_runner(tmp_path, backend="compiled")
    results = reader.run(grid())
    assert reader.stats.cache_hits == len(results)
    assert reader.stats.functional_runs == 0


def test_fingerprint_is_backend_independent(tmp_path):
    runner = make_runner(tmp_path)
    base = ExperimentOptions(cipher="RC6", session_bytes=128)
    variants = [
        dataclasses.replace(base, backend=backend)
        for backend in (None, "interpreter", "compiled")
    ]
    digests = {runner.fingerprint(options) for options in variants}
    assert len(digests) == 1


def test_experiment_key_is_backend_independent(tmp_path):
    runner = make_runner(tmp_path)
    keys = set()
    for backend in (None, "interpreter", "compiled"):
        experiments = grid(backend=backend)
        keys.update(runner.experiment_key(e) for e in experiments)
    # Two configs in the grid -> exactly two keys across all backends.
    assert len(keys) == 2


def test_options_backend_overrides_runner_backend(tmp_path):
    runner = make_runner(tmp_path, backend="interpreter")
    options = ExperimentOptions(cipher="RC6", session_bytes=128,
                                backend="compiled")
    assert runner._resolved_backend(options) == "compiled"
    assert runner._resolved_backend(
        ExperimentOptions(cipher="RC6", session_bytes=128)
    ) == "interpreter"


def test_streamed_backend_runs_match_batch(tmp_path):
    streamed = make_runner(tmp_path, "a", backend="compiled",
                           stream=True).run(grid())
    batch = make_runner(tmp_path, "b", backend="compiled",
                        stream=False).run(grid())
    assert [_result_key(r) for r in streamed] == \
        [_result_key(r) for r in batch]


def test_setup_experiments_run_on_the_compiled_backend(tmp_path):
    runner = make_runner(tmp_path, backend="compiled")
    results = runner.run(grid(kind="setup", configs=(FOURW,)))
    reference = make_runner(tmp_path, "ref", backend="interpreter").run(
        grid(kind="setup", configs=(FOURW,))
    )
    assert [_result_key(r) for r in results] == \
        [_result_key(r) for r in reference]
