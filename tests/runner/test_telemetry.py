"""Tests for the runner fleet monitor, progress reporter, and wiring."""

import io

from repro.obs import MetricsRegistry, Tracer, validate_metrics
from repro.runner import (
    Experiment,
    ExperimentOptions,
    FleetMonitor,
    ProgressReporter,
    ResultCache,
    Runner,
    experiment_grid,
)
from repro.runner.telemetry import _format_seconds
from repro.sim import DATAFLOW, FOURW


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_monitor(events, clock, **kwargs):
    kwargs.setdefault("total_groups", 4)
    kwargs.setdefault("total_experiments", 8)
    kwargs.setdefault("interval", 0)  # heartbeats driven by the tests
    return FleetMonitor(hook=events.append, clock=clock, **kwargs)


def test_dispatch_complete_accounting():
    events, clock = [], FakeClock()
    with make_monitor(events, clock, jobs=2) as monitor:
        monitor.dispatch("a")
        monitor.dispatch("b")
        monitor.dispatch("c")  # queued behind the 2 workers
        beat = monitor.heartbeat()
        assert beat["busy"] == 2 and beat["done"] == 0
        clock.advance(3.0)
        monitor.complete("b")
        clock.advance(1.0)
        monitor.complete("a")
    kinds = [event["type"] for event in events]
    assert kinds[0] == "start" and kinds[-1] == "finish"
    done = [event for event in events if event["type"] == "group-done"]
    assert [event["group"] for event in done] == ["b", "a"]
    assert done[0]["elapsed"] == 3.0
    assert done[1]["elapsed"] == 4.0
    assert done[1]["done"] == 2
    assert events[-1]["done"] == 2
    assert events[-1]["total"] == 4


def test_heartbeat_eta_extrapolates():
    events, clock = [], FakeClock()
    with make_monitor(events, clock) as monitor:
        for label in ("a", "b", "c", "d"):
            monitor.dispatch(label)
        clock.advance(10.0)
        monitor.complete("a")
        monitor.complete("b")
        beat = monitor.heartbeat()
    # 2 done in 10s -> 2 remaining need ~10 more seconds.
    assert beat["eta_seconds"] == 10.0
    assert beat["elapsed"] == 10.0
    first = events[1]
    assert first["type"] == "dispatch" and first["busy"] == 1


def test_stuck_watchdog_names_oldest_running_groups():
    events, clock = [], FakeClock()
    with make_monitor(events, clock, jobs=2, stuck_after=30.0) as monitor:
        monitor.dispatch("old")
        monitor.dispatch("younger")
        monitor.dispatch("queued")
        clock.advance(31.0)
        monitor.heartbeat()
        monitor.heartbeat()  # warned once, not repeated
        monitor.complete("old")
        clock.advance(5.0)
        monitor.heartbeat()  # progress happened: quiet period restarts
    stuck = [event for event in events if event["type"] == "stuck"]
    # Only the jobs=2 oldest dispatches can actually be running.
    assert [event["group"] for event in stuck] == ["old", "younger"]
    assert stuck[0]["quiet_seconds"] >= 30.0


def test_watchdog_feeds_metrics_and_tracer():
    metrics, tracer, clock = MetricsRegistry(), Tracer(), FakeClock()
    monitor = FleetMonitor(total_groups=1, jobs=1, metrics=metrics,
                           tracer=tracer, interval=0, stuck_after=10.0,
                           clock=clock)
    with monitor:
        monitor.dispatch("slow/encrypt:1024B")
        clock.advance(11.0)
        monitor.heartbeat()
    assert metrics.counter("runner.worker.stuck").value == 1
    assert metrics.gauge("runner.worker.busy").value == 0  # reset on close
    assert validate_metrics(metrics.snapshot()) == []
    names = {event["name"] for event in tracer.events}
    assert "stuck:slow/encrypt:1024B" in names
    assert "runner.worker.busy" in names


def test_abandon_all_forgets_inflight_groups():
    events, clock = [], FakeClock()
    with make_monitor(events, clock) as monitor:
        monitor.dispatch("a")
        monitor.dispatch("b")
        monitor.abandon_all()
        assert monitor.heartbeat()["busy"] == 0
        # Serial fallback re-dispatches and completes without double counts.
        monitor.dispatch("a")
        monitor.complete("a")
        assert monitor.done == 1


def test_requeue_all_keeps_inflight_and_suppresses_redispatch():
    events, clock = [], FakeClock()
    with make_monitor(events, clock, jobs=2) as monitor:
        monitor.dispatch("a")
        monitor.dispatch("b")
        clock.advance(5.0)
        monitor.requeue_all()
        assert monitor.heartbeat()["busy"] == 2  # still accounted
        monitor.dispatch("a")  # serial fallback re-walks the same groups
        monitor.dispatch("b")
        clock.advance(2.0)
        monitor.complete("a")
    # No duplicate dispatch events: the ledger looks like the pool path.
    kinds = [event["type"] for event in events]
    assert kinds.count("dispatch") == 2
    done = [event for event in events if event["type"] == "group-done"]
    # Timers restarted at requeue: elapsed measures the serial run only.
    assert done[0]["elapsed"] == 2.0


def test_requeue_all_resets_watchdog_and_rearms_warnings():
    events, clock = [], FakeClock()
    with make_monitor(events, clock, jobs=1, stuck_after=30.0) as monitor:
        monitor.dispatch("a")
        clock.advance(31.0)
        monitor.heartbeat()
        monitor.requeue_all()
        clock.advance(29.0)   # 60s total, but progress clock was reset
        monitor.heartbeat()
        clock.advance(2.0)    # now 31s past the requeue: warn again
        monitor.heartbeat()
        monitor.complete("a")
    stuck = [event for event in events if event["type"] == "stuck"]
    assert [event["group"] for event in stuck] == ["a", "a"]


def test_disabled_monitor_is_inert():
    monitor = FleetMonitor(total_groups=2, interval=0)
    assert not monitor.enabled
    with monitor:
        monitor.dispatch("a")
        monitor.complete("a")
    assert monitor.done == 1
    assert monitor._thread is None


def test_background_heartbeat_thread_runs():
    events = []
    monitor = FleetMonitor(total_groups=1, hook=events.append,
                           interval=0.01, stuck_after=0)
    with monitor:
        monitor.dispatch("a")
        import time

        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            if any(e["type"] == "heartbeat" for e in events):
                break
            time.sleep(0.01)
    assert any(event["type"] == "heartbeat" for event in events)


# -- the stock progress hook ----------------------------------------------

def progress_lines(events):
    stream = io.StringIO()
    reporter = ProgressReporter(stream=stream, label="test")
    for event in events:
        reporter(event)
    return stream.getvalue()


def test_progress_reporter_status_and_finish():
    text = progress_lines([
        {"type": "start", "total_groups": 3, "total_experiments": 6},
        {"type": "dispatch", "group": "a", "busy": 1, "done": 0, "total": 3},
        {"type": "heartbeat", "busy": 1, "done": 1, "total": 3,
         "elapsed": 4.0, "eta_seconds": 8.0},
        {"type": "finish", "done": 3, "total": 3, "elapsed": 12.0},
    ])
    assert "\r[test] 0/3 groups, 1 busy" in text
    assert "1/3 groups, 1 busy, elapsed 4s, eta ~8s" in text
    assert text.endswith("[test] 3/3 groups in 12s\n")


def test_progress_reporter_breaks_line_for_stuck_warning():
    text = progress_lines([
        {"type": "heartbeat", "busy": 1, "done": 0, "total": 1,
         "elapsed": 65.0, "eta_seconds": None},
        {"type": "stuck", "group": "IDEA/encrypt:4096B",
         "quiet_seconds": 65.0},
    ])
    assert "\n[test] worker quiet 1.1m: still running IDEA/encrypt:4096B\n" \
        in text


def test_format_seconds_units():
    assert _format_seconds(42.4) == "42s"
    assert _format_seconds(90.0) == "1.5m"
    assert _format_seconds(5400.0) == "1.5h"


# -- integration with the runner ------------------------------------------

def grid():
    return experiment_grid(["RC4", "RC6"], [FOURW, DATAFLOW],
                           session_bytes=128)


def test_serial_runner_emits_full_telemetry(tmp_path):
    """Acceptance: the --jobs 1 path reports heartbeat telemetry too."""
    events = []
    metrics = MetricsRegistry()
    runner = Runner(cache=ResultCache(tmp_path / "cache"), jobs=1,
                    metrics=metrics, heartbeat_hook=events.append,
                    heartbeat_interval=0.005)
    runner.run(grid())
    kinds = [event["type"] for event in events]
    assert kinds[0] == "start"
    assert kinds[-1] == "finish"
    assert kinds.count("dispatch") == 2  # one per (cipher) group
    assert kinds.count("group-done") == 2
    assert events[0]["total_experiments"] == 4
    labels = {e["group"] for e in events if e["type"] == "dispatch"}
    assert labels == {"RC4/encrypt:128B", "RC6/encrypt:128B"}
    assert metrics.histogram("runner.group.seconds")._value_fields()[
        "count"] == 2
    assert metrics.histogram(
        "runner.experiment.seconds", {"cipher": "RC4", "config": "4W"}
    )._value_fields()["count"] == 1
    assert validate_metrics(metrics.snapshot()) == []


def test_parallel_runner_emits_same_group_events(tmp_path):
    """jobs>1 (or its serial fallback) must produce the same accounting."""
    events = []
    runner = Runner(cache=ResultCache.disabled(), jobs=2,
                    heartbeat_hook=events.append, heartbeat_interval=0)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        runner.run(grid())
    kinds = [event["type"] for event in events]
    assert kinds.count("group-done") == 2
    assert kinds[-1] == "finish"
    assert events[-1]["done"] == 2


def test_cached_run_emits_no_phantom_telemetry(tmp_path):
    cold = Runner(cache=ResultCache(tmp_path / "cache"), jobs=1)
    cold.run(grid())
    events = []
    warm = Runner(cache=ResultCache(tmp_path / "cache"), jobs=1,
                  heartbeat_hook=events.append, heartbeat_interval=0)
    warm.run(grid())
    # Fully cached: nothing executes, so no busy workers are invented.
    assert events == []


# -- ledger equivalence: serial vs the parallel fallback --------------------

def ledger_shape(events):
    """Timestamp-free view of a run ledger: source, type, group label."""
    return [(event["source"], event["type"], event["data"].get("group"))
            for event in events]


def run_with_ledger(jobs):
    from repro.obs import EventBus, RingBufferSink

    bus = EventBus()
    sink = RingBufferSink()
    bus.subscribe(sink)
    runner = Runner(cache=ResultCache.disabled(), jobs=jobs, bus=bus,
                    heartbeat_interval=0)
    runner.run(grid())
    return sink.events


def test_pool_creation_failure_ledger_matches_serial(monkeypatch):
    """jobs=1 and a jobs=2 run whose pool never starts must write the
    same event sequence (modulo run_id and timestamps)."""
    import multiprocessing
    import warnings

    serial = run_with_ledger(jobs=1)

    def no_pool(*args, **kwargs):
        raise OSError("pools forbidden in this test")

    monkeypatch.setattr(multiprocessing, "Pool", no_pool)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        fallback = run_with_ledger(jobs=2)
    assert ledger_shape(fallback) == ledger_shape(serial)
    from repro.obs import validate_event_ledger
    assert validate_event_ledger(fallback) == []


def test_pool_death_after_dispatch_ledger_matches_serial(monkeypatch):
    """A pool that dies mid-fanout leaves already-dispatched groups
    accounted; the serial fallback's redispatches are suppressed, so the
    ledger still shows each group dispatched exactly once."""
    import multiprocessing
    import warnings

    serial = run_with_ledger(jobs=1)

    class DyingPool:
        def __init__(self, *args, **kwargs):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def apply_async(self, *args, **kwargs):
            raise OSError("worker died")

    monkeypatch.setattr(multiprocessing, "Pool", DyingPool)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        fallback = run_with_ledger(jobs=2)
    assert ledger_shape(fallback) == ledger_shape(serial)
    # The result payloads agree too (timestamps and wall time aside).
    def result_data(events):
        return [
            {key: value for key, value in event["data"].items()
             if key != "wall_time"}
            for event in events if event["type"] == "result"
        ]
    assert result_data(fallback) == result_data(serial)
