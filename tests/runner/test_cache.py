"""The content-hashed on-disk result cache."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runner import ResultCache, content_key
from repro.runner.cache import default_cache_dir

SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_content_key_is_order_insensitive_for_dicts():
    assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})


def test_content_key_distinguishes_values():
    base = {"cipher": "RC6", "session": 1024}
    assert content_key(base) != content_key({**base, "session": 1025})
    assert content_key(base) != content_key({**base, "cipher": "RC4"})


def test_content_key_hashes_bytes_and_tuples():
    assert content_key([b"abc", (1, 2)]) == content_key([b"abc", [1, 2]])
    assert content_key(b"abc") != content_key(b"abd")


def test_content_key_rejects_unhashable_types():
    with pytest.raises(TypeError):
        content_key(object())


def test_content_key_stable_across_processes():
    """sha256 over canonical JSON must not depend on PYTHONHASHSEED."""
    parts = {"cipher": "RC6", "key": b"\x00\x01", "configs": ["4W", "DF"]}
    local = content_key(parts)
    script = (
        "from repro.runner import content_key;"
        "print(content_key({'cipher': 'RC6', 'key': bytes([0, 1]),"
        " 'configs': ['4W', 'DF']}))"
    )
    for seed in ("0", "1", "random"):
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": SRC, "PYTHONHASHSEED": seed, "PATH": "/usr/bin"},
        ).stdout.strip()
        assert out == local


def test_default_cache_dir_env_precedence(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "explicit"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir() == tmp_path / "xdg" / "repro-runner"
    monkeypatch.delenv("XDG_CACHE_HOME")
    assert default_cache_dir() == Path.home() / ".cache" / "repro-runner"


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    key = content_key({"probe": 1})
    assert cache.get(key) is None
    cache.put(key, {"value": [1, 2, 3]})
    record = cache.get(key)
    assert record["value"] == [1, 2, 3]
    assert record["key"] == key
    assert cache.hits == 1 and cache.misses == 1


def test_corrupted_record_is_a_miss_and_removed(tmp_path):
    cache = ResultCache(tmp_path)
    key = content_key({"probe": 2})
    cache.put(key, {"value": 42})
    path = cache.path_for(key)
    path.write_text("{ truncated json")
    assert cache.get(key) is None
    assert not path.exists()
    assert cache.errors == 1
    # The next put/get cycle recovers cleanly.
    cache.put(key, {"value": 43})
    assert cache.get(key)["value"] == 43


def test_record_under_wrong_key_is_discarded(tmp_path):
    cache = ResultCache(tmp_path)
    key = content_key({"probe": 3})
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"key": "somebody-else", "value": 1}))
    assert cache.get(key) is None
    assert not path.exists()


def test_disabled_cache_never_touches_disk(tmp_path):
    cache = ResultCache(tmp_path, enabled=False)
    key = content_key({"probe": 4})
    cache.put(key, {"value": 1})
    assert cache.get(key) is None
    assert not tmp_path.exists() or not any(tmp_path.iterdir())


def test_unserializable_record_is_swallowed(tmp_path):
    cache = ResultCache(tmp_path)
    key = content_key({"probe": 5})
    cache.put(key, {"value": object()})
    assert cache.errors == 1
    assert cache.get(key) is None
    # No stray temp files left behind by the failed atomic write.
    assert not list(tmp_path.rglob("*.tmp"))


def test_clear_removes_everything(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put(content_key({"probe": 6}), {"value": 1})
    assert any((tmp_path / "cache").iterdir())
    cache.clear()
    assert not (tmp_path / "cache").exists()


def test_from_env_honors_no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert ResultCache.from_env().enabled is False
    monkeypatch.delenv("REPRO_NO_CACHE")
    assert ResultCache.from_env().enabled is True
