"""The unified experiment runner: dedup, caching, parallel fan-out."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.isa import Features
from repro.isa import opcodes as op
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.kernels import KERNEL_NAMES, KERNELS
from repro.runner import (
    Experiment,
    ExperimentOptions,
    ResultCache,
    Runner,
    experiment_grid,
)
from repro.sim import BASE4W, DATAFLOW, FOURW

SRC = str(Path(__file__).resolve().parents[2] / "src")


def make_runner(tmp_path, **kwargs):
    return Runner(cache=ResultCache(tmp_path / "cache"), **kwargs)


def grid(ciphers=("RC6",), configs=(FOURW, DATAFLOW), session_bytes=128):
    return experiment_grid(ciphers, configs, session_bytes=session_bytes)


def test_functional_dedup_across_configs(tmp_path):
    runner = make_runner(tmp_path)
    results = runner.run(grid(configs=(BASE4W, FOURW, DATAFLOW)))
    assert len(results) == 3
    assert runner.stats.functional_runs == 1
    assert runner.stats.timing_runs == 3
    # One trace, three machines: same instruction count everywhere.
    assert len({r.instructions for r in results}) == 1
    assert results[0].stats.cycles >= results[2].stats.cycles  # DF floor


def test_results_keep_input_order(tmp_path):
    runner = make_runner(tmp_path)
    experiments = grid(ciphers=("RC4", "RC6"), configs=(FOURW, DATAFLOW))
    results = runner.run(experiments)
    assert [(r.cipher, r.config_name) for r in results] == [
        (e.options.cipher, e.config.name) for e in experiments
    ]


def test_cache_round_trip_between_runners(tmp_path):
    cold = make_runner(tmp_path)
    first = cold.run(grid())
    assert all(not r.cached for r in first)

    warm = make_runner(tmp_path)
    second = warm.run(grid())
    assert all(r.cached for r in second)
    assert warm.stats.cache_hits == len(second)
    assert warm.stats.functional_runs == 0
    for a, b in zip(first, second):
        assert a.stats == b.stats
        assert a.instructions == b.instructions


def test_experiment_key_stable_across_processes(tmp_path):
    """Keys must be reproducible in a fresh interpreter (new hash seed),
    or the on-disk cache would never hit across invocations."""
    runner = make_runner(tmp_path)
    experiment = grid()[0]
    local = runner.experiment_key(experiment)
    script = (
        "from repro.runner import Runner, ResultCache, experiment_grid;"
        "from repro.sim import FOURW, DATAFLOW;"
        "r = Runner(cache=ResultCache.disabled());"
        "e = experiment_grid(['RC6'], [FOURW, DATAFLOW],"
        " session_bytes=128)[0];"
        "print(r.experiment_key(e))"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": SRC, "PYTHONHASHSEED": "random",
             "PATH": "/usr/bin"},
    ).stdout.strip()
    assert out == local


def test_cache_invalidated_when_kernel_program_changes(tmp_path, monkeypatch):
    """Editing a kernel so it emits different code must change the content
    key, even when the dynamic behavior is identical."""
    cold = make_runner(tmp_path)
    baseline = cold.run(grid())[0]

    original = KERNELS["RC6"].build_program

    def patched(self, layout, nblocks):
        tweaked = Program()
        for instruction in original(self, layout, nblocks).instructions:
            tweaked.add(instruction)
        # Unreachable (after the final halt): the trace and all simulated
        # results are identical, only the program bytes differ.
        tweaked.add(Instruction(op.ADDQ, dest=1, src1=1, src2=1))
        return tweaked.finalize()

    monkeypatch.setattr(KERNELS["RC6"], "build_program", patched)
    edited = make_runner(tmp_path)
    result = edited.run(grid())[0]
    assert not result.cached
    assert edited.stats.cache_misses == len(grid())
    assert result.stats.cycles == baseline.stats.cycles


def test_runner_version_participates_in_keys(tmp_path, monkeypatch):
    cold = make_runner(tmp_path)
    cold.run(grid())
    import repro.runner.engine as engine

    monkeypatch.setattr(engine, "RUNNER_VERSION", 999)
    bumped = make_runner(tmp_path)
    assert all(not r.cached for r in bumped.run(grid()))


def test_corrupted_cache_recovers_with_correct_results(tmp_path):
    cold = make_runner(tmp_path)
    baseline = cold.run(grid())
    for path in (tmp_path / "cache").rglob("*.json"):
        path.write_text("NOT JSON")
    recovered_runner = make_runner(tmp_path)
    recovered = recovered_runner.run(grid())
    assert all(not r.cached for r in recovered)
    for a, b in zip(baseline, recovered):
        assert a.stats == b.stats
    # And the rewritten records serve the next runner.
    assert all(r.cached for r in make_runner(tmp_path).run(grid()))


@pytest.mark.parametrize("jobs", [4])
def test_parallel_identical_to_serial_full_suite(tmp_path, jobs):
    """Acceptance: jobs>1 and serial produce identical SimStats for the
    full Table 1 cipher set."""
    experiments = grid(
        ciphers=KERNEL_NAMES, configs=(FOURW, DATAFLOW), session_bytes=128
    )
    serial = Runner(cache=ResultCache.disabled(), jobs=1).run(experiments)
    parallel = Runner(cache=ResultCache.disabled(), jobs=jobs).run(experiments)
    assert len(serial) == len(parallel) == len(experiments)
    for s, p in zip(serial, parallel):
        assert s.stats == p.stats
        assert s.instructions == p.instructions


def test_parallel_falls_back_to_serial_on_pool_failure(tmp_path, monkeypatch):
    import repro.runner.engine as engine

    def broken_pool(*args, **kwargs):
        raise OSError("no processes in this sandbox")

    monkeypatch.setattr(engine.multiprocessing, "Pool", broken_pool)
    runner = make_runner(tmp_path, jobs=4)
    with pytest.warns(RuntimeWarning, match="falling back to serial"):
        results = runner.run(grid(ciphers=("RC4", "RC6")))
    assert len(results) == 4
    assert all(r.stats.cycles > 0 for r in results)


def test_setup_and_decrypt_kinds(tmp_path):
    runner = make_runner(tmp_path)
    setup = runner.run_one(Experiment(
        ExperimentOptions(cipher="Blowfish", kind="setup", session_bytes=0),
        BASE4W,
    ))
    assert setup.stats.cycles > 0
    decrypt = runner.run_one(Experiment(
        ExperimentOptions(
            cipher="RC6", kind="decrypt", session_bytes=128,
            features=Features.OPT,
        ),
        FOURW,
    ))
    encrypt = runner.run_one(Experiment(
        ExperimentOptions(
            cipher="RC6", kind="encrypt", session_bytes=128,
            features=Features.OPT,
        ),
        FOURW,
    ))
    assert decrypt.stats.cycles > 0
    assert decrypt.experiment.options.kind == "decrypt"
    assert encrypt.stats.cycles > 0


def test_invalid_kind_rejected():
    with pytest.raises(ValueError):
        ExperimentOptions(cipher="RC6", kind="frobnicate")


def test_stats_hook_sees_every_result(tmp_path):
    seen = []
    runner = make_runner(tmp_path, stats_hook=seen.append)
    runner.run(grid())
    assert [(r.cipher, r.config_name, r.cached) for r in seen] == [
        ("RC6", "4W", False), ("RC6", "DF", False),
    ]
    warm = make_runner(tmp_path, stats_hook=seen.append)
    warm.run(grid())
    assert [r.cached for r in seen[2:]] == [True, True]


def test_runner_stats_summary_mentions_counts(tmp_path):
    runner = make_runner(tmp_path)
    runner.run(grid())
    text = runner.stats.summary()
    assert "cache hits" in text and "timing runs" in text


def test_cached_value_round_trip(tmp_path):
    runner = make_runner(tmp_path)
    calls = []

    def compute():
        calls.append(1)
        return {"answer": 42}

    assert runner.cached_value(["probe"], compute) == {"answer": 42}
    assert runner.cached_value(["probe"], compute) == {"answer": 42}
    assert len(calls) == 1
    # A different key computes again.
    runner.cached_value(["probe", 2], compute)
    assert len(calls) == 2


def test_simulate_trace_cached_by_key_parts(tmp_path):
    runner = make_runner(tmp_path)
    options = ExperimentOptions(cipher="RC6", session_bytes=128)
    run = runner.functional(options)
    first = runner.simulate_trace(
        run.trace, FOURW, run.warm_ranges, key_parts=["probe-trace"]
    )
    warm_runner = make_runner(tmp_path)
    second = warm_runner.simulate_trace(
        run.trace, FOURW, run.warm_ranges, key_parts=["probe-trace"]
    )
    assert first == second
    assert warm_runner.stats.timing_runs == 0
    # Without key_parts the simulation always runs live.
    third = warm_runner.simulate_trace(run.trace, FOURW, run.warm_ranges)
    assert third == first
    assert warm_runner.stats.timing_runs == 1


def test_default_key_matches_suite_pattern(tmp_path):
    """Options with key=None share traces with explicit standard keys."""
    from repro.ciphers.suite import SUITE_BY_NAME

    runner = make_runner(tmp_path)
    implicit = ExperimentOptions(cipher="RC4", session_bytes=128)
    explicit = implicit.with_(
        key=bytes(range(SUITE_BY_NAME["RC4"].key_bytes))
    )
    assert runner.fingerprint(implicit) == runner.fingerprint(explicit)


def test_wall_time_covers_every_phase(tmp_path):
    """wall_time must account for functional + timing + cache work; the
    original implementation only summed timing runs."""
    runner = make_runner(tmp_path)
    runner.run(grid())
    stats = runner.stats
    assert stats.wall_time_functional > 0
    assert stats.wall_time_timing > 0
    assert stats.wall_time_cache > 0
    assert stats.wall_time == pytest.approx(
        sum(stats.phase_breakdown().values())
    )
    text = stats.summary()
    assert "functional" in text and "timing" in text and "cache" in text

    # A warm run does cache work but no simulation.
    warm = make_runner(tmp_path)
    warm.run(grid())
    assert warm.stats.wall_time_cache > 0
    assert warm.stats.wall_time_timing == 0
    assert warm.stats.wall_time_functional == 0


def test_parallel_workers_report_functional_time():
    runner = Runner(cache=ResultCache.disabled(), jobs=4)
    runner.run(grid(ciphers=("RC4", "RC6"), configs=(FOURW,)))
    if runner.stats.functional_runs:  # pool may be unavailable in sandbox
        assert runner.stats.wall_time_functional > 0


def test_simulate_trace_counts_timing_phase(tmp_path):
    runner = make_runner(tmp_path)
    options = ExperimentOptions(cipher="RC6", session_bytes=128)
    run = runner.functional(options)
    runner.simulate_trace(run.trace, FOURW, run.warm_ranges)
    assert runner.stats.wall_time_timing > 0


def test_runner_publishes_metrics_and_spans(tmp_path):
    from repro.obs import MetricsRegistry, Tracer, validate_trace_events

    metrics = MetricsRegistry()
    tracer = Tracer()
    runner = make_runner(tmp_path, metrics=metrics, tracer=tracer)
    runner.run(grid())

    assert metrics.counter("runner.functional_runs").value == 1
    assert metrics.counter("runner.cache.misses").value == 2
    assert metrics.counter("sim.runs", {"config": "4W"}).value == 1
    names = {event["name"] for event in tracer.events}
    assert "cache-probe" in names
    assert "functional:RC6" in names
    assert "timing:RC6:4W" in names
    assert validate_trace_events(tracer.to_chrome()) == []

    # Warm reruns touch no simulator and open no timing spans.
    warm_tracer = Tracer()
    warm = make_runner(tmp_path, tracer=warm_tracer)
    warm.run(grid())
    warm_names = {event["name"] for event in warm_tracer.events}
    assert "cache-probe" in warm_names
    assert not any(name.startswith("timing:") for name in warm_names)


def test_cached_records_round_trip_stall_attribution(tmp_path):
    cold = make_runner(tmp_path)
    baseline = cold.run(grid(configs=(FOURW,)))[0].stats
    assert baseline.issue_slots > 0 and baseline.stall_slots

    warm = make_runner(tmp_path)
    cached = warm.run(grid(configs=(FOURW,)))[0].stats
    assert cached.issue_slots == baseline.issue_slots
    assert cached.stall_slots == baseline.stall_slots
    assert cached.wait_cycles == baseline.wait_cycles
    assert cached.hotspots == baseline.hotspots
