"""Per-kernel structural expectations: instruction mixes and coding deltas.

These pin the *mechanical* properties of each hand-written kernel --
which extensions each cipher actually uses, and how the instruction
budget shifts between feature levels -- so a kernel edit that silently
changes a coding's character fails a test before it skews an experiment.
"""

import pytest

from repro.isa import Features
from repro.isa import opcodes as op
from repro.kernels import make_kernel

SESSION = {
    "3DES": 64, "Blowfish": 128, "IDEA": 128, "Mars": 128,
    "RC4": 128, "RC6": 128, "Rijndael": 128, "Twofish": 128,
}


def _counts(name, features):
    run = make_kernel(name, features).encrypt(bytes(SESSION[name]))
    return run.trace.category_counts(), run.instructions


def _opcode_counts(name, features):
    run = make_kernel(name, features).encrypt(bytes(SESSION[name]))
    trace = run.trace
    counts = {}
    instructions = trace.program.instructions
    for static_index in trace.seq:
        mnemonic = instructions[static_index].name
        counts[mnemonic] = counts.get(mnemonic, 0) + 1
    return counts


def test_idea_opt_uses_mulmod_hardware():
    opcodes = _opcode_counts("IDEA", Features.OPT)
    assert opcodes.get("mulmod", 0) > 0
    assert opcodes.get("mull", 0) == 0
    baseline = _opcode_counts("IDEA", Features.ROT)
    assert baseline.get("mulmod", 0) == 0
    assert baseline.get("mull", 0) > 0
    # 34 multiplies per 8-byte block.
    blocks = SESSION["IDEA"] // 8
    assert opcodes["mulmod"] == 34 * blocks


def test_blowfish_opt_uses_sbox():
    opcodes = _opcode_counts("Blowfish", Features.OPT)
    blocks = SESSION["Blowfish"] // 8
    # 4 lookups x 16 rounds per block.
    assert opcodes["sbox"] == 64 * blocks
    assert _opcode_counts("Blowfish", Features.ROT).get("sbox", 0) == 0


def test_rijndael_opt_sbox_count():
    opcodes = _opcode_counts("Rijndael", Features.OPT)
    blocks = SESSION["Rijndael"] // 16
    # 16 lookups x 9 inner rounds + 16 final-round lookups.
    assert opcodes["sbox"] == (16 * 9 + 16) * blocks


def test_twofish_opt_sbox_count():
    opcodes = _opcode_counts("Twofish", Features.OPT)
    blocks = SESSION["Twofish"] // 16
    assert opcodes["sbox"] == 8 * 16 * blocks  # 8 per round, 16 rounds


def test_3des_opt_uses_xbox_and_sbox():
    opcodes = _opcode_counts("3DES", Features.OPT)
    blocks = SESSION["3DES"] // 8
    assert opcodes["xbox"] == 16 * blocks      # 8 for IP + 8 for FP
    assert opcodes["sbox"] == 8 * 48 * blocks  # 8 per round, 48 rounds
    baseline = _opcode_counts("3DES", Features.ROT)
    assert baseline.get("xbox", 0) == 0


def test_rc6_and_mars_use_rolx_at_opt():
    for name in ("RC6", "Mars"):
        opcodes = _opcode_counts(name, Features.OPT)
        assert opcodes.get("rolxl", 0) > 0, name
        assert _opcode_counts(name, Features.ROT).get("rolxl", 0) == 0, name


def test_rc4_opt_uses_aliased_sbox():
    run = make_kernel("RC4", Features.OPT).encrypt(bytes(64))
    trace = run.trace
    aliased = [
        s for s in trace.seq
        if trace.static.klass[s] == "sbox" and trace.static.sbox_aliased[s]
    ]
    assert len(aliased) == 3 * 64  # three state reads per byte
    # And RC4 stores into its table from inside the kernel.
    stores = sum(1 for s in trace.seq if trace.static.is_store[s])
    assert stores >= 2 * 64


def test_norot_adds_shift_instructions():
    for name in ("Mars", "RC6", "Twofish"):
        rot_counts, rot_total = _counts(name, Features.ROT)
        norot_counts, norot_total = _counts(name, Features.NOROT)
        assert norot_total > rot_total, name
        # The extra instructions are classified as rotate work.
        assert norot_counts[op.ROTATE] > rot_counts.get(op.ROTATE, 0), name


@pytest.mark.parametrize("name", list(SESSION))
def test_opt_shrinks_or_preserves_every_category_total(name):
    _, norot_total = _counts(name, Features.NOROT)
    _, opt_total = _counts(name, Features.OPT)
    assert opt_total <= norot_total


def test_sboxsync_emitted_once_per_table():
    run = make_kernel("Twofish", Features.OPT).encrypt(bytes(32))
    trace = run.trace
    syncs = [s for s in trace.seq if trace.static.is_sync[s]]
    assert len(syncs) == 4  # once per g-table, at program start
