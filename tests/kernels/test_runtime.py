"""Tests for the kernel runtime layer: layout, packing, validation plumbing."""

import pytest

from repro.isa import Features
from repro.kernels import make_kernel
from repro.kernels.runtime import (
    INPUT_BASE,
    IV_BASE,
    KEYS_BASE,
    TABLES_BASE,
    pack_words_be,
)


def test_pack_words_be_roundtrip():
    data = bytes(range(16))
    packed = pack_words_be(data)
    assert packed == bytes([3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8,
                            15, 14, 13, 12])
    assert pack_words_be(packed) == data


def test_pack_words_be_width_2():
    assert pack_words_be(b"\x01\x02\x03\x04", 2) == b"\x02\x01\x04\x03"


def test_pack_rejects_ragged():
    with pytest.raises(ValueError):
        pack_words_be(b"\x01\x02\x03")


def test_layout_regions_are_ordered_and_disjoint():
    kernel = make_kernel("Twofish", Features.OPT)
    layout = kernel.layout_for(1024)
    assert TABLES_BASE <= layout.tables < layout.keys < layout.iv
    assert layout.iv < layout.input < layout.output
    assert layout.output >= layout.input + 1024
    # Tables must be 1KB-aligned for the SBOX instruction.
    assert layout.tables % 1024 == 0


def test_layout_base_offset_shifts_everything():
    kernel = make_kernel("Twofish", Features.OPT)
    kernel.base_offset = 0x100000
    shifted = kernel.layout_for(256)
    base = make_kernel("Twofish", Features.OPT).layout_for(256)
    for field in ("tables", "keys", "iv", "input", "output"):
        assert getattr(shifted, field) == getattr(base, field) + 0x100000


def test_memory_sized_to_layout():
    kernel = make_kernel("Blowfish", Features.OPT)
    layout = kernel.layout_for(4096)
    memory = kernel.make_memory(layout)
    assert memory.size >= layout.output + 4096


def test_validation_catches_corruption():
    """Force a wrong reference to prove validation is live."""
    kernel = make_kernel("RC6", Features.OPT)
    kernel.reference_encrypt = lambda pt, iv: bytes(len(pt))
    with pytest.raises(AssertionError, match="diverges"):
        kernel.encrypt(bytes(32))


def test_validation_can_be_skipped():
    kernel = make_kernel("RC6", Features.OPT)
    kernel.reference_encrypt = lambda pt, iv: bytes(len(pt))
    run = kernel.encrypt(bytes(32), validate=False)
    assert run.instructions > 0


def test_default_iv_is_zero_block():
    kernel = make_kernel("Blowfish", Features.OPT)
    explicit = kernel.encrypt(bytes(32), iv=bytes(8)).ciphertext
    implicit = kernel.encrypt(bytes(32)).ciphertext
    assert explicit == implicit


def test_program_cache_reuses_by_block_count_and_direction():
    kernel = make_kernel("RC6", Features.OPT)
    p1, _, _ = kernel.prepare(bytes(32), bytes(16))
    p2, _, _ = kernel.prepare(bytes(32), bytes(16))
    p3, _, _ = kernel.prepare(bytes(64), bytes(16))
    p4, _, _ = kernel.prepare(bytes(32), bytes(16), decrypt=True)
    assert p1 is p2
    assert p1 is not p3
    assert p1 is not p4


def test_warm_ranges_cover_tables_and_keys():
    kernel = make_kernel("Rijndael", Features.OPT)
    run = kernel.encrypt(bytes(64))
    layout = kernel.layout_for(64)
    starts = [start for start, _ in run.warm_ranges]
    assert layout.tables in starts
    assert layout.keys in starts


def test_instructions_per_byte():
    kernel = make_kernel("RC4", Features.OPT)
    run = kernel.encrypt(bytes(100))
    assert run.instructions_per_byte == run.instructions / 100
