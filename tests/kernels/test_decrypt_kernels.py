"""Tests for the RISC-A decryption kernels (paper footnote 1).

Each decryption kernel is validated against the reference CBC decryptor by
the harness itself; these tests add round-trips through the *kernels only*
(encrypt kernel -> decrypt kernel), coverage across feature levels, and the
paper's symmetry observation.
"""

import pytest

from repro.ciphers import SUITE_BY_NAME
from repro.isa import Features
from repro.kernels import KERNEL_NAMES, make_kernel

ALL_FEATURES = [Features.NOROT, Features.ROT, Features.OPT]


def _session(name: str, blocks: int) -> bytes:
    info = SUITE_BY_NAME[name]
    block = max(info.block_bytes, 8)
    return bytes((i * 73 + 5) & 0xFF for i in range(blocks * block))


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_all_kernels_support_decrypt(name):
    assert make_kernel(name, Features.OPT).supports_decrypt


@pytest.mark.parametrize("name", KERNEL_NAMES)
@pytest.mark.parametrize("features", ALL_FEATURES, ids=lambda f: f.label)
def test_kernel_roundtrip_through_kernels(name, features):
    kernel = make_kernel(name, features)
    plaintext = _session(name, blocks=3 if name == "3DES" else 6)
    info = SUITE_BY_NAME[name]
    iv = None if info.is_stream else bytes(range(info.block_bytes))
    ciphertext = kernel.encrypt(plaintext, iv).ciphertext
    recovered = kernel.decrypt(ciphertext, iv).ciphertext
    assert recovered == plaintext


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_paper_validation_methodology_reversed(name):
    """Original encryptor's output decrypted by the optimized kernel."""
    info = SUITE_BY_NAME[name]
    key = bytes(range(info.key_bytes))
    plaintext = _session(name, blocks=2)
    iv = None if info.is_stream else bytes(info.block_bytes)
    from repro.ciphers import CBC

    reference = info.make(key)
    if info.is_stream:
        ciphertext = reference.process(plaintext)
    else:
        ciphertext = CBC(reference, iv).encrypt(plaintext)
    kernel = make_kernel(name, Features.OPT, key=key)
    assert kernel.decrypt(ciphertext, iv).ciphertext == plaintext


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_decrypt_instruction_count_comparable(name):
    """Paper footnote 1: decryption performance comparable to encryption."""
    kernel = make_kernel(name, Features.OPT)
    plaintext = _session(name, blocks=3 if name == "3DES" else 6)
    info = SUITE_BY_NAME[name]
    iv = None if info.is_stream else bytes(info.block_bytes)
    enc = kernel.encrypt(plaintext, iv)
    dec = kernel.decrypt(enc.ciphertext, iv)
    ratio = dec.instructions / enc.instructions
    assert 0.8 <= ratio <= 1.25, ratio
