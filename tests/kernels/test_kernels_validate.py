"""Cross-validation: every RISC-A kernel variant against its reference cipher.

This is the repository's core integration test and mirrors the paper's own
methodology ("all analyzed codes were validated by running the optimized
encryption kernel with the original decryption kernel").
"""

import pytest

from repro.ciphers import CBC, SUITE_BY_NAME
from repro.isa import Features
from repro.kernels import KERNEL_NAMES, make_kernel

ALL_FEATURES = [Features.NOROT, Features.ROT, Features.OPT]


def _session(name: str, blocks: int = 8) -> bytes:
    info = SUITE_BY_NAME[name]
    block = max(info.block_bytes, 8)
    return bytes((i * 37 + 11) & 0xFF for i in range(blocks * block))


@pytest.mark.parametrize("name", KERNEL_NAMES)
@pytest.mark.parametrize("features", ALL_FEATURES, ids=lambda f: f.label)
def test_kernel_matches_reference(name, features):
    """encrypt() raises AssertionError internally if output diverges."""
    kernel = make_kernel(name, features)
    plaintext = _session(name, blocks=4 if name == "3DES" else 8)
    run = kernel.encrypt(plaintext)
    assert run.ciphertext != plaintext
    assert run.session_bytes == len(plaintext)
    assert run.instructions > 0


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_optimized_decryptable_by_reference(name):
    """The paper's validation: optimized kernel output, reference decryptor."""
    kernel = make_kernel(name, Features.OPT)
    info = SUITE_BY_NAME[name]
    plaintext = _session(name, blocks=3)
    iv = bytes(info.block_bytes) if not info.is_stream else None
    run = kernel.encrypt(plaintext, iv)
    reference = info.make(kernel.key)
    if info.is_stream:
        assert reference.process(run.ciphertext) == plaintext
    else:
        assert CBC(reference, iv).decrypt(run.ciphertext) == plaintext


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_kernel_random_keys(name):
    import random

    random.seed(hash(name) & 0xFFFF)
    info = SUITE_BY_NAME[name]
    for _ in range(2):
        key = random.randbytes(info.key_bytes)
        kernel = make_kernel(name, Features.OPT, key=key)
        plaintext = random.randbytes(4 * max(info.block_bytes, 8))
        kernel.encrypt(plaintext)  # validates internally


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_cbc_chaining_across_blocks(name):
    """Ciphertext of block i must differ when earlier plaintext changes."""
    info = SUITE_BY_NAME[name]
    if info.is_stream:
        pytest.skip("stream cipher has no CBC chain")
    kernel = make_kernel(name, Features.OPT)
    size = info.block_bytes
    base = bytes(3 * size)
    tweaked = bytes([1]) + bytes(3 * size - 1)
    ct_a = kernel.encrypt(base).ciphertext
    ct_b = kernel.encrypt(tweaked).ciphertext
    # A first-block change must propagate to the last block.
    assert ct_a[-size:] != ct_b[-size:]


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_optimized_kernel_is_smaller(name):
    """The ISA extensions must reduce dynamic instruction count."""
    plaintext = _session(name, blocks=4 if name == "3DES" else 8)
    baseline = make_kernel(name, Features.NOROT).encrypt(plaintext)
    optimized = make_kernel(name, Features.OPT).encrypt(plaintext)
    assert optimized.instructions < baseline.instructions


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_trace_has_expected_structure(name):
    plaintext = _session(name, blocks=4 if name == "3DES" else 8)
    run = make_kernel(name, Features.OPT).encrypt(plaintext)
    counts = run.trace.category_counts()
    assert sum(counts.values()) == run.instructions
    assert counts.get("control", 0) >= 1  # at least the loop branch
    if name not in ("RC6", "IDEA"):  # the computational ciphers: no S-boxes
        assert counts.get("sbox", 0) > 0
    else:
        assert counts.get("multiply", 0) > 0


def test_make_kernel_unknown_name():
    with pytest.raises(KeyError):
        make_kernel("DES5")


def test_kernel_rejects_partial_block():
    kernel = make_kernel("Twofish", Features.OPT)
    with pytest.raises(ValueError):
        kernel.encrypt(bytes(17))
