"""Tests for the RISC-A key-setup routines (Figure 6's substrate).

``SetupKernel.run`` validates the produced tables/schedules byte-for-byte
against the reference cipher's key setup, so these tests focus on coverage
across keys, relative cost ordering, and consistency with the encryption
kernels.
"""

import pytest

from repro.ciphers import SUITE_BY_NAME
from repro.isa import Features
from repro.kernels import make_kernel, make_setup
from repro.kernels.setup_registry import SETUP_KERNELS

ALL_NAMES = tuple(SETUP_KERNELS)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_setup_validates_default_key(name):
    run = make_setup(name).run()
    assert run.instructions > 0
    assert len(run.trace) == run.instructions


@pytest.mark.parametrize("name", ALL_NAMES)
def test_setup_validates_random_keys(name):
    import random

    random.seed(hash(name) & 0xFFF)
    info = SUITE_BY_NAME[name]
    for _ in range(2):
        make_setup(name, key=random.randbytes(info.key_bytes)).run()


def test_blowfish_setup_is_the_outlier():
    """Paper: Blowfish setup ~= 521 kernel runs, dwarfing every other."""
    costs = {name: make_setup(name).run().instructions for name in ALL_NAMES}
    assert costs["Blowfish"] == max(costs.values())
    assert costs["Blowfish"] > 5 * sorted(costs.values())[-2]
    assert costs["IDEA"] == min(costs.values())


def test_blowfish_setup_equals_521_encryptions_roughly():
    setup_instructions = make_setup("Blowfish").run().instructions
    kernel = make_kernel("Blowfish", Features.ROT)
    run = kernel.encrypt(bytes(8 * 64))  # 64 blocks
    per_block = run.instructions / 64
    # 521 chained encryptions plus the key-XOR phase.
    assert 450 * per_block < setup_instructions < 700 * per_block


@pytest.mark.parametrize("name", ["Blowfish", "Twofish", "Rijndael", "3DES"])
def test_setup_output_feeds_encryption_kernel(name):
    """The setup's memory regions equal what the encrypt kernel stages.

    This is implied by both being validated against the same reference, but
    checking it directly guards the shared memory-layout contract.
    """
    info = SUITE_BY_NAME[name]
    key = bytes(range(info.key_bytes))
    setup = make_setup(name, key=key)
    layout = setup.layout()
    regions = setup.expected_regions(layout)

    kernel = make_kernel(name, Features.OPT, key=key)
    # 3DES OPT uses replicated tables; compare the key schedule region only.
    program, memory, klayout = kernel.prepare(
        bytes(info.block_bytes * 2), bytes(info.block_bytes)
    )
    for address, expected in regions:
        if address == layout.keys:
            assert memory.read_bytes(klayout.keys, len(expected)) == expected


def test_setup_unknown_name():
    with pytest.raises(KeyError):
        make_setup("Skipjack")
