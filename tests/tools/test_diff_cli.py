"""The standalone diff CLI: subcommands, exit codes, report round-trips.

Exit status follows diff(1): 0 identical, 1 different, 2 trouble.  Every
``--out`` report must round-trip through ``repro.tools.obs --check``.
"""

import json

import pytest

from repro.obs import EventBus, JsonlSink
from repro.obs.bench import BenchHistory, BenchRecord
from repro.tools import diff as diff_cli
from repro.tools import obs as obs_cli


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def write_ledger(path, phases, run_id="run0"):
    bus = EventBus(run_id=run_id)
    bus.subscribe(JsonlSink(path))
    for source, type_ in phases:
        bus.publish(source, type_, {})
    bus.close()


PHASES = (("runner", "start"), ("cache", "miss"), ("runner", "result"),
          ("runner", "finish"))


# -- run --------------------------------------------------------------------

def test_run_two_machine_models_differ(tmp_path, capsys):
    out = tmp_path / "report.json"
    rc = diff_cli.main([
        "run", "--cipher", "RC4", "--session-bytes", "64",
        "--config", "4W", "8W+", "--out", str(out),
    ])
    assert rc == diff_cli.DIFFERENT
    stdout = capsys.readouterr().out
    assert "diff [stats]" in stdout
    assert "verdict:" in stdout
    report = json.loads(out.read_text())
    assert report["identical"] is False
    assert report["a"]["config"] == "4W" and report["b"]["config"] == "8W+"
    # The written report is valid by the obs checker's standards.
    assert obs_cli.check_file(str(out)) == 0


def test_run_self_diff_is_identical(capsys):
    rc = diff_cli.main([
        "run", "--cipher", "RC4", "--session-bytes", "64",
        "--config", "4W", "--format", "json",
    ])
    assert rc == diff_cli.IDENTICAL
    report = json.loads(capsys.readouterr().out)
    assert report["identical"] is True
    assert report["verdict"].startswith("identical")


def test_run_cross_stack_is_identical(capsys):
    """interpreter+generic vs compiled+specialized: zero deltas.
    --no-cache keeps side b from replaying side a's cached record."""
    rc = diff_cli.main([
        "run", "--cipher", "RC4", "--session-bytes", "64", "--config", "4W",
        "--no-cache",
        "--a-backend", "interpreter", "--a-engine", "generic",
        "--b-backend", "compiled", "--b-engine", "specialized",
        "--format", "json",
    ])
    assert rc == diff_cli.IDENTICAL
    report = json.loads(capsys.readouterr().out)
    assert report["identical"] is True
    assert report["stats"]["a_engine"] == "generic"
    assert report["stats"]["b_engine"] == "specialized"


def test_run_rejects_three_configs(capsys):
    rc = diff_cli.main([
        "run", "--cipher", "RC4", "--session-bytes", "64",
        "--config", "4W", "8W+", "base",
    ])
    assert rc == diff_cli.TROUBLE
    assert "one or two machine models" in capsys.readouterr().out


# -- ledger -----------------------------------------------------------------

def test_ledger_identical_runs(tmp_path, capsys):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_ledger(a, PHASES, run_id="aaa")
    write_ledger(b, PHASES, run_id="bbb")
    out = tmp_path / "report.json"
    rc = diff_cli.main(["ledger", str(a), str(b), "--out", str(out)])
    assert rc == diff_cli.IDENTICAL
    assert "identical" in capsys.readouterr().out
    report = json.loads(out.read_text())
    assert report["a"]["run_id"] == "aaa"
    assert obs_cli.check_file(str(out)) == 0


def test_ledger_defaults_to_last_run_and_selects_by_id(tmp_path, capsys):
    appended = tmp_path / "appended.jsonl"
    write_ledger(appended, PHASES[:2], run_id="earlier")
    write_ledger(appended, PHASES, run_id="later")
    solo = tmp_path / "solo.jsonl"
    write_ledger(solo, PHASES, run_id="solo")
    # Default: the file's last run, which matches.
    assert diff_cli.main(["ledger", str(solo), str(appended)]) == \
        diff_cli.IDENTICAL
    capsys.readouterr()
    # Explicit selection of the shorter earlier run: different.
    assert diff_cli.main(["ledger", str(solo), str(appended),
                          "--b-run", "earlier"]) == diff_cli.DIFFERENT
    capsys.readouterr()


def test_ledger_unknown_run_id_is_trouble(tmp_path, capsys):
    path = tmp_path / "a.jsonl"
    write_ledger(path, PHASES, run_id="known")
    rc = diff_cli.main(["ledger", str(path), str(path),
                        "--a-run", "missing"])
    assert rc == diff_cli.TROUBLE
    stdout = capsys.readouterr().out
    assert "no run 'missing'" in stdout
    assert "known" in stdout


def test_ledger_missing_file_is_trouble(tmp_path, capsys):
    rc = diff_cli.main(["ledger", str(tmp_path / "nope.jsonl"),
                        str(tmp_path / "nope.jsonl")])
    assert rc == diff_cli.TROUBLE
    assert "error:" in capsys.readouterr().out


# -- metrics ----------------------------------------------------------------

def metrics_snapshot(path, cache_hits):
    path.write_text(json.dumps({
        "schema": "repro.obs.metrics/1",
        "meta": {"tool": "bench"},
        "metrics": [
            {"name": "runner.cache_hits", "type": "counter",
             "value": cache_hits},
            {"name": "runner.wall_seconds", "type": "gauge", "value": 1.5},
        ],
    }))
    return path


def test_metrics_identical_and_different(tmp_path, capsys):
    a = metrics_snapshot(tmp_path / "a.json", cache_hits=4)
    same = metrics_snapshot(tmp_path / "same.json", cache_hits=4)
    other = metrics_snapshot(tmp_path / "other.json", cache_hits=9)
    assert diff_cli.main(["metrics", str(a), str(same)]) == \
        diff_cli.IDENTICAL
    capsys.readouterr()
    out = tmp_path / "report.json"
    rc = diff_cli.main(["metrics", str(a), str(other), "--out", str(out)])
    assert rc == diff_cli.DIFFERENT
    assert "runner.cache_hits +5" in capsys.readouterr().out
    assert obs_cli.check_file(str(out)) == 0


# -- bench ------------------------------------------------------------------

def bench_history(path, walls):
    history = BenchHistory(path)
    for wall in walls:
        history.append(BenchRecord("timing", "grid", wall,
                                   env={"hostname": "ci"},
                                   recorded_at="t"))
    return history


def test_bench_within_noise(tmp_path, capsys):
    path = tmp_path / "history.jsonl"
    bench_history(path, [1.0, 1.01, 0.99, 1.005])
    out = tmp_path / "report.json"
    rc = diff_cli.main(["bench", "--suite", "timing", "--benchmark", "grid",
                        "--history", str(path), "--out", str(out)])
    assert rc == diff_cli.IDENTICAL
    assert "noise floor" in capsys.readouterr().out
    assert obs_cli.check_file(str(out)) == 0


def test_bench_regression_differs(tmp_path, capsys):
    path = tmp_path / "history.jsonl"
    bench_history(path, [1.0, 1.01, 0.99, 2.0])
    rc = diff_cli.main(["bench", "--suite", "timing", "--benchmark", "grid",
                        "--history", str(path)])
    assert rc == diff_cli.DIFFERENT
    assert "slowed" in capsys.readouterr().out


def test_bench_unknown_benchmark_is_trouble(tmp_path, capsys):
    path = tmp_path / "history.jsonl"
    bench_history(path, [1.0])
    rc = diff_cli.main(["bench", "--suite", "timing",
                        "--benchmark", "nope", "--history", str(path)])
    assert rc == diff_cli.TROUBLE
    assert "no records" in capsys.readouterr().out


# -- bisect -----------------------------------------------------------------

def test_bisect_cross_backend_identical(capsys):
    rc = diff_cli.main([
        "bisect", "--cipher", "RC4", "--session-bytes", "64",
        "--a-backend", "interpreter", "--b-backend", "compiled",
        "--chunk-size", "7",
    ])
    assert rc == diff_cli.IDENTICAL
    stdout = capsys.readouterr().out
    assert "identical" in stdout
    assert "bit-identical" in stdout
