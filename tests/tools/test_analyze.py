"""End-to-end tests for the ``repro.tools.analyze`` CLI."""

import json

from repro.obs import (
    ANALYSIS_SCHEMA,
    EventBus,
    MetricsRegistry,
    validate_analysis,
)
from repro.obs.dashboard import DashState, render
from repro.obs.events import load_ledger
from repro.tools.analyze import (
    analysis_document,
    main,
    record_analysis_metrics,
)
from repro.tools.obs import check_file


def test_single_cell_is_sound_and_exits_zero(capsys):
    assert main(["--cipher", "RC4", "--features", "opt",
                 "--config", "4W"]) == 0
    out = capsys.readouterr().out
    assert "RC4[opt]" in out
    assert "OK: 1 cell(s), 1 checked against simulation, all sound" in out


def test_json_out_validates_and_roundtrips_through_obs_check(
        tmp_path, capsys):
    report = tmp_path / "analysis.json"
    assert main(["--cipher", "IDEA", "--features", "rot",
                 "--config", "DF", "--format", "json",
                 "--out", str(report)]) == 0
    out = capsys.readouterr().out
    document = json.loads(out[:out.rindex("}") + 1])
    assert document["schema"] == ANALYSIS_SCHEMA
    assert validate_analysis(document) == []
    assert document == json.loads(report.read_text())
    (cell,) = document["programs"]
    assert cell["program"] == "IDEA[orig-rot]"
    assert cell["sound"] is True
    assert cell["lower_bound"] <= cell["simulated_cycles"] \
        <= cell["upper_bound"]
    assert document["summary"]["median_gap_DF"] == cell["gap"]

    assert check_file(str(report)) == 0
    assert "valid analysis document" in capsys.readouterr().out


def test_static_only_skips_simulation(capsys):
    assert main(["--cipher", "Rijndael", "--features", "norot",
                 "--config", "8W+", "--static-only",
                 "--format", "json"]) == 0
    out = capsys.readouterr().out
    document = json.loads(out[:out.rindex("}") + 1])
    (cell,) = document["programs"]
    assert "simulated_cycles" not in cell
    assert "sound" not in cell
    assert validate_analysis(document) == []


def test_metrics_out_records_estimates_and_gaps(tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    assert main(["--cipher", "RC6", "--features", "opt",
                 "--config", "4W", "--metrics-out",
                 str(metrics_path)]) == 0
    capsys.readouterr()
    assert check_file(str(metrics_path)) == 0
    payload = json.loads(metrics_path.read_text())
    names = {sample["name"] for sample in payload["metrics"]}
    assert "analysis.estimates" in names
    assert "analysis.gap" in names


def test_events_land_on_the_ledger_and_render_in_the_dashboard(
        tmp_path, capsys):
    ledger = tmp_path / "events.jsonl"
    assert main(["--cipher", "Blowfish", "--features", "opt",
                 "--config", "DF", "--events-out", str(ledger)]) == 0
    capsys.readouterr()
    state = DashState()
    estimates = [
        event for event in load_ledger(ledger)
        if event["source"] == "analysis" and event["type"] == "estimate"
    ]
    assert len(estimates) == 1
    assert estimates[0]["data"]["program"] == "Blowfish[opt]"
    for event in load_ledger(ledger):
        state.consume(event)
    frame = render(state)
    assert "analysis: 1 estimate(s)" in frame
    assert "all sound" in frame


def test_record_analysis_metrics_counts_unsound_cells():
    registry = MetricsRegistry()
    cells = [
        {"program": "X[opt]", "config": "4W", "gap": 2.0, "sound": True},
        {"program": "Y[opt]", "config": "4W", "gap": 3.0, "sound": False},
    ]
    record_analysis_metrics(registry, cells)
    snapshot = registry.snapshot()
    samples = {
        (sample["name"], sample.get("labels", {}).get("config")):
            sample["value"]
        for sample in snapshot["metrics"]
    }
    assert samples[("analysis.estimates", "4W")] == 2
    assert samples[("analysis.unsound", None)] == 1


def test_validate_analysis_rejects_sound_flag_mismatch():
    document = analysis_document([{
        "program": "X[opt]", "config": "4W", "instructions": 10,
        "lower_bound": 5, "upper_bound": 20, "gap": 4.0,
        "components": {}, "simulated_cycles": 50, "sound": True,
    }], 128)
    errors = validate_analysis(document)
    assert errors
    assert any("sound" in error for error in errors)


def test_validate_analysis_rejects_inverted_bounds():
    document = analysis_document([{
        "program": "X[opt]", "config": "4W", "instructions": 10,
        "lower_bound": 30, "upper_bound": 20, "gap": 0.67,
        "components": {},
    }], 128)
    assert validate_analysis(document)
