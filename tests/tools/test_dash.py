"""The run-ledger dashboard: deterministic replay, golden frame, CLI."""

import io

from repro.obs import EventBus, JsonlSink
from repro.obs.dashboard import DashState, build_state, render
from repro.obs.events import load_ledger
from repro.runner import ResultCache, Runner, experiment_grid
from repro.sim import FOURW
from repro.tools import dash


class FakeClock:
    def __init__(self):
        self.now = 10.0

    def __call__(self):
        return self.now


def synthetic_ledger(path):
    """A small, fully deterministic ledger exercising every panel."""
    clock = FakeClock()
    bus = EventBus(run_id="feedc0ffee01", clock=clock)
    bus.subscribe(JsonlSink(path))
    bus.publish("runner", "start",
                {"total_groups": 2, "total_experiments": 2})
    clock.now += 0.5
    bus.publish("runner", "dispatch",
                {"group": "RC4/encrypt:128B", "busy": 1, "done": 0,
                 "total": 2})
    bus.publish("cache", "miss", {"kind": "record", "key": "aaaabbbbcccc"})
    bus.publish("backend", "compile",
                {"digest": "aaaabbbbcccc", "mode": "--", "instructions": 27,
                 "source_lines": 95, "seconds": 0.004, "masks_elided": 4,
                 "bounds_checks_elided": 7, "sbox_index_folds": 3})
    clock.now += 1.0
    bus.publish("runner", "result",
                {"cipher": "RC4", "config": "4W", "cycles": 1000,
                 "instructions": 2500, "ipc": 2.5, "cached": False,
                 "slots.issued": 0.625, "slots.operand": 0.375})
    bus.publish("cache", "write", {"kind": "record", "key": "aaaabbbbcccc"})
    bus.publish("runner", "group-done",
                {"group": "RC4/encrypt:128B", "elapsed": 1.0, "busy": 0,
                 "done": 1, "total": 2})
    bus.publish("runner", "heartbeat",
                {"busy": 1, "done": 1, "total": 2, "elapsed": 1.5,
                 "eta_seconds": 1.5})
    bus.publish("runner", "stuck",
                {"group": "RC6/encrypt:128B", "quiet_seconds": 61.0})
    bus.publish("bench", "record",
                {"suite": "s", "benchmark": "b", "wall_seconds": 0.25})
    bus.publish("bench", "record",
                {"suite": "s", "benchmark": "b", "wall_seconds": 0.30})
    clock.now += 1.0
    bus.publish("runner", "result",
                {"cipher": "RC6", "config": "4W", "cycles": 3000,
                 "instructions": 6000, "ipc": 2.0, "cached": True,
                 "slots.issued": 0.5, "slots.operand": 0.5})
    bus.publish("runner", "group-done",
                {"group": "RC6/encrypt:128B", "elapsed": 1.0, "busy": 0,
                 "done": 2, "total": 2})
    bus.publish("profiler", "snapshot", {"timing": 1.25, "compile": 0.01})
    bus.publish("runner", "finish", {"done": 2, "total": 2, "elapsed": 2.5})
    bus.close()
    return path


def test_replay_equals_live_final_frame(tmp_path):
    """The acceptance bar: replayed frame == live frame, byte for byte."""
    path = synthetic_ledger(tmp_path / "events.jsonl")
    live = DashState()
    for event in load_ledger(path):      # a live dashboard consumes 1-by-1
        live.consume(event)
    replayed = build_state(load_ledger(path))
    assert render(replayed) == render(live)


def test_replay_of_cancelled_run_matches_partial_live_state(tmp_path):
    path = synthetic_ledger(tmp_path / "events.jsonl")
    events = load_ledger(path)
    cut = events[:7]                     # "cancelled" mid-run
    live = DashState()
    for event in cut:
        live.consume(event)
    assert render(build_state(cut)) == render(live)
    assert not live.finished


def test_golden_frame_content(tmp_path):
    path = synthetic_ledger(tmp_path / "events.jsonl")
    frame = render(build_state(load_ledger(path)))
    assert "run feedc0ffee01 -- finished" in frame
    assert "groups 2/2" in frame
    assert "experiments: 2 results (1 cached)" in frame
    assert "RC6        4W" in frame and "[cache]" in frame
    assert "issued" in frame and "operand" in frame
    assert "cache: 0 hit / 1 miss / 1 write" in frame
    assert "compile: 1 program(s), 4.0 ms codegen" in frame
    assert "masks elided 4" in frame
    assert "s::b" in frame               # bench sparkline row
    assert "! stuck: RC6/encrypt:128B" in frame
    assert "profile: timing 1.25s, compile 0.01s" in frame
    # eta is suppressed once the run finished
    assert "eta" not in frame


def test_render_is_deterministic(tmp_path):
    path = synthetic_ledger(tmp_path / "events.jsonl")
    events = load_ledger(path)
    assert render(build_state(events)) == render(build_state(events))


def test_cli_replay_once_prints_single_frame(tmp_path):
    path = synthetic_ledger(tmp_path / "events.jsonl")
    stream = io.StringIO()
    assert dash.replay(str(path), once=True, stream=stream) == 0
    text = stream.getvalue()
    assert text.count("run feedc0ffee01") == 1
    assert "\x1b[" not in text           # no screen clearing with --once


def test_cli_selects_newest_run_by_default(tmp_path):
    path = tmp_path / "events.jsonl"
    for run_id in ("run-old-00001", "run-new-00002"):
        clock = FakeClock()
        bus = EventBus(run_id=run_id, clock=clock)
        bus.subscribe(JsonlSink(path))
        bus.publish("runner", "start", {"total_groups": 1})
        bus.publish("runner", "finish", {"done": 1, "total": 1})
        bus.close()
    stream = io.StringIO()
    dash.replay(str(path), once=True, stream=stream)
    assert "run-new-00002" in stream.getvalue()
    stream = io.StringIO()
    dash.replay(str(path), run_id="run-old", once=True, stream=stream)
    assert "run-old-00001" in stream.getvalue()


def test_cli_follow_once_renders_current_state(tmp_path):
    path = synthetic_ledger(tmp_path / "events.jsonl")
    stream = io.StringIO()
    assert dash.follow(str(path), once=True, stream=stream) == 0
    assert "finished" in stream.getvalue()


def test_main_requires_a_mode(capsys):
    try:
        dash.main([])
    except SystemExit as error:
        assert error.code != 0
    else:  # pragma: no cover
        raise AssertionError("expected SystemExit")


def test_live_sweep_ledger_replays_identically(tmp_path):
    """End to end: a real runner sweep's ledger replays to the same frame
    an attached (in-process) dashboard saw live."""
    path = tmp_path / "events.jsonl"
    bus = EventBus()
    live = DashState()
    bus.subscribe(JsonlSink(path))
    bus.subscribe(live.consume)          # "live" in-process dashboard
    runner = Runner(cache=ResultCache(tmp_path / "cache"), jobs=1,
                    bus=bus, heartbeat_interval=0)
    runner.run(experiment_grid(["RC4"], [FOURW], session_bytes=128))
    bus.close()
    assert live.finished and live.results == 1
    replayed = build_state(load_ledger(path))
    assert render(replayed) == render(live)
