"""End-to-end tests for the ``repro.tools.lint`` CLI."""

import json

import pytest

from repro.obs import LINT_SCHEMA, validate_lint
from repro.tools.lint import main
from repro.tools.obs import check_file


def test_clean_kernel_exits_zero(capsys):
    assert main(["--kernel", "RC4", "--features", "opt"]) == 0
    out = capsys.readouterr().out
    assert "RC4[opt]/encrypt" in out
    assert "OK:" in out


def test_setup_warnings_fail_when_requested(capsys):
    # The IDEA key-setup program carries one known benign dead-write
    # warning, so --fail-on warning must flip the exit status...
    assert main(["--setup", "IDEA", "--fail-on", "warning"]) == 1
    assert "FAIL:" in capsys.readouterr().out
    # ...while the CI default threshold passes it.
    assert main(["--setup", "IDEA"]) == 0


def test_json_format_is_a_valid_lint_document(capsys):
    assert main(["--kernel", "Blowfish", "--features", "opt",
                 "--format", "json"]) == 0
    out = capsys.readouterr().out
    document = json.loads(out[:out.rindex("}") + 1])
    assert document["schema"] == LINT_SCHEMA
    assert validate_lint(document) == []
    names = [entry["program"] for entry in document["programs"]]
    assert "Blowfish[opt]/encrypt" in names
    assert "Blowfish[opt]/decrypt" in names
    for entry in document["programs"]:
        assert entry["critical_path_cycles"] > 0


def test_out_file_roundtrips_through_obs_check(tmp_path, capsys):
    report = tmp_path / "lint.json"
    metrics = tmp_path / "metrics.json"
    assert main(["--kernel", "RC6", "--features", "rot",
                 "--out", str(report), "--metrics-out", str(metrics)]) == 0
    capsys.readouterr()
    assert check_file(str(report)) == 0
    assert "valid lint document" in capsys.readouterr().out
    assert check_file(str(metrics)) == 0

    payload = json.loads(metrics.read_text())
    samples = {
        (sample["name"], tuple(sorted(sample.get("labels", {}).items())))
        for sample in payload["metrics"]
    }
    assert any(name == "lint.programs" for name, _ in samples)


def test_kernel_and_setup_flags_are_exclusive(capsys):
    with pytest.raises(SystemExit):
        main(["--kernel", "RC4", "--setup", "RC4"])


def test_bad_kernel_name_rejected():
    with pytest.raises(SystemExit):
        main(["--kernel", "NotACipher"])
