"""Tests for the span tracer and Chrome/Perfetto export."""

import json

from repro.obs import Tracer, validate_trace_events


def make_tracer():
    """A tracer on a deterministic fake clock advancing 1 ms per read."""
    ticks = iter(range(10_000))

    def clock():
        return next(ticks) * 1e-3

    return Tracer(clock=clock, pid=7)


def test_span_records_complete_event():
    tracer = make_tracer()
    with tracer.span("phase", "cat", {"n": 3}) as args:
        args["result"] = "ok"
    (event,) = tracer.events
    assert event["ph"] == "X"
    assert event["name"] == "phase"
    assert event["dur"] > 0
    assert event["args"] == {"n": 3, "result": "ok"}
    assert event["pid"] == 7


def test_span_survives_exceptions():
    tracer = make_tracer()
    try:
        with tracer.span("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    assert len(tracer.events) == 1


def test_instant_and_counter_events():
    tracer = make_tracer()
    tracer.instant("marker", args={"k": 1})
    tracer.counter("cache", {"hits": 2, "misses": 1})
    phases = [event["ph"] for event in tracer.events]
    assert phases == ["i", "C"]
    assert validate_trace_events(tracer.to_chrome()) == []


def test_to_chrome_sorts_by_timestamp():
    tracer = make_tracer()
    tracer.add_events([
        {"name": "late", "ph": "i", "s": "t", "ts": 100.0,
         "pid": 0, "tid": 0},
        {"name": "early", "ph": "i", "s": "t", "ts": 1.0,
         "pid": 0, "tid": 0},
    ])
    names = [event["name"] for event in tracer.to_chrome()["traceEvents"]]
    assert names == ["early", "late"]


def test_write_chrome_json(tmp_path):
    tracer = make_tracer()
    with tracer.span("a"):
        pass
    path = tmp_path / "trace.json"
    tracer.write(path)
    document = json.loads(path.read_text())
    assert validate_trace_events(document) == []
    assert document["displayTimeUnit"] == "ms"


def test_write_jsonl(tmp_path):
    tracer = make_tracer()
    with tracer.span("a"):
        pass
    tracer.instant("b")
    path = tmp_path / "trace.jsonl"
    tracer.write(path)
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(events) == 2
    assert validate_trace_events(events) == []


def test_validator_flags_bad_events():
    assert validate_trace_events(42) != []
    assert validate_trace_events([{"ph": "Z"}]) != []
    missing_dur = [{"name": "x", "ph": "X", "ts": 0.0, "pid": 0}]
    assert any("dur" in error
               for error in validate_trace_events(missing_dur))
