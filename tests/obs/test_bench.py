"""Tests for the benchmark history and its regression detector."""

import json

import pytest

from repro.obs import (
    BENCH_SCHEMA,
    BenchHistory,
    BenchRecord,
    compare_history,
    detect_regression,
    environment_fingerprint,
    validate_bench,
    validate_bench_history,
)
from repro.obs.bench import (
    bootstrap_median_interval,
    median,
    scaled_mad,
    sparkline,
)
from repro.tools import bench as bench_cli

ENV = {"hostname": "box", "platform": "TestOS"}


def record(wall, suite="unit", benchmark="probe", **kwargs):
    kwargs.setdefault("env", dict(ENV, git_sha="deadbeef"))
    return BenchRecord(suite=suite, benchmark=benchmark,
                       wall_seconds=wall, **kwargs)


def history_with(tmp_path, walls, **kwargs):
    history = BenchHistory(tmp_path / "history.jsonl")
    for wall in walls:
        history.append(record(wall, **kwargs))
    return history


# -- the record and the store ----------------------------------------------

def test_record_round_trip_and_schema(tmp_path):
    history = BenchHistory(tmp_path / "bench" / "history.jsonl")
    document = history.append(record(
        1.5, throughput=2048.0, peak_memory_bytes=1 << 20,
        extra={"session_bytes": 512},
    ))
    assert document["schema"] == BENCH_SCHEMA
    assert validate_bench(document) == []
    loaded = history.load()
    assert len(loaded) == 1
    assert loaded[0].wall_seconds == 1.5
    assert loaded[0].throughput_unit == "bytes/s"
    assert loaded[0].extra == {"session_bytes": 512}
    assert loaded[0].recorded_at


def test_append_is_append_only(tmp_path):
    history = history_with(tmp_path, [1.0, 2.0, 3.0])
    assert [r.wall_seconds for r in history.load()] == [1.0, 2.0, 3.0]
    assert history.benchmarks() == [("unit", "probe")]


def test_append_refuses_invalid_records(tmp_path):
    history = BenchHistory(tmp_path / "history.jsonl")
    with pytest.raises(ValueError, match="wall_seconds"):
        history.append(record(-1.0))
    with pytest.raises(ValueError):
        history.append(record(1.0, suite=""))
    assert history.load() == []


def test_load_reports_corrupt_line_numbers(tmp_path):
    history = history_with(tmp_path, [1.0])
    with open(history.path, "a") as handle:
        handle.write(json.dumps({"schema": BENCH_SCHEMA, "suite": "x"}))
        handle.write("\n")
    with pytest.raises(ValueError, match=":2:"):
        history.load()


def test_validate_bench_flags_shape_errors():
    good = record(1.0).to_dict()
    assert validate_bench(good) == []
    assert validate_bench([]) != []
    assert validate_bench({**good, "schema": "bogus"}) != []
    assert validate_bench({**good, "wall_seconds": "fast"}) != []
    assert validate_bench({**good, "env": {"k": 1}}) != []
    assert validate_bench({**good, "extra": {"k": [1]}}) != []
    assert validate_bench({**good, "peak_memory_bytes": -5}) != []
    errors = validate_bench_history([good, {**good, "suite": ""}])
    assert errors and "line 2" in errors[0]
    assert validate_bench_history([good]) == []


def test_environment_fingerprint_shape():
    env = environment_fingerprint()
    assert set(env) >= {"git_sha", "python", "platform",
                        "machine", "hostname", "cpu_count"}
    assert all(isinstance(value, str) for value in env.values())
    # This repo is a git checkout: the sha must resolve.
    assert len(env["git_sha"]) == 40


def test_git_sha_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "cafef00d")
    assert environment_fingerprint()["git_sha"] == "cafef00d"


# -- robust statistics -----------------------------------------------------

def test_median_and_mad():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
    assert scaled_mad([1.0, 1.0, 1.0]) == 0.0
    assert scaled_mad([1.0, 2.0, 3.0]) == pytest.approx(1.4826)
    with pytest.raises(ValueError):
        median([])


def test_bootstrap_interval_is_deterministic_and_sane():
    values = [1.0, 1.1, 0.9, 1.05, 0.95]
    lo, hi = bootstrap_median_interval(values)
    assert (lo, hi) == bootstrap_median_interval(values)  # seeded
    assert min(values) <= lo <= hi <= max(values)
    assert bootstrap_median_interval([2.0]) == (2.0, 2.0)


# -- regression detection (the acceptance bars) ----------------------------

BASELINE = [1.00, 1.02, 0.98, 1.01, 0.99, 1.00]


def test_injected_slowdown_is_flagged():
    """Acceptance: a >= threshold slowdown is a confirmed regression."""
    verdict = detect_regression(1.25, BASELINE, suite="s", benchmark="b",
                                threshold=0.10)
    assert verdict.regressed
    assert not verdict.improved
    assert verdict.ratio == pytest.approx(1.25)
    assert "REGRESSION" in verdict.summary()


def test_rerecording_unchanged_benchmark_is_never_flagged():
    """Acceptance: re-recording at baseline speed stays quiet."""
    for wall in BASELINE:
        verdict = detect_regression(wall, BASELINE, threshold=0.10)
        assert not verdict.regressed, verdict.summary()


def test_noisy_baseline_suppresses_borderline_excess():
    # 30% spread in the baseline: a 1.14x run is within the noise floor.
    noisy = [1.0, 1.3, 0.8, 1.2, 0.9, 1.1]
    verdict = detect_regression(1.2, noisy, threshold=0.10)
    assert not verdict.regressed
    assert "noise floor" in verdict.reason


def test_improvement_and_insufficient_history():
    verdict = detect_regression(0.5, BASELINE, threshold=0.10)
    assert verdict.improved and not verdict.regressed
    verdict = detect_regression(99.0, [1.0], min_runs=2)
    assert not verdict.regressed
    assert "insufficient history" in verdict.reason
    assert "no baseline" in detect_regression(1.0, []).summary()


def test_degenerate_baseline_is_not_judged():
    verdict = detect_regression(1.0, [0.0, 0.0, 0.0])
    assert not verdict.regressed
    assert "degenerate" in verdict.reason


def test_compare_history_judges_latest_run(tmp_path):
    history = history_with(tmp_path, BASELINE + [2.0])
    verdicts = compare_history(history)
    assert len(verdicts) == 1
    assert verdicts[0].regressed
    # The same history minus the bad run is quiet.
    quiet = compare_history(history_with(tmp_path / "q", BASELINE))
    assert not any(v.regressed for v in quiet)


def test_compare_history_matches_environment(tmp_path):
    history = BenchHistory(tmp_path / "history.jsonl")
    # Fast history from another machine, slow current run here.
    for wall in BASELINE:
        history.append(record(wall, env={"hostname": "laptop",
                                         "platform": "OtherOS"}))
    history.append(record(2.0))
    verdict = compare_history(history)[0]
    assert not verdict.regressed
    assert "insufficient history" in verdict.reason
    # Opting out of the env match sees the cross-machine baseline.
    assert compare_history(history, match_env=False)[0].regressed


def test_compare_history_benchmark_filter(tmp_path):
    history = history_with(tmp_path, [1.0, 1.0, 1.0])
    for wall in (2.0, 2.0, 2.0):
        history.append(record(wall, benchmark="slow"))
    verdicts = compare_history(history, benchmarks=["unit::probe"])
    assert [v.benchmark for v in verdicts] == ["probe"]


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0]) == "▁▁"
    line = sparkline([1.0, 2.0, 3.0])
    assert line[0] == "▁" and line[-1] == "█" and len(line) == 3


# -- the CLI ---------------------------------------------------------------

def cli(tmp_path, *argv):
    return bench_cli.main(["--history", str(tmp_path / "h.jsonl"), *argv])


def test_cli_record_compare_report(tmp_path, capsys):
    for wall in ("1.0", "1.01", "0.99"):
        assert cli(tmp_path, "record", "--suite", "s", "--benchmark", "b",
                   "--wall", wall, "--extra", "session_bytes=256") == 0
    assert cli(tmp_path, "compare") == 0
    assert cli(tmp_path, "record", "--suite", "s", "--benchmark", "b",
               "--wall", "9.9") == 0
    assert cli(tmp_path, "compare") == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "confirmed regression" in out
    assert cli(tmp_path, "report") == 0
    out = capsys.readouterr().out
    assert "s::b" in out and "4 runs" in out
    history = BenchHistory(tmp_path / "h.jsonl")
    assert history.load()[0].extra == {"session_bytes": 256}


def test_cli_ingest_streaming_artifact(tmp_path, capsys):
    legacy = tmp_path / "BENCH_streaming.json"
    legacy.write_text(json.dumps({
        "session_bytes": 16384, "cipher": "Blowfish", "config": "4W",
        "stream_seconds": 2.0, "batch_seconds": 2.2,
        "stream_peak_trace_bytes": 4096, "batch_peak_trace_bytes": 65536,
        "trace_memory_ratio": 0.0625,
    }))
    assert cli(tmp_path, "ingest", str(legacy)) == 0
    entry = BenchHistory(tmp_path / "h.jsonl").load()[0]
    assert entry.suite == "streaming"
    assert entry.wall_seconds == 2.0
    assert entry.throughput == pytest.approx(16384 / 2.0)
    assert entry.peak_memory_bytes == 4096
    assert entry.extra["batch_seconds"] == 2.2
    with pytest.raises(SystemExit):
        cli(tmp_path, "ingest", str(tmp_path / "h.jsonl"))


def test_cli_rejects_malformed_extra(tmp_path):
    with pytest.raises(SystemExit):
        cli(tmp_path, "record", "--suite", "s", "--benchmark", "b",
            "--wall", "1.0", "--extra", "oops")


def test_cli_empty_history_is_ok(tmp_path, capsys):
    assert cli(tmp_path, "compare") == 0
    assert cli(tmp_path, "report") == 0
    out = capsys.readouterr().out
    assert "no benchmarks" in out


def test_cli_ingest_timing_grid_artifact(tmp_path, capsys):
    legacy = tmp_path / "BENCH_timing.json"
    legacy.write_text(json.dumps({
        "session_bytes": 1 << 20, "cipher": "RC4", "config": "4W",
        "generic_seconds": 2.0, "specialized_seconds": 1.25,
        "speedup": 1.6,
    }))
    assert cli(tmp_path, "ingest", str(legacy)) == 0
    entries = BenchHistory(tmp_path / "h.jsonl").load()
    assert [(e.suite, e.benchmark) for e in entries] == \
        [("timing", "rc4_timing_grid")] * 2
    assert [e.env["timing_engine"] for e in entries] == \
        ["generic", "specialized"]
    assert entries[0].wall_seconds == 2.0
    assert entries[1].wall_seconds == 1.25
    assert entries[1].throughput == pytest.approx((1 << 20) / 1.25)
    # The engine walls become records, not extras (they would shadow
    # the per-engine baselines); scalars like the speedup ride along.
    assert "generic_seconds" not in entries[0].extra
    assert entries[0].extra["speedup"] == 1.6
    assert "ingested timing::rc4_timing_grid" in capsys.readouterr().out


def test_cli_ingest_backend_grid_artifact(tmp_path):
    legacy = tmp_path / "BENCH_compiled.json"
    legacy.write_text(json.dumps({
        "session_bytes": 1 << 20, "cipher": "RC4",
        "interpreter_seconds": 30.0, "compiled_seconds": 6.0,
        "interpreter_instructions_per_second": 1.0e6,
        "compiled_instructions_per_second": 5.0e6,
    }))
    assert cli(tmp_path, "ingest", str(legacy)) == 0
    entries = BenchHistory(tmp_path / "h.jsonl").load()
    assert [(e.suite, e.benchmark) for e in entries] == \
        [("backend", "rc4_functional")] * 2
    assert [e.env["backend"] for e in entries] == \
        ["interpreter", "compiled"]
    assert entries[1].throughput == 5.0e6
    assert entries[1].throughput_unit == "instructions/s"


def test_cli_ingest_unrecognized_artifact(tmp_path):
    legacy = tmp_path / "BENCH_mystery.json"
    legacy.write_text(json.dumps({"session_bytes": 64, "other": 1}))
    with pytest.raises(SystemExit, match="not a recognized"):
        cli(tmp_path, "ingest", str(legacy))


def test_cli_compare_explain_drills_into_stall_deltas(tmp_path, capsys,
                                                     monkeypatch):
    """A seeded synthetic regression whose records name runnable
    experiments: --explain reruns them (cached) and the report carries
    the full stall-category delta section, valid per obs --check."""
    from repro.tools import obs as obs_cli

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    history = BenchHistory(tmp_path / "h.jsonl")
    for wall in (1.0, 1.01, 0.99):
        history.append(record(
            wall, suite="timing", benchmark="grid",
            extra={"cipher": "RC4", "config": "4W", "session_bytes": 64},
        ))
    history.append(record(
        2.0, suite="timing", benchmark="grid",
        extra={"cipher": "RC4", "config": "8W+", "session_bytes": 64},
    ))
    out = tmp_path / "explain.json"
    assert cli(tmp_path, "compare", "--explain-out", str(out)) == 1
    stdout = capsys.readouterr().out
    assert "REGRESSION" in stdout
    assert "diff [bench]" in stdout
    report = json.loads(out.read_text())
    assert report["kind"] == "bench"
    assert report["identical"] is False
    assert report["bench"]["significant"] is True
    # The cycle-provenance drill-down: 4W vs 8W+ stall deltas.
    assert report["stats"]["a_config"] == "4W"
    assert report["stats"]["b_config"] == "8W+"
    assert any(row["delta"] for row in report["stats"]["stall_slots"])
    assert obs_cli.check_file(str(out)) == 0
    capsys.readouterr()


def test_cli_compare_explain_without_regression(tmp_path, capsys):
    history = BenchHistory(tmp_path / "h.jsonl")
    for wall in (1.0, 1.0, 1.0):
        history.append(record(wall, suite="s", benchmark="b"))
    assert cli(tmp_path, "compare", "--explain") == 0
    stdout = capsys.readouterr().out
    assert "diff [bench]" in stdout        # produced unconditionally
    assert "no confirmed regressions" in stdout
