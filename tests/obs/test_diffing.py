"""The run-diff engine: cycle-provenance deltas, ledger alignment,
metrics/bench deltas, report assembly, and the dashboard diff panel.

The acceptance bar for the stats section is *exactness*: the ranked
per-static-instruction wait-cycle deltas must sum, category by category,
to the whole-run SimStats deltas -- the per-instruction view is a
decomposition of the aggregate, not an approximation of it.
"""

import multiprocessing
import warnings

import pytest

from repro.kernels import make_kernel
from repro.obs import (
    EventBus,
    JsonlSink,
    RingBufferSink,
    load_ledger,
    set_active_bus,
    split_runs,
    validate_diff,
)
from repro.obs.bench import BenchRecord
from repro.obs.dashboard import DashState, render
from repro.obs.diffing import (
    ProvenanceMismatch,
    bench_verdict,
    build_report,
    diff_bench_records,
    diff_ledger_runs,
    diff_metrics_docs,
    diff_stats,
    explain_stats_delta,
    ledger_identical,
    ledger_verdict,
    metrics_identical,
    metrics_verdict,
    render_report,
    stats_identical,
    stats_verdict,
)
from repro.runner import ResultCache, Runner, experiment_grid
from repro.sim import EIGHTW_PLUS, FOURW, simulate
from repro.sim.stats import WAIT_CATEGORIES

SESSION = bytes(range(256)) * 4   # 1024 bytes, block-aligned everywhere


@pytest.fixture(scope="module")
def rc4_run():
    return make_kernel("RC4").encrypt(SESSION)


@pytest.fixture(scope="module")
def stats_pair(rc4_run):
    """The same RC4 trace timed on 4W and 8W+ -- the paper's own diff."""
    trace = rc4_run.trace
    return (simulate(trace, FOURW, rc4_run.warm_ranges),
            simulate(trace, EIGHTW_PLUS, rc4_run.warm_ranges))


# -- stats section ----------------------------------------------------------

def test_self_diff_is_identical(stats_pair):
    a, _ = stats_pair
    section = diff_stats(a, a)
    assert stats_identical(section)
    assert stats_verdict(section, "x", "y").startswith("identical")
    assert all(entry["ok"] for entry in section["invariant"])


def test_per_instruction_deltas_sum_to_category_deltas(stats_pair):
    """Acceptance: sum of per-instruction deltas == SimStats delta, for
    every wait category.  Holds exactly because RC4's 27 statics fit the
    hot-spot table untruncated (``hotspots_complete``)."""
    a, b = stats_pair
    section = diff_stats(a, b)
    assert section["hotspots_complete"]
    for category in WAIT_CATEGORIES:
        aggregate = (b.wait_cycles.get(category, 0)
                     - a.wait_cycles.get(category, 0))
        decomposed = sum(row["categories"].get(category, 0)
                         for row in section["hotspots"])
        assert decomposed == aggregate, category
    # And the headline totals decompose too.
    assert sum(row["delta"] for row in section["hotspots"]) == \
        sum(row["delta"] for row in section["wait_cycles"])


def test_deltas_ranked_by_cycle_impact(stats_pair):
    section = diff_stats(*stats_pair)
    for key in ("stall_slots", "wait_cycles", "hotspots"):
        magnitudes = [abs(row["delta"]) for row in section[key]]
        assert magnitudes == sorted(magnitudes, reverse=True), key


def test_verdict_names_top_category_and_hottest_spot(stats_pair):
    a, b = stats_pair
    section = diff_stats(a, b)
    verdict = stats_verdict(section, "4W", "8W+")
    top = section["stall_slots"][0]
    spot = section["hotspots"][0]
    assert top["category"] in verdict
    assert f"#{spot['static_index']}" in verdict
    assert spot["text"] in verdict


def test_invariant_recheck_flags_corrupt_side(stats_pair):
    a, b = stats_pair
    import copy
    broken = copy.deepcopy(b)
    broken.stall_slots["operand"] += 7    # slots no longer account
    section = diff_stats(a, broken)
    assert [entry["ok"] for entry in section["invariant"]] == [True, False]
    assert "invariant violation" in stats_verdict(section, "a", "b")


def test_unknown_stall_category_breaks_invariant(stats_pair):
    a, b = stats_pair
    import copy
    broken = copy.deepcopy(b)
    broken.stall_slots["cosmic_rays"] = 0
    section = diff_stats(a, broken)
    entry = section["invariant"][1]
    assert not entry["ok"]
    assert entry["unknown_categories"] == "cosmic_rays"


def test_provenance_mismatch_refuses_cross_program_diff(stats_pair):
    a, _ = stats_pair
    other_run = make_kernel("RC6").encrypt(SESSION)
    other = simulate(other_run.trace, FOURW, other_run.warm_ranges)
    with pytest.raises(ProvenanceMismatch, match="different programs"):
        diff_stats(a, other)
    # The assertion-message helper degrades instead of raising.
    message = explain_stats_delta(a, other)
    assert "different programs" in message


def test_unstamped_results_still_diff(stats_pair):
    a, b = stats_pair
    import copy
    bare_a, bare_b = copy.deepcopy(a), copy.deepcopy(b)
    for stats in (bare_a, bare_b):
        stats.extra.pop("program_digest", None)
        stats.extra.pop("timing_engine", None)
    section = diff_stats(bare_a, bare_b)
    assert section["program_digest"] == "unknown"
    assert section["a_engine"] == "unknown"


def test_explain_stats_delta_identical_pair(stats_pair):
    a, _ = stats_pair
    assert explain_stats_delta(a, a, "generic", "specialized").startswith(
        "identical")


# -- ledger alignment -------------------------------------------------------

def ledger_events(run_id, phases):
    """A synthetic single-run ledger: (source, type, seconds?) tuples."""
    bus = EventBus(run_id=run_id)
    sink = RingBufferSink()
    bus.subscribe(sink)
    for source, type_, seconds in phases:
        data = {"seconds": seconds} if seconds is not None else {}
        bus.publish(source, type_, data)
    return sink.events


PHASES = (
    ("runner", "start", None),
    ("cache", "miss", None),
    ("backend", "compile", 0.004),
    ("runner", "result", None),
    ("runner", "finish", None),
)


def test_empty_ledgers_diff_identical():
    section = diff_ledger_runs([], [])
    assert section["rows"] == []
    assert ledger_identical(section)
    assert "both ledgers are empty" in ledger_verdict(section, "a", "b")


def test_ledger_self_diff_is_all_zero():
    events = ledger_events("r1", PHASES)
    section = diff_ledger_runs(events, events)
    assert ledger_identical(section)
    for row in section["rows"]:
        assert row["delta_count"] == 0
        assert row["delta_seconds"] == 0


def test_wall_time_deltas_never_break_identity():
    slow = [(source, type_, seconds * 10 if seconds else seconds)
            for source, type_, seconds in PHASES]
    section = diff_ledger_runs(ledger_events("r1", PHASES),
                               ledger_events("r2", slow))
    assert ledger_identical(section)
    verdict = ledger_verdict(section, "fast", "slow")
    assert verdict.startswith("identical")
    assert "backend/compile" in verdict   # the slowdown is still named


def test_count_mismatch_names_the_phase():
    extra = PHASES + (("cache", "miss", None),)
    section = diff_ledger_runs(ledger_events("r1", PHASES),
                               ledger_events("r2", extra))
    assert not ledger_identical(section)
    assert "1 more cache/miss" in ledger_verdict(section, "a", "b")


def test_single_run_vs_interleaved_run_files(tmp_path):
    """A one-run file diffs clean against the matching run extracted from
    a file two invocations appended to."""
    single = tmp_path / "single.jsonl"
    bus = EventBus(run_id="solo")
    bus.subscribe(JsonlSink(single))
    for source, type_, seconds in PHASES:
        bus.publish(source, type_, {"seconds": seconds} if seconds else {})
    bus.close()

    appended = tmp_path / "appended.jsonl"
    for run_id, phases in (("earlier", PHASES[:2]), ("later", PHASES)):
        bus = EventBus(run_id=run_id)
        bus.subscribe(JsonlSink(appended))
        for source, type_, seconds in phases:
            bus.publish(source, type_,
                        {"seconds": seconds} if seconds else {})
        bus.close()

    runs = dict(split_runs(load_ledger(appended)))
    assert set(runs) == {"earlier", "later"}
    (solo_id, solo_events), = split_runs(load_ledger(single))
    assert solo_id == "solo"
    assert ledger_identical(diff_ledger_runs(solo_events, runs["later"]))
    assert not ledger_identical(diff_ledger_runs(solo_events,
                                                 runs["earlier"]))


def run_grid_ledger(jobs):
    bus = EventBus()
    sink = RingBufferSink()
    bus.subscribe(sink)
    runner = Runner(cache=ResultCache.disabled(), jobs=jobs, bus=bus,
                    heartbeat_interval=0)
    runner.run(experiment_grid(["RC4"], [FOURW], session_bytes=128))
    return sink.events


def test_serial_pool_fallback_ledger_diffs_identical(monkeypatch):
    """A jobs=2 run whose pool never starts falls back to serial; its
    ledger must align phase for phase with a real jobs=1 run."""
    serial = run_grid_ledger(jobs=1)

    def no_pool(*args, **kwargs):
        raise OSError("pools forbidden in this test")

    monkeypatch.setattr(multiprocessing, "Pool", no_pool)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        fallback = run_grid_ledger(jobs=2)
    section = diff_ledger_runs(serial, fallback)
    assert ledger_identical(section), ledger_verdict(section,
                                                     "serial", "fallback")


# -- metrics ----------------------------------------------------------------

def metrics_doc(values):
    return {"metrics": [{"name": name, "type": "counter", "value": value}
                        for name, value in values.items()]}


def test_metrics_self_diff_identical():
    doc = metrics_doc({"runner.cache_hits": 4, "runner.wall_seconds": 1.5})
    rows = diff_metrics_docs(doc, doc)
    assert metrics_identical(rows)
    assert metrics_verdict(rows, "a", "b").startswith("identical")


def test_wall_clock_metrics_are_noisy_not_failures():
    a = metrics_doc({"runner.cache_hits": 4, "runner.wall_seconds": 1.5})
    b = metrics_doc({"runner.cache_hits": 4, "runner.wall_seconds": 2.5})
    rows = diff_metrics_docs(a, b)
    assert metrics_identical(rows)   # only the noisy row moved
    assert "within noise" in metrics_verdict(rows, "a", "b")


def test_deterministic_metric_delta_breaks_identity():
    a = metrics_doc({"runner.cache_hits": 4})
    b = metrics_doc({"runner.cache_hits": 6})
    rows = diff_metrics_docs(a, b)
    assert not metrics_identical(rows)
    assert "runner.cache_hits +2" in metrics_verdict(rows, "a", "b")


def test_noise_floor_marks_small_deltas_insignificant():
    a = metrics_doc({"trace.bytes": 1000})
    b = metrics_doc({"trace.bytes": 1003})
    rows = diff_metrics_docs(a, b, noise_floors={"trace.bytes": 5.0})
    assert rows[0]["noisy"]
    assert metrics_identical(rows)


def test_histograms_expand_to_count_and_sum():
    a = {"metrics": [{"name": "h", "type": "histogram",
                      "count": 3, "sum": 0.6}]}
    b = {"metrics": [{"name": "h", "type": "histogram",
                      "count": 4, "sum": 0.9}]}
    rows = diff_metrics_docs(a, b)
    assert {row["name"] for row in rows} == {"h.count", "h.sum"}


# -- bench ------------------------------------------------------------------

def bench_record(wall, env=None, **extra):
    return BenchRecord("suite", "bench", wall, extra=extra,
                       env=env or {"hostname": "ci"}, recorded_at="t")


def test_bench_delta_within_noise_floor():
    baseline = [bench_record(1.0), bench_record(1.01), bench_record(0.99)]
    section = diff_bench_records(bench_record(1.005), baseline)
    assert not section["significant"]
    assert "within the" in bench_verdict(section)


def test_bench_regression_is_significant():
    baseline = [bench_record(1.0), bench_record(1.01), bench_record(0.99)]
    section = diff_bench_records(bench_record(2.0), baseline)
    assert section["significant"]
    assert "slowed" in bench_verdict(section)


def test_bench_env_changes_are_reported():
    baseline = [bench_record(1.0, env={"hostname": "ci", "backend": "a"})]
    section = diff_bench_records(
        bench_record(1.0, env={"hostname": "ci", "backend": "b"}), baseline)
    assert section["env.backend"] == "a -> b"


def test_bench_without_baseline():
    section = diff_bench_records(bench_record(1.0), [])
    assert not section["significant"]
    assert section["baseline_median_seconds"] is None
    assert "no baseline" in bench_verdict(section)


# -- report assembly and rendering ------------------------------------------

def test_build_report_validates_and_announces(stats_pair):
    bus = EventBus()
    sink = RingBufferSink()
    bus.subscribe(sink)
    previous = set_active_bus(bus)
    try:
        section = diff_stats(*stats_pair)
        report = build_report(
            "stats", {"label": "4W"}, {"label": "8W+"},
            identical=stats_identical(section),
            verdict=stats_verdict(section, "4W", "8W+"),
            stats=section,
        )
    finally:
        set_active_bus(previous)
    assert validate_diff(report) == []
    assert report["identical"] is False
    (event,) = sink.events
    assert (event["source"], event["type"]) == ("diff", "report")
    assert event["data"]["a"] == "4W" and event["data"]["b"] == "8W+"


def test_build_report_rejects_malformed_sections():
    with pytest.raises(ValueError, match="malformed diff report"):
        build_report("stats", {"label": "a"}, {"label": "b"},
                     identical=True, verdict="ok",
                     stats={"counters": [{"bogus": 1}]})


def test_build_report_ledger_kind_carries_durations():
    section = diff_ledger_runs(ledger_events("r1", PHASES),
                               ledger_events("r2", PHASES))
    report = build_report(
        "ledger", {"label": "r1"}, {"label": "r2"},
        identical=ledger_identical(section),
        verdict=ledger_verdict(section, "r1", "r2"),
        phases=section,
    )
    assert validate_diff(report) == []
    assert "ledger_duration" in report["a"]
    assert report["phases"] == section["rows"]


def test_render_report_shows_ranked_deltas(stats_pair):
    section = diff_stats(*stats_pair)
    report = build_report(
        "stats", {"label": "4W"}, {"label": "8W+"},
        identical=False, verdict=stats_verdict(section, "4W", "8W+"),
        stats=section,
    )
    text = render_report(report)
    assert "diff [stats]" in text
    assert "verdict:" in text
    assert "hot-spot deltas" in text
    top = section["hotspots"][0]
    assert f"#{top['static_index']}" in text


def test_render_identical_report_is_compact(stats_pair):
    a, _ = stats_pair
    section = diff_stats(a, a)
    report = build_report(
        "stats", {"label": "a"}, {"label": "b"},
        identical=True, verdict=stats_verdict(section, "a", "b"),
        stats=section,
    )
    text = render_report(report)
    assert "stall slots" not in text      # no empty delta tables
    assert len(text.splitlines()) == 2    # header + verdict only


# -- dashboard diff panel ---------------------------------------------------

def test_dashboard_renders_recent_diff_reports():
    state = DashState()
    for index, identical in enumerate((True, False, True, False)):
        state.consume({
            "schema": "repro.obs.events/1", "run_id": "r", "seq": index,
            "ts": 0.1 * index, "source": "diff", "type": "report",
            "data": {"kind": "stats", "identical": identical,
                     "verdict": f"verdict number {index}",
                     "a": f"a{index}", "b": f"b{index}"},
        })
    frame = render(state)
    assert "diff:" in frame
    assert "verdict number 0" not in frame   # only the newest 3 kept
    assert "verdict number 3" in frame
    assert "a3 vs b3" in frame
    assert "!=" in frame and "==" in frame
