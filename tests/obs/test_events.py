"""The unified run ledger: bus stamping, sinks, schema, ledger invariants."""

import json
import threading

import pytest

from repro.obs import (
    EVENTS_SCHEMA,
    EventBus,
    JsonlSink,
    MetricsRegistry,
    MetricsSink,
    RingBufferSink,
    active_bus,
    load_ledger,
    new_run_id,
    publish_event,
    set_active_bus,
    split_runs,
    validate_event,
    validate_event_ledger,
)


class FakeClock:
    def __init__(self):
        self.now = 50.0

    def __call__(self):
        return self.now


# -- bus stamping -----------------------------------------------------------

def test_publish_stamps_schema_run_id_seq_and_relative_ts():
    clock = FakeClock()
    bus = EventBus(run_id="abc123", clock=clock)
    clock.now += 0.25
    event = bus.publish("runner", "start", {"total_groups": 3})
    assert event["schema"] == EVENTS_SCHEMA
    assert event["run_id"] == "abc123"
    assert event["seq"] == 0
    assert event["ts"] == 0.25
    assert event["data"] == {"total_groups": 3}
    assert bus.publish("runner", "finish")["seq"] == 1


def test_non_scalar_data_values_are_dropped():
    bus = EventBus()
    event = bus.publish("cache", "hit", {
        "key": "abcd", "nested": {"no": 1}, "items": [1, 2], "ok": None,
    })
    assert event["data"] == {"key": "abcd", "ok": None}


def test_every_published_event_validates():
    bus = EventBus()
    for source, type_ in (("runner", "start"), ("cache", "miss"),
                          ("backend", "compile"), ("bench", "record")):
        assert validate_event(bus.publish(source, type_, {"n": 1})) == []


def test_new_run_ids_are_distinct():
    assert new_run_id() != new_run_id()
    assert len(new_run_id()) == 12


def test_concurrent_publishes_get_unique_contiguous_seq():
    bus = EventBus()
    sink = RingBufferSink()
    bus.subscribe(sink)

    def worker():
        for _ in range(50):
            bus.publish("runner", "heartbeat", {})

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seqs = sorted(event["seq"] for event in sink.events)
    assert seqs == list(range(200))
    assert validate_event_ledger(sink.events) == []


# -- sinks ------------------------------------------------------------------

def test_jsonl_sink_appends_flushed_lines(tmp_path):
    path = tmp_path / "ledger" / "events.jsonl"   # parent auto-created
    bus = EventBus()
    bus.subscribe(JsonlSink(path))
    bus.publish("runner", "start", {"total_groups": 1})
    # Flushed per event: visible before close (the --follow contract).
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["type"] == "start"
    bus.publish("runner", "finish")
    bus.close()
    assert len(load_ledger(path)) == 2


def test_ring_buffer_sink_keeps_newest():
    sink = RingBufferSink(capacity=3)
    bus = EventBus()
    bus.subscribe(sink)
    for n in range(5):
        bus.publish("runner", "heartbeat", {"n": n})
    assert [event["data"]["n"] for event in sink.events] == [2, 3, 4]


def test_metrics_sink_counts_by_source_and_type():
    registry = MetricsRegistry()
    bus = EventBus()
    bus.subscribe(MetricsSink(registry))
    bus.publish("cache", "hit")
    bus.publish("cache", "hit")
    bus.publish("cache", "miss")
    assert registry.counter(
        "events.published", {"source": "cache", "type": "hit"}).value == 2
    assert registry.counter(
        "events.published", {"source": "cache", "type": "miss"}).value == 1


def test_close_closes_sinks_and_detaches(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlSink(path)
    bus = EventBus()
    bus.subscribe(sink)
    bus.publish("runner", "start")
    bus.close()
    bus.publish("runner", "finish")   # no sinks left; must not raise
    assert len(load_ledger(path)) == 1


# -- the process-global active bus ------------------------------------------

def test_publish_event_is_noop_without_active_bus():
    assert active_bus() is None
    assert publish_event("backend", "compile", {"x": 1}) is None


def test_active_bus_receives_publish_event():
    bus = EventBus()
    sink = RingBufferSink()
    bus.subscribe(sink)
    previous = set_active_bus(bus)
    try:
        event = publish_event("backend", "compile", {"digest": "ff"})
        assert event is not None and event["source"] == "backend"
        assert len(sink.events) == 1
    finally:
        set_active_bus(previous)
    assert active_bus() is previous


# -- schema validation ------------------------------------------------------

def good_event(**overrides):
    event = {
        "schema": EVENTS_SCHEMA, "run_id": "r1", "seq": 0, "ts": 0.0,
        "source": "runner", "type": "start", "data": {},
    }
    event.update(overrides)
    return event


@pytest.mark.parametrize("mutation, fragment", [
    ({"schema": "wrong/1"}, "schema"),
    ({"run_id": ""}, "run_id"),
    ({"seq": -1}, "seq"),
    ({"seq": True}, "seq"),
    ({"ts": -0.5}, "ts"),
    ({"source": ""}, "source"),
    ({"type": 7}, "type"),
    ({"data": [1]}, "data"),
    ({"data": {"k": [1]}}, "data"),
])
def test_validate_event_rejects_bad_fields(mutation, fragment):
    errors = validate_event(good_event(**mutation))
    assert errors and any(fragment in error for error in errors)


def test_validate_ledger_requires_contiguous_seq_per_run():
    ledger = [good_event(seq=0), good_event(seq=2)]
    errors = validate_event_ledger(ledger)
    assert errors and "seq" in errors[0]


def test_validate_ledger_requires_monotonic_ts_per_run():
    ledger = [good_event(seq=0, ts=1.0), good_event(seq=1, ts=0.5)]
    errors = validate_event_ledger(ledger)
    assert errors and "ts" in errors[0]


def test_validate_ledger_interleaved_runs_are_independent():
    ledger = [
        good_event(run_id="a", seq=0),
        good_event(run_id="b", seq=0),
        good_event(run_id="a", seq=1, ts=0.1),
        good_event(run_id="b", seq=1, ts=0.1),
    ]
    assert validate_event_ledger(ledger) == []


def test_round_trip_through_jsonl_validates(tmp_path):
    path = tmp_path / "events.jsonl"
    bus = EventBus()
    bus.subscribe(JsonlSink(path))
    bus.publish("runner", "start", {"total_groups": 2})
    bus.publish("cache", "miss", {"kind": "record", "key": "ab" * 6})
    bus.publish("runner", "finish", {"done": 2})
    bus.close()
    ledger = load_ledger(path)
    assert validate_event_ledger(ledger) == []
    runs = split_runs(ledger)
    assert len(runs) == 1
    assert runs[0][0] == bus.run_id


def test_split_runs_orders_by_first_seen(tmp_path):
    path = tmp_path / "events.jsonl"
    for run_id in ("first", "second"):
        bus = EventBus(run_id=run_id)
        bus.subscribe(JsonlSink(path))
        bus.publish("runner", "start")
        bus.close()
    runs = split_runs(load_ledger(path))
    assert [run_id for run_id, _ in runs] == ["first", "second"]
