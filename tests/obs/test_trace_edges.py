"""Trace/metrics export edge cases: empty traces, DF machines, multisession.

These are the paths where the Perfetto exporter and metrics snapshot have
the least structure to lean on: a tracer that recorded nothing, dataflow
machines with unlimited issue width (so no issue-slot account at all), and
schedule spans from several interleaved sessions sharing one trace file.
"""

import json

from repro.analysis.multisession import interleave_traces
from repro.obs import (
    MetricsRegistry,
    Tracer,
    schedule_trace_events,
    validate_metrics,
    validate_trace_events,
)
from repro.runner import ExperimentOptions, ResultCache, Runner
from repro.sim import DATAFLOW, FOURW
from repro.sim.timing import record_sim_metrics, simulate
from repro.tools.obs import check_file


def functional(cipher, session_bytes=64):
    runner = Runner(cache=ResultCache.disabled())
    return runner.functional(
        ExperimentOptions(cipher=cipher, session_bytes=session_bytes)
    )


def test_empty_tracer_exports_valid_files(tmp_path):
    tracer = Tracer()
    document = tracer.to_chrome()
    assert document["traceEvents"] == []
    assert validate_trace_events(document) == []
    json_path = tmp_path / "empty.json"
    jsonl_path = tmp_path / "empty.jsonl"
    tracer.write(json_path)
    tracer.write(jsonl_path)
    assert json.loads(json_path.read_text())["traceEvents"] == []
    assert jsonl_path.read_text() == ""
    # The --check sniffer accepts both empty forms.
    assert check_file(str(json_path)) == 0
    assert check_file(str(jsonl_path)) == 0


def test_dataflow_machine_has_no_slot_account():
    run = functional("RC4", 32)
    stats = simulate(run.trace, DATAFLOW, run.warm_ranges)
    # Unlimited issue width: no issue slots, hence no stall attribution.
    assert DATAFLOW.issue_width is None
    assert stats.issue_slots == 0
    assert stats.stall_slots == {}
    assert stats.stall_fractions() == {}


def test_dataflow_metrics_snapshot_is_valid():
    run = functional("RC4", 32)
    stats = simulate(run.trace, DATAFLOW, run.warm_ranges)
    metrics = MetricsRegistry()
    record_sim_metrics(metrics, DATAFLOW, stats)
    document = metrics.snapshot(generated_by="test")
    assert validate_metrics(document) == []
    assert metrics.counter("sim.issue_slots", {"config": "DF"}).value == 0
    names = {metric["name"] for metric in document["metrics"]}
    assert "sim.stall_slots" not in names  # nothing to attribute


def test_dataflow_schedule_window_exports_valid_events(tmp_path):
    run = functional("RC4", 32)
    stats = simulate(run.trace, DATAFLOW, run.warm_ranges,
                     schedule_range=(0, 40))
    events = schedule_trace_events(stats.extra["schedule"],
                                   track_prefix="RC4:DF")
    assert validate_trace_events(events) == []
    tracer = Tracer()
    tracer.add_events(events)
    path = tmp_path / "df.json"
    tracer.write(path)
    assert check_file(str(path)) == 0


def test_interleaved_multisession_spans_share_one_trace(tmp_path):
    sessions = [functional("RC4", 32), functional("RC6", 32)]
    merged = interleave_traces([run.trace for run in sessions])
    assert merged.instructions_executed == sum(
        run.trace.instructions_executed for run in sessions
    )
    stats = simulate(merged, FOURW, schedule_range=(0, 60))
    schedule = stats.extra["schedule"]
    tracer = Tracer()
    # Two exports into one tracer, one track per session, distinct pids.
    half = len(schedule) // 2
    tracer.add_events(schedule_trace_events(
        schedule[:half], pid=1, track_prefix="session-0"))
    tracer.add_events(schedule_trace_events(
        schedule[half:], pid=2, track_prefix="session-1"))
    document = tracer.to_chrome()
    assert validate_trace_events(document) == []
    meta = [event for event in document["traceEvents"]
            if event["ph"] == "M"]
    assert {event["args"]["name"] for event in meta} >= {
        "session-0", "session-1",
    }
    assert {event["pid"] for event in document["traceEvents"]} == {1, 2}
    path = tmp_path / "multisession.json"
    tracer.write(path)
    assert check_file(str(path)) == 0
