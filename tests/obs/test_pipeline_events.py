"""Tests for the schedule span decoder and Perfetto exporter."""

from repro.obs import (
    schedule_spans,
    schedule_trace_events,
    validate_trace_events,
)

# (position, static_index, fetch, issue, complete, retire)
SCHEDULE = [
    (0, 0, 0, 2, 3, 4),
    (1, 1, 0, 3, 5, 6),
    (2, 0, 1, 6, 7, 8),
]


def test_schedule_spans_stage_arithmetic():
    spans = schedule_spans(SCHEDULE)
    assert [span.wait_cycles for span in spans] == [2, 3, 5]
    assert [span.execute_cycles for span in spans] == [1, 2, 1]
    assert [span.drain_cycles for span in spans] == [1, 1, 1]
    assert spans[0].lifetime == 5


def test_trace_events_are_valid_and_labeled():
    labels = ["addq r1, r1, r2", "ldl r3, 0(r4)"]
    events = schedule_trace_events(SCHEDULE, labels, pid=3)
    assert validate_trace_events(events) == []
    slices = [event for event in events if event["ph"] == "X"]
    assert [event["name"] for event in slices] == [
        "addq r1, r1, r2", "ldl r3, 0(r4)", "addq r1, r1, r2",
    ]
    assert all(event["pid"] == 3 for event in events)
    # Stage boundaries ride along for Perfetto's detail pane.
    assert slices[1]["args"]["issue"] == 3
    assert slices[1]["args"]["wait_cycles"] == 3


def test_trace_events_metadata_tracks():
    events = schedule_trace_events(SCHEDULE, lanes=2,
                                   track_prefix="demo")
    meta = [event for event in events if event["ph"] == "M"]
    assert meta[0]["args"]["name"] == "demo"
    assert [event["args"]["name"] for event in meta[1:]] == [
        "demo lane 0", "demo lane 1",
    ]
    # Lanes are assigned round-robin by position.
    slices = [event for event in events if event["ph"] == "X"]
    assert [event["tid"] for event in slices] == [0, 1, 0]


def test_default_and_callable_labels():
    events = schedule_trace_events(SCHEDULE[:1])
    assert events[-1]["name"] == "inst[0]"
    events = schedule_trace_events(
        SCHEDULE[:1], labels=lambda index: f"op{index}"
    )
    assert events[-1]["name"] == "op0"


def test_empty_schedule_exports_only_metadata():
    events = schedule_trace_events([])
    assert validate_trace_events(events) == []
    assert all(event["ph"] == "M" for event in events)
