"""Tests for the stdlib sampling profiler and its telemetry folding."""

import threading

import pytest

from repro.ciphers.rc4 import RC4
from repro.obs import (
    MetricsRegistry,
    SamplingProfiler,
    Tracer,
    validate_metrics,
    validate_trace_events,
)
from repro.obs.profiler import DEFAULT_HZ, classify_stack


def busy_cipher_work(seconds: float = 0.25) -> None:
    """Burn host CPU inside repro/ciphers/ code until ``seconds`` pass."""
    import time

    cipher = RC4(bytes(range(16)))
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        cipher.keystream(4096)


def profiled_run(hz: int, seconds: float = 0.25) -> SamplingProfiler:
    profiler = SamplingProfiler(hz=hz)
    with profiler:
        busy_cipher_work(seconds)
    return profiler


# -- stack classification --------------------------------------------------

def test_classify_stack_first_match_innermost_out():
    stack = [
        "/x/src/repro/sim/timing.py",       # innermost frame wins ...
        "/x/src/repro/runner/engine.py",    # ... over outer frames
    ]
    assert classify_stack(stack) == "timing"
    assert classify_stack(reversed(stack)) == "runner"


def test_classify_stack_cache_io_beats_runner():
    # cache_io is listed before the broader repro/runner/ fragment.
    assert classify_stack(["/x/src/repro/runner/cache.py"]) == "cache_io"
    assert classify_stack(["/x/src/repro/runner/engine.py"]) == "runner"


def test_classify_stack_compile_bucket():
    # Codegen time in the compiled backend is its own bucket ...
    assert classify_stack(
        ["/x/src/repro/sim/backends/compiled.py"]
    ) == "compile"
    # ... but *running* generated code (synthetic filename) and the
    # extracted interpreter are functional execution.
    assert classify_stack(
        ["<repro-compiled:ab12cd34:tf:65536>",
         "/x/src/repro/sim/backends/compiled.py"]
    ) == "functional"
    assert classify_stack(
        ["/x/src/repro/sim/backends/interpreter.py"]
    ) == "functional"


def test_classify_stack_other_and_windows_paths():
    assert classify_stack(["/usr/lib/python3.11/json/decoder.py"]) == "other"
    assert classify_stack([r"C:\x\src\repro\ciphers\rc6.py"]) == "cipher"
    assert classify_stack([]) == "other"


def test_profiler_rejects_nonpositive_hz():
    with pytest.raises(ValueError):
        SamplingProfiler(hz=0)


# -- live sampling ---------------------------------------------------------

def test_samples_attribute_cipher_workload():
    profiler = profiled_run(hz=400)
    assert profiler.samples > 0
    assert profiler.subsystem_samples.most_common(1)[0][0] == "cipher"
    # Derived views agree with the raw account.
    assert sum(profiler.subsystem_samples.values()) == profiler.samples
    assert sum(profiler.stack_samples.values()) == profiler.samples
    assert len(profiler.timeline) == profiler.samples
    assert profiler.estimated_seconds("cipher") > 0


def test_profiler_samples_only_the_starting_thread():
    profiler = SamplingProfiler(hz=400)
    stop = threading.Event()
    noise = threading.Thread(target=stop.wait, daemon=True)
    noise.start()
    with profiler:
        busy_cipher_work(0.15)
    stop.set()
    noise.join()
    # The idle noise thread would have classified as "other".
    assert profiler.subsystem_samples.get("other", 0) == 0


def test_collapsed_stack_format():
    profiler = profiled_run(hz=400, seconds=0.15)
    text = profiler.collapsed()
    assert text.endswith("\n")
    for line in text.splitlines():
        frames, count = line.rsplit(" ", 1)
        assert int(count) > 0
        assert "module:" not in frames  # labels are module:function
        assert all(":" in frame for frame in frames.split(";"))
    # Outermost frame first: the test runner, not the cipher.
    hottest = max(profiler.stack_samples.items(), key=lambda kv: kv[1])[0]
    assert "rc4:" in hottest[-1]


def test_subsystem_and_top_tables_render():
    profiler = profiled_run(hz=400, seconds=0.15)
    table = profiler.subsystem_table()
    assert "samples @ 400 Hz" in table
    assert "cipher" in table
    top = profiler.top_table(3)
    assert "top 3 functions" in top
    assert profiler.top_functions(3)[0][1] > 0


def test_empty_profile_renders_without_samples():
    profiler = SamplingProfiler(hz=DEFAULT_HZ)
    assert "no samples" in profiler.subsystem_table()
    assert profiler.collapsed() == ""
    assert profiler.overhead_fraction() == 0.0
    assert profiler.trace_events() == []
    profiler.stop()  # stop before start is a no-op


# -- folding into metrics and traces ---------------------------------------

def test_record_metrics_snapshot_is_valid():
    profiler = profiled_run(hz=400, seconds=0.15)
    registry = MetricsRegistry()
    profiler.record_metrics(registry)
    document = registry.snapshot(generated_by="test")
    assert validate_metrics(document) == []
    assert registry.counter(
        "profiler.samples", {"subsystem": "cipher"}
    ).value > 0
    assert registry.gauge("profiler.hz").value == 400


def test_trace_events_are_cumulative_and_valid():
    profiler = profiled_run(hz=400, seconds=0.15)
    events = profiler.trace_events(pid=7)
    assert validate_trace_events(events) == []
    assert len(events) == profiler.samples
    assert all(event["ph"] == "C" and event["pid"] == 7 for event in events)
    final = events[-1]["args"]
    assert sum(final.values()) == profiler.samples
    # Timestamps are monotonic on the bound clock.
    stamps = [event["ts"] for event in events]
    assert stamps == sorted(stamps)


def test_trace_events_share_a_tracer_clock():
    tracer = Tracer()
    profiler = SamplingProfiler(hz=400, now_us=tracer.now_us)
    with profiler:
        busy_cipher_work(0.1)
    tracer.add_events(profiler.trace_events(pid=tracer.pid))
    assert validate_trace_events(tracer.to_chrome()) == []


# -- the acceptance bar ----------------------------------------------------

def test_overhead_under_five_percent_at_default_hz():
    """Acceptance: sampling costs < 5% of profiled wall time."""
    profiler = profiled_run(hz=DEFAULT_HZ, seconds=0.5)
    assert profiler.samples > 0
    assert profiler.wall_seconds >= 0.5
    assert profiler.overhead_fraction() < 0.05
