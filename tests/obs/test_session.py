"""Tests for the CLI observability bundle (metrics + trace + profiler)."""

import json

from repro.obs import validate_metrics, validate_trace_events
from repro.obs.session import Observability
from tests.obs.test_profiler import busy_cipher_work


def test_disabled_session_is_inert():
    obs = Observability()
    assert not obs.enabled
    with obs:
        pass
    assert obs.report() == []
    assert obs.write() == []


def test_profiled_session_reports_and_writes_everything(tmp_path):
    metrics_out = tmp_path / "metrics.json"
    trace_out = tmp_path / "trace.json"
    profile_out = tmp_path / "profile.txt"
    obs = Observability(
        metrics_out=str(metrics_out), trace_out=str(trace_out),
        tool="unit", profile=True, profile_hz=400,
        profile_out=str(profile_out),
    )
    with obs:
        busy_cipher_work(0.15)
    lines = obs.report()
    assert any("cipher" in line for line in lines)
    assert any("top 5 functions" in line for line in lines)
    written = obs.write()
    assert written == [str(metrics_out), str(trace_out), str(profile_out)]

    document = json.loads(metrics_out.read_text())
    assert validate_metrics(document) == []
    assert document["generated_by"] == "unit"
    # Satellite: the environment fingerprint rides along in extra.
    env = document["extra"]["environment"]
    assert set(env) >= {"git_sha", "python", "platform", "hostname"}
    names = {metric["name"] for metric in document["metrics"]}
    assert "profiler.samples" in names

    trace = json.loads(trace_out.read_text())
    assert validate_trace_events(trace) == []
    assert any(event["name"] == "profiler.samples"
               for event in trace["traceEvents"])
    assert profile_out.read_text().strip()


def test_finish_is_idempotent_and_profiler_stops():
    obs = Observability(profile=True, profile_hz=400)
    with obs:
        busy_cipher_work(0.05)
    assert not obs.profiler.running
    samples = obs.profiler.samples
    obs.finish()
    obs.finish()
    assert obs.profiler.samples == samples
    assert obs.report()  # report after finish still renders
