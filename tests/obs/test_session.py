"""Tests for the CLI observability bundle (metrics + trace + profiler)."""

import json

from repro.obs import (
    active_bus,
    load_ledger,
    validate_event_ledger,
    validate_metrics,
    validate_trace_events,
)
from repro.obs.session import Observability
from tests.obs.test_profiler import busy_cipher_work


def test_disabled_session_is_inert():
    obs = Observability()
    assert not obs.enabled
    with obs:
        pass
    assert obs.report() == []
    assert obs.write() == []


def test_profiled_session_reports_and_writes_everything(tmp_path):
    metrics_out = tmp_path / "metrics.json"
    trace_out = tmp_path / "trace.json"
    profile_out = tmp_path / "profile.txt"
    obs = Observability(
        metrics_out=str(metrics_out), trace_out=str(trace_out),
        tool="unit", profile=True, profile_hz=400,
        profile_out=str(profile_out),
    )
    with obs:
        busy_cipher_work(0.15)
    lines = obs.report()
    assert any("cipher" in line for line in lines)
    assert any("top 5 functions" in line for line in lines)
    written = obs.write()
    assert written == [str(metrics_out), str(trace_out), str(profile_out)]

    document = json.loads(metrics_out.read_text())
    assert validate_metrics(document) == []
    assert document["generated_by"] == "unit"
    # Satellite: the environment fingerprint rides along in extra.
    env = document["extra"]["environment"]
    assert set(env) >= {"git_sha", "python", "platform", "hostname"}
    names = {metric["name"] for metric in document["metrics"]}
    assert "profiler.samples" in names

    trace = json.loads(trace_out.read_text())
    assert validate_trace_events(trace) == []
    assert any(event["name"] == "profiler.samples"
               for event in trace["traceEvents"])
    assert profile_out.read_text().strip()


def test_finish_is_idempotent_and_profiler_stops():
    obs = Observability(profile=True, profile_hz=400)
    with obs:
        busy_cipher_work(0.05)
    assert not obs.profiler.running
    samples = obs.profiler.samples
    obs.finish()
    obs.finish()
    assert obs.profiler.samples == samples
    assert obs.report()  # report after finish still renders


def test_events_out_writes_valid_ledger_and_installs_bus(tmp_path):
    events_out = tmp_path / "events.jsonl"
    metrics_out = tmp_path / "metrics.json"
    obs = Observability(metrics_out=str(metrics_out), tool="unit",
                        events_out=str(events_out))
    obs.backend = "compiled"
    assert active_bus() is None
    with obs:
        # The session installs its bus as the process-global active bus so
        # deep publishers (codegen, bench history) reach the same ledger.
        assert active_bus() is obs.bus
        obs.bus.publish("runner", "start", {"total_groups": 1})
        obs.bus.publish("runner", "finish", {"done": 1})
    assert active_bus() is None
    assert str(events_out) in obs.write()

    ledger = load_ledger(events_out)
    assert validate_event_ledger(ledger) == []
    assert [event["type"] for event in ledger] == ["start", "finish"]
    assert all(event["run_id"] == obs.bus.run_id for event in ledger)

    document = json.loads(metrics_out.read_text())
    # The resolved backend rides in the environment fingerprint, and the
    # MetricsSink counted each published event.
    assert document["extra"]["environment"]["backend"] == "compiled"
    published = [metric for metric in document["metrics"]
                 if metric["name"] == "events.published"]
    assert sum(metric["value"] for metric in published) == 2
