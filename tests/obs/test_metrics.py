"""Tests for the metrics registry and its snapshot schema."""

import json

import pytest

from repro.obs import MetricsRegistry, validate_metrics
from repro.obs.metrics import Histogram


def test_counter_identity_and_increment():
    registry = MetricsRegistry()
    counter = registry.counter("runs", {"cipher": "RC6"})
    counter.inc()
    counter.inc(4)
    assert registry.counter("runs", {"cipher": "RC6"}) is counter
    assert counter.value == 5
    # Different labels -> a distinct instrument.
    assert registry.counter("runs", {"cipher": "RC4"}).value == 0
    assert len(registry) == 2


def test_counter_rejects_decrease():
    counter = MetricsRegistry().counter("n")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_label_order_is_irrelevant():
    registry = MetricsRegistry()
    a = registry.gauge("g", {"x": 1, "y": 2})
    b = registry.gauge("g", {"y": 2, "x": 1})
    assert a is b


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("m")
    with pytest.raises(TypeError):
        registry.gauge("m")


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(10)
    gauge.add(-3)
    assert gauge.value == 7


def test_histogram_buckets_are_cumulative():
    histogram = Histogram("lat", buckets=(1.0, 5.0, 10.0))
    for value in (0.5, 0.7, 3.0, 20.0):
        histogram.observe(value)
    fields = histogram._value_fields()
    assert fields["count"] == 4
    assert fields["sum"] == pytest.approx(24.2)
    assert [b["count"] for b in fields["buckets"]] == [2, 3, 3, 4]
    assert fields["buckets"][-1]["le"] == "+inf"


def test_snapshot_is_sorted_and_valid():
    registry = MetricsRegistry()
    registry.counter("z.last").inc()
    registry.counter("a.first", {"k": "v"}).inc(2)
    registry.histogram("h").observe(0.01)
    document = registry.snapshot(generated_by="test")
    assert validate_metrics(document) == []
    names = [metric["name"] for metric in document["metrics"]]
    assert names == sorted(names)
    assert document["generated_by"] == "test"
    # Snapshots must round-trip through JSON unchanged.
    assert json.loads(registry.to_json()) == registry.snapshot()


def test_write_and_reload(tmp_path):
    registry = MetricsRegistry()
    registry.counter("sim.runs", {"config": "4W"}).inc(3)
    path = tmp_path / "metrics.json"
    registry.write(path, generated_by="unit")
    document = json.loads(path.read_text())
    assert validate_metrics(document) == []
    assert document["metrics"][0]["value"] == 3


def test_snapshot_extra_is_carried_and_validated(tmp_path):
    registry = MetricsRegistry()
    registry.counter("n").inc()
    extra = {"environment": {"git_sha": "abc123", "python": "3.11.7"}}
    document = registry.snapshot(generated_by="test", extra=extra)
    assert validate_metrics(document) == []
    assert document["extra"] == extra
    path = tmp_path / "metrics.json"
    registry.write(path, extra=extra)
    assert json.loads(path.read_text())["extra"] == extra
    # Omitted extra leaves the document unchanged.
    assert "extra" not in registry.snapshot()
    assert validate_metrics({**document, "extra": []}) != []


def test_validator_flags_bad_documents():
    assert validate_metrics([]) != []
    assert validate_metrics({"schema": "bogus", "metrics": []}) != []
    bad = {
        "schema": "repro.obs.metrics/1",
        "metrics": [{"name": "n", "type": "counter",
                     "labels": {}, "value": -1}],
    }
    assert any("counter" in error for error in validate_metrics(bad))
    truncated = {
        "schema": "repro.obs.metrics/1",
        "metrics": [{"name": "h", "type": "histogram", "labels": {},
                     "count": 2, "sum": 1.0,
                     "buckets": [{"le": 1.0, "count": 2}]}],
    }
    assert any("+inf" in error for error in validate_metrics(truncated))
