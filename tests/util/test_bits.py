"""Unit and property tests for fixed-width bit helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    MASK32,
    MASK64,
    bytes_to_words_be,
    bytes_to_words_le,
    rotl32,
    rotl64,
    rotr32,
    rotr64,
    sign_extend,
    words_to_bytes_be,
    words_to_bytes_le,
)

words32 = st.integers(min_value=0, max_value=MASK32)
words64 = st.integers(min_value=0, max_value=MASK64)
amounts = st.integers(min_value=-100, max_value=100)


def test_rotl32_known():
    assert rotl32(0x80000000, 1) == 1
    assert rotl32(0x00000001, 31) == 0x80000000
    assert rotl32(0x12345678, 0) == 0x12345678
    assert rotl32(0x12345678, 32) == 0x12345678
    assert rotl32(0xDEADBEEF, 16) == 0xBEEFDEAD


def test_rotr32_known():
    assert rotr32(1, 1) == 0x80000000
    assert rotr32(0xBEEFDEAD, 16) == 0xDEADBEEF


def test_rotl64_known():
    assert rotl64(0x8000000000000000, 1) == 1
    assert rotl64(0x0123456789ABCDEF, 8) == 0x23456789ABCDEF01


@given(words32, amounts)
def test_rot32_inverse(value, amount):
    assert rotr32(rotl32(value, amount), amount) == value


@given(words64, amounts)
def test_rot64_inverse(value, amount):
    assert rotr64(rotl64(value, amount), amount) == value


@given(words32, amounts, amounts)
def test_rot32_composes(value, a, b):
    assert rotl32(rotl32(value, a), b) == rotl32(value, a + b)


@given(words32)
def test_rot32_by_zero_is_identity(value):
    assert rotl32(value, 0) == value
    assert rotr32(value, 0) == value


def test_sign_extend():
    assert sign_extend(0xFF, 8) == -1
    assert sign_extend(0x7F, 8) == 127
    assert sign_extend(0x8000, 16) == -32768
    assert sign_extend(0x1FF, 8) == -1  # high bits ignored


@given(st.binary(min_size=0, max_size=64).filter(lambda b: len(b) % 4 == 0))
def test_words_bytes_roundtrip_be(data):
    assert words_to_bytes_be(bytes_to_words_be(data)) == data


@given(st.binary(min_size=0, max_size=64).filter(lambda b: len(b) % 4 == 0))
def test_words_bytes_roundtrip_le(data):
    assert words_to_bytes_le(bytes_to_words_le(data)) == data


def test_words_be_vs_le_differ():
    data = b"\x01\x02\x03\x04"
    assert bytes_to_words_be(data) == [0x01020304]
    assert bytes_to_words_le(data) == [0x04030201]


def test_bytes_to_words_rejects_ragged():
    with pytest.raises(ValueError):
        bytes_to_words_be(b"\x01\x02\x03")
    with pytest.raises(ValueError):
        bytes_to_words_le(b"\x01\x02\x03\x04\x05")
