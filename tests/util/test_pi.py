"""Tests for the from-scratch pi hex digit generator."""

import pytest

from repro.util.pi import pi_hex_words


def test_first_words_match_known_pi_digits():
    # pi = 3.243F6A88 85A308D3 13198A2E 03707344 ...
    words = pi_hex_words(4)
    assert words == [0x243F6A88, 0x85A308D3, 0x13198A2E, 0x03707344]


def test_blowfish_p_array_constants():
    # The first 18 words are Blowfish's published initial P-array.
    words = pi_hex_words(18)
    assert words[8] == 0x452821E6
    assert words[16] == 0x9216D5D9
    assert words[17] == 0x8979FB1B


def test_offset_slices_consistently():
    full = pi_hex_words(32)
    assert pi_hex_words(8, offset=24) == full[24:32]
    assert pi_hex_words(1, offset=0) == full[:1]


def test_words_are_32_bit():
    for word in pi_hex_words(64, offset=1000):
        assert 0 <= word <= 0xFFFFFFFF


def test_negative_arguments_rejected():
    with pytest.raises(ValueError):
        pi_hex_words(-1)
    with pytest.raises(ValueError):
        pi_hex_words(1, offset=-1)


def test_zero_count():
    assert pi_hex_words(0) == []
