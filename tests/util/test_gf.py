"""Tests for GF(2^8) arithmetic under the three polynomials the ciphers use."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.gf import (
    GF2_8,
    RIJNDAEL_POLY,
    TWOFISH_MDS_POLY,
    TWOFISH_RS_POLY,
    gf_mul,
)

bytes_st = st.integers(min_value=0, max_value=255)
polys = st.sampled_from([RIJNDAEL_POLY, TWOFISH_MDS_POLY, TWOFISH_RS_POLY])


def test_rijndael_known_products():
    # FIPS-197 worked example: {57} * {83} = {c1}
    assert gf_mul(0x57, 0x83) == 0xC1
    assert gf_mul(0x57, 0x13) == 0xFE
    assert gf_mul(0x02, 0x80) == 0x1B  # single reduction step


@given(bytes_st, bytes_st, polys)
def test_mul_commutative(a, b, poly):
    assert gf_mul(a, b, poly) == gf_mul(b, a, poly)


@given(bytes_st, bytes_st, bytes_st, polys)
def test_mul_associative(a, b, c, poly):
    assert gf_mul(gf_mul(a, b, poly), c, poly) == gf_mul(a, gf_mul(b, c, poly), poly)


@given(bytes_st, bytes_st, bytes_st, polys)
def test_mul_distributes_over_xor(a, b, c, poly):
    assert gf_mul(a, b ^ c, poly) == gf_mul(a, b, poly) ^ gf_mul(a, c, poly)


@given(bytes_st, polys)
def test_one_is_identity(a, poly):
    assert gf_mul(a, 1, poly) == a


@given(bytes_st, polys)
def test_zero_annihilates(a, poly):
    assert gf_mul(a, 0, poly) == 0


@given(st.integers(min_value=1, max_value=255), polys)
def test_inverse(a, poly):
    field = GF2_8(poly)
    assert field.mul(a, field.inverse(a)) == 1


def test_inverse_of_zero_is_zero():
    assert GF2_8().inverse(0) == 0


@given(bytes_st, st.integers(min_value=0, max_value=20))
def test_pow_matches_repeated_mul(a, exponent):
    field = GF2_8()
    expected = 1
    for _ in range(exponent):
        expected = field.mul(expected, a)
    assert field.pow(a, exponent) == expected


def test_mul_table():
    field = GF2_8()
    table = field.mul_table(3)
    assert table[0x57] == field.mul(3, 0x57)
    assert len(table) == 256


def test_bad_poly_rejected():
    with pytest.raises(ValueError):
        GF2_8(0x1B)  # degree < 8
