"""The uniform analysis surface: run()/measure()/Row everywhere, with
deprecated positional shims that still produce the same numbers."""

import dataclasses

import pytest

from repro.analysis import (
    bottlenecks,
    multisession,
    opmix,
    setup_cost,
    speedups,
    ssl_model,
    tables,
    throughput,
    value_prediction,
)
from repro.runner import ExperimentOptions, ResultCache, Runner

SIMULATION_MODULES = (
    throughput, speedups, bottlenecks, opmix, setup_cost, value_prediction,
    multisession,
)


@pytest.fixture
def runner(tmp_path):
    return Runner(cache=ResultCache(tmp_path / "cache"))


def test_every_module_exposes_the_uniform_surface():
    for module in SIMULATION_MODULES:
        assert callable(module.run), module.__name__
        assert callable(module.measure), module.__name__
    assert callable(ssl_model.run)
    assert callable(tables.run)


def test_run_accepts_none_single_and_list(runner):
    single = ExperimentOptions(cipher="RC6", session_bytes=128)
    as_single = throughput.run(single, runner=runner)
    as_list = throughput.run([single], runner=runner)
    assert len(as_single) == len(as_list) == 1
    assert as_single[0].as_tuple() == as_list[0].as_tuple()


def test_rows_expose_as_dict_and_as_tuple(runner):
    row = opmix.measure(cipher="Mars", session_bytes=128, runner=runner)
    mapping = row.as_dict()
    assert mapping["cipher"] == "Mars"
    assert set(mapping) == {
        field.name for field in dataclasses.fields(row)
    }
    assert row.as_tuple() == tuple(mapping.values())


def test_static_modules_have_rows_too():
    table1 = tables.run()
    assert {row.cipher for row in table1} >= {"RC6", "Rijndael"}
    assert table1[0].as_dict()["key_bits"] > 0
    ssl = ssl_model.run(lengths=(64, 32768))
    assert len(ssl) == 2
    assert ssl[0].as_dict()["session_bytes"] == 64



def test_multisession_positional_shim_warns_and_matches(runner):
    with pytest.warns(DeprecationWarning, match="deprecated"):
        old = multisession.measure("RC4", (1, 2), 128, runner=runner)
    new = multisession.measure(
        cipher="RC4", thread_counts=(1, 2), session_bytes=128, runner=runner
    )
    assert [row.as_tuple() for row in old] == [
        row.as_tuple() for row in new
    ]


def test_multisession_requires_a_cipher():
    with pytest.raises(TypeError):
        multisession.measure(thread_counts=(1,))


def test_shared_runner_dedups_across_modules(runner):
    """Figure 4 and Figure 7 at the same options share one trace."""
    options = ExperimentOptions(cipher="RC6", session_bytes=128)
    throughput.run(options, runner=runner)
    functional_runs = runner.stats.functional_runs
    opmix.run(options, runner=runner)
    assert runner.stats.functional_runs == functional_runs


def test_figure_aliases_match_run(runner):
    rows = throughput.figure4(128, ("RC6",), runner=runner)
    direct = throughput.run(
        ExperimentOptions(cipher="RC6", session_bytes=128), runner=runner
    )
    assert rows[0].as_tuple() == direct[0].as_tuple()
