"""Unit tests for the analysis harnesses (small sessions for speed).

The benchmark suite asserts the full paper shape over all eight ciphers;
these tests cover the harness *mechanics* -- metric definitions, rendering,
row structure -- on one or two cheap ciphers each.
"""

import pytest

from repro.analysis import (
    bottlenecks,
    opmix,
    setup_cost,
    speedups,
    ssl_model,
    tables,
    throughput,
    value_prediction,
)
from repro.isa import opcodes as op


def test_throughput_row_metrics():
    row = throughput.measure(cipher="Blowfish", session_bytes=256)
    assert row.cipher == "Blowfish"
    # 1-CPI is bytes per 1000 instructions; a real machine with IPC > 1
    # beats it, and dataflow bounds the 4W model.
    assert row.cpi1 > 0
    assert row.four_wide <= row.dataflow * 1.001
    assert len(row.as_tuple()) == 4


def test_throughput_render_contains_all_rows():
    rows = [throughput.measure(cipher="IDEA", session_bytes=256)]
    text = throughput.render_figure4(rows)
    assert "IDEA" in text and "1-CPI" in text


def test_bottleneck_relative_values_bounded():
    row = bottlenecks.measure(cipher="RC6", session_bytes=256)
    for name, value in row.relative.items():
        assert 0 < value <= 1.001, name
    assert set(row.relative) == set(
        ("alias", "branch", "issue", "mem", "res", "window", "all")
    )


def test_bottleneck_all_is_worst_or_equal():
    row = bottlenecks.measure(cipher="Twofish", session_bytes=256)
    # 'all' enables every constraint, so it cannot beat the single-constraint
    # machines by more than scheduling noise.
    assert row.relative["all"] <= min(
        row.relative[b] for b in ("issue", "res")
    ) * 1.05


def test_opmix_fractions_partition():
    row = opmix.measure(cipher="Mars", session_bytes=256)
    assert abs(sum(row.fraction(c) for c in row.counts) - 1.0) < 1e-9
    assert row.total > 0


def test_opmix_respects_feature_level():
    from repro.isa import Features

    rot = opmix.measure(cipher="RC6", session_bytes=256, features=Features.ROT)
    norot = opmix.measure(cipher="RC6", session_bytes=256,
                          features=Features.NOROT)
    # Synthesized rotates are still *classified* as rotates (paper's by-hand
    # accounting), so the rotate fraction grows without rotate instructions.
    assert norot.fraction(op.ROTATE) > rot.fraction(op.ROTATE)


def test_setup_cost_fraction_definition():
    row = setup_cost.measure(cipher="RC6", lengths=(16, 1024))
    expected = row.setup_cycles / (
        row.setup_cycles + 1024 * row.kernel_cycles_per_byte
    )
    assert row.fraction[1024] == pytest.approx(expected)


def test_speedups_normalization():
    row = speedups.measure(cipher="Blowfish", session_bytes=256)
    # The rotate baseline is the normalization: Blowfish barely uses
    # rotates, so orig/4W sits at ~1.0 and opt/4W above it.
    assert 0.95 <= row.orig_4w <= 1.05
    assert row.opt_4w > 1.0
    assert row.opt_dataflow >= row.opt_8w_plus >= row.opt_4w_plus * 0.999


def test_speedups_summary_geomean():
    rows = [speedups.measure(cipher=n, session_bytes=256)
            for n in ("Blowfish", "RC6")]
    agg = speedups.summary(rows)
    product = rows[0].opt_4w * rows[1].opt_4w
    assert agg.mean_opt_vs_rot == pytest.approx(product ** 0.5)


def test_ssl_breakdown_partition_and_anchor():
    row = ssl_model.breakdown(32768)
    total = row.public_fraction + row.private_fraction + row.other_fraction
    assert total == pytest.approx(1.0)
    assert 0.4 < row.private_fraction < 0.56


def test_ssl_from_measured_rate():
    params = ssl_model.from_measured_rate(50.0)
    assert params.private_per_byte == pytest.approx(20.0)


def test_value_prediction_row_bounds():
    row = value_prediction.measure(cipher="RC6", session_bytes=256)
    assert 0 <= row.mean_diffusion_hit_rate <= row.best_diffusion_hit_rate <= 1
    assert row.best_overall_hit_rate >= row.best_diffusion_hit_rate


def test_table_renderers():
    t1 = tables.render_table1()
    t2 = tables.render_table2()
    assert t1.count("\n") >= 9
    for name in ("3DES", "Blowfish", "IDEA", "Mars", "RC4", "RC6",
                 "Rijndael", "Twofish"):
        assert name in t1
    assert "SBox caches" in t2 and "inf" in t2


def test_report_runs_end_to_end(tmp_path):
    import io

    from repro.analysis.report import full_report

    buffer = io.StringIO()
    full_report(session_bytes=128, stream=buffer)
    text = buffer.getvalue()
    for marker in ("Table 1", "Figure 2", "Figure 4", "Figure 5",
                   "Figure 6", "Figure 7", "Table 2", "Figure 10"):
        assert marker in text
