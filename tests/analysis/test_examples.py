"""Smoke tests: every example script runs and validates its own claims.

The examples assert kernel-vs-reference equality internally, so "it ran"
is a meaningful check.  The slowest sweeps are exercised with reduced
arguments.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, argv: list[str] | None = None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    _run("quickstart.py")
    output = capsys.readouterr().out
    assert "Twofish-CBC" in output
    assert "orig-rot" in output and "opt" in output


def test_custom_cipher(capsys):
    _run("custom_cipher.py")
    assert "validated" in capsys.readouterr().out


def test_isa_playground(capsys):
    _run("isa_playground.py")
    output = capsys.readouterr().out
    assert "Bottleneck decomposition" in output
    assert "DF" in output


def test_pipeline_view(capsys):
    _run("pipeline_view.py", ["RC6"])
    output = capsys.readouterr().out
    assert "RC6 on 4W" in output
    assert "mean_wait_cycles" in output


def test_vpn_gateway(capsys):
    _run("vpn_gateway.py", ["--session", "256", "--ciphers", "RC4", "Twofish"])
    output = capsys.readouterr().out
    assert "T3" in output
    assert "Twofish" in output


def test_secure_web_server(capsys):
    # Uses module-level constants; just ensure it completes and reports.
    _run("secure_web_server.py")
    output = capsys.readouterr().out
    assert "sess/s" in output
    assert "3DES" in output
