"""Tests for the command-line tools."""

import pytest

from repro.tools import crypt, kernelbench, riscasim


def test_crypt_roundtrip(tmp_path, capsys):
    source = tmp_path / "message.bin"
    encrypted = tmp_path / "ct.bin"
    recovered = tmp_path / "pt.bin"
    source.write_bytes(b"sixteen byte msg" * 4)
    key = "00" * 16
    iv = "00" * 16
    assert crypt.main(["encrypt", "--cipher", "Twofish", "--key", key,
                       "--iv", iv, str(source), str(encrypted)]) == 0
    assert crypt.main(["decrypt", "--cipher", "Twofish", "--key", key,
                       "--iv", iv, str(encrypted), str(recovered)]) == 0
    assert recovered.read_bytes() == source.read_bytes()
    assert encrypted.read_bytes() != source.read_bytes()


def test_crypt_pads_partial_blocks(tmp_path):
    source = tmp_path / "m.bin"
    out = tmp_path / "c.bin"
    source.write_bytes(b"short")
    crypt.main(["encrypt", "--cipher", "Blowfish", "--key", "00" * 16,
                str(source), str(out)])
    assert len(out.read_bytes()) == 8


def test_crypt_stream_cipher(tmp_path):
    source = tmp_path / "m.bin"
    out = tmp_path / "c.bin"
    back = tmp_path / "p.bin"
    source.write_bytes(b"odd-length payload!")
    key = "11" * 16
    crypt.main(["encrypt", "--cipher", "RC4", "--key", key,
                str(source), str(out)])
    crypt.main(["decrypt", "--cipher", "RC4", "--key", key,
                str(out), str(back)])
    assert back.read_bytes() == source.read_bytes()


def test_crypt_bad_iv(tmp_path):
    source = tmp_path / "m.bin"
    source.write_bytes(bytes(16))
    with pytest.raises(SystemExit):
        crypt.main(["encrypt", "--cipher", "Twofish", "--key", "00" * 16,
                    "--iv", "0011", str(source), str(source)])


def test_riscasim_run_and_dump(tmp_path, capsys):
    program = tmp_path / "p.s"
    program.write_text("""
    ldiq r1, 7
    stq r1, 0x400(r31)
    halt
    """)
    assert riscasim.main([str(program), "--dump", "0x400:8"]) == 0
    output = capsys.readouterr().out
    assert "instructions" in output
    assert "0700000000000000" in output


def test_riscasim_listing(tmp_path, capsys):
    program = tmp_path / "p.s"
    program.write_text("start: addq r1, r2, r3\nhalt\n")
    riscasim.main([str(program), "--list"])
    assert "addq r1" in capsys.readouterr().out


def test_riscasim_view_and_bottlenecks(tmp_path, capsys):
    program = tmp_path / "p.s"
    program.write_text("""
    ldiq r1, 10
loop:
    addq r2, r2, #1
    subq r1, r1, #1
    bne r1, loop
    halt
    """)
    riscasim.main([str(program), "--view", "0:10", "--bottlenecks"])
    output = capsys.readouterr().out
    assert "rel-to-DF" in output
    assert "mean_wait_cycles" in output


def test_kernelbench_encrypt_and_decrypt(capsys):
    assert kernelbench.main(["--cipher", "RC6", "--session", "128",
                             "--configs", "4W", "DF"]) == 0
    output = capsys.readouterr().out
    assert "RC6 [opt] encrypt" in output
    assert "4W" in output and "DF" in output

    assert kernelbench.main(["--cipher", "RC6", "--session", "128",
                             "--decrypt"]) == 0
    assert "decrypt" in capsys.readouterr().out
