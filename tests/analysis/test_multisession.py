"""Tests for the inter-session parallelism harness (section 8 study)."""

import pytest

from repro.analysis import multisession
from repro.sim import FOURW, simulate


def test_interleave_preserves_instruction_count():
    from repro.isa import Features
    from repro.kernels import make_kernel

    runs = []
    for thread in range(2):
        kernel = make_kernel("RC6", Features.OPT)
        kernel.base_offset = multisession.SESSION_STRIDE * thread
        runs.append(kernel.encrypt(bytes(64)))
    merged = multisession.interleave_traces([run.trace for run in runs])
    assert len(merged) == sum(len(run.trace) for run in runs)


def test_interleave_remaps_registers_per_thread():
    from repro.isa import Features
    from repro.kernels import make_kernel

    runs = []
    for thread in range(2):
        kernel = make_kernel("RC6", Features.OPT)
        kernel.base_offset = multisession.SESSION_STRIDE * thread
        runs.append(kernel.encrypt(bytes(32)))
    merged = multisession.interleave_traces([run.trace for run in runs])
    offset = len(runs[0].trace.static.klass)
    # Thread 1's static entries live past the offset with registers >= 32.
    thread1_dests = [d for d in merged.static.dest[offset:] if d >= 0]
    assert thread1_dests and all(d >= 32 for d in thread1_dests)


def test_interleave_taken_flags_preserved():
    from repro.isa import Features
    from repro.kernels import make_kernel

    kernel = make_kernel("RC6", Features.OPT)
    run = kernel.encrypt(bytes(64))
    merged = multisession.interleave_traces([run.trace])
    # Single-thread interleave: flags must agree with adjacency inference.
    for position in range(len(run.trace) - 1):
        if run.trace.static.is_branch[run.trace.seq[position]]:
            assert merged.taken(position) == run.trace.taken(position)


def test_interleave_rejects_empty():
    with pytest.raises(ValueError):
        multisession.interleave_traces([])


def test_two_sessions_beat_one():
    rows = multisession.measure(cipher="Blowfish", thread_counts=(1, 2),
                                session_bytes=128)
    assert rows[1].speedup_vs_one > 1.2
    assert rows[1].total_bytes == 2 * rows[0].total_bytes


def test_merged_trace_simulates_on_any_config():
    rows = multisession.measure(cipher="RC6", thread_counts=(2,),
                                session_bytes=64, config=FOURW)
    assert rows[0].cycles > 0


def test_render():
    rows = {"RC6": multisession.measure(cipher="RC6", thread_counts=(1, 2),
                                        session_bytes=64)}
    text = multisession.render(rows)
    assert "RC6" in text and "thr" in text
