"""Quantitative calibration against the numbers the paper prints.

The paper states a handful of absolute values; this module pins our
measurements against them with explicit tolerance bands, so any simulator
or kernel change that drifts the reproduction away from the paper's
quantitative landscape fails loudly.  The bands encode the expected
systematic bias (our hand kernels are leaner than 2000-era compiled C, so
absolute rates run ~1-2x high) while the *relations* the paper emphasizes
are held tight.
"""

import pytest

from repro.analysis.throughput import figure4
from repro.analysis.speedups import figure10, summary


@pytest.fixture(scope="module")
def fig4_rows():
    return {row.cipher: row for row in figure4(session_bytes=512)}


@pytest.fixture(scope="module")
def fig10_rows():
    return {row.cipher: row for row in figure10(session_bytes=512)}


def test_3des_absolute_rate_order_of_magnitude(fig4_rows):
    """Paper: 7.32 bytes/1000cyc on the 4W baseline (section 4.1)."""
    rate = fig4_rows["3DES"].four_wide
    assert 5.0 <= rate <= 18.0  # same decade, lean-kernel bias upward


def test_rc4_absolute_rate_order_of_magnitude(fig4_rows):
    """Paper: 88.16 bytes/1000cyc."""
    rate = fig4_rows["RC4"].four_wide
    assert 60.0 <= rate <= 180.0


def test_rijndael_absolute_rate_order_of_magnitude(fig4_rows):
    """Paper: 48.51 bytes/1000cyc, best among the AES candidates."""
    rate = fig4_rows["Rijndael"].four_wide
    assert 35.0 <= rate <= 110.0


def test_rc4_to_3des_ratio(fig4_rows):
    """Paper: 'more than 10 times the performance of 3DES.'"""
    ratio = fig4_rows["RC4"].four_wide / fig4_rows["3DES"].four_wide
    assert 8.0 <= ratio <= 20.0


def test_t3_saturation_claim(fig4_rows):
    """Paper: 1 GHz 3DES = ~7 MB/s, 'barely enough to saturate a low-cost
    T3' (5.6 MB/s) and below 100 Mb Ethernet (12.5 MB/s).  Our rate lands
    in the same narrow band around those two thresholds."""
    mbytes_per_s = fig4_rows["3DES"].four_wide  # B/1000cyc == MB/s at 1 GHz
    assert 4.0 <= mbytes_per_s <= 15.0


def test_serial_ciphers_near_dataflow(fig4_rows):
    """Paper: Blowfish, IDEA, RC6 within 10% of dataflow; Mars 13%."""
    for name, headroom in (("Blowfish", 0.15), ("IDEA", 0.15),
                           ("RC6", 0.15), ("Mars", 0.18)):
        row = fig4_rows[name]
        assert row.four_wide >= (1 - headroom) * row.dataflow, name


def test_twofish_moderate_headroom(fig4_rows):
    """Paper: Twofish has ~32% potential speedup at dataflow."""
    row = fig4_rows["Twofish"]
    headroom = row.dataflow / row.four_wide
    assert 1.1 <= headroom <= 1.6


def test_norot_slowdowns_match_paper_band(fig10_rows):
    """Paper: Mars 40% and RC6 24% slower without rotates."""
    assert 0.65 <= fig10_rows["Mars"].orig_4w <= 0.90
    assert 0.70 <= fig10_rows["RC6"].orig_4w <= 0.90


def test_idea_best_optimized_speedup(fig10_rows):
    """Paper: IDEA 159% (2.59x); ours compresses but stays the best and >=1.8x."""
    assert fig10_rows["IDEA"].opt_4w >= 1.8
    assert fig10_rows["IDEA"].opt_4w == max(
        row.opt_4w for row in fig10_rows.values()
    )


def test_rijndael_near_doubling(fig10_rows):
    """Paper: Rijndael 'performance almost doubling'."""
    assert fig10_rows["Rijndael"].opt_4w >= 1.5


def test_mean_speedups_in_band(fig10_rows):
    """Paper headline: 59% vs rotate baseline, 74% vs no-rotate baseline."""
    agg = summary(list(fig10_rows.values()))
    assert 1.30 <= agg.mean_opt_vs_rot <= 1.75
    assert 1.40 <= agg.mean_opt_vs_norot <= 1.95
    assert agg.mean_opt_vs_norot > agg.mean_opt_vs_rot


def test_ciphers_saturating_at_8wplus(fig10_rows):
    """Paper: 'In all cases except RC4, doubling the execution bandwidth
    ... permit[s] the ciphers to run at dataflow speed.'  Our Rijndael
    kernel keeps slightly more ILP than 8-wide exploits (0.8 of DF); every
    serial cipher sits at >= 0.95 of dataflow."""
    for name, row in fig10_rows.items():
        if name == "RC4":
            assert row.opt_dataflow > 1.5 * row.opt_8w_plus
        elif name == "Rijndael":
            assert row.opt_8w_plus >= 0.75 * row.opt_dataflow
        else:
            assert row.opt_8w_plus >= 0.90 * row.opt_dataflow, name
