"""Tests for the observability CLI surface: repro.tools.obs and the
shared --metrics-out / --trace-out flags."""

import json

import pytest

from repro.obs import validate_metrics, validate_trace_events
from repro.tools import kernelbench, obs, riscasim


def test_obs_breakdown_table(capsys):
    assert obs.main(["--cipher", "RC6", "--config", "4W",
                     "--session-bytes", "128", "--no-cache"]) == 0
    output = capsys.readouterr().out
    assert "RC6 [opt] 128B" in output
    assert "issued" in output
    assert "%" in output
    assert "IPC" in output


def test_obs_hotspots(capsys):
    assert obs.main(["--cipher", "Blowfish", "--config", "4W",
                     "--session-bytes", "128", "--no-cache",
                     "--hotspots", "3"]) == 0
    output = capsys.readouterr().out
    assert "hot spots" in output
    assert "x" in output  # execution counts


def test_obs_writes_valid_telemetry(tmp_path, capsys):
    """Acceptance: a Blowfish run exports valid Perfetto trace-event JSON
    and a valid metrics document."""
    metrics_path = tmp_path / "metrics.json"
    trace_path = tmp_path / "trace.json"
    assert obs.main([
        "--cipher", "Blowfish", "--config", "4W", "8W+",
        "--session-bytes", "128", "--no-cache",
        "--metrics-out", str(metrics_path),
        "--trace-out", str(trace_path),
    ]) == 0
    output = capsys.readouterr().out
    assert f"wrote {metrics_path}" in output

    metrics = json.loads(metrics_path.read_text())
    assert validate_metrics(metrics) == []
    names = {metric["name"] for metric in metrics["metrics"]}
    assert "sim.cycles" in names
    assert "sim.stall_slots" in names

    trace = json.loads(trace_path.read_text())
    assert validate_trace_events(trace) == []
    span_names = {event["name"] for event in trace["traceEvents"]}
    assert "timing:Blowfish:4W" in span_names
    assert "timing:Blowfish:8W+" in span_names


def test_obs_check_accepts_and_rejects(tmp_path, capsys):
    good = tmp_path / "metrics.json"
    good.write_text(json.dumps({
        "schema": "repro.obs.metrics/1",
        "metrics": [{"name": "n", "type": "counter",
                     "labels": {}, "value": 1}],
    }))
    assert obs.main(["--check", str(good)]) == 0
    assert "valid metrics" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({
        "schema": "repro.obs.metrics/1",
        "metrics": [{"name": "n", "type": "counter",
                     "labels": {}, "value": -5}],
    }))
    assert obs.main(["--check", str(bad)]) == 1
    assert "error" in capsys.readouterr().out


def test_obs_check_trace_jsonl(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(json.dumps(
        {"name": "a", "ph": "i", "s": "t", "ts": 1.0, "pid": 0, "tid": 0}
    ) + "\n")
    assert obs.main(["--check", str(path)]) == 0


def test_obs_pipeline_window_exports_schedule(tmp_path, capsys):
    trace_path = tmp_path / "pipeline.json"
    assert obs.main([
        "--cipher", "Blowfish", "--config", "4W",
        "--session-bytes", "128", "--no-cache",
        "--pipeline", "40:60", "--trace-out", str(trace_path),
    ]) == 0
    output = capsys.readouterr().out
    assert "cycle" in output  # the ASCII header
    assert "mean_wait_cycles" in output
    document = json.loads(trace_path.read_text())
    assert validate_trace_events(document) == []
    slices = [event for event in document["traceEvents"]
              if event.get("cat") == "pipeline"]
    assert len(slices) == 20
    assert all("issue" in event["args"] for event in slices)


def test_obs_pipeline_requires_single_target(tmp_path):
    with pytest.raises(SystemExit):
        obs.main(["--cipher", "RC4", "RC6", "--config", "4W",
                  "--no-cache", "--pipeline", "0:10"])


def test_kernelbench_telemetry_flags(tmp_path, capsys):
    metrics_path = tmp_path / "m.json"
    trace_path = tmp_path / "t.jsonl"
    assert kernelbench.main([
        "--cipher", "RC6", "--session", "128", "--configs", "4W",
        "--no-cache", "--metrics-out", str(metrics_path),
        "--trace-out", str(trace_path),
    ]) == 0
    assert validate_metrics(json.loads(metrics_path.read_text())) == []
    events = [json.loads(line)
              for line in trace_path.read_text().splitlines()]
    assert validate_trace_events(events) == []
    assert any(event["name"].startswith("functional:")
               for event in events)


def test_riscasim_prints_slot_account(tmp_path, capsys):
    program = tmp_path / "p.s"
    program.write_text("""
    ldiq r1, 10
loop:
    addq r2, r2, #1
    subq r1, r1, #1
    bne r1, loop
    halt
    """)
    assert riscasim.main([str(program), "--no-cache"]) == 0
    output = capsys.readouterr().out
    assert "issue slots" in output
    assert "issued" in output
