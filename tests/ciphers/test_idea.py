"""Unit tests for IDEA internals: the modular group operations and key inversion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ciphers.idea import (
    IDEA,
    _add_inverse,
    _mul_inverse,
    add_mod,
    expand_key,
    invert_key,
    mul_mod,
)

words16 = st.integers(min_value=0, max_value=0xFFFF)


@given(words16, words16)
def test_mul_mod_closed(a, b):
    assert 0 <= mul_mod(a, b) <= 0xFFFF


@given(words16)
def test_mul_identity(a):
    assert mul_mod(a, 1) == a


@given(words16)
def test_mul_inverse_property(a):
    assert mul_mod(a, _mul_inverse(a)) == 1


def test_mul_zero_is_two_to_16():
    # 0 represents 2^16; 2^16 * 2^16 mod (2^16+1) = 1.
    assert mul_mod(0, 0) == 1
    # 2^16 * 1 = 2^16 -> represented as 0.
    assert mul_mod(0, 1) == 0


@given(words16, words16)
def test_mul_commutative(a, b):
    assert mul_mod(a, b) == mul_mod(b, a)


@given(words16)
def test_add_inverse_property(a):
    assert add_mod(a, _add_inverse(a)) == 0


def test_expand_key_structure():
    subkeys = expand_key(bytes(range(16)))
    assert len(subkeys) == 52
    assert all(0 <= k <= 0xFFFF for k in subkeys)
    # First 8 subkeys are the raw key words.
    assert subkeys[0] == 0x0001
    assert subkeys[7] == 0x0E0F


def test_invert_key_is_involution_on_crypt():
    key = bytes(range(16))
    enc = expand_key(key)
    dec = invert_key(enc)
    # Inverting the decryption schedule returns the encryption schedule.
    assert invert_key(dec) == enc


def test_key_length_enforced():
    with pytest.raises(ValueError):
        IDEA(bytes(8))


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=8, max_size=8))
def test_idea_roundtrip(key, block):
    cipher = IDEA(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
