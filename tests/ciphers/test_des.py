"""Unit tests for DES internals: permutations, key schedule, SP tables."""

import random

import pytest

from repro.ciphers.des import (
    EXPANSION,
    FINAL_PERMUTATION,
    INITIAL_PERMUTATION,
    P_PERMUTATION,
    SBOXES,
    DES,
    feistel,
    key_schedule,
    permute,
    sp_tables,
)


def test_ip_fp_are_inverses():
    random.seed(7)
    for _ in range(50):
        value = random.getrandbits(64)
        assert permute(permute(value, 64, INITIAL_PERMUTATION), 64,
                       FINAL_PERMUTATION) == value


def test_permute_identity():
    identity = tuple(range(1, 33))
    assert permute(0xDEADBEEF, 32, identity) == 0xDEADBEEF


def test_permute_bit_positions():
    # Table (32,) selects only the LSB into a 1-bit output.
    assert permute(0x1, 32, (32,)) == 1
    assert permute(0x2, 32, (32,)) == 0
    # Table (1,) selects the MSB.
    assert permute(0x80000000, 32, (1,)) == 1


def test_sbox_tables_shape():
    assert len(SBOXES) == 8
    for sbox in SBOXES:
        assert len(sbox) == 64
        assert all(0 <= v <= 15 for v in sbox)
        # Each row of a DES S-box is a permutation of 0..15.
        for row in range(4):
            assert sorted(sbox[16 * row : 16 * row + 16]) == list(range(16))


def test_expansion_table_duplicates_edges():
    # E expands 32 -> 48 bits by duplicating the edge bits of each 4-bit group.
    assert len(EXPANSION) == 48
    assert sorted(set(EXPANSION)) == list(range(1, 33))


def test_p_is_permutation():
    assert sorted(P_PERMUTATION) == list(range(1, 33))


def test_key_schedule_produces_16_48bit_keys():
    subkeys = key_schedule(bytes(range(8)))
    assert len(subkeys) == 16
    assert all(0 <= k < (1 << 48) for k in subkeys)


def test_key_schedule_ignores_parity_bits():
    # Flipping only parity bits (LSB of each key byte) leaves subkeys alone.
    key = bytes(range(8))
    flipped = bytes(b ^ 1 for b in key)
    assert key_schedule(key) == key_schedule(flipped)


def test_sp_tables_match_feistel():
    random.seed(11)
    from repro.ciphers.des import EXPANSION as E

    tables = sp_tables()
    for _ in range(100):
        right = random.getrandbits(32)
        subkey = random.getrandbits(48)
        expanded = permute(right, 32, E) ^ subkey
        via_sp = 0
        for i in range(8):
            via_sp ^= tables[i][(expanded >> (42 - 6 * i)) & 0x3F]
        assert via_sp == feistel(right, subkey)


def test_sp_tables_shape():
    tables = sp_tables()
    assert len(tables) == 8
    assert all(len(t) == 64 for t in tables)


def test_complementation_property():
    """DES(~k, ~p) == ~DES(k, p) -- the classic complementation property.

    This exercises every table in concert; getting it right by accident with
    a wrong S-box is essentially impossible.
    """
    random.seed(13)
    for _ in range(5):
        key = random.randbytes(8)
        plaintext = random.randbytes(8)
        ct = DES(key).encrypt_block(plaintext)
        inv_key = bytes(b ^ 0xFF for b in key)
        inv_pt = bytes(b ^ 0xFF for b in plaintext)
        inv_ct = DES(inv_key).encrypt_block(inv_pt)
        assert inv_ct == bytes(b ^ 0xFF for b in ct)


def test_bad_key_length():
    with pytest.raises(ValueError):
        DES(bytes(7))


def test_bad_block_length():
    with pytest.raises(ValueError):
        DES(bytes(8)).encrypt_block(bytes(7))
