"""Cipher validation against published specification test vectors.

IDEA, RC6 and Twofish are not in OpenSSL; their vectors come from the
algorithm specifications.  MARS uses a documented S-box substitution
(DESIGN.md #4) so official vectors do not apply; pinned self-consistency
vectors guard against regressions instead.
"""

from repro.ciphers import DES, IDEA, MARS, RC4, RC6, Blowfish, Twofish
from repro.util.hexutil import h2b


def test_des_fips_worked_example():
    # The classic worked example used in countless DES expositions.
    cipher = DES(h2b("133457799BBCDFF1"))
    assert cipher.encrypt_block(h2b("0123456789ABCDEF")).hex() == "85e813540f0ab405"


def test_des_weak_key_zero():
    cipher = DES(bytes(8))
    assert cipher.encrypt_block(bytes(8)).hex() == "8ca64de9c1b123a7"


def test_idea_classic_vector():
    # Lai & Massey's standard vector: key words 1..8, plaintext words 0..3.
    cipher = IDEA(h2b("00010002000300040005000600070008"))
    assert cipher.encrypt_block(h2b("0000000100020003")).hex() == "11fbed2b01986de5"


def test_idea_decrypt_classic_vector():
    cipher = IDEA(h2b("00010002000300040005000600070008"))
    assert cipher.decrypt_block(h2b("11fbed2b01986de5")).hex() == "0000000100020003"


def test_blowfish_schneier_vectors():
    # Two rows of Schneier's published ECB test vector table.
    assert Blowfish(h2b("0000000000000000")).encrypt_block(
        bytes(8)
    ).hex() == "4ef997456198dd78"
    assert Blowfish(h2b("7CA110454A1A6E57")).encrypt_block(
        h2b("01A1D6D039776742")
    ).hex() == "59c68245eb05282b"


def test_blowfish_ffffffff_vector():
    assert Blowfish(h2b("FFFFFFFFFFFFFFFF")).encrypt_block(
        h2b("FFFFFFFFFFFFFFFF")
    ).hex() == "51866fd5b85ecb8a"


def test_rc4_classic_key_plaintext():
    # The widely cited RC4("Key", "Plaintext") vector.
    assert RC4(b"Key").process(b"Plaintext").hex() == "bbf316e8d940af0ad3"


def test_rc4_wiki_second_vector():
    assert RC4(b"Wiki").process(b"pedia").hex() == "1021bf0420"


def test_rc6_zero_vector():
    # RC6 AES-submission test vector #1 (all-zero key and plaintext).
    cipher = RC6(bytes(16))
    assert cipher.encrypt_block(bytes(16)).hex() == (
        "8fc3a53656b1f778c129df4e9848a41e"
    )


def test_rc6_submission_vector_two():
    cipher = RC6(h2b("0123456789abcdef0112233445566778"))
    ct = cipher.encrypt_block(h2b("02132435465768798a9bacbdcedfe0f1"))
    assert ct.hex() == "524e192f4715c6231f51f6367ea43f18"


def test_twofish_zero_vector():
    # Twofish-128 known-answer test: I=1 of the ECB known answer tests.
    cipher = Twofish(bytes(16))
    ct = cipher.encrypt_block(bytes(16))
    assert ct.hex() == "9f589f5cf6122c32b6bfec2f2ae8c35a"


def test_twofish_chained_kat_step():
    # Step 2 of the spec's iterated KAT: encrypting the step-1 ciphertext
    # under the zero key.
    cipher = Twofish(bytes(16))
    step1 = cipher.encrypt_block(bytes(16))
    step2 = Twofish(bytes(16)).encrypt_block(step1)
    # Chain property: deterministic and distinct.
    assert step2 != step1
    assert Twofish(bytes(16)).decrypt_block(step2) == step1


def test_mars_self_consistency_vector():
    """MARS regression pin (pi-substituted S-box; not the official vector)."""
    cipher = MARS(bytes(16))
    assert cipher.encrypt_block(bytes(16)).hex() == (
        "5227dcc80a5eb0fab93d87fafbba0d1f"
    )


def test_mars_self_consistency_nonzero():
    cipher = MARS(h2b("000102030405060708090a0b0c0d0e0f"))
    ct = cipher.encrypt_block(h2b("00112233445566778899aabbccddeeff"))
    assert cipher.decrypt_block(ct).hex() == "00112233445566778899aabbccddeeff"
