"""Cipher validation against OpenSSL-generated vectors.

These ciphertexts were produced with ``openssl enc`` (OpenSSL 3.0.19, legacy
provider) and are pinned here so the suite runs without openssl installed.
The generation commands are recorded in each table's docstring.
"""

import pytest

from repro.ciphers import CBC, RC4, Blowfish, DES, Rijndael, TripleDES
from repro.util.hexutil import h2b

# openssl enc -des-ecb -provider legacy -provider default -K <key> -nopad
DES_ECB_VECTORS = [
    ("d1a44e04bbe3d00f", "ac443af6d789beb79bdd3de4a0fc166e",
     "26c1c949bbd7515c37355fcd0cb181ce"),
    ("cce2fe125529627e", "1a80e63b3ff38ff0dcca032d8afce16d",
     "3cc1b9d0ffbeb9d81ab9a97aadd187fb"),
    ("e9c2abe4c924e0e1", "a9844eac94acd2e55aa7bf50fb07c294",
     "37a7c531adc9792fb5217aa56a2e9ca4"),
]

# openssl enc -des-ede3 -K <key> -nopad
DES3_ECB_VECTORS = [
    ("e59de67b206595cd52fb7cc9e3cae70ee022cc32205c2111",
     "cf3da8ac66eebd6a4aaa49cc35adbaaf", "900f90e6709447a1e1aba89eb7221adc"),
    ("cf507c201562259bbdbefcd147b577f8195c16f762d65d68",
     "9591330d8a5036a9628f0a6efe05e4f5", "158f8db74f68d8d0448500214cc985a3"),
    ("7b929486af8a98608beecba11cb1693e1a11531a7f146a7a",
     "08255aa9f17ee4b518f762e29d726c7c", "f6155aa4182977b83ba30927cc7c0eab"),
]

# openssl enc -des-ede3-cbc -K <key> -iv <iv> -nopad
DES3_CBC_VECTOR = (
    "1a49229b64fb856de8c7ec4315f0bf9cc9054b2651828086",
    "55276547229a25e8",
    "78d3f0d5b02532ea038073ee2493773003416f2fec04814f"
    "60f2bce76fc5af8e98d9d99b5c7c0ac3",
    "0e10b92479ec197e095193fd31823f474977742c8b2aa0ae"
    "c3abb1ab91707e8f0b23f03b7b15ba79",
)

# openssl enc -bf-ecb -K <key> -nopad
BLOWFISH_ECB_VECTORS = [
    ("3507ab35cf75901239f81d603ce84420", "0cab2f26e9d68eb38cb5e864be436b54",
     "7f35624130197f6cc11c4d3670548afd"),
    ("383c231ef057c2a7fae4458d19b362b9", "e84f30e8ce08de56d1d1680a8d488cc6",
     "2e22a1b3677db5d99679dcb2d71ff472"),
    ("f1b14c2d1ce3324fe311f2370462c287", "617d6030f41ce9c756025c4cfb441bb3",
     "82fb127a2eec7e71583766971b10042a"),
]

# openssl enc -bf-cbc -K <key> -iv <iv> -nopad
BLOWFISH_CBC_VECTOR = (
    "3a29ba75a31e8e9c3a7bea8accb6bf2f",
    "e19bad9096cabe8d",
    "a28782a3e481c9a75d783c1006e84c2ec901d398b40b3835e8cf4347dba9be1b",
    "2befbde0cf04a556ac7d0aabb01837c2b09e9f87e6d425efde019568509fa50d",
)

# openssl enc -rc4 -K <key> -nopad (16-byte keys: openssl's RC4 is RC4-128)
RC4_VECTORS = [
    ("33f935d6a26fcc0a97f349f9018d2f70",
     "98837f2a742611bf78ea4ed3cba8a1b682ff59efa70607cf"
     "bd72c8b22a83a28ceb9f5a2915993580ce22c8c73fa7bf23",
     "6c027b66402cf178e06c953d0cf192f57fd00bf4fd42bb2b"
     "48963290684618edffe9f35aa90b1d59e13d498174f8612d"),
    ("c67eff66a5d17d259db397d662527d57",
     "076c7a0c3106834da5d81fc015057f079282d513529406fe"
     "3815e8632f515e6b8223e2f649bbd99542c37e9b1dd36029",
     "1616363d2527ca4b8594641555bf91133696d0fb95a3000f"
     "8b80823962318db7a0dfe9ed290d2ab700acafd8654755e9"),
]

# openssl enc -aes-128-ecb -K <key> -nopad
AES_ECB_VECTORS = [
    ("0095e6e4aa7201dfa4337d035f931213",
     "8864984d198ea9d68a3b1613078e3349658dd80592483d5600da7088534e5ecd",
     "409567139337d77a2e25d380b2dae7fda33b3f7223ea6b83b6a2fe28eacb76cb"),
    ("7195fcbbac86fd9b6a75f4a19b3ee63e",
     "ac72270a61a75ddcb639337ad3c6a8a0c925659a83520c0ae9480846d78a8da9",
     "f3243ff20722726c33ce426c39c698d00ab0f1f53690261b9b4c0e576358ec08"),
    ("808bda49f97b5ffa315eef2145ec4858",
     "f7e47c4d49a558c471f5c9c0714a12b7cbb63a22d174b739cf0dd0bcba5fa02d",
     "496d45503c3d2b857e837c47e1703643c2647d4253d43b4179fa6eddbbce734b"),
]

# openssl enc -aes-128-cbc -K <key> -iv <iv> -nopad
AES_CBC_VECTOR = (
    "5318e400d6f41ccffdb4d605b0724984",
    "df0adad1b25ea8548ff32ecab6d6a116",
    "74446b38724a74cc9cff8b6cf005d4fdcb242bd1642b4aa8e43634d1cba03075"
    "00bf715fed7333132c61f3d194452f8138fc3ae3140a9fbfd553eabe80f3ad26",
    "dec6ee4118fb4bc7785fa8cba569ec56a5d34059cc032e7d47283f733aec597c"
    "5f37d7f0158d31cb07e9d47db4ea4561713df52f7a4f0fbafe24dbbbf7eb8f83",
)


def _ecb_encrypt_blocks(cipher, plaintext: bytes) -> bytes:
    size = cipher.block_size
    return b"".join(
        cipher.encrypt_block(plaintext[i : i + size])
        for i in range(0, len(plaintext), size)
    )


@pytest.mark.parametrize("key,pt,ct", DES_ECB_VECTORS)
def test_des_ecb_matches_openssl(key, pt, ct):
    cipher = DES(h2b(key))
    assert _ecb_encrypt_blocks(cipher, h2b(pt)).hex() == ct


@pytest.mark.parametrize("key,pt,ct", DES3_ECB_VECTORS)
def test_3des_ecb_matches_openssl(key, pt, ct):
    cipher = TripleDES(h2b(key))
    assert _ecb_encrypt_blocks(cipher, h2b(pt)).hex() == ct


def test_3des_cbc_matches_openssl():
    key, iv, pt, ct = DES3_CBC_VECTOR
    cbc = CBC(TripleDES(h2b(key)), h2b(iv))
    assert cbc.encrypt(h2b(pt)).hex() == ct
    cbc2 = CBC(TripleDES(h2b(key)), h2b(iv))
    assert cbc2.decrypt(h2b(ct)).hex() == pt


@pytest.mark.parametrize("key,pt,ct", BLOWFISH_ECB_VECTORS)
def test_blowfish_ecb_matches_openssl(key, pt, ct):
    cipher = Blowfish(h2b(key))
    assert _ecb_encrypt_blocks(cipher, h2b(pt)).hex() == ct


def test_blowfish_cbc_matches_openssl():
    key, iv, pt, ct = BLOWFISH_CBC_VECTOR
    cbc = CBC(Blowfish(h2b(key)), h2b(iv))
    assert cbc.encrypt(h2b(pt)).hex() == ct


@pytest.mark.parametrize("key,pt,ct", RC4_VECTORS)
def test_rc4_matches_openssl(key, pt, ct):
    assert RC4(h2b(key)).process(h2b(pt)).hex() == ct


@pytest.mark.parametrize("key,pt,ct", AES_ECB_VECTORS)
def test_aes_ecb_matches_openssl(key, pt, ct):
    cipher = Rijndael(h2b(key))
    assert _ecb_encrypt_blocks(cipher, h2b(pt)).hex() == ct


def test_aes_cbc_matches_openssl():
    key, iv, pt, ct = AES_CBC_VECTOR
    cbc = CBC(Rijndael(h2b(key)), h2b(iv))
    assert cbc.encrypt(h2b(pt)).hex() == ct
    cbc2 = CBC(Rijndael(h2b(key)), h2b(iv))
    assert cbc2.decrypt(h2b(ct)).hex() == pt
