"""Unit tests for MARS internals: E-function, mixing inverses, key fixing."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.mars import (
    MARS,
    _backward_mix,
    _forward_mix,
    _inverse_backward_mix,
    _inverse_forward_mix,
    e_function,
    expand_key,
    sbox,
)

words32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
state_st = st.lists(words32, min_size=4, max_size=4)


def test_sbox_shape_and_source():
    table = sbox()
    assert len(table) == 512
    # Drawn from pi digits past the Blowfish range: disjoint from Blowfish's
    # first table word.
    assert table[0] != 0x243F6A88


def test_sbox_differs_between_halves():
    table = sbox()
    assert table[:256] != table[256:]


@given(state_st)
@settings(max_examples=50)
def test_forward_mix_invertible(state):
    assert _inverse_forward_mix(_forward_mix(list(state))) == list(state)


@given(state_st)
@settings(max_examples=50)
def test_backward_mix_invertible(state):
    assert _inverse_backward_mix(_backward_mix(list(state))) == list(state)


@given(words32, words32)
def test_e_function_outputs_are_32_bit(word, key_add):
    l, m, r = e_function(word, key_add, 0x2545F491 | 1)
    for value in (l, m, r):
        assert 0 <= value <= 0xFFFFFFFF


def test_e_function_deterministic():
    assert e_function(1, 2, 3) == e_function(1, 2, 3)


def test_multiplication_keys_are_odd():
    """The key fixing step must leave every multiplication subkey odd."""
    random.seed(5)
    for _ in range(10):
        keys = expand_key(random.randbytes(16))
        assert len(keys) == 40
        for i in range(5, 36, 2):
            assert keys[i] & 1 == 1


def test_multiplication_keys_have_no_long_runs_at_fix_positions():
    """Spot-check the run-breaking: fixed keys should rarely be all-ones."""
    keys = expand_key(bytes(16))
    for i in range(5, 36, 2):
        assert keys[i] not in (0xFFFFFFFF,)


def test_expand_key_supports_long_keys():
    for size in (16, 24, 32):
        assert len(expand_key(bytes(size))) == 40


@given(
    key=st.binary(min_size=16, max_size=16),
    block=st.binary(min_size=16, max_size=16),
)
@settings(max_examples=10, deadline=None)
def test_mars_roundtrip(key, block):
    cipher = MARS(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
