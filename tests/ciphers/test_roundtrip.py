"""Property-based round-trip and diffusion tests across the whole suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers import CBC, SUITE

BLOCK_CIPHERS = [info for info in SUITE if not info.is_stream]
STREAM_CIPHERS = [info for info in SUITE if info.is_stream]


@pytest.mark.parametrize("info", BLOCK_CIPHERS, ids=lambda i: i.name)
@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_block_roundtrip(info, data):
    key = data.draw(st.binary(min_size=info.key_bytes, max_size=info.key_bytes))
    plaintext = data.draw(
        st.binary(min_size=info.block_bytes, max_size=info.block_bytes)
    )
    cipher = info.make(key)
    assert cipher.decrypt_block(cipher.encrypt_block(plaintext)) == plaintext


@pytest.mark.parametrize("info", BLOCK_CIPHERS, ids=lambda i: i.name)
@given(data=st.data())
@settings(max_examples=5, deadline=None)
def test_cbc_roundtrip(info, data):
    key = data.draw(st.binary(min_size=info.key_bytes, max_size=info.key_bytes))
    iv = data.draw(st.binary(min_size=info.block_bytes, max_size=info.block_bytes))
    blocks = data.draw(st.integers(min_value=1, max_value=4))
    plaintext = data.draw(
        st.binary(
            min_size=blocks * info.block_bytes, max_size=blocks * info.block_bytes
        )
    )
    ciphertext = CBC(info.make(key), iv).encrypt(plaintext)
    assert CBC(info.make(key), iv).decrypt(ciphertext) == plaintext


@pytest.mark.parametrize("info", BLOCK_CIPHERS, ids=lambda i: i.name)
def test_encryption_changes_data(info):
    key = bytes(range(info.key_bytes))
    plaintext = bytes(info.block_bytes)
    assert info.make(key).encrypt_block(plaintext) != plaintext


@pytest.mark.parametrize("info", BLOCK_CIPHERS, ids=lambda i: i.name)
def test_single_bit_flip_diffuses(info):
    """Strong ciphers flip ~half the output bits for a 1-bit input change."""
    key = bytes(range(info.key_bytes))
    cipher = info.make(key)
    base = cipher.encrypt_block(bytes(info.block_bytes))
    flipped_input = bytes([0x01] + [0] * (info.block_bytes - 1))
    flipped = cipher.encrypt_block(flipped_input)
    differing_bits = sum(
        bin(a ^ b).count("1") for a, b in zip(base, flipped)
    )
    total_bits = 8 * info.block_bytes
    # Expect roughly 50%; accept a generous band (binomial tail is tiny).
    assert 0.25 * total_bits <= differing_bits <= 0.75 * total_bits


@pytest.mark.parametrize("info", BLOCK_CIPHERS, ids=lambda i: i.name)
def test_key_change_diffuses(info):
    plaintext = bytes(range(info.block_bytes))
    key_a = bytes(info.key_bytes)
    key_b = bytes([0x80] + [0] * (info.key_bytes - 1))
    ct_a = info.make(key_a).encrypt_block(plaintext)
    ct_b = info.make(key_b).encrypt_block(plaintext)
    assert ct_a != ct_b


@pytest.mark.parametrize("info", BLOCK_CIPHERS, ids=lambda i: i.name)
def test_cbc_identical_blocks_encrypt_differently(info):
    """CBC chaining must break ECB's equal-plaintext/equal-ciphertext leak."""
    key = bytes(range(info.key_bytes))
    iv = bytes(info.block_bytes)
    ciphertext = CBC(info.make(key), iv).encrypt(bytes(2 * info.block_bytes))
    first, second = (
        ciphertext[: info.block_bytes],
        ciphertext[info.block_bytes :],
    )
    assert first != second


@pytest.mark.parametrize("info", BLOCK_CIPHERS, ids=lambda i: i.name)
def test_cbc_is_stateful_across_calls(info):
    """Two calls must chain exactly like one call over the concatenation."""
    key = bytes(range(info.key_bytes))
    iv = bytes(range(info.block_bytes))
    data = bytes(range(4 * info.block_bytes & 0xFF)) * 1
    data = (data * 4)[: 4 * info.block_bytes]
    one_shot = CBC(info.make(key), iv).encrypt(data)
    split = CBC(info.make(key), iv)
    half = 2 * info.block_bytes
    assert split.encrypt(data[:half]) + split.encrypt(data[half:]) == one_shot


@given(
    key=st.binary(min_size=16, max_size=16),
    data=st.binary(min_size=0, max_size=256),
)
@settings(max_examples=20, deadline=None)
def test_rc4_roundtrip(key, data):
    from repro.ciphers import RC4

    assert RC4(key).process(RC4(key).process(data)) == data


def test_rc4_keystream_is_stateful():
    from repro.ciphers import RC4

    key = bytes(range(16))
    split = RC4(key)
    assert split.keystream(10) + split.keystream(10) == RC4(key).keystream(20)
