"""Unit tests for Blowfish internals: pi tables, key setup, F-function."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.blowfish import Blowfish, _initial_tables


def test_initial_tables_are_pi():
    p_array, sboxes = _initial_tables()
    assert p_array[0] == 0x243F6A88
    assert p_array[17] == 0x8979FB1B
    assert len(sboxes) == 4
    assert all(len(sbox) == 256 for sbox in sboxes)
    # First S-box word continues pi where the P-array stops.
    from repro.util.pi import pi_hex_words

    assert sboxes[0][0] == pi_hex_words(19)[18]


def test_initial_tables_fresh_copies():
    """Key setup mutates the tables; instances must not share them."""
    a = Blowfish(b"a" * 16)
    b = Blowfish(b"b" * 16)
    assert a.p_array != b.p_array
    assert a.sboxes[0] != b.sboxes[0]


def test_setup_changes_every_p_entry():
    cipher = Blowfish(bytes(range(16)))
    p_initial, _ = _initial_tables()
    assert all(x != y for x, y in zip(cipher.p_array, p_initial))


def test_feistel_uses_all_four_boxes():
    cipher = Blowfish(bytes(range(16)))
    # Perturbing any single byte of the input changes F's output.
    base = cipher._feistel(0x00000000)
    for byte_index in range(4):
        assert cipher._feistel(1 << (8 * byte_index)) != base


def test_key_length_bounds():
    Blowfish(b"k")            # 1 byte: legal
    Blowfish(b"k" * 56)       # max
    with pytest.raises(ValueError):
        Blowfish(b"")
    with pytest.raises(ValueError):
        Blowfish(b"k" * 57)


def test_key_longer_than_p_array_wraps():
    """Keys longer than 18 words cycle correctly through the P-XOR."""
    long_key = bytes(range(56))
    cipher = Blowfish(long_key)
    block = cipher.encrypt_block(bytes(8))
    assert cipher.decrypt_block(block) == bytes(8)


@given(st.binary(min_size=4, max_size=56), st.binary(min_size=8, max_size=8))
@settings(max_examples=10, deadline=None)
def test_roundtrip_any_key_length(key, block):
    cipher = Blowfish(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_different_keys_different_tables():
    a = Blowfish(b"0" * 16)
    b = Blowfish(b"1" * 16)
    assert a.encrypt_block(bytes(8)) != b.encrypt_block(bytes(8))
