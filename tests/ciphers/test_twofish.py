"""Unit tests for Twofish internals: q permutations, h function, fused tables."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.twofish import MDS, Q0, Q1, RS, Twofish, h_function
from repro.util.gf import GF2_8, TWOFISH_MDS_POLY


def test_q_tables_are_permutations():
    assert sorted(Q0) == list(range(256))
    assert sorted(Q1) == list(range(256))
    assert Q0 != Q1


def test_q_known_entries():
    # First bytes of the spec's q0/q1 tables.
    assert Q0[:4] == (0xA9, 0x67, 0xB3, 0xE8)
    assert Q1[:4] == (0x75, 0xF3, 0xC6, 0xF4)


def test_zero_key_subkeys_match_spec():
    # Known-answer subkeys for the all-zero 128-bit key (spec appendix).
    cipher = Twofish(bytes(16))
    assert cipher.round_keys[0] == 0x52C54DDE
    assert cipher.round_keys[1] == 0x11F0626D


def test_mds_matrix_is_invertible():
    """An MDS matrix must be invertible; check via a nonzero determinant."""
    field = GF2_8(TWOFISH_MDS_POLY)

    def det4(m):
        # Lazy cofactor expansion over GF(2^8) (xor is add/sub).
        def det3(a):
            return (
                field.mul(a[0][0], field.mul(a[1][1], a[2][2]))
                ^ field.mul(a[0][0], field.mul(a[1][2], a[2][1]))
                ^ field.mul(a[0][1], field.mul(a[1][0], a[2][2]))
                ^ field.mul(a[0][1], field.mul(a[1][2], a[2][0]))
                ^ field.mul(a[0][2], field.mul(a[1][0], a[2][1]))
                ^ field.mul(a[0][2], field.mul(a[1][1], a[2][0]))
            )

        total = 0
        for col in range(4):
            minor = [
                [m[row][c] for c in range(4) if c != col] for row in range(1, 4)
            ]
            total ^= field.mul(m[0][col], det3(minor))
        return total

    assert det4([list(row) for row in MDS]) != 0


def test_rs_matrix_shape():
    assert len(RS) == 4
    assert all(len(row) == 8 for row in RS)


def test_fused_sboxes_reproduce_g():
    cipher = Twofish(bytes(range(16)))
    tables = cipher.fused_sboxes()
    for x in (0, 1, 0xDEADBEEF, 0xFFFFFFFF, 0x01234567):
        expected = cipher.g(x)
        via_tables = (
            tables[0][x & 0xFF]
            ^ tables[1][(x >> 8) & 0xFF]
            ^ tables[2][(x >> 16) & 0xFF]
            ^ tables[3][(x >> 24) & 0xFF]
        )
        assert via_tables == expected


def test_g_equals_h_with_s_words():
    cipher = Twofish(bytes(range(16)))
    for x in (0, 0x01020304, 0xFFFFFFFF):
        assert cipher.g(x) == h_function(x, cipher._s_words)


@given(
    key=st.binary(min_size=16, max_size=16),
    block=st.binary(min_size=16, max_size=16),
)
@settings(max_examples=10, deadline=None)
def test_twofish_roundtrip(key, block):
    cipher = Twofish(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
