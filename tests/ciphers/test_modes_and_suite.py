"""Tests for ECB/CBC modes, stream-cipher plumbing, and the suite registry."""

import pytest

from repro.ciphers import (
    CBC,
    SUITE,
    SUITE_BY_NAME,
    Blowfish,
    ecb_decrypt,
    ecb_encrypt,
    get_cipher_info,
)


def test_ecb_roundtrip_multi_block():
    cipher = Blowfish(b"0123456789abcdef")
    data = bytes(range(64))
    assert ecb_decrypt(cipher, ecb_encrypt(cipher, data)) == data


def test_ecb_equal_blocks_leak():
    """ECB's defining weakness: equal plaintext blocks -> equal ciphertext."""
    cipher = Blowfish(b"0123456789abcdef")
    ciphertext = ecb_encrypt(cipher, bytes(16))
    assert ciphertext[:8] == ciphertext[8:]


def test_ecb_rejects_partial_block():
    cipher = Blowfish(b"k" * 16)
    with pytest.raises(ValueError):
        ecb_encrypt(cipher, bytes(9))


def test_cbc_rejects_bad_iv():
    with pytest.raises(ValueError):
        CBC(Blowfish(b"k" * 16), bytes(4))


def test_cbc_rejects_partial_block():
    cbc = CBC(Blowfish(b"k" * 16), bytes(8))
    with pytest.raises(ValueError):
        cbc.encrypt(bytes(12))


def test_cbc_first_block_uses_iv():
    key = b"k" * 16
    iv_a, iv_b = bytes(8), bytes([1] * 8)
    ct_a = CBC(Blowfish(key), iv_a).encrypt(bytes(8))
    ct_b = CBC(Blowfish(key), iv_b).encrypt(bytes(8))
    assert ct_a != ct_b


def test_cbc_decrypt_state_independent_of_encrypt_state():
    key = b"k" * 16
    iv = bytes(range(8))
    cbc = CBC(Blowfish(key), iv)
    data = bytes(range(32))
    ciphertext = cbc.encrypt(data)
    # Same object can decrypt from its own (separate) decrypt chain.
    assert cbc.decrypt(ciphertext) == data


def test_suite_has_eight_ciphers_in_paper_order():
    assert [info.name for info in SUITE] == [
        "3DES", "Blowfish", "IDEA", "Mars", "RC4", "RC6", "Rijndael", "Twofish",
    ]


def test_suite_metadata_matches_table1():
    assert SUITE_BY_NAME["3DES"].rounds_per_block == 48
    assert SUITE_BY_NAME["Rijndael"].rounds_per_block == 10
    assert SUITE_BY_NAME["RC4"].is_stream
    assert SUITE_BY_NAME["Twofish"].block_bits == 128
    assert SUITE_BY_NAME["Blowfish"].block_bits == 64


def test_suite_factories_build_working_ciphers():
    for info in SUITE:
        cipher = info.make(bytes(info.key_bytes))
        if info.is_stream:
            assert len(cipher.process(bytes(10))) == 10
        else:
            block = bytes(info.block_bytes)
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_suite_factory_rejects_wrong_key_size():
    with pytest.raises(ValueError):
        SUITE_BY_NAME["Twofish"].make(bytes(8))


def test_get_cipher_info_case_insensitive():
    assert get_cipher_info("rijndael").name == "Rijndael"
    with pytest.raises(KeyError):
        get_cipher_info("DES5")
