"""Unit tests for Rijndael internals: S-box derivation, T-tables, key expansion."""

from repro.ciphers.rijndael import (
    Rijndael,
    expand_key,
    inv_sbox,
    inv_t_tables,
    sbox,
    t_tables,
)
from repro.util.gf import GF2_8


def test_sbox_known_entries():
    s = sbox()
    assert s[0x00] == 0x63
    assert s[0x01] == 0x7C
    assert s[0x53] == 0xED
    assert s[0xFF] == 0x16


def test_sbox_is_permutation():
    assert sorted(sbox()) == list(range(256))


def test_inv_sbox_inverts():
    s, s_inv = sbox(), inv_sbox()
    assert all(s_inv[s[x]] == x for x in range(256))


def test_sbox_has_no_fixed_points():
    s = sbox()
    assert all(s[x] != x for x in range(256))
    assert all(s[x] != (x ^ 0xFF) for x in range(256))


def test_t_table_rotation_structure():
    t = t_tables()
    for x in (0, 1, 0x53, 0xFF):
        base = t[0][x]
        for i in range(1, 4):
            rotated = ((base >> (8 * i)) | (base << (32 - 8 * i))) & 0xFFFFFFFF
            assert t[i][x] == rotated


def test_t_table_first_entry():
    # T0[0] packs (2*0x63, 0x63, 0x63, 3*0x63) = (c6, 63, 63, a5).
    assert t_tables()[0][0] == 0xC66363A5


def test_key_expansion_fips_worked_example():
    # FIPS-197 Appendix A.1 key expansion for 2b7e1516...
    words = expand_key(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
    assert words[4] == 0xA0FAFE17
    assert words[5] == 0x88542CB1
    assert words[43] == 0xB6630CA6


def test_key_expansion_shape():
    words = expand_key(bytes(16))
    assert len(words) == 44


def test_mixcolumns_matrices_are_inverse():
    """The (2,3,1,1) and (e,b,d,9) circulant matrices must be inverses."""
    field = GF2_8()
    forward = [[2, 3, 1, 1], [1, 2, 3, 1], [1, 1, 2, 3], [3, 1, 1, 2]]
    inverse = [
        [0x0E, 0x0B, 0x0D, 0x09],
        [0x09, 0x0E, 0x0B, 0x0D],
        [0x0D, 0x09, 0x0E, 0x0B],
        [0x0B, 0x0D, 0x09, 0x0E],
    ]
    for i in range(4):
        for j in range(4):
            acc = 0
            for k in range(4):
                acc ^= field.mul(forward[i][k], inverse[k][j])
            assert acc == (1 if i == j else 0)

def test_encrypt_decrypt_many_keys():
    for seed in range(5):
        key = bytes((seed * 17 + i) & 0xFF for i in range(16))
        block = bytes((seed * 29 + i * 3) & 0xFF for i in range(16))
        cipher = Rijndael(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
