"""Unit tests for RC6 key schedule and RC4 state machine internals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.rc4 import RC4
from repro.ciphers.rc6 import RC6, ROUNDS, expand_key


def test_rc6_schedule_shape():
    schedule = expand_key(bytes(16))
    assert len(schedule) == 2 * ROUNDS + 4 == 44
    assert all(0 <= w <= 0xFFFFFFFF for w in schedule)


def test_rc6_schedule_magic_constants_visible():
    """With an all-zero key, the first mixing pass still starts from P32."""
    schedule_a = expand_key(bytes(16))
    schedule_b = expand_key(bytes([1]) + bytes(15))
    assert schedule_a != schedule_b


def test_rc6_key_lengths():
    for size in (16, 24, 32):
        assert len(expand_key(bytes(size))) == 44
    with pytest.raises(ValueError):
        expand_key(bytes(15))


def test_rc6_single_bit_key_avalanche():
    a = RC6(bytes(16)).encrypt_block(bytes(16))
    b = RC6(bytes([0x80] + [0] * 15)).encrypt_block(bytes(16))
    differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
    assert differing > 32


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
@settings(max_examples=10, deadline=None)
def test_rc6_roundtrip(key, block):
    cipher = RC6(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_rc4_state_is_a_permutation_after_ksa():
    cipher = RC4(bytes(range(16)))
    assert sorted(cipher._state) == list(range(256))


def test_rc4_state_remains_permutation_during_prga():
    cipher = RC4(b"key material!!!!")
    cipher.keystream(1000)
    assert sorted(cipher._state) == list(range(256))


def test_rc4_key_length_bounds():
    RC4(b"k")
    RC4(bytes(256))
    with pytest.raises(ValueError):
        RC4(b"")
    with pytest.raises(ValueError):
        RC4(bytes(257))


def test_rc4_keystream_bias_sanity():
    """The keystream should look byte-uniform at coarse granularity."""
    stream = RC4(bytes(range(16))).keystream(65536)
    counts = [0] * 256
    for byte in stream:
        counts[byte] += 1
    mean = len(stream) / 256
    assert all(0.5 * mean < c < 1.5 * mean for c in counts)


def test_rc4_distinct_keys_distinct_streams():
    assert RC4(b"A" * 16).keystream(64) != RC4(b"B" * 16).keystream(64)
