"""Semantics tests for the paper's crypto ISA extensions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.idea import mul_mod
from repro.isa import assemble
from repro.sim import Machine, Memory

words32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
words16 = st.integers(min_value=0, max_value=0xFFFF)


def run_expr(source: str) -> int:
    memory = Memory(1 << 16)
    Machine(assemble(source + "\n    stq r9, 0x400(r31)\n    halt\n"),
            memory).execute()
    return memory.read(0x400, 8)


@given(words32, st.integers(min_value=0, max_value=63))
@settings(max_examples=30, deadline=None)
def test_roll_matches_reference(value, amount):
    from repro.util.bits import rotl32

    got = run_expr(f"""
    ldiq r1, {value}
    ldiq r2, {amount}
    roll r9, r1, r2
    """)
    assert got == rotl32(value, amount & 31)


@given(words32, st.integers(min_value=0, max_value=63))
@settings(max_examples=30, deadline=None)
def test_rorl_matches_reference(value, amount):
    from repro.util.bits import rotr32

    got = run_expr(f"""
    ldiq r1, {value}
    roll r9, r1, #0
    rorl r9, r1, #{amount}
    """)
    assert got == rotr32(value, amount & 31)


def test_rolq_rorq():
    assert run_expr("""
    ldiq r1, 0x0123456789ABCDEF
    rolq r9, r1, #8
    """) == 0x23456789ABCDEF01
    assert run_expr("""
    ldiq r1, 0x0123456789ABCDEF
    rorq r9, r1, #8
    """) == 0xEF0123456789ABCD


@given(words32, words32, st.integers(min_value=0, max_value=31))
@settings(max_examples=30, deadline=None)
def test_rolxl_semantics(value, accum, amount):
    """ROLX: dest <- rotl32(src, #amount) ^ dest (paper Figure 8)."""
    from repro.util.bits import rotl32

    got = run_expr(f"""
    ldiq r1, {value}
    ldiq r9, {accum}
    rolxl r9, r1, #{amount}
    """)
    assert got == rotl32(value, amount) ^ accum


@given(words32, words32, st.integers(min_value=0, max_value=31))
@settings(max_examples=30, deadline=None)
def test_rorxl_semantics(value, accum, amount):
    from repro.util.bits import rotr32

    got = run_expr(f"""
    ldiq r1, {value}
    ldiq r9, {accum}
    rorxl r9, r1, #{amount}
    """)
    assert got == rotr32(value, amount) ^ accum


@given(words16, words16)
@settings(max_examples=50, deadline=None)
def test_mulmod_matches_idea_multiply(a, b):
    got = run_expr(f"""
    ldiq r1, {a}
    ldiq r2, {b}
    mulmod r9, r1, r2
    """)
    assert got == mul_mod(a, b)


def test_mulmod_zero_convention():
    # 0 represents 2^16: 0 (*) 1 = 2^16 -> represented as 0.
    assert run_expr("""
    ldiq r1, 0
    ldiq r2, 1
    mulmod r9, r1, r2
    """) == 0


def test_sbox_instruction_indexes_table():
    memory = Memory(1 << 16)
    table_base = 0x1000  # 1 KB aligned
    for i in range(256):
        memory.write(table_base + 4 * i, 0xAA000000 | i, 4)
    source = f"""
    ldiq r1, {table_base}
    ldiq r2, 0x00CC4711
    sbox.0.1 r1, r2, r9    ; byte 1 of index = 0x47
    stq r9, 0x400(r31)
    halt
    """
    Machine(assemble(source), memory).execute()
    assert memory.read(0x400, 8) == 0xAA000047


def test_sbox_ignores_low_table_bits():
    """The table base is masked to a 1 KB boundary (paper Figure 8)."""
    memory = Memory(1 << 16)
    table_base = 0x1000
    for i in range(256):
        memory.write(table_base + 4 * i, i * 3, 4)
    source = f"""
    ldiq r1, {table_base + 0x3FF}   ; low bits must be ignored
    ldiq r2, 5
    sbox.2.0 r1, r2, r9
    stq r9, 0x400(r31)
    halt
    """
    Machine(assemble(source), memory).execute()
    assert memory.read(0x400, 8) == 15


def test_xbox_partial_permutation():
    """XBOX writes 8 permuted bits into its destination byte, rest zero."""
    memory = Memory(1 << 16)
    # Map: destination bits j=0..7 take source bits 8..15 (byte swap).
    perm_map = 0
    for j in range(8):
        perm_map |= (8 + j) << (6 * j)
    source = f"""
    ldiq r1, 0x0000000000BB00
    ldiq r2, {perm_map}
    xbox.0 r1, r2, r9
    stq r9, 0x400(r31)
    halt
    """
    Machine(assemble(source), memory).execute()
    assert memory.read(0x400, 8) == 0xBB


def test_xbox_byte_position():
    perm_map = 0
    for j in range(8):
        perm_map |= j << (6 * j)  # identity on low byte
    memory = Memory(1 << 16)
    source = f"""
    ldiq r1, 0xCD
    ldiq r2, {perm_map}
    xbox.3 r1, r2, r9
    stq r9, 0x400(r31)
    halt
    """
    Machine(assemble(source), memory).execute()
    assert memory.read(0x400, 8) == 0xCD << 24


def test_xbox_pair_composes_full_permutation():
    """Two XBOXes with an OR reproduce a 16-bit permutation (paper's idiom)."""
    import random

    random.seed(3)
    permutation = list(range(16))
    random.shuffle(permutation)
    maps = []
    for byte_index in range(2):
        m = 0
        for j in range(8):
            m |= permutation[8 * byte_index + j] << (6 * j)
        maps.append(m)
    value = 0xB3C5
    source = f"""
    ldiq r1, {value}
    ldiq r2, {maps[0]}
    ldiq r3, {maps[1]}
    xbox.0 r1, r2, r4
    xbox.1 r1, r3, r5
    bis r9, r4, r5
    stq r9, 0x400(r31)
    halt
    """
    memory = Memory(1 << 16)
    Machine(assemble(source), memory).execute()
    expected = 0
    for out_bit in range(16):
        expected |= ((value >> permutation[out_bit]) & 1) << out_bit
    assert memory.read(0x400, 8) == expected


def test_sboxsync_is_functionally_neutral():
    memory = Memory(1 << 16)
    source = """
    ldiq r9, 7
    sboxsync.2
    stq r9, 0x400(r31)
    halt
    """
    Machine(assemble(source), memory).execute()
    assert memory.read(0x400, 8) == 7
