"""Directed semantics tests for every RISC-A opcode via the assembler."""

import pytest

from repro.isa import assemble
from repro.sim import Machine, Memory, SimulationError


def run_and_read(source: str, result_addr: int = 0x400, width: int = 8,
                 memory: Memory | None = None) -> int:
    memory = memory or Memory(1 << 16)
    Machine(assemble(source), memory).execute()
    return memory.read(result_addr, width)


def _store_result(expr_lines: str, result_reg: str = "r9") -> str:
    return f"{expr_lines}\n    stq {result_reg}, 0x400(r31)\n    halt\n"


@pytest.mark.parametrize("op,a,b,expected", [
    ("addq", 3, 4, 7),
    ("addq", 0xFFFFFFFFFFFFFFFF, 1, 0),
    ("subq", 3, 4, 0xFFFFFFFFFFFFFFFF),
    ("addl", 0xFFFFFFFF, 1, 0),                      # zero-extended 32-bit
    ("subl", 0, 1, 0xFFFFFFFF),
    ("and", 0b1100, 0b1010, 0b1000),
    ("bis", 0b1100, 0b1010, 0b1110),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("bic", 0b1111, 0b1010, 0b0101),
    ("sll", 1, 63, 1 << 63),
    ("srl", 1 << 63, 63, 1),
    ("mull", 0xFFFFFFFF, 2, 0xFFFFFFFE),             # 32-bit wraparound
    ("mulq", 1 << 32, 1 << 32, 0),                   # 64-bit wraparound
    ("cmpeq", 5, 5, 1),
    ("cmpeq", 5, 6, 0),
    ("cmpult", 3, 4, 1),
    ("cmpult", 4, 3, 0),
    ("cmpule", 4, 4, 1),
    ("s4addq", 3, 100, 112),
    ("s8addq", 3, 100, 124),
    ("extbl", 0x0123456789ABCDEF, 2, 0xAB),
    ("insbl", 0xEF, 2, 0xEF0000),
    ("zapnot", 0x0123456789ABCDEF, 0x0F, 0x89ABCDEF),
])
def test_operate_register_forms(op, a, b, expected):
    source = _store_result(f"""
    ldiq r1, {a}
    ldiq r2, {b}
    {op} r9, r1, r2
    """)
    assert run_and_read(source) == expected


def test_operate_literal_form():
    assert run_and_read(_store_result("""
    ldiq r1, 40
    addq r9, r1, #2
    """)) == 42


def test_sra_sign_extension():
    assert run_and_read(_store_result("""
    ldiq r1, 0x8000000000000000
    sra  r9, r1, #60
    """)) == 0xFFFFFFFFFFFFFFF8


def test_cmplt_signed():
    assert run_and_read(_store_result("""
    ldiq r1, 0xFFFFFFFFFFFFFFFF   ; -1
    ldiq r2, 1
    cmplt r9, r1, r2
    """)) == 1


def test_ornot():
    assert run_and_read(_store_result("""
    ldiq r1, 0
    ldiq r2, 0xFFFFFFFFFFFFFFF0
    ornot r9, r1, r2
    """)) == 0xF


def test_cmov_both_ways():
    assert run_and_read(_store_result("""
    ldiq r1, 0
    ldiq r2, 111
    ldiq r9, 5
    cmoveq r9, r1, r2
    """)) == 111
    assert run_and_read(_store_result("""
    ldiq r1, 7
    ldiq r2, 111
    ldiq r9, 5
    cmovne r9, r1, r2
    """)) == 111
    assert run_and_read(_store_result("""
    ldiq r1, 7
    ldiq r2, 111
    ldiq r9, 5
    cmoveq r9, r1, r2
    """)) == 5


def test_lda_displacement():
    assert run_and_read(_store_result("""
    ldiq r1, 1000
    lda  r9, 24(r1)
    """)) == 1024
    assert run_and_read(_store_result("""
    ldiq r1, 1000
    lda  r9, -24(r1)
    """)) == 976


def test_r31_reads_zero_and_ignores_writes():
    assert run_and_read(_store_result("""
    ldiq r31, 123
    addq r9, r31, #0
    """)) == 0


def test_memory_roundtrip_all_widths():
    memory = Memory(1 << 16)
    source = """
    ldiq r1, 0x0123456789ABCDEF
    stq r1, 0x500(r31)
    ldq r2, 0x500(r31)
    stl r2, 0x510(r31)
    ldl r3, 0x510(r31)
    stw r3, 0x520(r31)
    ldwu r4, 0x520(r31)
    stb r4, 0x530(r31)
    ldbu r5, 0x530(r31)
    stq r5, 0x400(r31)
    halt
    """
    assert run_and_read(source, memory=memory) == 0xEF
    assert memory.read(0x510, 4) == 0x89ABCDEF


def test_ldl_zero_extends():
    assert run_and_read(_store_result("""
    ldiq r1, 0xFFFFFFFF
    stl r1, 0x500(r31)
    ldl r9, 0x500(r31)
    """)) == 0xFFFFFFFF


def test_branches():
    source = """
    ldiq r1, 3
    ldiq r9, 0
loop:
    addq r9, r9, #10
    subq r1, r1, #1
    bne r1, loop
    stq r9, 0x400(r31)
    halt
    """
    assert run_and_read(source) == 30


@pytest.mark.parametrize("br,value,branches", [
    ("beq", 0, True), ("beq", 1, False),
    ("bne", 0, False), ("bne", 1, True),
    ("blt", 0xFFFFFFFFFFFFFFFF, True), ("blt", 0, False), ("blt", 1, False),
    ("ble", 0, True), ("ble", 1, False),
    ("bgt", 1, True), ("bgt", 0, False),
    ("bge", 0, True), ("bge", 0xFFFFFFFFFFFFFFFF, False),
])
def test_conditional_branches(br, value, branches):
    source = f"""
    ldiq r1, {value}
    ldiq r9, 1
    {br} r1, yes
    ldiq r9, 2
yes:
    stq r9, 0x400(r31)
    halt
    """
    assert run_and_read(source) == (1 if branches else 2)


def test_unconditional_branch():
    source = """
    ldiq r9, 1
    br skip
    ldiq r9, 2
skip:
    stq r9, 0x400(r31)
    halt
    """
    assert run_and_read(source) == 1


def test_runaway_detection():
    with pytest.raises(SimulationError):
        Machine(assemble("loop: br loop\n halt"), Memory(1024)).execute(
            max_instructions=1000
        )


def test_unaligned_access_faults():
    with pytest.raises(SimulationError):
        Machine(assemble("ldl r1, 2(r31)\n halt"), Memory(1024)).execute()
