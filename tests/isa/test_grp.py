"""Tests for the GRP instruction and its permutation decomposition."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Features, KernelBuilder, assemble
from repro.isa.grp import grp_apply, grp_controls, grp_controls_for_transform
from repro.sim import Machine, Memory


def test_grp_semantics_basic():
    # Control 0b0101: bits 0,2 have control 1 -> they pack above bits 1,3.
    # value bits: b0..b3; zeros group = (b1, b3) at positions 0,1;
    # ones group = (b0, b2) at positions 2,3.
    value = 0b1010  # b1=1, b3=1
    assert grp_apply(value, 0b0101, 4) == 0b0011


def test_grp_identity_control_zero():
    assert grp_apply(0xDEADBEEF, 0, 32) == 0xDEADBEEF


def test_grp_control_all_ones_is_identity():
    assert grp_apply(0xDEADBEEF, 0xFFFFFFFF, 32) == 0xDEADBEEF


def test_grp_instruction_matches_reference():
    random.seed(8)
    for _ in range(10):
        value = random.getrandbits(64)
        control = random.getrandbits(64)
        memory = Memory(4096)
        Machine(assemble(f"""
        ldiq r1, {value}
        ldiq r2, {control}
        grpq r3, r1, r2
        stq r3, 0x400(r31)
        halt
        """), memory).execute()
        assert memory.read(0x400, 8) == grp_apply(value, control, 64)


def test_grpl_is_32_bit():
    memory = Memory(4096)
    Machine(assemble("""
    ldiq r1, 0x80000001
    ldiq r2, 0x80000001
    grpl r3, r1, r2
    stq r3, 0x400(r31)
    halt
    """), memory).execute()
    # Zeros group: bits 1..30 (all zero); ones group: bits 0 and 31 (both 1)
    # packed on top -> value 0b11 << 30.
    assert memory.read(0x400, 8) == 0b11 << 30


@given(st.randoms())
@settings(max_examples=25, deadline=None)
def test_decomposition_realizes_any_permutation(rng):
    width = rng.choice([32, 64])
    permutation = list(range(width))
    rng.shuffle(permutation)
    controls = grp_controls(permutation, width)
    assert len(controls) == width.bit_length() - 1
    value = rng.getrandbits(width)
    staged = value
    for control in controls:
        staged = grp_apply(staged, control, width)
    expected = 0
    for i in range(width):
        expected |= ((value >> i) & 1) << permutation[i]
    assert staged == expected


def test_decomposition_rejects_non_permutation():
    with pytest.raises(ValueError):
        grp_controls([0, 0, 1, 2], 4)
    with pytest.raises(ValueError):
        grp_controls(list(range(48)), 48)  # not a power of two


def test_controls_for_transform():
    controls = grp_controls_for_transform(lambda x: ((x << 1) | (x >> 63))
                                          & 0xFFFFFFFFFFFFFFFF)
    value = 0x0123456789ABCDEF
    staged = value
    for control in controls:
        staged = grp_apply(staged, control, 64)
    assert staged == ((value << 1) | (value >> 63)) & 0xFFFFFFFFFFFFFFFF


def test_builder_permute64_grp():
    random.seed(9)
    permutation = list(range(64))
    random.shuffle(permutation)
    controls = grp_controls(permutation, 64)
    kb = KernelBuilder(Features.OPT)
    src, dst = kb.reg("src"), kb.reg("dst")
    value = random.getrandbits(64)
    kb.ldiq(src, value)
    kb.permute64_grp(dst, src, controls)
    kb.stq(dst, kb.zero, 0x400)
    kb.halt()
    memory = Memory(4096)
    Machine(kb.build(), memory).execute()
    expected = 0
    for i in range(64):
        expected |= ((value >> i) & 1) << permutation[i]
    assert memory.read(0x400, 8) == expected


def test_grp_requires_opt_features():
    kb = KernelBuilder(Features.ROT)
    with pytest.raises(RuntimeError):
        kb.grpq(kb.reg("a"), kb.reg("b"), kb.reg("c"))


def test_des3_grp_coding_validates():
    from repro.kernels.des3_kernel import TripleDESKernel

    kernel = TripleDESKernel(bytes(range(24)), Features.OPT, use_grp=True)
    run = kernel.encrypt(bytes(32), bytes(8))  # validates internally
    baseline = TripleDESKernel(bytes(range(24)), Features.OPT)
    assert run.instructions < baseline.encrypt(bytes(32), bytes(8)).instructions
