"""Soundness of the static cycle-cost estimator (`repro.isa.analysis.cost`).

The ISSUE-mandated matrix: for every cipher at every feature level, under
the paper's enhanced 4-wide and 8-wide machines and the dataflow limit,
the static bracket must contain the simulated cycle count::

    report.lower_bound <= simulate(trace, config).cycles <= report.upper_bound

plus the same property over hypothesis-generated random loop programs,
and unit sanity for :func:`chain_weights` / :class:`CostReport`.
"""

import pytest
from hypothesis import given, settings

from repro.isa.analysis import CostReport, chain_weights, estimate_cost
from repro.kernels import KERNEL_NAMES
from repro.kernels.registry import make_kernel
from repro.sim import (
    DATAFLOW,
    EIGHTW_PLUS,
    FOURW,
    Machine,
    Memory,
    simulate,
)
from repro.tools.cli import FEATURE_LEVELS
from tests.sim.test_timing_properties import random_programs

#: The three machine models the paper's headline numbers use.
MATRIX_CONFIGS = (FOURW, EIGHTW_PLUS, DATAFLOW)

#: One session per (cipher, level): a multiple of every block size, long
#: enough to run the steady-state loop several times (matches the
#: ``repro.tools.analyze`` default).
SESSION_BYTES = 128

_runs: dict = {}


def run_for(cipher, level_key):
    key = (cipher, level_key)
    if key not in _runs:
        kernel = make_kernel(cipher, features=FEATURE_LEVELS[level_key])
        _runs[key] = kernel.encrypt(bytes(SESSION_BYTES))
    return _runs[key]


# -- the soundness matrix ---------------------------------------------------

@pytest.mark.parametrize("config", MATRIX_CONFIGS,
                         ids=lambda config: config.name)
@pytest.mark.parametrize("level", ("norot", "rot", "opt"))
@pytest.mark.parametrize("cipher", KERNEL_NAMES)
def test_bounds_bracket_simulated_cycles(cipher, level, config):
    run = run_for(cipher, level)
    report = estimate_cost(
        run.trace.program, config, run.trace, run.warm_ranges,
        name=f"{cipher}[{level}]",
    )
    stats = simulate(run.trace, config, run.warm_ranges)
    assert report.lower_bound <= stats.cycles <= report.upper_bound, (
        f"{cipher}[{level}] on {config.name}: "
        f"{report.lower_bound} <= {stats.cycles} <= {report.upper_bound}"
    )
    assert report.instructions == len(run.trace.seq)


# -- the property over generated programs -----------------------------------

@given(random_programs())
@settings(max_examples=25, deadline=None)
def test_bounds_hold_on_random_programs(program):
    trace = Machine(program, Memory(1 << 13)).execute().trace
    for config in (FOURW, DATAFLOW):
        report = estimate_cost(program, config, trace)
        stats = simulate(trace, config)
        assert report.lower_bound <= stats.cycles <= report.upper_bound, (
            f"{config.name}: {report.lower_bound} <= {stats.cycles} "
            f"<= {report.upper_bound}"
        )


# -- unit sanity ------------------------------------------------------------

def test_chain_weights_cover_every_timing_class():
    weights = chain_weights(FOURW)
    assert set(weights) >= {
        "ialu", "rotator", "load", "store", "sbox", "sync",
        "mul32", "mul64", "mulmod",
    }
    assert all(weight >= 1 for weight in weights.values())


def test_cost_report_gap_and_component_ledger():
    run = run_for("RC4", "opt")
    report = estimate_cost(
        run.trace.program, FOURW, run.trace, run.warm_ranges,
        name="RC4[opt]",
    )
    assert report.name == "RC4[opt]"
    assert report.config == FOURW.name
    assert report.gap >= 1.0
    # The upper bound is exactly the sum of its published components.
    upper = report.components["upper"]
    assert report.upper_bound == (
        upper["startup"] + upper["blocks"] + upper["mispredict"]
        + upper["memory_extra"]
    )
    # The lower bound is the max of its published terms.
    assert report.lower_bound == max(report.components["lower"].values())
    assert report.as_dict()["gap"] == round(report.gap, 4)


def test_cost_report_gap_is_infinite_when_lower_is_zero():
    report = CostReport(name="empty", config="DF", lower_bound=0,
                        upper_bound=5, instructions=0)
    assert report.gap == float("inf")
