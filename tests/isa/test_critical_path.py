"""The static critical-path oracle must lower-bound the DF machine.

``critical_path`` chases unique-dominating-def chains with per-class
minimum latencies; its bound must never exceed the cycles the dataflow
(infinite-resource) timing simulation reports for the same program --
for every shipped cipher, in both directions, at every feature level.
"""

import pytest

from repro.isa import Features, assemble
from repro.isa.verify import critical_path, verify_program
from repro.kernels import KERNEL_NAMES
from repro.kernels.registry import make_kernel
from repro.sim import DATAFLOW, simulate


def _cases():
    for name in KERNEL_NAMES:
        for features in (Features.NOROT, Features.ROT, Features.OPT):
            yield pytest.param(name, features, id=f"{name}-{features.label}")


@pytest.mark.parametrize("name, features", _cases())
def test_bound_is_sound_for_every_cipher(name, features):
    kernel = make_kernel(name, features=features)
    session = kernel.block_bytes * 2 if kernel.block_bytes > 1 else 32
    run = kernel.encrypt(bytes(range(session % 256)).ljust(session, b"\0"))
    bound = critical_path(run.trace.program)
    simulated = simulate(run.trace, DATAFLOW, run.warm_ranges).cycles
    assert 0 < bound.cycles <= simulated, (
        f"{name}[{features.label}]: static bound {bound.cycles} exceeds "
        f"DF cycles {simulated}"
    )


def test_chain_is_a_dependence_chain():
    program = assemble("""
        ldiq r1, 1
        ldiq r2, 2
        addq r3, r1, r2
        mull r4, r3, r1
        stl  r4, 0(r31)
        halt
    """)
    bound = critical_path(program)
    # ldiq -> addq -> mull -> stl, each producer before its consumer.
    assert bound.chain == sorted(bound.chain)
    assert 3 in bound.chain and 4 in bound.chain
    # 4 chained ops at >= 1 cycle each, mull costs its multiplier latency.
    assert bound.cycles >= 4


def test_bound_covers_only_guaranteed_blocks():
    # The expensive mull sits on a conditional arm: it must not inflate
    # the guaranteed lower bound.
    arm = critical_path(assemble("""
        ldiq r1, 1
        beq  r1, skip
        mull r2, r1, r1
        mull r2, r2, r2
        mull r2, r2, r2
        stl  r2, 0(r31)
    skip:
        halt
    """))
    # Guaranteed path is ldiq -> beq (2 chained cycles); the mull chain on
    # the arm would add >= 3 multiplier latencies if it were counted.
    assert arm.cycles == 2
    assert all(instr_index in (0, 1) for instr_index in arm.chain)


def test_verify_result_carries_the_bound():
    result = verify_program(assemble("ldiq r1, 1\nstl r1, 0(r31)\nhalt"))
    assert result.critical_path == critical_path(
        assemble("ldiq r1, 1\nstl r1, 0(r31)\nhalt")
    ).cycles


def test_as_dict_is_json_shaped():
    bound = critical_path(assemble("ldiq r1, 1\nhalt"))
    payload = bound.as_dict()
    assert payload["config"] == DATAFLOW.name
    assert isinstance(payload["cycles"], int)
    assert all(isinstance(index, int) for index in payload["chain"])
