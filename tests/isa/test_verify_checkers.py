"""Known-bad corpus: one seeded program per checker class.

Each test pins the exact diagnostic -- checker id, severity, and anchoring
instruction index -- so checker regressions are caught precisely, and the
``verify=`` enforcement hooks are exercised at the end.
"""

import pytest

from repro.isa import Features, Imm, KernelBuilder, assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import BEQ, BR, LDL, ROLL, SBOX, STL
from repro.isa.program import Program
from repro.isa.verify import VerificationError, verify_program


def diags(result, checker):
    return [d for d in result.diagnostics if d.checker == checker]


def raw_program(*instructions):
    program = Program()
    for instruction in instructions:
        program.add(instruction)
    return program.finalize()


# --------------------------------------------------------------------- #
# Dataflow lints
# --------------------------------------------------------------------- #

def test_use_before_def():
    result = verify_program(assemble("addq r1, r2, #1\nhalt"))
    (d,) = diags(result, "use-before-def")
    assert (d.severity, d.index, d.detail["reg"]) == ("warning", 0, 2)


def test_use_before_def_only_on_some_path():
    result = verify_program(assemble("""
        ldiq r1, 1
        beq  r1, skip
        ldiq r2, 5
    skip:
        addq r3, r2, #1
        halt
    """))
    (d,) = diags(result, "use-before-def")
    assert (d.index, d.detail["reg"]) == (3, 2)
    assert "some path" in d.message


def test_dead_write():
    result = verify_program(
        assemble("ldiq r1, 5\nldiq r1, 6\nstl r1, 0(r31)\nhalt")
    )
    (d,) = diags(result, "dead-write")
    assert (d.severity, d.index, d.detail["reg"]) == ("warning", 0, 1)


def test_loop_carried_value_is_not_a_dead_write():
    result = verify_program(assemble("""
        ldiq r1, 0
        ldiq r2, 4
    loop:
        addq r1, r1, #1
        subq r2, r2, #1
        bne  r2, loop
        halt
    """))
    assert diags(result, "dead-write") == []


def test_unreachable():
    result = verify_program(assemble("br end\naddq r1, r1, #1\nend: halt"))
    (d,) = diags(result, "unreachable")
    assert (d.severity, d.index) == ("warning", 1)


# --------------------------------------------------------------------- #
# Structural checks
# --------------------------------------------------------------------- #

def test_branch_past_end_is_an_error():
    # finalize() allows target == len; the machine would fall off the end.
    program = raw_program(
        Instruction(BR, target=1),
    )
    result = verify_program(program)
    found = diags(result, "branch-target")
    assert any(d.severity == "error" and d.index == 0 for d in found)


def test_missing_halt_is_an_error():
    result = verify_program(assemble("addq r1, r1, #1"))
    (d,) = diags(result, "branch-target")
    assert (d.severity, d.index) == ("error", 0)
    assert "past the program end" in d.message


def test_unconditional_self_branch_is_an_error():
    program = raw_program(Instruction(BR, target=0), Instruction(0))
    (d,) = diags(verify_program(program), "branch-target")
    assert (d.severity, d.index) == ("error", 0)
    assert "never terminates" in d.message


def test_branch_to_fall_through_is_a_warning():
    program = raw_program(
        Instruction(BEQ, src1=1, target=1),
        Instruction(0),
    )
    (d,) = diags(verify_program(program), "branch-target")
    assert (d.severity, d.index) == ("warning", 0)


def test_range_displacement_error():
    program = raw_program(
        Instruction(LDL, dest=1, src2=2, disp=1 << 20),
        Instruction(0),
    )
    found = diags(verify_program(program), "range")
    assert any(
        d.severity == "error" and d.index == 0
        and d.detail["field"] == "disp" for d in found
    )


def test_range_absolute_idiom_allows_wide_displacement():
    # disp(r31) is the absolute-address idiom: 0xF000 is legal there.
    result = verify_program(assemble("ldl r1, 0xF000(r31)\nhalt"))
    assert diags(result, "range") == []


def test_range_rotate_amount_warning():
    program = raw_program(
        Instruction(ROLL, dest=1, src1=1, lit=45),
        Instruction(0),
    )
    (d,) = diags(verify_program(program), "range")
    assert (d.severity, d.index, d.detail["field"]) == ("warning", 0, "lit")
    assert "executes as 13" in d.message


def test_feature_gate():
    program = assemble("roll r1, r2, #3\nhalt")
    result = verify_program(program, features=Features.NOROT)
    (d,) = diags(result, "feature-gate")
    assert (d.severity, d.index) == ("error", 0)
    assert d.detail == {"required": "ROT", "declared": "NOROT"}
    # The same program is clean at ROT, and ungated without a declared level.
    assert diags(verify_program(program, features=Features.ROT),
                 "feature-gate") == []
    assert diags(verify_program(program), "feature-gate") == []


def test_feature_gate_crypto_ops_need_opt():
    program = assemble("sbox.0.0 r1, r2, r3\nhalt")
    result = verify_program(program, features=Features.ROT)
    (d,) = diags(result, "feature-gate")
    assert (d.severity, d.index, d.detail["required"]) == ("error", 0, "OPT")


def test_scratch_consumed_from_entry_is_an_error():
    result = verify_program(assemble("addq r1, r28, #1\nhalt"))
    (d,) = diags(result, "scratch-discipline")
    assert (d.severity, d.index, d.detail["reg"]) == ("error", 0, 28)


def test_scratch_live_across_back_edge_is_a_warning():
    result = verify_program(assemble("""
        ldiq r28, 1
        ldiq r2, 4
    loop:
        addq r1, r28, #0
        addq r28, r28, #1
        subq r2, r2, #1
        bne  r2, loop
        halt
    """))
    (d,) = diags(result, "scratch-discipline")
    # Anchored at the back-edge branch; r28 is loop-carried.
    assert (d.severity, d.index, d.detail["reg"]) == ("warning", 5, 28)


def test_scratch_local_to_idiom_is_clean():
    kb = KernelBuilder(Features.NOROT)
    a, count = kb.regs("a", "count")
    kb.ldiq(a, 7)
    kb.ldiq(count, 3)
    kb.label("loop")
    kb.rotl32(a, a, 5)  # NOROT idiom uses scratch internally
    kb.subq(count, count, Imm(1))
    kb.bne(count, "loop")
    kb.halt()
    result = verify_program(kb.build(), features=Features.NOROT)
    assert diags(result, "scratch-discipline") == []


# --------------------------------------------------------------------- #
# SBox coherence
# --------------------------------------------------------------------- #

def _sbox_program(sync: bool, aliased_read: bool = False) -> Program:
    kb = KernelBuilder(Features.OPT)
    base, idx, out, val = kb.regs("base", "idx", "out", "val")
    kb.ldiq(base, 0x1000)
    kb.ldiq(idx, 3)
    kb.ldiq(val, 99)
    kb.sbox(out, base, idx, 0, 0)          # seeds table-0 taint on base
    kb.stl(val, base, 8)                   # store through the table base
    if sync:
        kb.sboxsync(0)
    kb.sbox(out, base, idx, 0, 0, aliased=aliased_read)
    kb.halt()
    return kb.build()


def test_sbox_store_without_sync_is_an_error():
    result = verify_program(_sbox_program(sync=False))
    (d,) = diags(result, "sbox-coherence")
    assert (d.severity, d.index, d.detail["table"]) == ("error", 5, 0)


def test_sbox_store_with_sync_is_clean():
    result = verify_program(_sbox_program(sync=True))
    assert diags(result, "sbox-coherence") == []


def test_aliased_sbox_read_is_exempt():
    result = verify_program(_sbox_program(sync=False, aliased_read=True))
    assert diags(result, "sbox-coherence") == []


def test_sbox_dirty_via_derived_pointer():
    kb = KernelBuilder(Features.OPT)
    base, ptr, idx, out, val = kb.regs("base", "ptr", "idx", "out", "val")
    kb.ldiq(base, 0x1000)
    kb.ldiq(idx, 1)
    kb.ldiq(val, 7)
    kb.sbox(out, base, idx, 0, 2)
    kb.s4addq(ptr, idx, base)              # derived pointer into the table
    kb.stl(val, ptr, 0)
    kb.sbox(out, base, idx, 0, 2)
    kb.halt()
    result = verify_program(kb.build())
    (d,) = diags(result, "sbox-coherence")
    assert (d.index, d.detail["table"]) == (6, 2)


def test_sbox_sync_on_only_one_path_still_errors():
    program = raw_program(
        Instruction(28, dest=1, lit=0x1000),               # ldiq base
        Instruction(28, dest=2, lit=0),                    # ldiq idx
        Instruction(SBOX, dest=3, src1=1, src2=2, table=1),
        Instruction(STL, src1=2, src2=1, disp=0),          # dirty table 1
        Instruction(BEQ, src1=2, target=6),                # skip the sync
        Instruction(58, table=1),                          # sboxsync.1
        Instruction(SBOX, dest=3, src1=1, src2=2, table=1),
        Instruction(0),
    )
    (d,) = diags(verify_program(program), "sbox-coherence")
    assert (d.severity, d.index) == ("error", 6)


# --------------------------------------------------------------------- #
# Enforcement hooks
# --------------------------------------------------------------------- #

def test_assemble_verify_hook_raises():
    with pytest.raises(VerificationError) as excinfo:
        assemble("addq r1, r2, #1\nhalt", verify="warning")
    assert any(d.checker == "use-before-def"
               for d in excinfo.value.result.diagnostics)


def test_assemble_verify_hook_passes_clean_code():
    program = assemble("ldiq r2, 1\naddq r1, r2, #1\nstl r1, 0(r31)\nhalt",
                       verify="warning")
    assert program.finalized


def test_builder_verify_hook_checks_feature_gate():
    kb = KernelBuilder(Features.OPT)
    a, b = kb.regs("a", "b")
    kb.ldiq(a, 1)
    kb.roll(b, a, Imm(3))
    kb.ldiq(b, 2)  # dead write
    kb.stl(b, kb.zero, 0x100)
    kb.halt()
    with pytest.raises(VerificationError, match="dead-write"):
        kb.build(verify="warning")


def test_builder_verify_hook_threshold():
    kb = KernelBuilder(Features.OPT)
    a = kb.reg("a")
    kb.ldiq(a, 1)
    kb.ldiq(a, 2)  # dead write: a warning, below the "error" threshold
    kb.stl(a, kb.zero, 0x100)
    kb.halt()
    assert kb.build(verify="error").finalized


def test_assembler_rejects_unknown_verify_threshold():
    with pytest.raises(ValueError, match="unknown severity"):
        assemble("halt", verify="fatal")


# --------------------------------------------------------------------- #
# Lattice-backed lints (value range, width, store forwarding)
# --------------------------------------------------------------------- #

def test_value_range_register_amount_overflow():
    # r1 provably holds 100 > 63, used as a register shift amount.
    result = verify_program(assemble("""
        ldiq r1, 100
        ldiq r2, 1
        sll  r3, r2, r1
        stl  r3, 0x100(r31)
        halt
    """))
    (d,) = diags(result, "value-range")
    assert (d.severity, d.index) == ("warning", 2)
    assert (d.detail["reg"], d.detail["lo"], d.detail["mask"]) == (1, 100, 63)


def test_value_range_silent_when_amount_fits():
    result = verify_program(assemble("""
        ldiq r1, 13
        ldiq r2, 1
        sll  r3, r2, r1
        stl  r3, 0x100(r31)
        halt
    """))
    assert diags(result, "value-range") == []


def test_width_trunc_widening_at_join():
    # Fall-through path widens r1 to 41 bits; the join keeps the maximum,
    # so the 32-bit rotate after the join provably truncates.
    result = verify_program(assemble("""
        ldiq r1, 1
        ldiq r4, 0
        beq  r4, wide
        sll  r1, r1, #40
    wide:
        roll r2, r1, #3
        stl  r2, 0x100(r31)
        halt
    """))
    (d,) = diags(result, "width-trunc")
    assert (d.severity, d.index) == ("warning", 4)
    assert (d.detail["reg"], d.detail["width"]) == (1, 41)


def test_width_trunc_silent_on_narrow_operand():
    result = verify_program(assemble("""
        ldiq r1, 7
        roll r2, r1, #3
        stl  r2, 0x100(r31)
        halt
    """))
    assert diags(result, "width-trunc") == []


def test_store_forward_partial_overlap():
    # The 8-byte load starts 4 bytes into the 8-byte store: the queue
    # entry covers only half the load.
    result = verify_program(assemble("""
        ldiq r1, 77
        stq  r1, 0x800(r31)
        ldq  r2, 0x804(r31)
        stl  r2, 0x900(r31)
        halt
    """))
    (d,) = diags(result, "store-forward")
    assert (d.severity, d.index, d.detail["store"]) == ("warning", 2, 1)
    assert d.detail["load_bytes"] == [0x804, 0x80C]
    assert d.detail["store_bytes"] == [0x800, 0x808]


def test_store_forward_contained_load_is_silent():
    result = verify_program(assemble("""
        ldiq r1, 77
        stq  r1, 0x800(r31)
        ldl  r2, 0x800(r31)
        stl  r2, 0x900(r31)
        halt
    """))
    assert diags(result, "store-forward") == []


def test_store_forward_distance_ages_out_of_the_queue():
    # 32 younger stores separate the producing store from its load: the
    # entry can leave the smallest shipped (32-entry) store queue.
    filler = "\n".join(
        f"stq r1, {0xA00 + 8 * k:#x}(r31)" for k in range(32)
    )
    result = verify_program(assemble(f"""
        ldiq r1, 77
        stq  r1, 0x800(r31)
        {filler}
        ldq  r2, 0x800(r31)
        stl  r2, 0x900(r31)
        halt
    """))
    (d,) = diags(result, "store-forward")
    assert (d.severity, d.index) == ("warning", 34)
    assert (d.detail["store"], d.detail["distance"]) == (1, 32)


def test_store_forward_unknown_store_vetoes():
    # The intervening store through an unproved pointer could re-cover
    # the load, so no diagnostic may fire.
    result = verify_program(assemble("""
        ldiq r1, 77
        ldq  r3, 0xC00(r31)
        stq  r1, 0x800(r31)
        stq  r1, 0(r3)
        ldq  r2, 0x804(r31)
        stl  r2, 0x900(r31)
        halt
    """))
    assert diags(result, "store-forward") == []


def test_store_forward_aliased_sbox_base_store():
    # A byte store into the proved SBOX entry the aliased read consumes:
    # 1 byte cannot forward a 4-byte table entry.
    kb = KernelBuilder(Features.OPT)
    base, idx, out, val = kb.regs("base", "idx", "out", "val")
    kb.ldiq(base, 0x1000)
    kb.ldiq(idx, 3)
    kb.ldiq(val, 99)
    kb.stb(val, base, 13)                   # one byte of entry [0x100C,0x1010)
    kb.sbox(out, base, idx, 0, 0, aliased=True)
    kb.stl(out, kb.zero, 0x900)
    kb.halt()
    result = verify_program(kb.build())
    (d,) = diags(result, "store-forward")
    assert (d.severity, d.index, d.detail["store"]) == ("warning", 4, 3)
    assert d.detail["load_bytes"] == [0x100C, 0x1010]
    assert d.detail["store_bytes"] == [0x100D, 0x100E]
