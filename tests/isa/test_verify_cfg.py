"""CFG construction, dominators, and dataflow analyses of the verifier."""

import pytest

from repro.isa import assemble
from repro.isa.verify import CFG, ENTRY, Liveness, ReachingDefs

LOOP = """
    ldiq r1, 0
    ldiq r2, 10
loop:
    addq r1, r1, #1
    subq r2, r2, #1
    bne  r2, loop
    halt
"""

DIAMOND = """
    ldiq r1, 1
    beq  r1, left
    ldiq r2, 2
    br   join
left:
    ldiq r2, 3
join:
    addq r3, r2, #1
    halt
"""


def test_loop_blocks_and_edges():
    cfg = CFG(assemble(LOOP))
    # Blocks: [0,2) preamble, [2,5) body, [5,6) halt.
    assert [(b.start, b.end) for b in cfg.blocks] == [(0, 2), (2, 5), (5, 6)]
    assert cfg.blocks[0].successors == [1]
    assert sorted(cfg.blocks[1].successors) == [1, 2]
    assert cfg.blocks[2].successors == []
    assert cfg.blocks[2].halts
    assert cfg.back_edges() == [(1, 1)]


def test_loop_dominators_and_guaranteed():
    cfg = CFG(assemble(LOOP))
    assert cfg.idom[1] == 0
    assert cfg.idom[2] == 1
    assert cfg.dominates(0, 2)
    assert cfg.dominates(1, 2)
    assert not cfg.dominates(2, 1)
    # Every block lies on the single entry-to-exit path.
    assert cfg.guaranteed == {0, 1, 2}


def test_diamond_guaranteed_excludes_arms():
    cfg = CFG(assemble(DIAMOND))
    join = cfg.block_of[6]
    assert cfg.idom[join] == 0
    assert cfg.guaranteed == {0, join}
    assert cfg.back_edges() == []


def test_unreachable_block_is_outside_rpo():
    cfg = CFG(assemble("br end\naddq r1, r1, #1\nend: halt"))
    assert len(cfg.blocks) == 3
    assert cfg.block_of[1] not in cfg.reachable


def test_reaching_defs_entry_and_merge():
    program = assemble(DIAMOND)
    cfg = CFG(program)
    rdefs = ReachingDefs(cfg)
    # r2 at the join merges both arm definitions, no entry value.
    join_in = rdefs.block_in[cfg.block_of[6]]
    assert join_in[2] == frozenset({2, 4})
    # r4 is never defined anywhere: entry value everywhere.
    assert join_in[4] == frozenset({ENTRY})


def test_unique_dominating_def():
    program = assemble(LOOP)
    cfg = CFG(program)
    rdefs = ReachingDefs(cfg)
    # The bne at 4 reads r2, defined only by the subq at 3 (the ldiq at 1
    # never reaches past it); same-block def dominates the use.
    assert rdefs.unique_dominating_def(4, 2) == 3
    # The addq at 2 reads r1 with two reaching defs (ldiq and itself).
    assert rdefs.unique_dominating_def(2, 1) is None


def test_unique_dominating_def_rejects_arm_defs():
    program = assemble(DIAMOND)
    cfg = CFG(program)
    rdefs = ReachingDefs(cfg)
    # addq at 6 reads r2: two reaching defs, no unique producer.
    assert rdefs.unique_dominating_def(6, 2) is None


def test_liveness_around_loop():
    program = assemble(LOOP)
    cfg = CFG(program)
    live = Liveness(cfg)
    body = cfg.block_of[2]
    # Both loop registers are live around the back edge.
    assert {1, 2} <= set(live.live_in[body])
    # Nothing is live after the bne into the halt block.
    assert live.live_out[cfg.block_of[5]] == frozenset()
    # After the addq at 2, r2 is still needed by the subq/bne.
    assert 2 in live.live_after(2)


def test_cfg_requires_finalized_program():
    from repro.isa.program import Program

    with pytest.raises(ValueError, match="finalized"):
        CFG(Program())
