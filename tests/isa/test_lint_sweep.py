"""The shipped-program lint sweep, pinned diagnostic by diagnostic.

``python -m repro.tools.lint --all`` covers every registered cipher
kernel (all three feature levels, both directions) plus every key-setup
program -- 56 programs.  This test runs the identical sweep in-process
and pins the *entire* expected diagnostic set: which programs report
anything at all, and the exact (checker, severity, index) of every
finding.  A new checker that fires anywhere else, or a regression that
silences a known finding, changes this list and fails loudly.

The known findings:

* ``setup/IDEA`` and ``setup/Twofish`` each carry one pre-existing
  ``dead-write`` warning (final loop-carried updates never read back);
* ``setup/Mars`` trips the ``store-forward`` checker 26 times: its key
  schedule fills the S-box region with hundreds of stores, then the
  mixing pass re-loads words stored 97-260 stores earlier -- far past
  the smallest shipped (32-entry) store queue.
"""

import pytest

from repro.kernels import KERNEL_NAMES
from repro.kernels.setup_registry import SETUP_KERNELS
from repro.tools.cli import FEATURE_LEVELS
from repro.tools.lint import (
    iter_kernel_programs,
    iter_setup_programs,
    lint_programs,
)

#: Every (checker, severity, index) expected from the full sweep, keyed
#: by program name.  Programs absent from this table must verify clean.
EXPECTED = {
    "setup/IDEA": [("dead-write", "warning", 127)],
    "setup/Mars": [
        ("store-forward", "warning", index) for index in (
            2507, 2549, 2554, 2596, 2601, 2643, 2648, 2690, 2695, 2737,
            2742, 2784, 2789, 2831, 2836, 2878, 2883, 2925, 2930, 2972,
            2977, 3019, 3024, 3066, 3071, 3113,
        )
    ],
    "setup/Twofish": [("dead-write", "warning", 2584)],
}


@pytest.fixture(scope="module")
def sweep():
    levels = [FEATURE_LEVELS[key] for key in ("norot", "rot", "opt")]
    programs = list(iter_kernel_programs(KERNEL_NAMES, levels))
    programs.extend(iter_setup_programs(sorted(SETUP_KERNELS)))
    return lint_programs(programs)


def test_sweep_covers_all_56_shipped_programs(sweep):
    assert len(sweep) == 56


def test_sweep_diagnostics_are_exactly_the_pinned_set(sweep):
    actual = {
        result.name: [
            (d.checker, d.severity, d.index) for d in result.diagnostics
        ]
        for result in sweep if result.diagnostics
    }
    assert actual == EXPECTED


def test_sweep_has_no_errors(sweep):
    # The CI gate: warnings are tracked, errors are fatal.
    assert all(not result.errors for result in sweep)
