"""Tests for the KernelBuilder's register allocation and idiom expansion."""

import pytest

from repro.isa import Features, Imm, KernelBuilder
from repro.isa import opcodes as op
from repro.sim import Machine, Memory
from repro.util.bits import rotl32, rotr32


def run_builder(kb: KernelBuilder, memory: Memory | None = None) -> Memory:
    memory = memory or Memory(1 << 16)
    Machine(kb.build(), memory).execute()
    return memory


def test_register_allocation_is_stable():
    kb = KernelBuilder()
    a = kb.reg("a")
    assert kb.reg("a") == a
    b = kb.reg("b")
    assert a != b


def test_register_exhaustion():
    kb = KernelBuilder()
    for i in range(28):  # 32 - zero - 3 scratch
        kb.reg(f"v{i}")
    with pytest.raises(RuntimeError):
        kb.reg("one_too_many")


def test_free_recycles_registers():
    kb = KernelBuilder()
    a = kb.reg("a")
    kb.free("a")
    assert kb.reg("b") == a


def test_crypto_emits_rejected_below_feature_level():
    kb = KernelBuilder(Features.NOROT)
    with pytest.raises(RuntimeError):
        kb.roll(kb.reg("a"), kb.reg("b"), Imm(3))
    kb_rot = KernelBuilder(Features.ROT)
    with pytest.raises(RuntimeError):
        kb_rot.mulmod(kb_rot.reg("a"), kb_rot.reg("b"), kb_rot.reg("c"))


@pytest.mark.parametrize("features", list(Features))
@pytest.mark.parametrize("amount", [0, 1, 13, 31])
def test_rotl32_idiom_all_levels(features, amount):
    kb = KernelBuilder(features)
    a, d = kb.reg("a"), kb.reg("d")
    kb.ldiq(a, 0xDEADBEEF)
    kb.rotl32(d, a, amount)
    kb.stq(d, kb.zero, 0x400)
    kb.halt()
    memory = run_builder(kb)
    assert memory.read(0x400, 8) == rotl32(0xDEADBEEF, amount)


@pytest.mark.parametrize("features", list(Features))
@pytest.mark.parametrize("amount", [0, 5, 31, 33])
def test_rotl32_var_idiom_all_levels(features, amount):
    kb = KernelBuilder(features)
    a, n, d = kb.regs("a", "n", "d")
    kb.ldiq(a, 0x12345678)
    kb.ldiq(n, amount)
    kb.rotl32_var(d, a, n)
    kb.stq(d, kb.zero, 0x400)
    kb.halt()
    memory = run_builder(kb)
    assert memory.read(0x400, 8) == rotl32(0x12345678, amount & 31)


@pytest.mark.parametrize("features", list(Features))
@pytest.mark.parametrize("amount", [1, 7, 24])
def test_rotr32_var_idiom_all_levels(features, amount):
    kb = KernelBuilder(features)
    a, n, d = kb.regs("a", "n", "d")
    kb.ldiq(a, 0x12345678)
    kb.ldiq(n, amount)
    kb.rotr32_var(d, a, n)
    kb.stq(d, kb.zero, 0x400)
    kb.halt()
    memory = run_builder(kb)
    assert memory.read(0x400, 8) == rotr32(0x12345678, amount)


@pytest.mark.parametrize("features", list(Features))
def test_rotl32_xor_idiom(features):
    kb = KernelBuilder(features)
    a, d = kb.regs("a", "d")
    kb.ldiq(a, 0xCAFEBABE)
    kb.ldiq(d, 0x11111111)
    kb.rotl32_xor(d, a, 9)
    kb.stq(d, kb.zero, 0x400)
    kb.halt()
    memory = run_builder(kb)
    assert memory.read(0x400, 8) == rotl32(0xCAFEBABE, 9) ^ 0x11111111


@pytest.mark.parametrize("features", list(Features))
def test_sbox_lookup_idiom(features):
    memory = Memory(1 << 16)
    table_base = 0x2000
    for i in range(256):
        memory.write(table_base + 4 * i, 0x5500 | i, 4)
    kb = KernelBuilder(features)
    base, idx, d = kb.regs("base", "idx", "d")
    kb.ldiq(base, table_base)
    kb.ldiq(idx, 0x00AB12CD)
    kb.sbox_lookup(d, base, idx, byte_index=2, table_id=1)
    kb.stq(d, kb.zero, 0x400)
    kb.halt()
    run_builder(kb, memory)
    assert memory.read(0x400, 8) == 0x55AB


@pytest.mark.parametrize("features", list(Features))
@pytest.mark.parametrize("a,b", [(0, 0), (0, 5), (7, 0), (3, 5),
                                 (0xFFFF, 0xFFFF), (1, 0x8000)])
def test_mulmod16_idiom(features, a, b):
    from repro.ciphers.idea import mul_mod

    kb = KernelBuilder(features)
    ra, rb, d = kb.regs("a", "b", "d")
    kb.ldiq(ra, a)
    kb.ldiq(rb, b)
    kb.mulmod16(d, ra, rb)
    kb.stq(d, kb.zero, 0x400)
    kb.halt()
    memory = run_builder(kb)
    assert memory.read(0x400, 8) == mul_mod(a, b)


def test_mulmod16_opt_is_single_instruction():
    kb = KernelBuilder(Features.OPT)
    a, b, d = kb.regs("a", "b", "d")
    before = len(kb.program)
    kb.mulmod16(d, a, b)
    assert len(kb.program) - before == 1


def test_mulmod16_baseline_is_software_sequence():
    kb = KernelBuilder(Features.ROT)
    a, b, d = kb.regs("a", "b", "d")
    before = len(kb.program)
    kb.mulmod16(d, a, b)
    assert len(kb.program) - before > 5


def test_permute64_idiom():
    import random

    random.seed(9)
    permutation = list(range(64))
    random.shuffle(permutation)
    kb = KernelBuilder(Features.OPT)
    src, dst = kb.reg("src"), kb.reg("dst")
    map_regs = kb.regs(*[f"map{i}" for i in range(8)])
    value = random.getrandbits(64)
    kb.ldiq(src, value)
    for byte_index in range(8):
        m = 0
        for j in range(8):
            m |= permutation[8 * byte_index + j] << (6 * j)
        kb.ldiq(map_regs[byte_index], m)
    kb.permute64(dst, src, map_regs)
    kb.stq(dst, kb.zero, 0x400)
    kb.halt()
    memory = run_builder(kb)
    expected = 0
    for out_bit in range(64):
        expected |= ((value >> permutation[out_bit]) & 1) << out_bit
    assert memory.read(0x400, 8) == expected


def test_permute64_instruction_count_matches_paper():
    """8 XBOX + 7 OR: the 64-bit analogue of the paper's 7-instruction case."""
    kb = KernelBuilder(Features.OPT)
    src, dst = kb.reg("src"), kb.reg("dst")
    map_regs = kb.regs(*[f"map{i}" for i in range(8)])
    before = len(kb.program)
    kb.permute64(dst, src, map_regs)
    assert len(kb.program) - before == 15


def test_rotate_count_matches_paper():
    """Constant rotate: 3 instructions without rotates, 1 with (paper sec 6)."""
    kb = KernelBuilder(Features.NOROT)
    a, d = kb.regs("a", "d")
    before = len(kb.program)
    kb.rotl32(d, a, 13)
    assert len(kb.program) - before == 3
    kb2 = KernelBuilder(Features.ROT)
    a2, d2 = kb2.regs("a", "d")
    before = len(kb2.program)
    kb2.rotl32(d2, a2, 13)
    assert len(kb2.program) - before == 1


def test_sbox_count_matches_paper():
    """SBox access: 3 instructions baseline, 1 optimized (paper sec 6)."""
    for features, expected in [(Features.ROT, 3), (Features.OPT, 1)]:
        kb = KernelBuilder(features)
        base, idx, d = kb.regs("base", "idx", "d")
        before = len(kb.program)
        kb.sbox_lookup(d, base, idx, byte_index=0, table_id=0)
        assert len(kb.program) - before == expected


def test_category_tagging():
    kb = KernelBuilder(Features.NOROT)
    a, d = kb.regs("a", "d")
    kb.rotl32(d, a, 5)
    categories = {i.category for i in kb.program.instructions}
    assert categories == {op.ROTATE}
