"""Zero-false-positive guarantees over the shipped and generated programs.

The lint suite is only useful if the real kernels come out clean: every
shipped cipher kernel must produce zero diagnostics, the key-setup
programs zero errors, and hypothesis-generated machine-executable
programs zero errors (generated code legitimately contains dead writes,
which are warnings).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Features, Imm, KernelBuilder
from repro.isa.verify import verify_program
from repro.kernels import KERNEL_NAMES
from repro.kernels.registry import make_kernel
from repro.kernels.setup_registry import SETUP_KERNELS, make_setup

ALL_FEATURES = (Features.NOROT, Features.ROT, Features.OPT)


def _kernel_cases():
    for name in KERNEL_NAMES:
        for features in ALL_FEATURES:
            for decrypt in (False, True):
                yield pytest.param(
                    name, features, decrypt,
                    id=f"{name}-{features.label}-"
                       f"{'dec' if decrypt else 'enc'}",
                )


@pytest.mark.parametrize("name, features, decrypt", _kernel_cases())
def test_shipped_kernels_lint_clean(name, features, decrypt):
    kernel = make_kernel(name, features=features)
    session = kernel.block_bytes * 2 if kernel.block_bytes > 1 else 64
    try:
        program = kernel.program_for(session, decrypt=decrypt)
    except NotImplementedError:
        pytest.skip(f"{name} has no decrypt kernel")
    result = verify_program(program, features=features, name=name)
    assert result.diagnostics == [], "\n".join(
        d.render() for d in result.diagnostics
    )


@pytest.mark.parametrize("name", sorted(SETUP_KERNELS))
def test_setup_programs_have_no_errors(name):
    setup = make_setup(name)
    program = setup.build_program(setup.layout())
    result = verify_program(program, name=f"setup/{name}")
    assert result.errors == [], "\n".join(
        d.render() for d in result.errors
    )


# --------------------------------------------------------------------- #
# Property: machine-executable generated programs lint without errors
# --------------------------------------------------------------------- #

_OPS = ("addq", "subq", "xor", "and_", "bis", "sll", "srl", "mull",
        "roll", "rotl32ish")


@st.composite
def random_programs(draw):
    """A random terminating loop (same shape as the timing properties)."""
    kb = KernelBuilder(Features.OPT)
    regs = kb.regs("a", "b", "c", "d")
    counter = kb.reg("count")
    for reg in regs:
        kb.ldiq(reg, draw(st.integers(0, 0xFFFFFFFF)))
    kb.ldiq(counter, draw(st.integers(1, 12)))
    kb.label("loop")
    for _ in range(draw(st.integers(1, 12))):
        op = draw(st.sampled_from(_OPS))
        dst = draw(st.sampled_from(regs))
        src = draw(st.sampled_from(regs))
        if op == "rotl32ish":
            kb.rotl32(dst, src, draw(st.integers(0, 31)))
        elif op in ("sll", "srl", "roll"):
            getattr(kb, op)(dst, src, Imm(draw(st.integers(0, 31))))
        else:
            getattr(kb, op)(dst, src, draw(st.sampled_from(regs)))
    if draw(st.booleans()):
        kb.stq(regs[0], kb.zero, 0x800)
        kb.ldq(regs[1], kb.zero, 0x800)
    kb.subq(counter, counter, Imm(1))
    kb.bne(counter, "loop")
    kb.halt()
    return kb.build()


@given(random_programs())
@settings(max_examples=40, deadline=None)
def test_generated_programs_have_no_errors(program):
    """Builder-produced executable programs never trip an *error* checker.

    Generated code routinely overwrites values it never read (dead-write
    warnings) -- but use-before-def, branch, range, feature, scratch and
    coherence errors would all be verifier false positives here.
    """
    result = verify_program(program, features=Features.OPT)
    assert result.errors == [], "\n".join(
        d.render() for d in result.errors
    )
