"""Tests for the text assembler: syntax, labels, errors, listings."""

import pytest

from repro.isa import AssemblyError, assemble
from repro.isa import opcodes as op


def test_labels_and_comments():
    program = assemble("""
    ; setup
    ldiq r1, 5
top:  subq r1, r1, #1
    bne r1, top     ; loop back
    halt
    """)
    assert program.labels["top"] == 1
    assert program.instructions[2].target == 1


def test_forward_label():
    program = assemble("""
    br end
    addq r1, r1, #1
end:
    halt
    """)
    assert program.instructions[0].target == 2


def test_undefined_label_rejected():
    with pytest.raises((AssemblyError, ValueError)):
        assemble("br nowhere\nhalt")


def test_duplicate_label_rejected():
    with pytest.raises((AssemblyError, ValueError)):
        assemble("x: halt\nx: halt")


def test_unknown_mnemonic():
    with pytest.raises(AssemblyError, match="unknown mnemonic"):
        assemble("frobnicate r1, r2, r3")


def test_bad_register():
    with pytest.raises(AssemblyError):
        assemble("addq r1, r99, r2")


def test_literal_operand():
    program = assemble("xor r1, r2, #255\nhalt")
    instruction = program.instructions[0]
    assert instruction.lit == 255
    assert instruction.src2 is None


def test_hex_literals_and_negative_disp():
    program = assemble("""
    ldiq r1, 0xDEAD
    ldl r2, -8(r3)
    halt
    """)
    assert program.instructions[0].lit == 0xDEAD
    assert program.instructions[1].disp == -8


def test_store_operand_order():
    program = assemble("stl r4, 12(r5)\nhalt")
    instruction = program.instructions[0]
    assert instruction.src1 == 4      # value
    assert instruction.src2 == 5      # base
    assert instruction.disp == 12


def test_sbox_modifiers():
    program = assemble("sbox.2.3.a r1, r2, r3\nhalt")
    instruction = program.instructions[0]
    assert instruction.table == 2
    assert instruction.bsel == 3
    assert instruction.aliased
    plain = assemble("sbox.1.0 r1, r2, r3\nhalt").instructions[0]
    assert not plain.aliased


def test_sbox_requires_modifiers():
    with pytest.raises(AssemblyError):
        assemble("sbox r1, r2, r3")


def test_sboxsync_table():
    program = assemble("sboxsync.3\nhalt")
    assert program.instructions[0].table == 3


def test_xbox_byte_modifier():
    program = assemble("xbox.5 r1, r2, r3\nhalt")
    assert program.instructions[0].bsel == 5


def test_zero_alias():
    program = assemble("addq r1, zero, #1\nhalt")
    assert program.instructions[0].src1 == 31


def test_listing_roundtrips_mnemonics():
    program = assemble("""
start:
    addq r1, r2, r3
    ldl r4, 8(r5)
    beq r1, start
    halt
    """)
    listing = program.listing()
    assert "start:" in listing
    assert "addq r1" in listing
    assert "ldl r4, 8(r5)" in listing


def test_finalized_program_rejects_additions():
    from repro.isa.instruction import Instruction

    program = assemble("halt")
    with pytest.raises(RuntimeError):
        program.add(Instruction(op.HALT))


# --------------------------------------------------------------------- #
# Diagnostic positions: line, column, offending token
# --------------------------------------------------------------------- #

def test_unknown_mnemonic_position():
    with pytest.raises(AssemblyError) as excinfo:
        assemble("halt\nfrobnicate r1, r2, r3")
    error = excinfo.value
    assert (error.line, error.column, error.token) == (2, 1, "frobnicate")
    assert "line 2, column 1" in str(error)


def test_bad_register_position():
    with pytest.raises(AssemblyError) as excinfo:
        assemble("addq r1, r99, r2")
    error = excinfo.value
    assert (error.line, error.column, error.token) == (1, 10, "r99")


def test_bad_integer_position():
    with pytest.raises(AssemblyError) as excinfo:
        assemble("ldiq r1, 1\naddq r1, r2, #zzz")
    error = excinfo.value
    assert (error.line, error.column, error.token) == (2, 15, "zzz")


def test_bad_address_position():
    with pytest.raises(AssemblyError) as excinfo:
        assemble("ldl r2, 8[r3]")
    error = excinfo.value
    assert (error.line, error.column, error.token) == (1, 9, "8[r3]")
    assert "expected disp(rN)" in str(error)


def test_wrong_operand_count_reports_syntax():
    with pytest.raises(AssemblyError) as excinfo:
        assemble("addq r1, r2")
    error = excinfo.value
    assert error.line == 1
    assert "expected 3 operand(s)" in str(error)
    assert "dest, ra, rb-or-#lit" in str(error)


def test_error_carries_source_line():
    with pytest.raises(AssemblyError) as excinfo:
        assemble("ldiq r1, 1\n    addq r1, r99, r2  ; oops")
    assert "addq r1, r99, r2" in excinfo.value.source_line


def test_column_accounts_for_indentation():
    with pytest.raises(AssemblyError) as excinfo:
        assemble("        addq r1, r99, r2")
    assert excinfo.value.column == 18


# --------------------------------------------------------------------- #
# Emit-time validation in the builder (shared range tables)
# --------------------------------------------------------------------- #

def test_builder_rejects_wide_displacement_at_emit():
    from repro.isa import Features, KernelBuilder

    kb = KernelBuilder(Features.OPT)
    a = kb.reg("a")
    kb.ldiq(a, 1)
    with pytest.raises(ValueError, match="disp"):
        kb.stl(a, a, 1 << 20)


def test_builder_allows_absolute_idiom_displacement():
    from repro.isa import Features, KernelBuilder

    kb = KernelBuilder(Features.OPT)
    a = kb.reg("a")
    kb.ldiq(a, 1)
    kb.stl(a, kb.zero, 0xF000)  # absolute address through r31 is fine
    kb.halt()
    assert kb.build().finalized


def test_builder_rejects_wide_operate_literal_at_emit():
    from repro.isa import Features, Imm, KernelBuilder

    kb = KernelBuilder(Features.OPT)
    a = kb.reg("a")
    kb.ldiq(a, 1)
    with pytest.raises(ValueError, match="lit"):
        kb.addq(a, a, Imm(300))


def test_assembler_rejects_wide_displacement():
    with pytest.raises((AssemblyError, ValueError), match="disp"):
        assemble("ldl r1, 0x100000(r2)\nhalt")
