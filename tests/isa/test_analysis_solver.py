"""The shared worklist solver and lattice fixpoints (`repro.isa.analysis`).

Covers the generic :func:`iterate` worklist, the array-level block
decomposition, the generic :func:`infer_dataflow` driver with each
shipped lattice, and the compatibility shims that keep the historical
``repro.isa.verify.cfg`` / ``repro.isa.verify.dataflow`` paths alive.
"""

from repro.isa import Features, Imm, KernelBuilder, assemble
from repro.isa.analysis import (
    block_successors,
    infer_constants,
    infer_ranges,
    infer_trailing_zeros,
    infer_widths,
    iterate,
    make_const_step,
    make_range_step,
    make_tz_step,
    make_width_step,
    split_blocks,
)
from repro.isa.analysis.passes import ProgramArrays, analyses_for


def arrays_for(source: str) -> ProgramArrays:
    return ProgramArrays(assemble(source))


def decompose(arrays: ProgramArrays):
    blocks, block_of = split_blocks(arrays.code, arrays.target, arrays.n)
    succs = block_successors(blocks, arrays.code, arrays.target, arrays.n)
    return blocks, block_of, succs


# -- iterate ----------------------------------------------------------------

def test_iterate_runs_fifo_until_quiescent():
    visits = []

    def process(item):
        visits.append(item)
        # The last seed item re-enqueues 0, which has already drained.
        return [0] if item == 2 and visits.count(2) == 1 else []

    iterate([0, 1, 2], process)
    assert visits == [0, 1, 2, 0]


def test_iterate_deduplicates_pending_items():
    visits = []

    def process(item):
        visits.append(item)
        # Both 0 and 1 ask for 3; only the first enqueue sticks.
        return [3] if item in (0, 1) else []

    iterate([0, 1, 2], process)
    assert visits == [0, 1, 2, 3]


# -- block decomposition ----------------------------------------------------

LOOP = """
    ldiq r1, 4
    ldiq r2, 0
loop:
    addq r2, r2, #1
    subq r1, r1, #1
    bne  r1, loop
    stl  r2, 0x100(r31)
    halt
"""


def test_split_blocks_leaders_at_targets_and_fallthroughs():
    arrays = arrays_for(LOOP)
    blocks, block_of = split_blocks(arrays.code, arrays.target, arrays.n)
    # Leaders: entry, the loop target (2), and the post-branch index (5).
    assert blocks == [(0, 2), (2, 5), (5, 7)]
    assert block_of == {0: 0, 2: 1, 5: 2}


def test_block_successors_include_branch_target_and_fallthrough():
    arrays = arrays_for(LOOP)
    _blocks, _block_of, succs = decompose(arrays)
    assert succs[0] == (2,)            # fallthrough into the loop body
    assert succs[1] == (2, 5)          # back edge + exit
    assert succs[2] == ()              # HALT ends the program


# -- the lattices through the generic driver --------------------------------

def test_constants_propagate_and_join_to_top():
    arrays = arrays_for("""
        ldiq r1, 10
        ldiq r3, 0
        beq  r3, join
        ldiq r1, 20
    join:
        addq r2, r1, #1
        halt
    """)
    blocks, block_of, succs = decompose(arrays)
    entry = infer_constants(blocks, block_of, succs,
                            make_const_step(arrays))
    join_block = block_of[4]
    assert entry[join_block][3] == 0          # r3 constant on every path
    assert entry[join_block][1] is None       # r1 is 10 or 20: TOP


def test_widths_widen_at_joins():
    arrays = arrays_for("""
        ldiq r1, 1
        ldiq r4, 0
        beq  r4, wide
        sll  r1, r1, #40
    wide:
        addq r2, r1, #0
        halt
    """)
    blocks, block_of, succs = decompose(arrays)
    entry = infer_widths(blocks, block_of, succs, make_width_step(arrays))
    assert entry[block_of[4]][1] == 41        # max(1, 1 + 40)
    assert entry[0][1] == 64                  # lattice top at program entry


def test_trailing_zeros_track_shifts():
    arrays = arrays_for("""
        ldiq r1, 8
        sll  r2, r1, #2
        addq r3, r2, r2
        halt
    """)
    blocks, block_of, succs = decompose(arrays)
    # The driver accepts the tz lattice (single block: entry facts only).
    entry = infer_trailing_zeros(blocks, block_of, succs,
                                 make_tz_step(arrays))
    assert entry[0][1] == 0                   # tz top is "no known zeros"
    # The transfer function itself, straight-line:
    step = make_tz_step(arrays)
    state = [0] * 33
    for i in range(arrays.n):
        step(state, i)
    assert state[1] == 3                      # ldiq 8
    assert state[2] == 5                      # << 2
    assert state[3] == 5                      # addq keeps min of operands


def test_ranges_widen_loop_carried_counters_to_top():
    arrays = arrays_for(LOOP)
    blocks, block_of, succs = decompose(arrays)
    entry = infer_ranges(blocks, block_of, succs, make_range_step(arrays))
    loop_block = block_of[2]
    # r2 increments every iteration: the interval must widen to TOP
    # (None) instead of chasing the bound forever.
    assert entry[loop_block][2] is None
    assert entry[loop_block][1] is None       # r1 decrements via SUBQ


def test_ranges_join_is_the_interval_hull():
    arrays = arrays_for("""
        ldiq r3, 0
        beq  r3, other
        ldiq r1, 10
        br   join
    other:
        ldiq r1, 90
    join:
        addq r2, r1, #0
        halt
    """)
    blocks, block_of, succs = decompose(arrays)
    entry = infer_ranges(blocks, block_of, succs, make_range_step(arrays))
    assert entry[block_of[5]][1] == (10, 90)


# -- compatibility shims ----------------------------------------------------

def test_verify_cfg_and_dataflow_shims_reexport_analysis():
    import repro.isa.analysis.cfg as analysis_cfg
    import repro.isa.analysis.dataflow as analysis_dataflow
    import repro.isa.verify.cfg as verify_cfg
    import repro.isa.verify.dataflow as verify_dataflow

    assert verify_cfg.CFG is analysis_cfg.CFG
    assert verify_cfg.BasicBlock is analysis_cfg.BasicBlock
    assert verify_dataflow.ReachingDefs is analysis_dataflow.ReachingDefs
    assert verify_dataflow.Liveness is analysis_dataflow.Liveness
    assert verify_dataflow.ENTRY is analysis_dataflow.ENTRY


def test_compiled_backend_shares_the_analysis_lattices():
    from repro.isa.analysis import lattices, solver
    from repro.sim.backends import compiled

    assert compiled._split_blocks is solver.split_blocks
    assert compiled._infer_widths is lattices.infer_widths
    assert compiled._make_const_step is lattices.make_const_step
    assert compiled.infer_widths is lattices.infer_widths


def test_pass_manager_reuses_one_instance_per_program():
    program = assemble(LOOP)
    first = analyses_for(program)
    assert analyses_for(program) is first
    # Equal content hashes to the same cache slot even for a distinct
    # Program object.
    twin = assemble(LOOP)
    assert analyses_for(twin) is first


def test_program_arrays_match_machine_compile():
    from repro.sim import Machine, Memory

    kb = KernelBuilder(Features.OPT)
    a, b = kb.regs("a", "b")
    kb.ldiq(a, 5)
    kb.sbox(b, a, a, 1, 2)
    kb.stq(b, kb.zero, 0x800)
    kb.ldq(a, kb.zero, 0x800)
    kb.subq(a, a, Imm(1))
    kb.bne(a, "end")
    kb.label("end")
    kb.halt()
    program = kb.build()
    arrays = ProgramArrays(program)
    machine = Machine(program, Memory(1 << 13))
    for field in ("code", "dest", "src1", "src2", "lit", "disp",
                  "target", "tbl", "bsel"):
        assert getattr(arrays, field) == getattr(machine, field), field
