"""Consistency invariants of the opcode table itself."""

from repro.isa import opcodes as op


def test_codes_are_unique():
    codes = [spec.code for spec in op.SPECS.values()]
    assert len(codes) == len(set(codes))


def test_names_are_unique_and_lowercase():
    names = [spec.name for spec in op.SPECS.values()]
    assert len(names) == len(set(names))
    assert all(name == name.lower() for name in names)


def test_lookup_tables_agree():
    for code, spec in op.SPECS.items():
        assert op.SPECS_BY_NAME[spec.name] is spec
        assert spec.code == code


def test_branch_sets_consistent():
    assert op.COND_BRANCH_CODES < op.BRANCH_CODES
    assert op.BR in op.BRANCH_CODES and op.BR not in op.COND_BRANCH_CODES
    for code in op.BRANCH_CODES:
        assert op.SPECS[code].fmt == "br"
        assert not op.SPECS[code].writes_dest


def test_memory_sets_consistent():
    for code in op.LOAD_CODES:
        assert op.SPECS[code].klass == op.LOAD
        assert op.SPECS[code].writes_dest
        assert code in op.MEM_SIZES
    for code in op.STORE_CODES:
        assert op.SPECS[code].klass == op.STORE
        assert not op.SPECS[code].writes_dest
        assert code in op.MEM_SIZES


def test_mem_sizes_are_load_store_widths():
    assert op.MEM_SIZES[op.LDQ] == 8
    assert op.MEM_SIZES[op.LDL] == 4
    assert op.MEM_SIZES[op.LDWU] == 2
    assert op.MEM_SIZES[op.LDBU] == 1
    assert op.MEM_SIZES[op.STQ] == 8


def test_read_modify_write_opcodes():
    """ROLX/RORX and CMOV read their destination (paper's 2-in-1-out rule:
    the third input is the destination itself or an immediate)."""
    for code in (op.ROLXL, op.RORXL, op.CMOVEQ, op.CMOVNE):
        assert op.SPECS[code].reads_dest
    for code in (op.ROLL, op.RORL, op.ADDQ, op.SBOX):
        assert not op.SPECS[code].reads_dest


def test_crypto_extension_timing_classes():
    assert op.SPECS[op.SBOX].klass == op.SBOX_UNIT
    assert op.SPECS[op.MULMOD].klass == op.MULMOD_UNIT
    for code in (op.ROLL, op.RORL, op.ROLQ, op.RORQ, op.ROLXL, op.RORXL,
                 op.XBOX, op.GRPL, op.GRPQ):
        assert op.SPECS[code].klass == op.ROTATOR


def test_default_categories_cover_paper_taxonomy():
    categories = {spec.category for spec in op.SPECS.values()}
    assert {op.ARITH, op.LOGIC, op.ROTATE, op.MULTIPLY, op.SUBST,
            op.PERMUTE, op.LDST, op.CONTROL} >= categories


def test_every_spec_renderable():
    from repro.isa.instruction import Instruction

    for code, spec in op.SPECS.items():
        instruction = Instruction(
            code,
            dest=1 if spec.writes_dest else None,
            src1=2 if spec.fmt in ("op", "br", "sbox", "xbox") else None,
            src2=3 if spec.fmt in ("op", "mem", "sbox", "xbox") else None,
            lit=0 if spec.fmt == "ldi" else None,
            target=0 if spec.fmt == "br" else None,
        )
        if spec.fmt == "br" and code == op.BR:
            instruction.src1 = None
        assert isinstance(instruction.render(), str)
