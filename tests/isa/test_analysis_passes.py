"""The pass manager's program-level analyses (`repro.isa.analysis.passes`).

Natural loops, the memory-interval alias pass over the ``disp(r31)``
scratch idiom and aliased SBOX rows, SBOX pointer taint, the
``ProgramArrays`` bridge, and the loop depths the timing IR surfaces.
"""

from repro.isa import Features, Imm, KernelBuilder, assemble
from repro.isa import opcodes as op
from repro.isa.analysis.passes import (
    ProgramAnalyses,
    _CACHE_LIMIT,
    analyses_for,
    taint_step,
)

LOOP = """
    ldiq r1, 4
    ldiq r2, 0
loop:
    addq r2, r2, #1
    subq r1, r1, #1
    bne  r1, loop
    stl  r2, 0x100(r31)
    halt
"""

NESTED = """
    ldiq r1, 2
outer:
    ldiq r2, 2
inner:
    subq r2, r2, #1
    bne  r2, inner
    subq r1, r1, #1
    bne  r1, outer
    halt
"""


# -- natural loops ----------------------------------------------------------

def test_natural_loops_depth_of_simple_loop():
    loops = ProgramAnalyses(assemble(LOOP)).loops
    assert loops.depth_of_index(0) == 0       # preamble
    assert loops.depth_of_index(2) == 1       # loop body
    assert loops.depth_of_index(4) == 1       # the back-edge branch
    assert loops.depth_of_index(5) == 0       # loop exit


def test_natural_loops_nest_depths():
    loops = ProgramAnalyses(assemble(NESTED)).loops
    assert loops.depth_of_index(0) == 0
    assert loops.depth_of_index(1) == 1       # outer header
    assert loops.depth_of_index(2) == 2       # inner body
    assert loops.depth_of_index(3) == 2
    assert loops.depth_of_index(4) == 1       # outer tail
    assert loops.depth_of_index(6) == 0


def test_timing_ir_blocks_carry_loop_depth():
    from repro.sim import Machine, Memory
    from repro.sim.timing.ir import timing_ir

    program = assemble(LOOP)
    trace = Machine(program, Memory(1 << 12)).execute().trace
    ir = timing_ir(trace.static, program)
    depths = {block.leader: block.loop_depth for block in ir.blocks}
    assert depths[0] == 0
    assert depths[2] == 1
    assert depths[5] == 0


def test_timing_ir_loop_depth_on_a_real_kernel():
    from repro.kernels.registry import make_kernel
    from repro.sim.timing.ir import timing_ir

    kernel = make_kernel("RC4", features=Features.OPT)
    run = kernel.encrypt(bytes(32))
    ir = timing_ir(run.trace.static, run.trace.program)
    assert max(block.loop_depth for block in ir.blocks) >= 1


# -- the memory-interval alias pass -----------------------------------------

def test_memory_facts_prove_disp_r31_intervals():
    memory = ProgramAnalyses(assemble("""
        stq  r1, 0x800(r31)
        ldl  r2, 0x804(r31)
        ldq  r3, 0x900(r31)
        ldiq r4, 0x1000
        stl  r2, 8(r4)
        halt
    """)).memory
    assert memory.intervals[0] == (0x800, 0x808)
    assert memory.intervals[1] == (0x804, 0x808)
    assert memory.intervals[2] == (0x900, 0x908)
    assert memory.intervals[4] == (0x1008, 0x100C)   # LDIQ-derived base
    assert memory.may_alias(0, 1)                    # store covers the load
    assert memory.disjoint(0, 2)
    assert memory.disjoint(1, 2)


def test_memory_facts_unproved_base_aliases_everything():
    memory = ProgramAnalyses(assemble("""
        stq r1, 0x800(r31)
        ldq r5, 0(r6)
        halt
    """)).memory
    assert memory.intervals[1] is None
    assert memory.may_alias(0, 1)
    assert not memory.disjoint(0, 1)


def test_memory_facts_aliased_sbox_rows():
    kb = KernelBuilder(Features.OPT)
    base, idx, d = kb.regs("base", "idx", "d")
    kb.ldiq(base, 0x1000)
    kb.ldiq(idx, 3)
    kb.sbox(d, base, idx, 0, 1, aliased=True)   # 2: exact entry
    kb.ldq(idx, kb.zero, 0x800)                 # 3: index no longer const
    kb.sbox(d, base, idx, 0, 1, aliased=True)   # 4: whole table row
    kb.sbox(d, base, idx, 0, 1)                 # 5: non-aliased, no fact
    kb.stq(d, kb.zero, 0x2000)                  # 6: outside the row
    kb.halt()
    memory = ProgramAnalyses(kb.build()).memory
    assert memory.intervals[2] == (0x100C, 0x1010)   # 0x1000 | (3 << 2)
    assert memory.intervals[4] == (0x1000, 0x1400)
    assert memory.intervals[5] is None
    assert memory.disjoint(4, 6)                     # row vs scratch store
    assert memory.may_alias(2, 4)                    # entry inside the row


# -- SBOX pointer taint -----------------------------------------------------

def test_taint_seeds_the_sbox_base_definition():
    kb = KernelBuilder(Features.OPT)
    base, idx, d = kb.regs("base", "idx", "d")
    kb.ldiq(base, 0x1000)                       # 0: the only base def
    kb.ldiq(idx, 3)
    kb.sbox(d, base, idx, 0, 7)
    kb.halt()
    _block_in, seeds = ProgramAnalyses(kb.build()).taint
    assert seeds == {0: {7}}


def test_taint_step_propagates_through_pointer_ops_and_kills_on_load():
    kb = KernelBuilder(Features.OPT)
    base, derived = kb.regs("base", "derived")
    kb.ldiq(base, 0x1000)
    kb.addq(derived, base, Imm(0x40))
    kb.ldq(derived, kb.zero, 0x800)
    kb.halt()
    program = kb.build()
    instructions = program.instructions
    add_index = next(
        i for i, ins in enumerate(instructions) if ins.code == op.ADDQ
    )
    load_index = next(
        i for i, ins in enumerate(instructions) if ins.code == op.LDQ
    )
    base_reg = instructions[add_index].src1
    derived_reg = instructions[add_index].dest

    state = {base_reg: frozenset({7})}
    taint_step(instructions[add_index], add_index, state, {})
    assert state[derived_reg] == frozenset({7})  # address arithmetic carries

    taint_step(instructions[load_index], load_index, state, {})
    assert derived_reg not in state              # loads yield contents


# -- the analyses_for cache -------------------------------------------------

def test_analyses_for_evicts_least_recently_used():
    program = assemble("ldiq r1, 99\n    halt")
    first = analyses_for(program)
    for value in range(_CACHE_LIMIT):
        analyses_for(assemble(f"ldiq r1, {1000 + value}\n    halt"))
    assert analyses_for(program) is not first
