"""Compiled-backend introspection: codegen counters, reports, metrics."""

import pytest

from repro.isa import Features, Imm, KernelBuilder
from repro.kernels import make_kernel
from repro.obs import (
    EventBus,
    MetricsRegistry,
    RingBufferSink,
    set_active_bus,
)
from repro.sim import Machine, Memory
from repro.sim.backends import compiled as compiled_mod
from repro.sim.backends.compiled import (
    COUNTER_KEYS,
    compile_reports,
    explain_table,
    record_compile_metrics,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    compiled_mod.cache_clear()
    yield
    compiled_mod.cache_clear()


def small_program(iterations: int = 5):
    kb = KernelBuilder(Features.OPT)
    acc, count = kb.regs("acc", "count")
    kb.ldiq(acc, 1)
    kb.ldiq(count, iterations)
    kb.label("loop")
    kb.addq(acc, acc, acc)
    kb.stq(acc, kb.zero, 0x100)
    kb.ldq(acc, kb.zero, 0x100)
    kb.subq(count, count, Imm(1))
    kb.bne(count, "loop")
    kb.halt()
    return kb.build()


def run_compiled(**kwargs):
    Machine(small_program(), Memory(1 << 12)).execute(
        backend="compiled", **kwargs)


def test_compile_produces_one_report_per_specialization():
    assert compile_reports() == []
    run_compiled(record_trace=False)
    reports = compile_reports()
    assert len(reports) == 1
    report = reports[0]
    assert report.instructions == 8
    assert report.blocks >= 2
    assert report.source_lines > 0
    assert report.compile_seconds > 0
    assert report.mode == "--"
    assert set(report.counters) == set(COUNTER_KEYS)
    run_compiled()                      # record_trace: new specialization
    assert len(compile_reports()) == 2
    assert {report.mode for report in compile_reports()} == {"--", "t-"}


def test_counters_see_elided_checks_in_small_program():
    run_compiled(record_trace=False)
    counters = compile_reports()[0].counters
    # LDQ/STQ at constant address 0x100 in 4 KiB memory: both the bounds
    # and the alignment check are provably unnecessary.
    assert counters["bounds_checks_elided"] == 2
    assert counters["align_checks_elided"] == 2


def test_rc4_kernel_counts_sbox_folds():
    kernel = make_kernel("RC4")
    program, memory, _layout = kernel.prepare(bytes(64), None)
    Machine(program, memory).execute(backend="compiled", record_trace=False)
    counters = compile_reports()[0].counters
    assert counters["sbox_index_folds"] > 0
    assert counters["masks_elided"] > 0


def test_source_cache_hits_accumulate_on_reports():
    run_compiled(record_trace=False)
    assert compile_reports()[0].source_cache_hits == 0
    run_compiled(record_trace=False)
    run_compiled(record_trace=False)
    assert compile_reports()[0].source_cache_hits == 2


def test_explain_table_lists_programs():
    run_compiled(record_trace=False)
    table = explain_table()
    assert "1 program(s)" in table
    assert compile_reports()[0].digest[:8] in table
    assert "bounds checks elided" in table


def test_explain_table_empty_without_compiles():
    assert "no programs compiled" in explain_table()


def test_record_compile_metrics_folds_counters():
    run_compiled(record_trace=False)
    run_compiled(record_trace=False)    # cache hit
    registry = MetricsRegistry()
    record_compile_metrics(registry)
    assert registry.counter("compile.programs").value == 1
    assert registry.counter("compile.source_cache_hits").value == 1
    assert registry.counter("compile.bounds_checks_elided").value >= 2
    assert registry.gauge("compile.wall_seconds").value > 0


def test_compile_and_cache_hit_events_publish_to_active_bus():
    bus = EventBus()
    sink = RingBufferSink()
    bus.subscribe(sink)
    previous = set_active_bus(bus)
    try:
        run_compiled(record_trace=False)
        run_compiled(record_trace=False)
    finally:
        set_active_bus(previous)
    kinds = [(event["source"], event["type"]) for event in sink.events]
    assert ("backend", "compile") in kinds
    assert ("backend", "codegen-cache-hit") in kinds
    compile_event = next(event for event in sink.events
                         if event["type"] == "compile")
    assert compile_event["data"]["instructions"] == 8
    assert "bounds_checks_elided" in compile_event["data"]


def test_cache_clear_drops_reports():
    run_compiled(record_trace=False)
    assert compile_reports()
    compiled_mod.cache_clear()
    assert compile_reports() == []
