"""Unit tests for the branch predictor and the trace/static-info layer."""

from repro.isa import assemble
from repro.sim import Machine, Memory
from repro.sim.branch import BimodalPredictor
from repro.sim.trace import StaticInfo


def test_predictor_learns_a_loop():
    predictor = BimodalPredictor()
    correct = [predictor.predict_and_update(5, True) for _ in range(20)]
    # Weakly-taken init: a loop branch predicts correctly from the start.
    assert all(correct)
    # The loop exit (not taken) costs one misprediction.
    assert not predictor.predict_and_update(5, False)
    assert predictor.mispredictions == 1


def test_predictor_saturates():
    predictor = BimodalPredictor()
    for _ in range(10):
        predictor.predict_and_update(1, False)
    # Now strongly not-taken; one taken outcome mispredicts but a single
    # not-taken afterwards is still predicted correctly (2-bit hysteresis).
    assert not predictor.predict_and_update(1, True)
    assert predictor.predict_and_update(1, False)


def test_predictor_alternating_pattern_is_hard():
    predictor = BimodalPredictor()
    outcomes = [predictor.predict_and_update(2, bool(i % 2))
                for i in range(100)]
    accuracy = sum(outcomes) / len(outcomes)
    assert accuracy < 0.75  # bimodal cannot learn strict alternation


def test_predictor_indexes_by_static_instruction():
    predictor = BimodalPredictor(entries=16)
    predictor.predict_and_update(0, False)
    predictor.predict_and_update(0, False)
    # Entry 16 aliases entry 0 (modulo indexing).
    assert not predictor.predict_and_update(16, True)


def _trace(source):
    return Machine(assemble(source), Memory(1 << 16)).execute().trace


def test_taken_detection():
    trace = _trace("""
    ldiq r1, 2
top:
    subq r1, r1, #1
    bne r1, top
    halt
    """)
    # Dynamic sequence: ldiq, subq, bne(taken), subq, bne(not), halt.
    assert list(trace.seq) == [0, 1, 2, 1, 2, 3]
    assert trace.taken(2)
    assert not trace.taken(4)


def test_static_info_classifies():
    program = assemble("""
    ldl r1, 0(r2)
    stl r1, 8(r2)
    sbox.1.2 r3, r4, r5
    mulmod r6, r1, r5
    beq r6, end
    addq r7, r7, #1
end:
    halt
    """)
    info = StaticInfo.from_program(program)
    assert info.is_load[0] and not info.is_store[0]
    assert info.is_store[1] and not info.is_load[1]
    assert info.klass[2] == "sbox"
    assert info.sbox_table[2] == 1
    assert info.klass[3] == "mulmod"
    assert info.is_branch[4] and info.is_cond_branch[4]
    assert info.mem_size[0] == 4
    assert info.mem_size[2] == 4  # SBOX reads a 32-bit entry


def test_static_info_store_addr_srcs_exclude_value():
    program = assemble("stl r1, 8(r2)\nhalt")
    info = StaticInfo.from_program(program)
    assert info.addr_srcs[0] == (2,)
    assert set(info.srcs[0]) == {1, 2}


def test_category_counts_match_length():
    trace = _trace("""
    ldiq r1, 5
loop:
    addq r2, r2, #1
    subq r1, r1, #1
    bne r1, loop
    halt
    """)
    counts = trace.category_counts()
    assert sum(counts.values()) == len(trace)
    assert counts["control"] == 6  # five BNEs plus the HALT
