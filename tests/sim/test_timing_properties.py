"""Property-based invariants of the timing model over random programs.

Hypothesis generates random (but well-formed, terminating) straight-line
and loop programs; the invariants must hold for any machine configuration:

* the dataflow machine lower-bounds every constrained machine,
* relaxing a resource never slows a program down,
* retirement is in-order,
* cycle counts are deterministic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Features, Imm, KernelBuilder
from repro.sim import (
    BASE4W,
    DATAFLOW,
    EIGHTW_PLUS,
    FOURW,
    FOURW_PLUS,
    Machine,
    Memory,
    simulate,
)

_OPS = ("addq", "subq", "xor", "and_", "bis", "sll", "srl", "mull",
        "roll", "rotl32ish")


@st.composite
def random_programs(draw):
    """A random terminating loop over a handful of registers."""
    kb = KernelBuilder(Features.OPT)
    regs = kb.regs("a", "b", "c", "d")
    counter = kb.reg("count")
    for i, reg in enumerate(regs):
        kb.ldiq(reg, draw(st.integers(0, 0xFFFFFFFF)))
    iterations = draw(st.integers(1, 12))
    kb.ldiq(counter, iterations)
    body_length = draw(st.integers(1, 12))
    kb.label("loop")
    for _ in range(body_length):
        op = draw(st.sampled_from(_OPS))
        dst = draw(st.sampled_from(regs))
        src = draw(st.sampled_from(regs))
        if op == "rotl32ish":
            kb.rotl32(dst, src, draw(st.integers(0, 31)))
        elif op in ("sll", "srl", "roll"):
            getattr(kb, op)(dst, src, Imm(draw(st.integers(0, 31))))
        else:
            getattr(kb, op)(dst, src, draw(st.sampled_from(regs)))
    # Occasional memory traffic.
    if draw(st.booleans()):
        kb.stq(regs[0], kb.zero, 0x800)
        kb.ldq(regs[1], kb.zero, 0x800)
    kb.subq(counter, counter, Imm(1))
    kb.bne(counter, "loop")
    kb.halt()
    return kb.build()


def _trace(program):
    return Machine(program, Memory(1 << 13)).execute().trace


@given(random_programs())
@settings(max_examples=30, deadline=None)
def test_dataflow_lower_bounds_all_machines(program):
    trace = _trace(program)
    dataflow = simulate(trace, DATAFLOW).cycles
    for config in (BASE4W, FOURW, FOURW_PLUS, EIGHTW_PLUS):
        assert simulate(trace, config).cycles >= dataflow


@given(random_programs())
@settings(max_examples=20, deadline=None)
def test_machine_ladder_monotonicity(program):
    """4W+ adds resources to 4W, 8W+ to 4W+: cycles must not increase,
    modulo greedy-scheduling anomalies.

    The timing model schedules greedily in program order, and greedy list
    scheduling is not strictly monotone in resources (Graham's anomalies):
    extra functional units can let a burst of independent work co-issue and
    fill the issue width in the cycle a critical-path instruction needed.
    Hypothesis does find rotate-heavy loops where 4W+ is one cycle slower
    than 4W, so allow a few cycles of slack; systematic regressions --
    where added resources make a machine meaningfully slower -- still fail.
    """
    trace = _trace(program)
    four = simulate(trace, FOURW).cycles
    four_plus = simulate(trace, FOURW_PLUS).cycles
    eight_plus = simulate(trace, EIGHTW_PLUS).cycles
    assert four_plus <= four + max(3, four // 20)
    assert eight_plus <= four_plus + max(3, four_plus // 20)


@given(random_programs())
@settings(max_examples=20, deadline=None)
def test_simulation_is_deterministic(program):
    trace = _trace(program)
    assert simulate(trace, FOURW).cycles == simulate(trace, FOURW).cycles


@given(random_programs())
@settings(max_examples=20, deadline=None)
def test_retirement_is_in_order(program):
    trace = _trace(program)
    stats = simulate(trace, FOURW, schedule_range=(0, len(trace)))
    retires = [entry[5] for entry in stats.extra["schedule"]]
    assert retires == sorted(retires)


@given(random_programs(), st.integers(1, 16))
@settings(max_examples=15, deadline=None)
def test_wider_issue_never_hurts(program, width):
    trace = _trace(program)
    narrow = simulate(trace, FOURW.with_(issue_width=width)).cycles
    wide = simulate(trace, FOURW.with_(issue_width=width + 4)).cycles
    assert wide <= narrow


@given(random_programs())
@settings(max_examples=15, deadline=None)
def test_bigger_window_never_hurts(program):
    trace = _trace(program)
    small = simulate(trace, FOURW.with_(window_size=16)).cycles
    large = simulate(trace, FOURW.with_(window_size=256)).cycles
    assert large <= small
