"""The issue-slot accounting invariant, on real kernels and random code.

The timing model attributes every unused issue slot of every cycle to
exactly one stall category.  The defining property is *exactness*: for a
finite-issue-width machine,

    instructions + sum(stall_slots.values()) == cycles * issue_width

with no slack term -- an off-by-one anywhere in the attribution (a
double-counted cycle, a cycle lost at a prune boundary) breaks equality.
This file checks the invariant across the full cipher suite on the 4W and
8W+ machines, on hypothesis-generated random loops, and across the
bookkeeping knobs (prune cadence) that must never change the account.
"""

import pytest
from hypothesis import given, settings

from repro.isa import Features
from repro.kernels import KERNEL_NAMES, make_kernel
from repro.sim import DATAFLOW, EIGHTW_PLUS, FOURW, Machine, Memory, simulate
from repro.sim.stats import STALL_CATEGORIES, WAIT_CATEGORIES

from tests.sim.test_timing_properties import random_programs

SESSION_BYTES = 256


def _kernel_stats(cipher: str, config):
    kernel = make_kernel(cipher, Features.OPT)
    block = max(kernel.block_bytes, 1)
    data = bytes(range(256)) * (max(SESSION_BYTES // block, 1) * block // 256 + 1)
    data = data[: max(SESSION_BYTES // block, 1) * block]
    run = kernel.encrypt(data)
    return simulate(run.trace, config, run.warm_ranges)


def _assert_exact_account(stats, config):
    assert stats.issue_slots == stats.cycles * config.issue_width
    accounted = stats.instructions + sum(stats.stall_slots.values())
    assert accounted == stats.issue_slots
    assert set(stats.stall_slots) <= set(STALL_CATEGORIES)
    assert all(slots >= 0 for slots in stats.stall_slots.values())


@pytest.mark.parametrize("cipher", KERNEL_NAMES)
@pytest.mark.parametrize("config", [FOURW, EIGHTW_PLUS],
                         ids=lambda config: config.name)
def test_suite_slot_account_is_exact(cipher, config):
    stats = _kernel_stats(cipher, config)
    _assert_exact_account(stats, config)


@pytest.mark.parametrize("cipher", KERNEL_NAMES)
def test_suite_fractions_sum_to_one(cipher):
    fractions = _kernel_stats(cipher, FOURW).stall_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert 0.0 < fractions["issued"] <= 1.0


def test_dataflow_machine_has_no_slot_account():
    stats = _kernel_stats("RC4", DATAFLOW)
    assert stats.issue_slots == 0
    assert stats.stall_slots == {}
    assert stats.stall_fractions() == {}


def test_wait_cycles_and_hotspots_are_consistent():
    stats = _kernel_stats("Blowfish", FOURW)
    assert set(stats.wait_cycles) <= set(WAIT_CATEGORIES)
    assert all(cycles >= 0 for cycles in stats.wait_cycles.values())
    assert stats.hotspots, "a real kernel must produce hot spots"
    for spot in stats.hotspots:
        assert spot["executions"] > 0
        assert spot["total_wait_cycles"] == sum(spot["wait_cycles"].values())
        assert set(spot["wait_cycles"]) <= set(WAIT_CATEGORIES)
    # The table is ranked by non-window wait (window wait is a shared
    # backlog effect), descending.
    ranks = [
        sum(cycles for category, cycles in spot["wait_cycles"].items()
            if category != "window")
        for spot in stats.hotspots
    ]
    assert ranks == sorted(ranks, reverse=True)
    # Hot-spot rows never exceed the per-category totals.
    for category in WAIT_CATEGORIES:
        spotted = sum(spot["wait_cycles"].get(category, 0)
                      for spot in stats.hotspots)
        assert spotted <= stats.wait_cycles.get(category, 0)


def test_feistel_kernel_is_operand_bound():
    """Sanity-check the categories against the paper's analysis: Blowfish
    on 4W is dataflow-limited, so operand wait must dominate the account
    and the machine must spend well under 60% of slots issuing."""
    fractions = _kernel_stats("Blowfish", FOURW).stall_fractions()
    assert fractions["operand"] == max(
        share for name, share in fractions.items() if name != "issued"
    )
    assert fractions["issued"] < 0.6


def _trace(program):
    return Machine(program, Memory(1 << 13)).execute().trace


@given(random_programs())
@settings(max_examples=25, deadline=None)
def test_random_programs_slot_account_is_exact(program):
    trace = _trace(program)
    for config in (FOURW, EIGHTW_PLUS):
        _assert_exact_account(simulate(trace, config), config)


@given(random_programs())
@settings(max_examples=10, deadline=None)
def test_attribution_does_not_change_cycles(program):
    """Turning the books on/off (DF has none) and shrinking the prune
    cadence must never move simulated time."""
    trace = _trace(program)
    baseline = simulate(trace, FOURW)
    eager = simulate(
        trace, FOURW.with_(prune_interval=16, prune_entries=1)
    )
    assert eager.cycles == baseline.cycles
    assert eager.stall_slots == baseline.stall_slots


def test_prune_cadence_does_not_change_account():
    """The flush at prune boundaries must not lose or duplicate slots."""
    kernel = make_kernel("RC6", Features.OPT)
    data = bytes(kernel.block_bytes * 8)
    run = kernel.encrypt(data)
    baseline = simulate(run.trace, FOURW, run.warm_ranges)
    eager = simulate(
        run.trace,
        FOURW.with_(prune_interval=64, prune_entries=1),
        run.warm_ranges,
    )
    assert eager.cycles == baseline.cycles
    assert eager.stall_slots == baseline.stall_slots
    assert eager.wait_cycles == baseline.wait_cycles
