"""Unit tests for the cache hierarchy, TLB and next-line prefetcher."""

import pytest

from repro.sim.caches import MemoryHierarchy, SetAssociativeCache, TLB


def test_cache_hit_after_fill():
    cache = SetAssociativeCache(size=1024, assoc=2, block=32)
    assert not cache.access(0)      # cold miss
    assert cache.access(0)          # hit
    assert cache.access(16)         # same block
    assert cache.hits == 2
    assert cache.misses == 1


def test_cache_lru_eviction():
    cache = SetAssociativeCache(size=64, assoc=2, block=32)  # 1 set, 2 ways
    cache.access(0)
    cache.access(32)
    cache.access(0)        # touch 0: 32 becomes LRU
    cache.access(64)       # evicts 32
    assert cache.access(0)
    assert not cache.access(32)


def test_cache_sets_are_independent():
    cache = SetAssociativeCache(size=128, assoc=1, block=32)  # 4 sets
    cache.access(0)
    cache.access(32)
    assert cache.access(0)
    assert cache.access(32)


def test_probe_does_not_disturb():
    cache = SetAssociativeCache(size=64, assoc=2, block=32)
    cache.access(0)
    assert cache.probe(0)
    assert not cache.probe(64)
    assert cache.misses == 1  # probe counted nothing


def test_install_is_silent():
    cache = SetAssociativeCache(size=64, assoc=2, block=32)
    cache.install(0)
    assert cache.probe(0)
    assert cache.hits == 0 and cache.misses == 0


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        SetAssociativeCache(size=100, assoc=3, block=32)


def test_tlb_page_granularity():
    tlb = TLB(entries=32, assoc=8, page=8192)
    assert not tlb.access(0)
    assert tlb.access(8191)        # same page
    assert not tlb.access(8192)    # next page


def test_hierarchy_latencies():
    hierarchy = MemoryHierarchy(next_line_prefetch=False)
    # Cold: TLB miss + L1 miss + L2 miss.
    extra = hierarchy.access(0)
    assert extra == 30 + 12 + 120
    # Warm: pure hit.
    assert hierarchy.access(0) == 0
    # L2 hit after L1 eviction would cost 12; emulate via direct install.
    assert hierarchy.access(8) == 0  # same line


def test_hierarchy_store_misses_not_charged():
    hierarchy = MemoryHierarchy(next_line_prefetch=False)
    assert hierarchy.access(4096, is_store=True) == 0
    # But the line was allocated (write-allocate): a load now hits.
    assert hierarchy.access(4096) == 0


def test_next_line_prefetch_covers_sequential_stream():
    hierarchy = MemoryHierarchy(next_line_prefetch=True)
    total_extra = sum(hierarchy.access(addr) for addr in range(0, 4096, 8))
    # Only the very first line (and TLB page) should miss.
    assert hierarchy.l1.misses <= 2
    assert total_extra <= 200


def test_no_prefetch_misses_every_line():
    hierarchy = MemoryHierarchy(next_line_prefetch=False)
    for addr in range(0, 4096, 8):
        hierarchy.access(addr)
    assert hierarchy.l1.misses == 4096 // 32


def test_warm_installs_everything():
    hierarchy = MemoryHierarchy()
    hierarchy.warm(0x1000, 4096)
    extra = sum(hierarchy.access(a) for a in range(0x1000, 0x2000, 32))
    assert extra == 0
    assert hierarchy.l1.misses == 0
