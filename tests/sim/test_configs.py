"""Invariants of the machine-configuration presets (paper Table 2 / sec 3.2)."""

import dataclasses

import pytest

from repro.sim.config import (
    ALPHA21264,
    BASE4W,
    DATAFLOW,
    DATAFLOW_BASEISA,
    EIGHTW_PLUS,
    FOURW,
    FOURW_PLUS,
    MachineConfig,
    bottleneck_config,
)


def test_presets_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        FOURW.issue_width = 8


def test_with_returns_modified_copy():
    modified = FOURW.with_(issue_width=6)
    assert modified.issue_width == 6
    assert FOURW.issue_width == 4
    assert modified.num_ialu == FOURW.num_ialu


def test_table2_ladder_fields():
    # 4W+ differs from 4W only in SBox caches and rotator units.
    assert FOURW_PLUS.sbox_caches == 4 and FOURW.sbox_caches == 0
    assert FOURW_PLUS.num_rotator > FOURW.num_rotator
    assert FOURW_PLUS.issue_width == FOURW.issue_width
    assert FOURW_PLUS.window_size == FOURW.window_size
    # 8W+ doubles execution bandwidth.
    assert EIGHTW_PLUS.issue_width == 2 * FOURW_PLUS.issue_width
    assert EIGHTW_PLUS.num_ialu == 2 * FOURW_PLUS.num_ialu
    assert EIGHTW_PLUS.dcache_ports == 2 * FOURW_PLUS.dcache_ports
    assert EIGHTW_PLUS.window_size == 2 * FOURW_PLUS.window_size
    assert EIGHTW_PLUS.fetch_groups_per_cycle == 2


def test_dataflow_is_unconstrained():
    for field in ("fetch_width", "window_size", "issue_width", "num_ialu",
                  "num_rotator", "mul_slots", "dcache_ports", "retire_width"):
        assert getattr(DATAFLOW, field) is None, field
    assert DATAFLOW.perfect_branch_prediction
    assert DATAFLOW.perfect_memory
    assert DATAFLOW.perfect_alias


def test_baseline_latencies_match_paper():
    # Section 3.2: ALU 1 cycle, MULT 7 cycles, loads via a pipelined L1,
    # 8-cycle minimum misprediction penalty, 256-entry window, 64-entry LSQ.
    assert BASE4W.alu_latency == 1
    assert BASE4W.mul32_latency == 7
    assert BASE4W.mul64_latency == 7
    assert BASE4W.mispredict_penalty == 8
    assert BASE4W.window_size == 256
    assert BASE4W.lsq_size == 64
    assert BASE4W.l1_size == 32768 and BASE4W.l1_assoc == 2
    assert BASE4W.l2_hit_latency == 12
    assert BASE4W.memory_latency == 120
    assert BASE4W.tlb_miss_latency == 30


def test_table2_multiplier_spec():
    # "1-64 (7 cycles) / 2-32 (4 cycles)": a 64-bit multiply fills both
    # slots; two 32-bit multiplies (or MULMODs) issue per cycle at 4 cycles.
    assert FOURW.mul_slots == 2
    assert FOURW.mul64_cost == 2 and FOURW.mul64_latency == 7
    assert FOURW.mul32_cost == 1 and FOURW.mul32_latency == 4
    assert FOURW.mulmod_cost == 1 and FOURW.mulmod_latency == 4
    assert EIGHTW_PLUS.mul_slots == 4


def test_sbox_latency_constants():
    # Paper section 5: SBOX via d-cache port = 2 cycles, SBox cache = 1.
    for config in (FOURW, FOURW_PLUS, EIGHTW_PLUS):
        assert config.sbox_dcache_latency == 2
        assert config.sbox_cache_latency == 1


def test_alpha_validation_config_differs_plausibly():
    assert ALPHA21264.window_size < BASE4W.window_size
    assert ALPHA21264.load_latency >= BASE4W.load_latency


def test_dataflow_baseisa_keeps_slow_multiplies():
    assert DATAFLOW_BASEISA.mul32_latency == BASE4W.mul32_latency
    assert DATAFLOW.mul32_latency < DATAFLOW_BASEISA.mul32_latency


def test_bottleneck_configs_change_one_dimension():
    dataflow = DATAFLOW_BASEISA
    single = bottleneck_config("window")
    assert single.window_size == BASE4W.window_size
    assert single.issue_width is None
    assert single.perfect_memory == dataflow.perfect_memory

    issue = bottleneck_config("issue")
    assert issue.issue_width == BASE4W.issue_width
    assert issue.window_size is None

    mem = bottleneck_config("mem")
    assert not mem.perfect_memory
    assert mem.issue_width is None

    res = bottleneck_config("res")
    assert res.num_ialu == BASE4W.num_ialu
    assert res.dcache_ports == BASE4W.dcache_ports
    assert res.window_size is None


def test_custom_config_construction():
    config = MachineConfig(name="tiny", issue_width=1, num_ialu=1)
    assert config.issue_width == 1
