"""Timing-model behaviour tests: latencies, widths, bottleneck toggles."""

import pytest

from repro.isa import assemble
from repro.sim import (
    BASE4W,
    DATAFLOW,
    FOURW,
    FOURW_PLUS,
    EIGHTW_PLUS,
    Machine,
    Memory,
    bottleneck_config,
    simulate,
)


def trace_of(source: str, memory: Memory | None = None):
    memory = memory or Memory(1 << 16)
    return Machine(assemble(source), memory).execute().trace


def test_dependent_chain_runs_at_one_per_cycle():
    trace = trace_of("""
    ldiq r1, 0
    ldiq r2, 1000
loop:
    addq r1, r1, #1
    addq r1, r1, #2
    subq r2, r2, #1
    bne r2, loop
    halt
    """)
    stats = simulate(trace, DATAFLOW)
    # The r1 chain is 2 adds per iteration: ~2000 cycles.
    assert 1990 <= stats.cycles <= 2100


def test_dataflow_is_lower_bound():
    trace = trace_of("""
    ldiq r2, 500
loop:
    addq r1, r1, #1
    addq r3, r3, #1
    addq r4, r4, #1
    subq r2, r2, #1
    bne r2, loop
    halt
    """)
    df = simulate(trace, DATAFLOW).cycles
    for config in (BASE4W, FOURW, FOURW_PLUS, EIGHTW_PLUS):
        assert simulate(trace, config).cycles >= df


def test_wider_machine_is_never_slower():
    trace = trace_of("""
    ldiq r2, 500
loop:
    addq r1, r1, #1
    addq r3, r3, #1
    addq r4, r4, #1
    addq r5, r5, #1
    addq r6, r6, #1
    addq r7, r7, #1
    subq r2, r2, #1
    bne r2, loop
    halt
    """)
    four = simulate(trace, FOURW).cycles
    eight = simulate(trace, EIGHTW_PLUS).cycles
    assert eight <= four
    # 7 independent ops/iteration: the 8-wide should be meaningfully faster.
    assert eight < 0.8 * four


def test_multiplier_latency_differs_between_baseline_and_4w():
    trace = trace_of("""
    ldiq r1, 3
    ldiq r2, 1000
loop:
    mull r1, r1, r1
    subq r2, r2, #1
    bne r2, loop
    halt
    """)
    base = simulate(trace, BASE4W).cycles   # 7-cycle multiplies
    fast = simulate(trace, FOURW).cycles    # 4-cycle early-out multiplies
    assert base > fast
    assert base >= 6500  # ~7 cycles per serial multiply
    assert fast <= 5000


def test_mulmod_unit_latency():
    trace = trace_of("""
    ldiq r1, 3
    ldiq r2, 500
loop:
    mulmod r1, r1, r1
    subq r2, r2, #1
    bne r2, loop
    halt
    """)
    stats = simulate(trace, FOURW)
    # Serial MULMOD chain at 4 cycles each.
    assert 1900 <= stats.cycles <= 2300


def test_branch_mispredict_penalty_applied():
    # A data-dependent unpredictable branch pattern: alternating taken /
    # not-taken resolves to predictable for a 2-bit counter?  Use an
    # irregular pattern via xor-shift parity.
    source = """
    ldiq r1, 0x9E3779B97F4A7C15
    ldiq r2, 2000
loop:
    srl r3, r1, #7
    xor r1, r1, r3
    sll r3, r1, #9
    xor r1, r1, r3
    and r4, r1, #1
    beq r4, skip
    addq r5, r5, #1
skip:
    subq r2, r2, #1
    bne r2, loop
    halt
    """
    trace = trace_of(source)
    real = simulate(trace, bottleneck_config("branch"))
    perfect = simulate(trace, DATAFLOW)
    assert real.mispredictions > 200
    assert real.cycles > perfect.cycles


def test_loop_branches_are_predictable():
    trace = trace_of("""
    ldiq r2, 5000
loop:
    addq r1, r1, #1
    subq r2, r2, #1
    bne r2, loop
    halt
    """)
    stats = simulate(trace, BASE4W)
    assert stats.mispredictions <= 3


def test_alias_stalls_loads_behind_stores():
    # Store then load to *different* addresses: conservative ordering stalls,
    # perfect alias does not.
    source = """
    ldiq r1, 0x1000
    ldiq r2, 0x2000
    ldiq r3, 500
loop:
    addq r4, r4, #1
    stq r4, 0(r1)
    ldq r5, 0(r2)
    addq r6, r5, r6
    subq r3, r3, #1
    bne r3, loop
    halt
    """
    trace = trace_of(source)
    with_alias = simulate(trace, bottleneck_config("alias"))
    without = simulate(trace, DATAFLOW)
    assert with_alias.cycles >= without.cycles


def test_store_forwarding():
    source = """
    ldiq r1, 0x1000
    ldiq r3, 200
loop:
    addq r4, r4, #1
    stq r4, 0(r1)
    ldq r5, 0(r1)
    addq r6, r5, r6
    subq r3, r3, #1
    bne r3, loop
    halt
    """
    trace = trace_of(source)
    stats = simulate(trace, BASE4W)
    assert stats.store_forwards >= 199


def test_issue_width_limits_throughput():
    source = """
    ldiq r2, 1000
loop:
    addq r1, r1, #1
    addq r3, r3, #1
    addq r4, r4, #1
    addq r5, r5, #1
    addq r6, r6, #1
    addq r7, r7, #1
    addq r8, r8, #1
    subq r2, r2, #1
    bne r2, loop
    halt
    """
    trace = trace_of(source)
    narrow = simulate(trace, bottleneck_config("issue"))
    free = simulate(trace, DATAFLOW)
    # 9 instructions/iteration at width 4 needs > 2 cycles/iteration.
    assert narrow.cycles > 2 * free.cycles * 0.8
    assert narrow.cycles > free.cycles


def test_window_bottleneck_config_only_adds_window():
    config = bottleneck_config("window")
    assert config.window_size == BASE4W.window_size
    assert config.issue_width is None
    assert config.perfect_memory


def test_all_bottleneck_is_baseline():
    assert bottleneck_config("all") is BASE4W


def test_unknown_bottleneck_rejected():
    with pytest.raises(ValueError):
        bottleneck_config("alu")


def test_cache_model_counts_misses_once_warm():
    # Sequential walk over 64 KB: with 32 KB L1 + next-line prefetch nearly
    # everything after the first touch per line is a hit.
    source = """
    ldiq r1, 0x0
    ldiq r2, 8192
loop:
    ldq r3, 0(r1)
    addq r1, r1, #8
    subq r2, r2, #1
    bne r2, loop
    halt
    """
    trace = trace_of(source, Memory(1 << 17))
    stats = simulate(trace, BASE4W)
    assert stats.loads == 8192
    # 8 loads per 64-byte... 32-byte line = 4 loads/line; prefetch covers
    # most line boundaries.
    assert stats.l1_misses < 8192 // 4 + 64


def test_sbox_cache_faster_than_dcache_sbox():
    memory = Memory(1 << 16)
    for i in range(256):
        memory.write(0x1000 + 4 * i, i, 4)
    source = """
    ldiq r1, 0x1000
    ldiq r2, 2000
loop:
    sbox.0.0 r1, r7, r3
    sbox.1.0 r1, r3, r4
    sbox.2.0 r1, r4, r5
    sbox.3.0 r1, r5, r7
    subq r2, r2, #1
    bne r2, loop
    halt
    """
    trace = trace_of(source, memory)
    plain = simulate(trace, FOURW)        # SBOX via d-cache: 2 cycles
    cached = simulate(trace, FOURW_PLUS)  # SBox caches: 1 cycle
    assert cached.cycles < plain.cycles


def test_stats_bytes_per_kilocycle():
    trace = trace_of("ldiq r1, 1\nhalt")
    stats = simulate(trace, DATAFLOW)
    assert stats.bytes_per_kilocycle(1000) == 1000.0 * 1000 / stats.cycles
    assert stats.ipc > 0
