"""Unit tests for the single-tag SBox sector caches (paper section 5)."""

from repro.sim.sboxcache import NUM_SECTORS, SBoxCache, SBoxCacheArray


def test_sector_fill_then_hit():
    cache = SBoxCache()
    base = 0x1000
    assert not cache.access(base)          # demand fetch of sector 0
    assert cache.access(base + 4)          # same 32-byte sector
    assert not cache.access(base + 32)     # next sector
    assert cache.hits == 1
    assert cache.misses == 2


def test_tag_mismatch_flushes():
    cache = SBoxCache()
    cache.access(0x1000)
    cache.access(0x1000 + 4)
    assert not cache.access(0x2000)        # different table: flush
    assert cache.flushes == 2              # initial fill + the switch
    assert not cache.access(0x1000)        # back: everything refetched


def test_low_address_bits_share_a_tag():
    cache = SBoxCache()
    cache.access(0x1000)
    # Address within the same 1KB table: same tag, different sector.
    assert cache.tag == 0x1000
    cache.access(0x13FC)
    assert cache.tag == 0x1000
    assert cache.flushes == 1


def test_sync_invalidates_sectors_but_keeps_tag():
    cache = SBoxCache()
    cache.access(0x1000)
    cache.sync()
    assert cache.tag == 0x1000
    assert not cache.access(0x1000)        # refetch after SBOXSYNC
    assert cache.flushes == 1


def test_full_table_fits():
    cache = SBoxCache()
    for sector in range(NUM_SECTORS):
        cache.access(0x1000 + 32 * sector)
    # Second sweep: all hits.
    assert all(cache.access(0x1000 + 32 * s) for s in range(NUM_SECTORS))


def test_array_routes_by_table_id():
    array = SBoxCacheArray(count=4)
    array.access(0, 0x1000)
    array.access(1, 0x2000)
    assert array.caches[0].tag == 0x1000
    assert array.caches[1].tag == 0x2000
    # Table 4 maps onto cache 0 (mod count) and flushes it.
    array.access(4, 0x3000)
    assert array.caches[0].tag == 0x3000


def test_array_sync_targets_one_cache():
    array = SBoxCacheArray(count=4)
    array.access(0, 0x1000)
    array.access(1, 0x2000)
    array.sync(0)
    assert not array.access(0, 0x1000)     # invalidated
    assert array.access(1, 0x2000)         # untouched
    assert array.total_hits == 1
    assert array.total_misses == 3
