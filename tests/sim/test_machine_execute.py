"""The unified ``Machine.execute()`` entry point and its contracts.

One method covers the three delivery shapes the old trio provided
(batch ``run``, chunked ``iter_trace``, pull-driven ``stream``); the old
names are gone -- their deprecation shims shipped for the promised two
releases and were then removed.  These tests pin the return-shape
dispatch, the argument validation, the one-shot reuse guard, the removal
of the legacy names, and the compiled backend's code-object cache.
"""

import pytest

from repro.isa import Features, Imm, KernelBuilder
from repro.sim import Machine, Memory
from repro.sim.backends import UNBOUNDED_CHUNK, get_backend
from repro.sim.backends import compiled as compiled_mod
from repro.sim.backends.compiled import CompiledBackend
from repro.sim.machine import RunResult, SimulationError, StreamingTrace


def small_program(iterations: int = 5):
    kb = KernelBuilder(Features.OPT)
    acc, count = kb.regs("acc", "count")
    kb.ldiq(acc, 1)
    kb.ldiq(count, iterations)
    kb.label("loop")
    kb.addq(acc, acc, acc)
    kb.stq(acc, kb.zero, 0x100)
    kb.ldq(acc, kb.zero, 0x100)
    kb.subq(count, count, Imm(1))
    kb.bne(count, "loop")
    kb.halt()
    return kb.build()


def machine():
    return Machine(small_program(), Memory(1 << 12))


# -- return shapes ----------------------------------------------------------

def test_batch_shape_returns_run_result():
    result = machine().execute()
    assert isinstance(result, RunResult)
    assert result.trace is not None
    assert result.instructions == len(result.trace)


def test_traceless_batch_has_no_trace():
    result = machine().execute(record_trace=False)
    assert isinstance(result, RunResult)
    assert result.trace is None
    assert result.instructions > 0


def test_chunked_shape_returns_chunk_iterator():
    chunks = list(machine().execute(chunk_size=3))
    assert all(len(chunk) == 3 for chunk in chunks[:-1])
    reference = machine().execute()
    assert sum(len(chunk) for chunk in chunks) == reference.instructions


def test_stream_shape_returns_streaming_trace():
    source = machine().execute(stream=True, chunk_size=4)
    assert isinstance(source, StreamingTrace)
    # The claim is deferred: the machine runs only as chunks are pulled.
    assert source.machine.instructions_executed == 0
    total = sum(len(chunk) for chunk in source.chunks())
    assert total == source.machine.instructions_executed


# -- argument validation ----------------------------------------------------

def test_unknown_backend_names_the_registered_ones():
    with pytest.raises(ValueError, match="interpreter.*compiled|compiled.*interpreter"):
        machine().execute(backend="turbo")


def test_chunk_size_must_be_positive():
    with pytest.raises(ValueError, match="chunk_size"):
        machine().execute(chunk_size=0)


def test_chunked_requires_trace_recording():
    with pytest.raises(ValueError, match="record_trace"):
        machine().execute(chunk_size=8, record_trace=False)


def test_stream_requires_trace_recording():
    with pytest.raises(ValueError, match="record_trace"):
        machine().execute(stream=True, record_trace=False)


def test_machine_is_single_shot():
    m = machine()
    m.execute()
    with pytest.raises(SimulationError, match="already executed"):
        m.execute()


def test_backend_instance_passthrough():
    reference = machine().execute()
    result = machine().execute(backend=CompiledBackend())
    assert isinstance(result, RunResult)
    assert result.trace == reference.trace


def test_get_backend_resolves_default_and_instances():
    default = get_backend(None)
    assert default.name == "interpreter"
    instance = CompiledBackend()
    assert get_backend(instance) is instance


# -- legacy entry points are gone -------------------------------------------

@pytest.mark.parametrize("name", ["run", "iter_trace", "stream"])
def test_legacy_entry_points_removed(name):
    """The PR-6 deprecation shims shipped their two-release window and
    are deleted: the old names must fail loudly, not warn."""
    m = machine()
    with pytest.raises(AttributeError, match=name):
        getattr(m, name)
    result = m.execute()  # the machine is untouched and still usable
    assert isinstance(result, RunResult)


# -- compiled code cache ----------------------------------------------------

def test_compiled_code_cache_reuses_specializations():
    compiled_mod.cache_clear()
    assert compiled_mod.cache_info()["size"] == 0
    machine().execute(backend="compiled")
    assert compiled_mod.cache_info()["size"] == 1
    # Same program, same flags, same memory size: cache hit, no new entry.
    machine().execute(backend="compiled")
    assert compiled_mod.cache_info()["size"] == 1
    # A different recording mode is a different specialization.
    machine().execute(backend="compiled", record_values=True)
    assert compiled_mod.cache_info()["size"] == 2
    # A different memory size changes which bounds checks can be elided.
    Machine(small_program(), Memory(1 << 13)).execute(backend="compiled")
    assert compiled_mod.cache_info()["size"] == 3


def test_unbounded_chunk_yields_single_chunk():
    chunks = list(machine().execute(chunk_size=UNBOUNDED_CHUNK))
    assert len(chunks) == 1
