"""The pluggable timing engines are interchangeable, bit for bit.

The ``"specialized"`` engine generates a per-(program, config) scheduler;
its entire value rests on producing *exactly* the SimStats the
``"generic"`` engine produces -- cycles, the 13-category slot account,
wait-cycle totals, and the hot-spot table -- for every cipher, machine
model, and chunking.  These tests pin that contract, the engine
registry's uniform error shape, the ``schedule_range`` fallback, and the
specialization report/cache surfaces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import KERNEL_NAMES
from repro.kernels.registry import make_kernel
from repro.obs.diffing import explain_stats_delta
from repro.sim import DATAFLOW, EIGHTW_PLUS, FOURW, Machine, Memory
from repro.sim.backends import get_backend
from repro.sim.timing import (
    DEFAULT_ENGINE,
    engine_names,
    get_engine,
    make_pipeline,
    simulate,
)
from repro.sim.timing import specialized as specialized_mod
from repro.sim.timing.generic import GenericPipeline
from repro.sim.trace import StaticInfo

from .test_timing_properties import random_programs

CONFIGS = (FOURW, EIGHTW_PLUS, DATAFLOW)
CHUNK_SIZES = (1, 7, 4096, None)


def _stats(kernel_run, config, engine, chunk_size=None):
    trace = kernel_run.trace
    pipeline = make_pipeline(config, trace.static, trace.program,
                             warm_ranges=kernel_run.warm_ranges,
                             engine=engine)
    for chunk in trace.chunks(chunk_size):
        pipeline.feed(chunk)
    return pipeline.finish()


@pytest.fixture(scope="module")
def kernel_runs():
    """One materialized functional run per cipher, shared by the grid."""
    data = bytes(i & 0xFF for i in range(64))
    return {name: make_kernel(name).encrypt(data) for name in KERNEL_NAMES}


# -- engine equivalence -----------------------------------------------------

@pytest.mark.parametrize("cipher", KERNEL_NAMES)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_engines_bit_identical_every_cipher(kernel_runs, cipher, config):
    run = kernel_runs[cipher]
    baseline = _stats(run, config, "generic")
    for chunk_size in CHUNK_SIZES:
        specialized = _stats(run, config, "specialized", chunk_size)
        assert specialized == baseline, (
            f"{cipher}/{config.name} diverged at chunk_size={chunk_size}: "
            + explain_stats_delta(baseline, specialized,
                                  "generic", "specialized")
        )


def _issue_slot_invariant(stats):
    if not stats.issue_slots:  # unconstrained (dataflow) machines
        return
    assert stats.instructions + sum(stats.stall_slots.values()) == \
        stats.issue_slots


@given(random_programs(), st.sampled_from(CHUNK_SIZES))
@settings(max_examples=25, deadline=None)
def test_random_programs_engines_agree(program, chunk_size):
    """Both engines, any chunking: identical stats, exact slot account."""
    trace = Machine(program, Memory(1 << 13)).execute().trace
    static = StaticInfo.from_program(program)
    results = {}
    for engine in ("generic", "specialized"):
        pipeline = make_pipeline(FOURW, static, program, engine=engine)
        for chunk in trace.chunks(chunk_size):
            pipeline.feed(chunk)
        results[engine] = pipeline.finish()
        _issue_slot_invariant(results[engine])
    assert results["specialized"] == results["generic"], explain_stats_delta(
        results["generic"], results["specialized"], "generic", "specialized")


def test_specialized_handles_taken_branch_slow_path():
    """A loopy trace exercises the generated code's branch lookahead and
    the single-entry slow-path repairs around mispredictions."""
    run = make_kernel("RC4").encrypt(bytes(256))
    for config in CONFIGS:
        assert _stats(run, config, "specialized", 1) == \
            _stats(run, config, "generic")


# -- registry ---------------------------------------------------------------

def test_engine_registry_names_and_default():
    assert DEFAULT_ENGINE == "generic"
    assert set(engine_names()) >= {"generic", "specialized"}
    assert get_engine(None).name == DEFAULT_ENGINE
    assert get_engine("specialized").name == "specialized"
    engine = get_engine("generic")
    assert get_engine(engine) is engine  # instances pass through


def test_registries_share_one_error_shape():
    with pytest.raises(ValueError, match=r"unknown timing engine 'nope'; "
                                         r"registered: generic"):
        get_engine("nope")
    with pytest.raises(ValueError, match=r"unknown backend 'nope'; "
                                         r"registered: compiled"):
        get_backend("nope")


def _small_run():
    return make_kernel("RC4").encrypt(bytes(64))


def test_timing_pipeline_shim_is_gone():
    """The pre-engine ``TimingPipeline`` shim was removed on schedule;
    ``make_pipeline``/``simulate`` are the only constructors."""
    import repro.sim
    import repro.sim.timing
    assert not hasattr(repro.sim.timing, "TimingPipeline")
    assert not hasattr(repro.sim, "TimingPipeline")
    assert "TimingPipeline" not in repro.sim.timing.__all__


# -- schedule_range fallback ------------------------------------------------

def test_specialized_schedule_range_falls_back_to_generic():
    """Window scheduling is a debugging path; the specialized engine
    delegates it so ``--view`` output is engine-independent."""
    run = _small_run()
    trace = run.trace
    pipeline = make_pipeline(FOURW, trace.static, trace.program,
                             schedule_range=(0, 30), engine="specialized")
    assert isinstance(pipeline, GenericPipeline)
    baseline = simulate(trace, FOURW, run.warm_ranges,
                        schedule_range=(0, 30), engine="generic")
    got = simulate(trace, FOURW, run.warm_ranges,
                   schedule_range=(0, 30), engine="specialized")
    assert got.extra["schedule"] == baseline.extra["schedule"]


# -- specialization reports and cache ---------------------------------------

def test_specialization_report_and_code_cache():
    specialized_mod.cache_clear()
    assert specialized_mod.cache_info()["size"] == 0
    run = _small_run()
    before = _stats(run, FOURW, "specialized")
    assert specialized_mod.cache_info()["size"] == 1
    reports = specialized_mod.specialization_reports()
    assert len(reports) == 1
    report = reports[0]
    assert report.config_name == FOURW.name
    assert report.attributed
    assert report.source_cache_hits == 0
    # Second pipeline for the same (program, config): served from cache.
    assert _stats(run, FOURW, "specialized") == before
    assert specialized_mod.cache_info()["size"] == 1
    assert report.source_cache_hits == 1
    assert FOURW.name in specialized_mod.explain_table()
