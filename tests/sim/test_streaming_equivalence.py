"""Streaming and materialized timing simulation are bit-identical.

The timing pipeline carries its scheduler, memory-order and attribution
state across chunk boundaries, so the chunk size is purely an execution
detail: every cipher on every machine must produce the same ``SimStats``
-- cycles, the 13-category slot account, and the hot-spot table -- for
any chunking of the same trace, including one entry at a time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import KERNEL_NAMES
from repro.kernels.registry import make_kernel
from repro.sim import (
    DATAFLOW,
    EIGHTW_PLUS,
    FOURW,
    Machine,
    Memory,
    simulate,
)
from repro.sim.timing import make_pipeline
from repro.sim.trace import StaticInfo

from .test_timing_properties import random_programs

CONFIGS = (FOURW, EIGHTW_PLUS, DATAFLOW)
CHUNK_SIZES = (1, 7, 4096, None)


def _pipeline_stats(trace, config, warm_ranges, chunk_size):
    pipeline = make_pipeline(config, trace.static, trace.program,
                             warm_ranges=warm_ranges)
    for chunk in trace.chunks(chunk_size):
        pipeline.feed(chunk)
    return pipeline.finish()


@pytest.fixture(scope="module")
def kernel_runs():
    """One materialized functional run per cipher, shared by the grid."""
    runs = {}
    for name in KERNEL_NAMES:
        kernel = make_kernel(name)
        data = bytes(i & 0xFF for i in range(64))
        runs[name] = kernel.encrypt(data)
    return runs


@pytest.mark.parametrize("cipher", KERNEL_NAMES)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_every_cipher_chunk_invariant(kernel_runs, cipher, config):
    run = kernel_runs[cipher]
    baseline = simulate(run.trace, config, run.warm_ranges)
    assert baseline.instructions == run.instructions
    for chunk_size in CHUNK_SIZES:
        streamed = _pipeline_stats(
            run.trace, config, run.warm_ranges, chunk_size
        )
        assert streamed == baseline, (
            f"{cipher}/{config.name} diverged at chunk_size={chunk_size}"
        )


def test_live_stream_matches_materialized():
    """A generator-backed StreamingTrace equals the stored-trace result."""
    kernel = make_kernel("RC6")
    data = bytes(range(64))
    run = kernel.encrypt(data)
    baseline = simulate(run.trace, FOURW, run.warm_ranges)

    stream = kernel.stream(data, chunk_size=13)
    pipeline = make_pipeline(FOURW, stream.source.static,
                             stream.source.program,
                             warm_ranges=stream.warm_ranges)
    for chunk in stream.source.chunks():
        pipeline.feed(chunk)
    fin = stream.finalize()
    assert fin.ciphertext == run.ciphertext
    assert pipeline.finish() == baseline


def test_hotspot_tables_survive_single_entry_chunks():
    run = make_kernel("RC4").encrypt(bytes(64))
    baseline = simulate(run.trace, FOURW, run.warm_ranges)
    streamed = _pipeline_stats(run.trace, FOURW, run.warm_ranges, 1)
    assert baseline.hotspots  # the table is non-trivial for real kernels
    assert streamed.hotspots == baseline.hotspots
    assert streamed.stall_slots == baseline.stall_slots
    assert streamed.wait_cycles == baseline.wait_cycles


@given(random_programs(), st.integers(1, 64))
@settings(max_examples=25, deadline=None)
def test_random_programs_chunk_invariant(program, chunk_size):
    trace = Machine(program, Memory(1 << 13)).execute().trace
    baseline = simulate(trace, FOURW)
    pipeline = make_pipeline(FOURW, StaticInfo.from_program(program),
                             program)
    for chunk in trace.chunks(chunk_size):
        pipeline.feed(chunk)
    assert pipeline.finish() == baseline
