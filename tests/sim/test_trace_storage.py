"""Array-backed trace storage and the machine's streaming surface.

PR 3 moved ``Trace`` columns onto ``array('q')``/``array('Q')`` buffers
and made ``Machine`` a one-shot generator (now the chunked/streaming
shapes of ``execute()``) with an explicit ``reset``.  These tests pin
the storage contract --
equality, pickling, chunking -- and the reuse guard.
"""

import pickle
from array import array

import pytest

from repro.isa import assemble
from repro.sim import (
    DEFAULT_CHUNK_SIZE,
    Machine,
    Memory,
    SimulationError,
    StreamingTrace,
    Trace,
    TraceChunk,
    TraceSource,
)

LOOP = """
    ldiq r1, 5
loop:
    addq r2, r2, #1
    subq r1, r1, #1
    bne r1, loop
    halt
"""


def _machine():
    return Machine(assemble(LOOP), Memory(1 << 12))


# -- array-backed columns ------------------------------------------------

def test_trace_columns_are_arrays():
    trace = _machine().execute().trace
    assert isinstance(trace.seq, array) and trace.seq.typecode == "q"
    assert isinstance(trace.addrs, array) and trace.addrs.typecode == "Q"
    assert trace.nbytes == len(trace) * (trace.seq.itemsize
                                         + trace.addrs.itemsize)


def test_trace_accepts_plain_lists():
    reference = _machine().execute().trace
    rebuilt = Trace(
        program=reference.program,
        static=reference.static,
        seq=list(reference.seq),
        addrs=list(reference.addrs),
        instructions_executed=reference.instructions_executed,
    )
    assert isinstance(rebuilt.seq, array)
    assert rebuilt == reference


def test_trace_equality_and_inequality():
    a = _machine().execute().trace
    b = _machine().execute().trace
    assert a == b
    shorter = Trace(
        program=a.program, static=a.static,
        seq=a.seq[:-1], addrs=a.addrs[:-1],
        instructions_executed=a.instructions_executed,
    )
    assert a != shorter
    assert a != object()


def test_trace_pickle_round_trip():
    trace = _machine().execute().trace
    clone = pickle.loads(pickle.dumps(trace))
    assert clone == trace
    assert isinstance(clone.seq, array)
    assert clone.taken(len(clone) - 1) is True


# -- chunking ------------------------------------------------------------

def test_chunks_cover_trace_with_offsets():
    trace = _machine().execute().trace
    chunks = list(trace.chunks(4))
    assert sum(len(chunk) for chunk in chunks) == len(trace)
    position = 0
    seq = []
    for chunk in chunks:
        assert chunk.start == position
        position += len(chunk)
        seq.extend(chunk.seq)
    assert seq == list(trace.seq)


def test_chunks_none_is_one_zero_copy_chunk():
    trace = _machine().execute().trace
    (chunk,) = trace.chunks(None)
    assert chunk.seq is trace.seq      # no copy for the whole-trace case
    assert chunk.start == 0
    assert len(chunk) == len(trace)


def test_chunk_size_must_be_positive():
    trace = _machine().execute().trace
    with pytest.raises(ValueError):
        list(trace.chunks(0))


def test_trace_satisfies_trace_source_protocol():
    trace = _machine().execute().trace
    assert isinstance(trace, TraceSource)
    assert isinstance(_machine().execute(stream=True), TraceSource)


# -- machine one-shot guard and reset ------------------------------------

def test_machine_run_twice_raises():
    machine = _machine()
    machine.execute()
    with pytest.raises(SimulationError, match="already executed"):
        machine.execute()


def test_machine_run_then_stream_raises():
    machine = _machine()
    machine.execute()
    with pytest.raises(SimulationError):
        list(machine.execute(chunk_size=DEFAULT_CHUNK_SIZE))


def test_machine_reset_allows_rerun():
    machine = _machine()
    first = machine.execute()
    machine.reset()
    second = machine.execute()
    assert second.trace == first.trace


def test_machine_reset_with_fresh_memory():
    source = """
    ldq r1, 0x400(r31)
    addq r1, r1, #1
    stq r1, 0x400(r31)
    halt
    """
    memory = Memory(1 << 12)
    machine = Machine(assemble(source), memory)
    machine.execute()
    assert memory.read(0x400, 8) == 1
    machine.reset(memory=Memory(1 << 12))
    machine.execute()
    assert machine.memory.read(0x400, 8) == 1  # started from zero again


# -- streaming trace source ----------------------------------------------

def test_streaming_trace_matches_run():
    reference = _machine().execute().trace
    stream = _machine().execute(stream=True, chunk_size=3)
    assert isinstance(stream, StreamingTrace)
    entries = []
    for chunk in stream.chunks():
        assert isinstance(chunk, TraceChunk)
        assert len(chunk) <= 3
        entries.extend(zip(chunk.seq, chunk.addrs))
    assert entries == list(zip(reference.seq, reference.addrs))
    assert stream.exhausted
    assert stream.instructions == reference.instructions_executed


def test_streaming_trace_is_one_shot():
    stream = _machine().execute(stream=True)
    list(stream.chunks())
    with pytest.raises(SimulationError):
        list(stream.chunks())


def test_streaming_instructions_requires_exhaustion():
    stream = _machine().execute(stream=True)
    with pytest.raises(SimulationError):
        stream.instructions


def test_default_chunk_size_bounds_chunks():
    stream = _machine().execute(stream=True)
    for chunk in stream.chunks():
        assert len(chunk) <= DEFAULT_CHUNK_SIZE
