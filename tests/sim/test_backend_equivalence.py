"""Differential equivalence: the compiled backend is bit-identical.

The compiled backend's contract (docs/backends.md) is that backend choice
never changes results -- only speed.  These tests hold it to that across
the full cipher suite, every ISA feature level, and every chunking shape:

* identical :class:`Trace` columns (static indices, addresses, values),
* identical chunk *boundaries*, not just concatenated contents,
* identical final architectural state (registers, memory, counters),
* identical timing statistics when the traces feed ``simulate()``.

This is what lets the runner keep ``backend`` out of its cache keys.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Features, Imm, KernelBuilder
from repro.kernels import KERNEL_NAMES, make_kernel
from repro.sim import FOURW, Machine, Memory, simulate
from repro.sim.backends import UNBOUNDED_CHUNK, backend_names
from repro.sim.diverge import assert_sources_identical
from repro.sim.machine import RunResult

FEATURE_LEVELS = (Features.NOROT, Features.ROT, Features.OPT)
#: Chunk limits exercising degenerate (1), odd (7), typical (4096) and
#: single-chunk (unbounded) boundary placement.
CHUNK_SIZES = (1, 7, 4096, UNBOUNDED_CHUNK)
#: 64 bytes is block-aligned for every suite cipher (1, 8 and 16 byte
#: blocks) while keeping the matrix cheap.
SESSION = bytes(range(64))


def _fresh(cipher, features):
    """A fresh machine for one cipher kernel run (memory fully laid out)."""
    kernel = make_kernel(cipher, features)
    program, memory, _ = kernel.prepare(SESSION, None)
    return Machine(program, memory)


def _state(machine):
    return (
        machine.regs,
        bytes(machine.memory.data),
        machine.instructions_executed,
        machine.halted,
    )


def _run_batch(machine, backend, **kwargs):
    result = machine.execute(backend=backend, **kwargs)
    assert isinstance(result, RunResult)
    return result


def _assert_traces_identical(ref_trace, got_trace, context=""):
    """Bit-identity with forensics: a failure names the first differing
    trace position, column and instruction (repro.sim.diverge) instead
    of dumping two traces."""
    if got_trace == ref_trace:
        return
    assert_sources_identical(ref_trace, got_trace,
                             "interpreter", "compiled")
    raise AssertionError(
        f"{context}: traces differ outside the dynamic columns "
        f"(program or instruction count)"
    )


def test_both_backends_are_registered():
    assert "interpreter" in backend_names()
    assert "compiled" in backend_names()


@pytest.mark.parametrize("cipher", KERNEL_NAMES)
def test_cipher_suite_equivalence(cipher):
    for features in FEATURE_LEVELS:
        reference = _fresh(cipher, features)
        ref = _run_batch(reference, "interpreter")

        compiled = _fresh(cipher, features)
        got = _run_batch(compiled, "compiled")

        context = f"{cipher} [{features.label}]"
        assert got.instructions == ref.instructions, context
        _assert_traces_identical(ref.trace, got.trace, context)
        assert _state(compiled) == _state(reference), context


@pytest.mark.parametrize("cipher", KERNEL_NAMES)
def test_cipher_suite_chunk_boundaries(cipher):
    """Chunked compiled output has the same contents AND boundaries."""
    reference = _fresh(cipher, Features.OPT)
    ref = _run_batch(reference, "interpreter")

    for chunk_size in CHUNK_SIZES:
        machine = _fresh(cipher, Features.OPT)
        chunks = list(machine.execute(backend="compiled",
                                      chunk_size=chunk_size))
        # Every chunk is exactly chunk_size entries except the last, which
        # is non-empty: boundaries are part of the equivalence contract.
        assert all(len(c) == chunk_size for c in chunks[:-1]), chunk_size
        assert 0 < len(chunks[-1]) <= chunk_size
        seq = [s for c in chunks for s in c.seq]
        addrs = [a for c in chunks for a in c.addrs]
        assert seq == list(ref.trace.seq), chunk_size
        assert addrs == list(ref.trace.addrs), chunk_size
        assert _state(machine) == _state(reference), chunk_size


@pytest.mark.parametrize("cipher", KERNEL_NAMES)
def test_cipher_suite_values_mode(cipher):
    """record_values parity, batch and at one odd chunk size."""
    reference = _fresh(cipher, Features.OPT)
    ref = _run_batch(reference, "interpreter", record_values=True)
    assert ref.trace.values is not None

    machine = _fresh(cipher, Features.OPT)
    got = _run_batch(machine, "compiled", record_values=True)
    _assert_traces_identical(ref.trace, got.trace, cipher)  # incl. values
    assert _state(machine) == _state(reference)

    chunked = _fresh(cipher, Features.OPT)
    values = [
        v
        for chunk in chunked.execute(backend="compiled", chunk_size=7,
                                     record_values=True)
        for v in chunk.values
    ]
    assert values == list(ref.trace.values)


@pytest.mark.parametrize("cipher", KERNEL_NAMES)
def test_cipher_suite_timing_stats_match(cipher):
    """Equal traces must mean equal SimStats -- checked end to end."""
    ref = _run_batch(_fresh(cipher, Features.OPT), "interpreter")
    got = _run_batch(_fresh(cipher, Features.OPT), "compiled")
    assert simulate(got.trace, FOURW) == simulate(ref.trace, FOURW)


def test_traceless_counters_match():
    """record_trace=False is the compiled backend's fast path; the final
    state and instruction counters still have to agree exactly."""
    for cipher in KERNEL_NAMES:
        reference = _fresh(cipher, Features.OPT)
        ref = _run_batch(reference, "interpreter", record_trace=False)
        machine = _fresh(cipher, Features.OPT)
        got = _run_batch(machine, "compiled", record_trace=False)
        assert ref.trace is None and got.trace is None
        assert got.instructions == ref.instructions, cipher
        assert _state(machine) == _state(reference), cipher


def test_equivalence_failure_names_the_exact_instruction():
    """Golden: a bit-identity failure message carries the first differing
    trace position and the static instruction's disassembly, so a broken
    backend is localized without re-running anything."""
    import copy

    ref = make_kernel("RC4").encrypt(SESSION).trace
    perturbed = copy.copy(ref)
    perturbed.addrs = ref.addrs[:]
    position = len(ref) // 2
    perturbed.addrs[position] ^= 0x40
    with pytest.raises(AssertionError) as failure:
        _assert_traces_identical(ref, perturbed, "RC4 [opt]")
    message = str(failure.value)
    assert f"first divergence at trace position {position}" in message
    assert "column 'addrs'" in message
    assert ref.program.instructions[ref.seq[position]].render() in message


# -- property-based cross-backend fuzzing -----------------------------------

_OPS = ("addq", "subq", "xor", "and_", "bis", "sll", "srl", "mull",
        "roll", "rotl32ish")


@st.composite
def random_programs(draw):
    """A random terminating loop (same shape as the timing properties)."""
    kb = KernelBuilder(Features.OPT)
    regs = kb.regs("a", "b", "c", "d")
    counter = kb.reg("count")
    for reg in regs:
        kb.ldiq(reg, draw(st.integers(0, 0xFFFFFFFF)))
    iterations = draw(st.integers(1, 12))
    kb.ldiq(counter, iterations)
    body_length = draw(st.integers(1, 12))
    kb.label("loop")
    for _ in range(body_length):
        op = draw(st.sampled_from(_OPS))
        dst = draw(st.sampled_from(regs))
        src = draw(st.sampled_from(regs))
        if op == "rotl32ish":
            kb.rotl32(dst, src, draw(st.integers(0, 31)))
        elif op in ("sll", "srl", "roll"):
            getattr(kb, op)(dst, src, Imm(draw(st.integers(0, 31))))
        else:
            getattr(kb, op)(dst, src, draw(st.sampled_from(regs)))
    if draw(st.booleans()):
        kb.stq(regs[0], kb.zero, 0x800)
        kb.ldq(regs[1], kb.zero, 0x800)
    kb.subq(counter, counter, Imm(1))
    kb.bne(counter, "loop")
    kb.halt()
    return kb.build()


@given(random_programs(), st.sampled_from((1, 7, UNBOUNDED_CHUNK)))
@settings(max_examples=30, deadline=None)
def test_random_programs_cross_backend(program, chunk_size):
    reference = Machine(program, Memory(1 << 13))
    ref = _run_batch(reference, "interpreter", record_values=True)

    machine = Machine(program, Memory(1 << 13))
    got = _run_batch(machine, "compiled", record_values=True)
    _assert_traces_identical(ref.trace, got.trace, "random program")
    assert _state(machine) == _state(reference)

    chunked = Machine(program, Memory(1 << 13))
    chunks = list(chunked.execute(backend="compiled", chunk_size=chunk_size,
                                  record_values=True))
    assert all(len(c) == chunk_size for c in chunks[:-1])
    assert [s for c in chunks for s in c.seq] == list(ref.trace.seq)
    assert [v for c in chunks for v in c.values] == list(ref.trace.values)
    assert _state(chunked) == _state(reference)
