"""Tests for the pipeline viewer (SimpleView analog)."""

from repro.isa import assemble
from repro.sim import FOURW, Machine, Memory, simulate
from repro.sim.pipeview import render_pipeline, stall_summary


def _trace():
    return Machine(assemble("""
    ldiq r1, 20
loop:
    addq r2, r2, #1
    addq r2, r2, #2
    subq r1, r1, #1
    bne r1, loop
    halt
    """), Memory(4096)).run().trace


def test_schedule_hook_returns_window():
    trace = _trace()
    stats = simulate(trace, FOURW, schedule_range=(10, 20))
    schedule = stats.extra["schedule"]
    assert len(schedule) == 10
    assert [entry[0] for entry in schedule] == list(range(10, 20))


def test_schedule_times_are_ordered():
    trace = _trace()
    schedule = simulate(trace, FOURW, schedule_range=(0, 30)).extra["schedule"]
    for _, _, fetch, issue, complete, retire in schedule:
        assert fetch <= issue < complete < retire + 1


def test_schedule_retire_is_in_order():
    trace = _trace()
    schedule = simulate(trace, FOURW, schedule_range=(0, 40)).extra["schedule"]
    retires = [entry[5] for entry in schedule]
    assert retires == sorted(retires)


def test_render_contains_stage_markers():
    trace = _trace()
    schedule = simulate(trace, FOURW, schedule_range=(5, 15)).extra["schedule"]
    text = render_pipeline(trace, schedule)
    assert "F" in text
    assert "R" in text
    assert "addq" in text


def test_render_empty():
    trace = _trace()
    assert render_pipeline(trace, []) == "(empty schedule)"


def test_stall_summary_fields():
    trace = _trace()
    schedule = simulate(trace, FOURW, schedule_range=(0, 20)).extra["schedule"]
    summary = stall_summary(schedule)
    assert set(summary) == {
        "mean_wait_cycles", "mean_execute_cycles", "mean_retire_wait_cycles",
    }
    assert summary["mean_execute_cycles"] >= 1.0
    assert stall_summary([]) == {}


def test_no_schedule_without_request():
    trace = _trace()
    stats = simulate(trace, FOURW)
    assert "schedule" not in stats.extra
