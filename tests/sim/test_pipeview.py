"""Tests for the pipeline viewer (SimpleView analog)."""

from repro.isa import assemble
from repro.sim import FOURW, Machine, Memory, simulate
from repro.sim.pipeview import render_pipeline, stall_summary


def _trace():
    return Machine(assemble("""
    ldiq r1, 20
loop:
    addq r2, r2, #1
    addq r2, r2, #2
    subq r1, r1, #1
    bne r1, loop
    halt
    """), Memory(4096)).execute().trace


def test_schedule_hook_returns_window():
    trace = _trace()
    stats = simulate(trace, FOURW, schedule_range=(10, 20))
    schedule = stats.extra["schedule"]
    assert len(schedule) == 10
    assert [entry[0] for entry in schedule] == list(range(10, 20))


def test_schedule_times_are_ordered():
    trace = _trace()
    schedule = simulate(trace, FOURW, schedule_range=(0, 30)).extra["schedule"]
    for _, _, fetch, issue, complete, retire in schedule:
        assert fetch <= issue < complete < retire + 1


def test_schedule_retire_is_in_order():
    trace = _trace()
    schedule = simulate(trace, FOURW, schedule_range=(0, 40)).extra["schedule"]
    retires = [entry[5] for entry in schedule]
    assert retires == sorted(retires)


def test_render_contains_stage_markers():
    trace = _trace()
    schedule = simulate(trace, FOURW, schedule_range=(5, 15)).extra["schedule"]
    text = render_pipeline(trace, schedule)
    assert "F" in text
    assert "R" in text
    assert "addq" in text


def test_render_empty():
    trace = _trace()
    assert render_pipeline(trace, []) == "(empty schedule)"


def test_stall_summary_fields():
    trace = _trace()
    schedule = simulate(trace, FOURW, schedule_range=(0, 20)).extra["schedule"]
    summary = stall_summary(schedule)
    assert set(summary) == {
        "mean_wait_cycles", "mean_execute_cycles", "mean_retire_wait_cycles",
    }
    assert summary["mean_execute_cycles"] >= 1.0
    assert stall_summary([]) == {}


def test_no_schedule_without_request():
    trace = _trace()
    stats = simulate(trace, FOURW)
    assert "schedule" not in stats.extra


GOLDEN_4W = """\
   pos instruction     cycle 2
     0 ldiq r1, 0x5    F.R
     1 addq r2, r1, #1 FX.R
     2 addq r3, r2, #2 F=X.R
     3 xor r4, r2, r3  F==X.R
     4 halt             F...R"""


def test_golden_render_tiny_kernel_on_4w():
    """Byte-exact rendering of a dependent chain on the 4W machine: the
    adds issue back to back (X marching right), the xor waits two cycles
    for both operands (==), and retirement is in order."""
    trace = Machine(assemble("""
    ldiq r1, 5
    addq r2, r1, #1
    addq r3, r2, #2
    xor r4, r2, r3
    halt
    """), Memory(4096)).execute().trace
    stats = simulate(trace, FOURW, schedule_range=(0, len(trace)))
    rendered = render_pipeline(trace, stats.extra["schedule"])
    stripped = "\n".join(line.rstrip() for line in rendered.splitlines())
    assert stripped == GOLDEN_4W


def test_render_truncates_wide_windows():
    trace = _trace()
    # A synthetic span far wider than the column budget.
    schedule = [(0, 0, 0, 200, 201, 202), (1, 1, 0, 1, 2, 3)]
    text = render_pipeline(trace, schedule, max_columns=40)
    lines = text.splitlines()
    assert "(clipped)" in lines[0]
    # Every row renders the same, bounded cycle range: 41 columns, far
    # fewer than the 203-cycle span width.
    assert len({len(line) for line in lines[1:]}) == 1
    assert len(lines[1]) < 203
    # The wide span's issue/retire stages fall outside the rendering.
    assert "F" in lines[1]
    assert "X" not in lines[1]
    assert "R" not in lines[1]
    # An un-clipped render keeps a plain header.
    narrow = render_pipeline(trace, schedule[1:], max_columns=40)
    assert "(clipped)" not in narrow.splitlines()[0]
