"""The first-divergence bisector: exact localization over trace streams.

Every test perturbs a known trace position and requires the bisector to
name exactly that position, the right column, and the right values --
across mismatched chunkings, streamed sources, and length divergences.
"""

import copy

import pytest

from repro.kernels import make_kernel
from repro.sim import Machine
from repro.sim.diverge import (
    Divergence,
    assert_sources_identical,
    first_divergence,
    first_schedule_divergence,
    format_divergence,
)
from repro.sim.trace import Trace

SESSION = bytes(range(64))
CHUNK_SIZES = (1, 7, 64, None)


@pytest.fixture(scope="module")
def rc4_trace():
    return make_kernel("RC4").encrypt(SESSION).trace


def perturbed(trace, column, position, twiddle):
    """A shallow copy of ``trace`` with one entry of one column changed."""
    clone = copy.copy(trace)
    data = getattr(trace, column)[:]
    data[position] = twiddle(data[position])
    setattr(clone, column, data)
    return clone


def truncated(trace, n):
    return Trace(program=trace.program, static=trace.static,
                 seq=trace.seq[:n], addrs=trace.addrs[:n],
                 instructions_executed=n)


# -- identity ---------------------------------------------------------------

@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_identical_traces_have_no_divergence(rc4_trace, chunk_size):
    assert first_divergence(rc4_trace, copy.copy(rc4_trace),
                            chunk_size=chunk_size) is None


def test_stream_vs_materialized_trace_identical(rc4_trace):
    """Chunk boundaries of the two sides need not line up: a streamed run
    chunks small while the materialized trace arrives as one chunk."""
    kernel = make_kernel("RC4")
    program, memory, _ = kernel.prepare(SESSION, None)
    stream = Machine(program, memory).execute(stream=True, chunk_size=7)
    assert first_divergence(stream, rc4_trace, chunk_size=33) is None


def test_stream_divergence_is_localized(rc4_trace):
    kernel = make_kernel("RC4")
    program, memory, _ = kernel.prepare(SESSION, None)
    stream = Machine(program, memory).execute(stream=True, chunk_size=7)
    position = len(rc4_trace) // 3
    broken = perturbed(rc4_trace, "addrs", position, lambda v: v ^ 1)
    divergence = first_divergence(stream, broken, chunk_size=7)
    assert divergence.position == position
    assert divergence.field == "addrs"


# -- exact localization per column ------------------------------------------

@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_addrs_perturbation_found_at_exact_position(rc4_trace, chunk_size):
    position = len(rc4_trace) // 2
    broken = perturbed(rc4_trace, "addrs", position, lambda v: v ^ 0x40)
    divergence = first_divergence(rc4_trace, broken, chunk_size=chunk_size)
    assert divergence.position == position
    assert divergence.field == "addrs"
    assert divergence.b_value == divergence.a_value ^ 0x40


@pytest.mark.parametrize("position", (0, 1, 6, 7, 8, 13, 14))
def test_chunk_boundary_positions(rc4_trace, position):
    """Positions straddling chunk_size=7 boundaries stay exact."""
    broken = perturbed(rc4_trace, "seq", position, lambda v: v + 1)
    divergence = first_divergence(rc4_trace, broken, chunk_size=7)
    assert (divergence.position, divergence.field) == (position, "seq")


def test_seq_divergence_outranks_addrs_at_same_position(rc4_trace):
    position = 20
    broken = perturbed(rc4_trace, "seq", position, lambda v: v + 1)
    broken = perturbed(broken, "addrs", position, lambda v: v ^ 1)
    divergence = first_divergence(rc4_trace, broken)
    assert (divergence.position, divergence.field) == (position, "seq")


def test_earlier_position_wins_regardless_of_column(rc4_trace):
    broken = perturbed(rc4_trace, "seq", 30, lambda v: v + 1)
    broken = perturbed(broken, "addrs", 10, lambda v: v ^ 1)
    divergence = first_divergence(rc4_trace, broken)
    assert (divergence.position, divergence.field) == (10, "addrs")


def test_values_column_divergence():
    kernel = make_kernel("RC4")
    program, memory, _ = kernel.prepare(SESSION, None)
    trace = Machine(program, memory).execute(record_values=True).trace
    assert trace.values is not None
    broken = perturbed(trace, "values", 17, lambda v: v ^ 0x8000000000000000)
    divergence = first_divergence(trace, broken)
    assert (divergence.position, divergence.field) == (17, "values")
    assert "0x" in format_divergence(divergence)


def test_value_recording_asymmetry_is_not_a_divergence(rc4_trace):
    """A run that recorded values vs one that did not still matches:
    column presence is a recording choice, not an execution divergence."""
    kernel = make_kernel("RC4")
    program, memory, _ = kernel.prepare(SESSION, None)
    with_values = Machine(program, memory).execute(record_values=True).trace
    assert rc4_trace.values is None and with_values.values is not None
    assert first_divergence(rc4_trace, with_values) is None


def test_explicit_taken_flags_divergence(rc4_trace):
    synthetic_a = Trace(program=rc4_trace.program, static=rc4_trace.static,
                        seq=list(rc4_trace.seq[:8]),
                        addrs=list(rc4_trace.addrs[:8]),
                        taken_flags=[0, 1, 0, 1, 0, 1, 0, 1])
    synthetic_b = Trace(program=rc4_trace.program, static=rc4_trace.static,
                        seq=list(rc4_trace.seq[:8]),
                        addrs=list(rc4_trace.addrs[:8]),
                        taken_flags=[0, 1, 0, 0, 0, 1, 0, 1])
    divergence = first_divergence(synthetic_a, synthetic_b, chunk_size=3)
    assert (divergence.position, divergence.field) == (3, "taken")
    message = format_divergence(divergence, "ref", "got")
    assert "ref: taken" in message
    assert "got: not taken" in message


# -- length divergence ------------------------------------------------------

@pytest.mark.parametrize("chunk_size", (7, None))
def test_prefix_trace_reports_length_divergence(rc4_trace, chunk_size):
    n = len(rc4_trace) - 5
    divergence = first_divergence(rc4_trace, truncated(rc4_trace, n),
                                  chunk_size=chunk_size)
    assert divergence.field == "length"
    assert divergence.position == n
    assert divergence.b_value is None           # b ended first
    assert divergence.a_value == rc4_trace.seq[n]
    message = format_divergence(divergence, "long", "short")
    assert "long continues past the end" in message
    assert "short: <end of trace>" in message


def test_empty_vs_nonempty(rc4_trace):
    divergence = first_divergence(truncated(rc4_trace, 0), rc4_trace)
    assert (divergence.position, divergence.field) == (0, "length")
    assert divergence.a_value is None


# -- the forensic message ---------------------------------------------------

def test_report_carries_disassembly_and_context(rc4_trace):
    position = 100
    broken = perturbed(rc4_trace, "addrs", position, lambda v: v ^ 4)
    divergence = first_divergence(rc4_trace, broken, chunk_size=7,
                                  context=3)
    rendered = rc4_trace.program.instructions[
        rc4_trace.seq[position]].render()
    assert divergence.a_text == rendered
    assert len(divergence.context) == 3
    for offset, line in zip(range(position - 3, position),
                            divergence.context):
        assert line.startswith(f"[{offset}] static #{rc4_trace.seq[offset]}")
    message = format_divergence(divergence)
    assert f"first divergence at trace position {position}" in message
    assert "column 'addrs'" in message
    assert rendered in message
    assert "context:" in message


def test_divergence_near_start_has_short_context(rc4_trace):
    broken = perturbed(rc4_trace, "addrs", 1, lambda v: v ^ 4)
    divergence = first_divergence(rc4_trace, broken, context=3)
    assert len(divergence.context) == 1
    assert divergence.context[0].startswith("[0]")


def test_assert_sources_identical_passes_and_raises(rc4_trace):
    assert_sources_identical(rc4_trace, copy.copy(rc4_trace))
    broken = perturbed(rc4_trace, "addrs", 33, lambda v: v ^ 2)
    with pytest.raises(AssertionError) as failure:
        assert_sources_identical(rc4_trace, broken, "ref", "got")
    message = str(failure.value)
    assert "ref and got diverge" in message
    assert "first divergence at trace position 33" in message


def test_divergence_str_matches_format(rc4_trace):
    broken = perturbed(rc4_trace, "seq", 5, lambda v: v + 1)
    divergence = first_divergence(rc4_trace, broken)
    assert isinstance(divergence, Divergence)
    assert str(divergence) == format_divergence(divergence)


# -- schedule-entry bisection -----------------------------------------------

def test_first_schedule_divergence_exact_index():
    a = [(0, 2, 3), (1, 3, 4), (2, 5, 6)]
    b = [(0, 2, 3), (1, 3, 5), (2, 5, 6)]
    assert first_schedule_divergence(a, a) is None
    index, left, right = first_schedule_divergence(a, b)
    assert index == 1
    assert (left, right) == ((1, 3, 4), (1, 3, 5))


def test_first_schedule_divergence_length_mismatch():
    a = [(0,), (1,)]
    assert first_schedule_divergence(a, a[:1]) == (1, (1,), None)
    assert first_schedule_divergence(a[:1], a) == (1, None, (1,))
