"""Unit tests for the flat simulator memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.memory import Memory


def test_read_write_roundtrip_all_widths():
    memory = Memory(4096)
    for width, value in ((1, 0xAB), (2, 0xBEEF), (4, 0xDEADBEEF),
                         (8, 0x0123456789ABCDEF)):
        memory.write(256, value, width)
        assert memory.read(256, width) == value


def test_little_endian_layout():
    memory = Memory(64)
    memory.write(0, 0x0102030405060708, 8)
    assert memory.read(0, 1) == 0x08
    assert memory.read(1, 1) == 0x07
    assert memory.read(0, 4) == 0x05060708


def test_unaligned_rejected():
    memory = Memory(64)
    with pytest.raises(ValueError):
        memory.read(1, 4)
    with pytest.raises(ValueError):
        memory.write(2, 0, 8)


def test_out_of_bounds_rejected():
    memory = Memory(64)
    with pytest.raises(ValueError):
        memory.read(64, 4)
    with pytest.raises(ValueError):
        memory.write(60, 0, 8)
    with pytest.raises(ValueError):
        memory.read_bytes(60, 8)
    with pytest.raises(ValueError):
        memory.write_bytes(62, b"abc")


def test_write_masks_to_width():
    memory = Memory(64)
    memory.write(0, 0x1FF, 1)
    assert memory.read(0, 1) == 0xFF


def test_bytes_helpers():
    memory = Memory(64)
    memory.write_bytes(8, b"hello")
    assert memory.read_bytes(8, 5) == b"hello"


def test_words32_helpers():
    memory = Memory(64)
    memory.write_words32(0, [1, 2, 0xFFFFFFFF])
    assert memory.read_words32(0, 3) == [1, 2, 0xFFFFFFFF]


@given(st.integers(min_value=0, max_value=0xFFFFFFFFFFFFFFFF),
       st.sampled_from([1, 2, 4, 8]))
def test_roundtrip_property(value, width):
    memory = Memory(64)
    memory.write(0, value, width)
    assert memory.read(0, width) == value & ((1 << (8 * width)) - 1)
