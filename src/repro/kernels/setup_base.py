"""Base harness for key-setup kernels (paper Figure 6).

Setup kernels run the cipher's key schedule *in RISC-A*, writing tables and
round keys to the exact memory layout the encryption kernel expects; the
harness validates the produced bytes against the reference cipher's
schedule.  Setup code is emitted at the ``ROT`` feature level regardless of
the encryption kernel's level: the paper measured unoptimized setup routines
(optimizing them is listed as future work in its section 8).

Layout additions: the raw key is staged at ``KEY_INPUT``; ciphers with
static helper tables (q-permutations, MDS/RS columns, the AES S-box source)
get them at ``STATIC_BASE`` -- those are key-independent program constants,
not products of setup.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.isa import Features, KernelBuilder
from repro.isa import opcodes as op
from repro.isa.builder import SCRATCH_REGS, Imm
from repro.isa.program import Program
from repro.kernels.runtime import IV_BASE, Layout
from repro.sim.machine import Machine
from repro.sim.memory import Memory
from repro.sim.trace import Trace

KEY_INPUT = IV_BASE + 0x100
STATIC_BASE = 0x3000  # inside the tables region, above the runtime tables


@dataclass
class SetupRun:
    trace: Trace
    instructions: int


class SetupKernel(ABC):
    """One cipher's RISC-A key-setup routine."""

    name: str = ""

    def __init__(self, key: bytes):
        self.key = key

    @abstractmethod
    def stage_inputs(self, memory: Memory, layout: Layout) -> None:
        """Write the raw key and any static helper tables into memory."""

    @abstractmethod
    def build_program(self, layout: Layout) -> Program:
        """Emit the setup routine."""

    @abstractmethod
    def expected_regions(self, layout: Layout) -> list[tuple[int, bytes]]:
        """(address, bytes) pairs the setup must have produced."""

    def layout(self) -> Layout:
        return Layout(
            tables=0x1000, keys=0xD000, iv=IV_BASE,
            input=0x10000, output=0x10040, session_bytes=0,
        )

    def run(self, validate: bool = True, backend: str | None = None) -> SetupRun:
        layout = self.layout()
        memory = Memory(0x12000)
        self.stage_inputs(memory, layout)
        program = self.build_program(layout)
        result = Machine(program, memory).execute(backend=backend)
        if validate:
            for address, expected in self.expected_regions(layout):
                produced = memory.read_bytes(address, len(expected))
                if produced != expected:
                    raise AssertionError(
                        f"{self.name} setup diverges at 0x{address:x}: "
                        f"{produced[:16].hex()} != {expected[:16].hex()}"
                    )
        return SetupRun(trace=result.trace, instructions=result.instructions)

    def builder(self) -> KernelBuilder:
        return KernelBuilder(Features.ROT)


def emit_bit_gather(
    kb: KernelBuilder,
    dest: int,
    src: int,
    bit_map: list[tuple[int, int]],
    category: str = op.PERMUTE,
) -> None:
    """dest = gather of ``src`` bits: (src_bit, dest_bit) pairs, unrolled.

    The straightforward compiled-C shape for an arbitrary bit permutation:
    shift / mask / shift / OR per bit (the cost the paper's XBOX attacks).
    """
    t = SCRATCH_REGS[0]
    first = True
    for src_bit, dest_bit in bit_map:
        kb.srl(t, src, Imm(src_bit), category=category)
        kb.and_(t, t, Imm(1), category=category)
        if dest_bit:
            kb.sll(t, t, Imm(dest_bit), category=category)
        if first:
            kb.mov(dest, t, category=category)
            first = False
        else:
            kb.bis(dest, dest, t, category=category)
