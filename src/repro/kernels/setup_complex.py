"""Setup kernels for Twofish, MARS and 3DES.

* **Twofish** uses the "full keying" option the encryption kernel assumes:
  the setup computes the RS-coded S-box words, derives the 40 round keys via
  the h-function, and materializes the four fused g-tables (1024 entries of
  q-permutation chains + MDS column lookups).  The q tables and MDS/RS
  column tables are static program constants staged at ``STATIC_BASE``.
* **MARS** runs the submission's key expansion: linear stirring, S-box
  stirring, harvesting, and the multiplication-key fixing pass with the
  bit-parallel long-run mask.
* **3DES** runs the DES key schedule three times (PC1, sixteen 28-bit
  rotations, PC2) with the PC2 gather emitted directly into the encryption
  kernel's rotated (k0, k1) word format, middle schedule stored reversed.
  Bit permutations use the straightforward shift/mask gathers compiled C
  produces.
"""

from __future__ import annotations

from repro.ciphers import mars as mars_mod
from repro.ciphers.des import KEY_SHIFTS, PC1, PC2
from repro.ciphers.twofish import MDS, Q0, Q1, RS, Twofish
from repro.isa import opcodes as op
from repro.isa.builder import Imm, SCRATCH_REGS
from repro.isa.program import Program
from repro.kernels.des3_kernel import ede_round_keys
from repro.kernels.runtime import Layout
from repro.kernels.setup_base import (
    KEY_INPUT,
    STATIC_BASE,
    SetupKernel,
    emit_bit_gather,
)
from repro.sim.memory import Memory
from repro.util.gf import GF2_8, TWOFISH_MDS_POLY, TWOFISH_RS_POLY

_MDS_FIELD = GF2_8(TWOFISH_MDS_POLY)
_RS_FIELD = GF2_8(TWOFISH_RS_POLY)


def _mds_column_table(column: int) -> list[int]:
    """Static 256-entry table: MDS * (byte at ``column``) as a 32-bit word."""
    table = []
    for byte in range(256):
        word = 0
        for row in range(4):
            word |= _MDS_FIELD.mul(MDS[row][column], byte) << (8 * row)
        table.append(word)
    return table


def _rs_column_table(column: int) -> list[int]:
    """Static 256-entry table: RS column ``column`` times a key byte."""
    table = []
    for byte in range(256):
        word = 0
        for row in range(4):
            word |= _RS_FIELD.mul(RS[row][column], byte) << (8 * row)
        table.append(word)
    return table


class TwofishSetup(SetupKernel):
    name = "Twofish"

    # Static-table offsets relative to STATIC_BASE (each 1 KB).
    _Q0 = 0x000
    _Q1 = 0x400
    _MDS = 0x800          # four tables, 0x800 + 0x400*c
    _RS = 0x1800          # eight tables, 0x1800 + 0x400*c

    def stage_inputs(self, memory: Memory, layout: Layout) -> None:
        memory.write_bytes(KEY_INPUT, self.key)
        memory.write_words32(STATIC_BASE + self._Q0, list(Q0))
        memory.write_words32(STATIC_BASE + self._Q1, list(Q1))
        for column in range(4):
            memory.write_words32(
                STATIC_BASE + self._MDS + 0x400 * column,
                _mds_column_table(column),
            )
        for column in range(8):
            memory.write_words32(
                STATIC_BASE + self._RS + 0x400 * column,
                _rs_column_table(column),
            )

    def expected_regions(self, layout: Layout) -> list[tuple[int, bytes]]:
        cipher = Twofish(self.key)
        regions = [
            (layout.keys,
             b"".join(w.to_bytes(4, "little") for w in cipher.round_keys))
        ]
        for i, table in enumerate(cipher.fused_sboxes()):
            regions.append(
                (layout.tables + 0x400 * i,
                 b"".join(w.to_bytes(4, "little") for w in table))
            )
        return regions

    def _lookup(self, kb, dest, base_reg, index, offset=0) -> None:
        """dest = 32-bit table[byte index] at base+offset (baseline idiom)."""
        t = SCRATCH_REGS[0]
        kb.s4addq(t, index, base_reg, category=op.SUBST)
        kb.ldl(dest, t, offset, category=op.SUBST)

    def _h_byte_chain(self, kb, dest, x_reg, pos, key_bytes, static_base) -> None:
        """dest = MDS column of the stage-2 q chain for byte position pos.

        chain: q_a[ q_b[ q_c[x] ^ b1 ] ^ b0 ]  then the MDS column table.
        """
        chains = {
            0: (self._Q0, self._Q0, self._Q1),
            1: (self._Q1, self._Q0, self._Q0),
            2: (self._Q0, self._Q1, self._Q1),
            3: (self._Q1, self._Q1, self._Q0),
        }
        first, second, third = chains[pos]
        b1, b0 = key_bytes
        self._lookup(kb, dest, static_base, x_reg, first)
        kb.xor(dest, dest, b1, category=op.LOGIC)
        self._lookup(kb, dest, static_base, dest, second)
        kb.xor(dest, dest, b0, category=op.LOGIC)
        self._lookup(kb, dest, static_base, dest, third)
        self._lookup(kb, dest, static_base, dest, self._MDS + 0x400 * pos)

    def build_program(self, layout: Layout) -> Program:
        kb = self.builder()
        static_base, g_out, k_out = kb.regs("static", "g_out", "k_out")
        x, acc, t1 = kb.regs("x", "acc", "t1")
        count = kb.reg("count")
        # Per-byte key material for the two h stages of g (s-words) and the
        # round-key h calls (m-words): 16 registers total is too many, so
        # key bytes are re-extracted per use from four word registers.
        s0w, s1w = kb.regs("s0w", "s1w")
        m_even0, m_even1, m_odd0, m_odd1 = kb.regs("me0", "me1", "mo0", "mo1")
        b1, b0, a_reg, b_reg = kb.regs("b1", "b0", "a_val", "b_val")

        kb.ldiq(static_base, STATIC_BASE)
        kb.ldiq(g_out, layout.tables)
        kb.ldiq(k_out, layout.keys)

        # Key words (little-endian): M0..M3.
        kb.ldl(m_even0, kb.zero, KEY_INPUT)       # M0
        kb.ldl(m_odd0, kb.zero, KEY_INPUT + 4)    # M1
        kb.ldl(m_even1, kb.zero, KEY_INPUT + 8)   # M2
        kb.ldl(m_odd1, kb.zero, KEY_INPUT + 12)   # M3

        # ---- RS-code the two key chunks into the S words --------------------
        # s_words (reversed chunk order): s0w = RS(key[8:16]), s1w = RS(key[0:8])
        for dest, chunk_base in ((s0w, 8), (s1w, 0)):
            kb.ldiq(dest, 0)
            for column in range(8):
                kb.ldbu(x, kb.zero, KEY_INPUT + chunk_base + column)
                self._lookup(kb, acc, static_base, x, self._RS + 0x400 * column)
                kb.xor(dest, dest, acc, category=op.LOGIC)

        # ---- fused g-tables: 4 x 256 entries --------------------------------
        for pos in range(4):
            kb.extbl(b1, s1w, Imm(pos), category=op.LOGIC)
            kb.extbl(b0, s0w, Imm(pos), category=op.LOGIC)
            kb.ldiq(x, 0)
            kb.ldiq(count, 256)
            loop = kb.unique_label("gtab")
            kb.label(loop)
            self._h_byte_chain(kb, acc, x, pos, (b1, b0), static_base)
            kb.s4addq(t1, x, g_out)
            kb.stl(acc, t1, 0x400 * pos)
            kb.addl(x, x, Imm(1))
            kb.subq(count, count, Imm(1))
            kb.bne(count, loop)

        # ---- round keys: K[2i], K[2i+1] from two h evaluations ---------------
        rho_step = kb.reg("rho_step")
        x_val = kb.reg("x_val")
        kb.ldiq(rho_step, 0x01010101)
        kb.ldiq(x_val, 0)  # h input for A_i: (2i) * rho
        for i in range(20):
            # A = h(x_val, (M0, M2)); all four input bytes equal 2i.
            kb.ldiq(a_reg, 0)
            for pos in range(4):
                kb.extbl(b1, m_even1, Imm(pos), category=op.LOGIC)
                kb.extbl(b0, m_even0, Imm(pos), category=op.LOGIC)
                kb.extbl(x, x_val, Imm(pos), category=op.LOGIC)
                self._h_byte_chain(kb, acc, x, pos, (b1, b0), static_base)
                kb.xor(a_reg, a_reg, acc, category=op.LOGIC)
            kb.addl(x_val, x_val, rho_step, category=op.ARITH)  # (2i+1)*rho
            kb.ldiq(b_reg, 0)
            for pos in range(4):
                kb.extbl(b1, m_odd1, Imm(pos), category=op.LOGIC)
                kb.extbl(b0, m_odd0, Imm(pos), category=op.LOGIC)
                kb.extbl(x, x_val, Imm(pos), category=op.LOGIC)
                self._h_byte_chain(kb, acc, x, pos, (b1, b0), static_base)
                kb.xor(b_reg, b_reg, acc, category=op.LOGIC)
            kb.addl(x_val, x_val, rho_step, category=op.ARITH)  # next 2i*rho
            kb.rotl32(b_reg, b_reg, 8)
            kb.addl(acc, a_reg, b_reg, category=op.ARITH)       # K[2i]
            kb.stl(acc, k_out, 8 * i)
            kb.addl(acc, acc, b_reg, category=op.ARITH)         # A + 2B
            kb.rotl32(acc, acc, 9)
            kb.stl(acc, k_out, 8 * i + 4)                       # K[2i+1]
        kb.halt()
        return kb.build()


class MARSSetup(SetupKernel):
    name = "Mars"

    _T_SCRATCH = 0x400  # inside the keys region: 15-word working buffer

    def stage_inputs(self, memory: Memory, layout: Layout) -> None:
        memory.write_bytes(KEY_INPUT, self.key)
        # The 512-word S-box doubles as the stirring table; the encryption
        # kernel's write_tables puts it at layout.tables, and setup reads it
        # from there (S0 || S1 contiguous via 9-bit indexing needs a single
        # flat copy).
        memory.write_words32(STATIC_BASE, list(mars_mod.sbox()))

    def expected_regions(self, layout: Layout) -> list[tuple[int, bytes]]:
        expected = b"".join(
            w.to_bytes(4, "little") for w in mars_mod.expand_key(self.key)
        )
        return [(layout.keys, expected)]

    def build_program(self, layout: Layout) -> Program:
        kb = self.builder()
        s_base, t_base, k_out = kb.regs("s_base", "t_base", "k_out")
        val, t0, t1, mask1ff = kb.regs("val", "t0", "t1", "mask1ff")
        kb.ldiq(s_base, STATIC_BASE)
        kb.ldiq(t_base, layout.keys + self._T_SCRATCH)
        kb.ldiq(k_out, layout.keys)
        kb.ldiq(mask1ff, 0x1FF)

        # T init: key words, then n=4, then zeros.
        n = len(self.key) // 4
        for i in range(n):
            kb.ldl(val, kb.zero, KEY_INPUT + 4 * i)
            kb.stl(val, t_base, 4 * i)
        kb.ldiq(val, n)
        kb.stl(val, t_base, 4 * n)
        kb.ldiq(val, 0)
        for i in range(n + 1, 15):
            kb.stl(val, t_base, 4 * i)

        for generation in range(4):
            # Linear stirring (unrolled 15).
            for i in range(15):
                kb.ldl(t0, t_base, 4 * ((i - 7) % 15))
                kb.ldl(t1, t_base, 4 * ((i - 2) % 15))
                kb.xor(t0, t0, t1, category=op.LOGIC)
                kb.rotl32(t0, t0, 3)
                kb.ldl(val, t_base, 4 * i)
                kb.xor(val, val, t0, category=op.LOGIC)
                kb.xor(val, val, Imm(4 * i + generation), category=op.LOGIC)
                kb.stl(val, t_base, 4 * i)
            # S-box stirring, four passes (unrolled 60).
            for _ in range(4):
                for i in range(15):
                    kb.ldl(t0, t_base, 4 * ((i - 1) % 15))
                    kb.and_(t0, t0, mask1ff, category=op.SUBST)
                    kb.s4addq(t0, t0, s_base, category=op.SUBST)
                    kb.ldl(t0, t0, 0, category=op.SUBST)
                    kb.ldl(val, t_base, 4 * i)
                    kb.addl(val, val, t0, category=op.ARITH)
                    kb.rotl32(val, val, 9)
                    kb.stl(val, t_base, 4 * i)
            # Harvest ten key words.
            for i in range(10):
                kb.ldl(val, t_base, 4 * ((4 * i) % 15))
                kb.stl(val, k_out, 4 * (10 * generation + i))

        # Fix multiplication keys K[5], K[7], ..., K[35].
        w_reg, m_reg, r_reg, b_reg = kb.regs("w", "m", "r", "b")
        mask7ffc, mask7fff = kb.regs("mask7ffc", "mask7fff")
        kb.ldiq(mask7ffc, 0x7FFFFFFC)
        kb.ldiq(mask7fff, 0x7FFFFFFF)
        for i in range(5, 36, 2):
            kb.ldl(val, k_out, 4 * i)
            kb.and_(t0, val, Imm(3), category=op.LOGIC)       # low two bits
            kb.bis(w_reg, val, Imm(3), category=op.LOGIC)     # w = K | 3
            # Bit-parallel long-run mask (see repro.ciphers.mars).
            kb.srl(t1, w_reg, Imm(1), category=op.LOGIC)
            kb.xor(t1, w_reg, t1, category=op.LOGIC)          # d = w ^ (w>>1)
            kb.ornot(t1, kb.zero, t1, category=op.LOGIC)      # ~d
            kb.and_(t1, t1, mask7fff, category=op.LOGIC)      # 31 live bits
            kb.mov(m_reg, t1)
            for k in range(1, 9):
                kb.srl(b_reg, t1, Imm(k), category=op.LOGIC)
                kb.and_(m_reg, m_reg, b_reg, category=op.LOGIC)
            # m_reg = r9 (run >= 10 start bits); expand over interiors.
            kb.sll(b_reg, m_reg, Imm(1), category=op.LOGIC)
            for k in range(2, 9):
                kb.sll(r_reg, m_reg, Imm(k), category=op.LOGIC)
                kb.bis(b_reg, b_reg, r_reg, category=op.LOGIC)
            kb.and_(m_reg, b_reg, mask7ffc, category=op.LOGIC)
            # B[j] = S[265 + j]; rotate by K[i-1] & 31; mask; xor into w.
            kb.s4addq(t1, t0, s_base, category=op.SUBST)
            kb.ldl(b_reg, t1, 4 * 265, category=op.SUBST)
            kb.ldl(r_reg, k_out, 4 * (i - 1))
            kb.rotl32_var(b_reg, b_reg, r_reg)
            kb.and_(b_reg, b_reg, m_reg, category=op.LOGIC)
            kb.xor(w_reg, w_reg, b_reg, category=op.LOGIC)
            kb.stl(w_reg, k_out, 4 * i)
        kb.halt()
        return kb.build()


class TripleDESSetup(SetupKernel):
    name = "3DES"

    def stage_inputs(self, memory: Memory, layout: Layout) -> None:
        # Three 64-bit big-endian keys, byte-reversed for LDQ.
        for i in range(3):
            memory.write_bytes(KEY_INPUT + 8 * i, self.key[8 * i : 8 * i + 8][::-1])

    def expected_regions(self, layout: Layout) -> list[tuple[int, bytes]]:
        expected = b"".join(
            w.to_bytes(4, "little") for w in ede_round_keys(self.key)
        )
        return [(layout.keys, expected)]

    @staticmethod
    def _pc1_maps() -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """(src_bit, dest_bit) gathers for the C and D 28-bit halves."""
        c_map, d_map = [], []
        for out_index, src_spec in enumerate(PC1):
            src_bit = 64 - src_spec          # spec position -> LSB index
            if out_index < 28:
                c_map.append((src_bit, 27 - out_index))
            else:
                d_map.append((src_bit, 27 - (out_index - 28)))
        return c_map, d_map

    @staticmethod
    def _pc2_rot_maps() -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """PC2 gathers emitted directly into the kernel's (k0, k1) format.

        Source is the 56-bit (C << 28) | D value; destinations are the bit
        positions of each 6-bit chunk inside the rotated-domain k0/k1 words
        (see des3_kernel.rotated_round_keys).
        """
        chunk_slots_k0 = {0: 2, 2: 26, 4: 18, 6: 10}
        chunk_slots_k1 = {7: 2, 5: 10, 3: 18, 1: 26}
        k0_map, k1_map = [], []
        for out_index, src_spec in enumerate(PC2):
            src_bit = 56 - src_spec
            chunk, bit_in_chunk = divmod(out_index, 6)
            dest_bit_offset = 5 - bit_in_chunk
            if chunk in chunk_slots_k0:
                k0_map.append((src_bit, chunk_slots_k0[chunk] + dest_bit_offset))
            else:
                k1_map.append((src_bit, chunk_slots_k1[chunk] + dest_bit_offset))
        return k0_map, k1_map

    def build_program(self, layout: Layout) -> Program:
        kb = self.builder()
        key64, c_half, d_half, cd, out_val = kb.regs(
            "key64", "c_half", "d_half", "cd", "out_val"
        )
        mask28, k_out = kb.regs("mask28", "k_out")
        kb.ldiq(mask28, 0xFFFFFFF)
        kb.ldiq(k_out, layout.keys)
        c_map, d_map = self._pc1_maps()
        k0_map, k1_map = self._pc2_rot_maps()
        t = SCRATCH_REGS[1]

        for stage in range(3):
            kb.ldq(key64, kb.zero, KEY_INPUT + 8 * stage)
            emit_bit_gather(kb, c_half, key64, c_map)
            emit_bit_gather(kb, d_half, key64, d_map)
            for round_index, shift in enumerate(KEY_SHIFTS):
                # 28-bit rotate left by 1 or 2.
                for half in (c_half, d_half):
                    kb.sll(t, half, Imm(shift), category=op.ROTATE)
                    kb.srl(half, half, Imm(28 - shift), category=op.ROTATE)
                    kb.bis(half, half, t, category=op.ROTATE)
                    kb.and_(half, half, mask28, category=op.ROTATE)
                kb.sll(cd, c_half, Imm(28), category=op.PERMUTE)
                kb.bis(cd, cd, d_half, category=op.PERMUTE)
                # Middle schedule is used in reverse order (EDE decrypt).
                if stage == 1:
                    slot = 16 + (15 - round_index)
                else:
                    slot = 16 * stage + round_index
                emit_bit_gather(kb, out_val, cd, k0_map)
                kb.stl(out_val, k_out, 8 * slot)
                emit_bit_gather(kb, out_val, cd, k1_map)
                kb.stl(out_val, k_out, 8 * slot + 4)
        kb.halt()
        return kb.build()
