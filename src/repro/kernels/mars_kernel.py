"""MARS RISC-A kernel.

MARS exercises every extension the paper proposes except XBOX:

* the mixing phases are S-box driven (four byte-indexed lookups per round),
* the core's E-function multiplies (MULL), looks up a **512-entry** S-box --
  larger than the SBOX instruction's 256-entry tables, so at OPT the kernel
  stripes it across two tables and selects with CMOV, exactly the paper's
  "larger SBoxes ... striping the table across multiple architectural
  tables" scheme -- and performs two data-dependent rotates plus three
  constant rotates per round (the paper's most rotate-hungry cipher: a 40%
  slowdown without rotate instructions),
* ``l ^= rotl(r, 5)`` and ``l ^= rotl(r, 10)`` fuse into ROLX at OPT, with
  the variable-rotate amounts pulled off the product by IALU shifts.
"""

from __future__ import annotations

from repro.ciphers.mars import MARS, sbox
from repro.ciphers.modes import CBC
from repro.isa import Imm
from repro.isa import opcodes as op
from repro.isa.program import Program
from repro.kernels.runtime import CipherKernel, Layout
from repro.sim.memory import Memory

MIX_ROUNDS = 8
CORE_ROUNDS = 16


class MARSKernel(CipherKernel):
    name = "Mars"
    block_bytes = 16
    word_order = "raw"  # MARS is specified little-endian
    tables_bytes = 2048
    keys_bytes = 160

    def __init__(self, key: bytes, features):
        super().__init__(key, features)
        self.cipher = MARS(key)

    def reference_encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        return CBC(MARS(self.key), iv).encrypt(plaintext)

    def write_tables(self, memory: Memory, layout: Layout) -> None:
        table = list(sbox())
        memory.write_words32(layout.tables, table[:256])          # S0
        memory.write_words32(layout.tables + 0x400, table[256:])  # S1
        memory.write_words32(layout.keys, self.cipher.round_keys)

    # -- S-box access idioms -------------------------------------------------

    def _s01_lookup(self, kb, dest, bases, index, byte_index, half) -> None:
        """dest = S0/S1[byte of index] (256-entry halves, byte-indexed)."""
        kb.sbox_lookup(dest, bases[half], index, byte_index=byte_index,
                       table_id=half)

    def _s512_lookup(self, kb, dest, bases, mask_reg, index) -> None:
        """dest = S[index & 0x1ff] -- the core's 512-entry lookup.

        OPT: two striped SBOX reads + CMOV select on bit 8 (``mask_reg``
        holds 0x100).  Baseline: mask (``mask_reg`` holds 0x1FF), scaled
        add, load.
        """
        from repro.isa.builder import SCRATCH_REGS

        if self.features.has_crypto:
            hi, bit = SCRATCH_REGS[0], SCRATCH_REGS[1]
            kb.sbox(dest, bases[0], index, byte_index=0, table_id=0,
                    category=op.SUBST)
            kb.sbox(hi, bases[1], index, byte_index=0, table_id=1,
                    category=op.SUBST)
            kb.and_(bit, index, mask_reg, category=op.SUBST)
            kb.cmovne(dest, bit, hi, category=op.SUBST)
        else:
            t0 = SCRATCH_REGS[0]
            kb.and_(t0, index, mask_reg, category=op.SUBST)
            kb.s4addq(t0, t0, bases[0], category=op.SUBST)
            kb.ldl(dest, t0, 0, category=op.SUBST)

    def _emit_e_function(self, kb, a, l_reg, m_reg, r_reg, t, kp, mask,
                         bases, k_base, key_offset: int) -> None:
        """(l, m, r) = E(a, K, K') -- shared by both directions."""
        kb.ldl(kp, k_base, key_offset)
        kb.addl(m_reg, a, kp, category=op.ARITH)          # m = a + K
        kb.rotl32(t, a, 13)
        kb.ldl(kp, k_base, key_offset + 4)
        kb.mull(r_reg, t, kp)                             # r = rol(a,13)*K'
        self._s512_lookup(kb, l_reg, bases, mask, m_reg)
        if self.features.has_crypto:
            kb.srl(t, r_reg, Imm(27), category=op.ROTATE)  # rol(r,5)&31
            kb.roll(m_reg, m_reg, t, category=op.ROTATE)
            kb.rolxl(l_reg, r_reg, 5)                      # l ^= rol(r,5)
            kb.roll(r_reg, r_reg, Imm(10), category=op.ROTATE)
            kb.xor(l_reg, l_reg, r_reg, category=op.LOGIC)
            kb.rotl32_var(l_reg, l_reg, r_reg, masked=True)
        else:
            kb.rotl32(r_reg, r_reg, 5)
            kb.rotl32_var(m_reg, m_reg, r_reg)            # m = rol(m, r&31)
            kb.xor(l_reg, l_reg, r_reg, category=op.LOGIC)
            kb.rotl32(r_reg, r_reg, 5)
            kb.xor(l_reg, l_reg, r_reg, category=op.LOGIC)
            kb.rotl32_var(l_reg, l_reg, r_reg)            # l = rol(l, r&31)

    def build_program(self, layout: Layout, nblocks: int) -> Program:
        kb = self.builder()
        in_ptr, out_ptr, count = kb.regs("in_ptr", "out_ptr", "count")
        k_base = kb.reg("k_base")
        bases = kb.regs("s0b", "s1b")
        chain = kb.regs("c0", "c1", "c2", "c3")
        state = kb.regs("a", "b", "c", "d")
        l_reg, m_reg, r_reg = kb.regs("l", "m", "r")
        t, kp, mask = kb.regs("t", "kp", "mask")

        kb.ldiq(in_ptr, layout.input)
        kb.ldiq(out_ptr, layout.output)
        kb.ldiq(count, nblocks)
        kb.ldiq(k_base, layout.keys)
        kb.ldiq(bases[0], layout.tables)
        kb.ldiq(bases[1], layout.tables + 0x400)
        # At OPT the 512-entry select needs the bit-8 mask; at baseline the
        # 9-bit index mask (too wide for an 8-bit literal either way).
        kb.ldiq(mask, 0x100 if self.features.has_crypto else 0x1FF)
        for i in range(4):
            kb.ldl(chain[i], kb.zero, layout.iv + 4 * i)
        if self.features.has_crypto:
            kb.sboxsync(0)
            kb.sboxsync(1)

        kb.label("block_loop")
        a, b, c, d = state
        for i, reg in enumerate((a, b, c, d)):
            kb.ldl(reg, in_ptr, 4 * i)
            kb.xor(reg, reg, chain[i])
            kb.ldl(kp, k_base, 4 * i)
            kb.addl(reg, reg, kp, category=op.ARITH)

        # ---- forward mixing: 8 unkeyed S-box rounds -----------------------
        for i in range(MIX_ROUNDS):
            self._s01_lookup(kb, t, bases, a, 0, 0)
            kb.xor(b, b, t, category=op.LOGIC)
            self._s01_lookup(kb, t, bases, a, 1, 1)
            kb.addl(b, b, t, category=op.ARITH)
            self._s01_lookup(kb, t, bases, a, 2, 0)
            kb.addl(c, c, t, category=op.ARITH)
            self._s01_lookup(kb, t, bases, a, 3, 1)
            kb.xor(d, d, t, category=op.LOGIC)
            kb.rotr32(a, a, 24)
            if i in (0, 4):
                kb.addl(a, a, d, category=op.ARITH)
            if i in (1, 5):
                kb.addl(a, a, b, category=op.ARITH)
            a, b, c, d = b, c, d, a

        # ---- cryptographic core: 16 keyed E-function rounds ----------------
        for i in range(CORE_ROUNDS):
            self._emit_e_function(kb, a, l_reg, m_reg, r_reg, t, kp, mask,
                                  bases, k_base, 4 * (2 * i + 4))
            kb.rotl32(a, a, 13)
            kb.addl(c, c, m_reg, category=op.ARITH)
            if i < CORE_ROUNDS // 2:
                kb.addl(b, b, l_reg, category=op.ARITH)
                kb.xor(d, d, r_reg, category=op.LOGIC)
            else:
                kb.addl(d, d, l_reg, category=op.ARITH)
                kb.xor(b, b, r_reg, category=op.LOGIC)
            a, b, c, d = b, c, d, a

        # ---- backward mixing: 8 unkeyed S-box rounds ------------------------
        for i in range(MIX_ROUNDS):
            if i in (2, 6):
                kb.subl(a, a, d, category=op.ARITH)
            if i in (3, 7):
                kb.subl(a, a, b, category=op.ARITH)
            self._s01_lookup(kb, t, bases, a, 0, 1)
            kb.xor(b, b, t, category=op.LOGIC)
            self._s01_lookup(kb, t, bases, a, 3, 0)
            kb.subl(c, c, t, category=op.ARITH)
            self._s01_lookup(kb, t, bases, a, 2, 1)
            kb.subl(d, d, t, category=op.ARITH)
            self._s01_lookup(kb, t, bases, a, 1, 0)
            kb.xor(d, d, t, category=op.LOGIC)
            kb.rotl32(a, a, 24)
            a, b, c, d = b, c, d, a

        for i, reg in enumerate((a, b, c, d)):
            kb.ldl(kp, k_base, 4 * (36 + i))
            kb.subl(chain[i], reg, kp, category=op.ARITH)
            kb.stl(chain[i], out_ptr, 4 * i)

        kb.addq(in_ptr, in_ptr, Imm(16))
        kb.addq(out_ptr, out_ptr, Imm(16))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "block_loop")
        kb.halt()
        return kb.build()

    def reference_decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        return CBC(MARS(self.key), iv).decrypt(ciphertext)

    def build_decrypt_program(self, layout: Layout, nblocks: int) -> Program:
        """Inverse of the three phases, E-function shared with encryption."""
        kb = self.builder()
        in_ptr, out_ptr, count = kb.regs("in_ptr", "out_ptr", "count")
        k_base = kb.reg("k_base")
        bases = kb.regs("s0b", "s1b")
        chain = kb.regs("c0", "c1", "c2", "c3")
        saved = kb.regs("v0", "v1", "v2", "v3")
        state = kb.regs("a", "b", "c", "d")
        l_reg, m_reg, r_reg = kb.regs("l", "m", "r")
        t, kp, mask = kb.regs("t", "kp", "mask")

        kb.ldiq(in_ptr, layout.input)
        kb.ldiq(out_ptr, layout.output)
        kb.ldiq(count, nblocks)
        kb.ldiq(k_base, layout.keys)
        kb.ldiq(bases[0], layout.tables)
        kb.ldiq(bases[1], layout.tables + 0x400)
        kb.ldiq(mask, 0x100 if self.features.has_crypto else 0x1FF)
        for i in range(4):
            kb.ldl(chain[i], kb.zero, layout.iv + 4 * i)
        if self.features.has_crypto:
            kb.sboxsync(0)
            kb.sboxsync(1)

        kb.label("block_loop")
        a, b, c, d = state
        for i, reg in enumerate((a, b, c, d)):
            kb.ldl(reg, in_ptr, 4 * i)
            kb.mov(saved[i], reg)
            kb.ldl(kp, k_base, 4 * (36 + i))
            kb.addl(reg, reg, kp, category=op.ARITH)

        # ---- inverse backward mixing ---------------------------------------
        for i in range(MIX_ROUNDS - 1, -1, -1):
            a, b, c, d = d, a, b, c
            kb.rotr32(a, a, 24)
            self._s01_lookup(kb, t, bases, a, 1, 0)
            kb.xor(d, d, t, category=op.LOGIC)
            self._s01_lookup(kb, t, bases, a, 2, 1)
            kb.addl(d, d, t, category=op.ARITH)
            self._s01_lookup(kb, t, bases, a, 3, 0)
            kb.addl(c, c, t, category=op.ARITH)
            self._s01_lookup(kb, t, bases, a, 0, 1)
            kb.xor(b, b, t, category=op.LOGIC)
            if i in (3, 7):
                kb.addl(a, a, b, category=op.ARITH)
            if i in (2, 6):
                kb.addl(a, a, d, category=op.ARITH)

        # ---- inverse core ----------------------------------------------------
        for i in range(CORE_ROUNDS - 1, -1, -1):
            a, b, c, d = d, a, b, c
            kb.rotr32(a, a, 13)
            self._emit_e_function(kb, a, l_reg, m_reg, r_reg, t, kp, mask,
                                  bases, k_base, 4 * (2 * i + 4))
            kb.subl(c, c, m_reg, category=op.ARITH)
            if i < CORE_ROUNDS // 2:
                kb.subl(b, b, l_reg, category=op.ARITH)
                kb.xor(d, d, r_reg, category=op.LOGIC)
            else:
                kb.subl(d, d, l_reg, category=op.ARITH)
                kb.xor(b, b, r_reg, category=op.LOGIC)

        # ---- inverse forward mixing ------------------------------------------
        for i in range(MIX_ROUNDS - 1, -1, -1):
            a, b, c, d = d, a, b, c
            if i in (1, 5):
                kb.subl(a, a, b, category=op.ARITH)
            if i in (0, 4):
                kb.subl(a, a, d, category=op.ARITH)
            kb.rotl32(a, a, 24)
            self._s01_lookup(kb, t, bases, a, 3, 1)
            kb.xor(d, d, t, category=op.LOGIC)
            self._s01_lookup(kb, t, bases, a, 2, 0)
            kb.subl(c, c, t, category=op.ARITH)
            self._s01_lookup(kb, t, bases, a, 1, 1)
            kb.subl(b, b, t, category=op.ARITH)
            self._s01_lookup(kb, t, bases, a, 0, 0)
            kb.xor(b, b, t, category=op.LOGIC)

        for i, reg in enumerate((a, b, c, d)):
            kb.ldl(kp, k_base, 4 * i)
            kb.subl(reg, reg, kp, category=op.ARITH)
            kb.xor(reg, reg, chain[i], category=op.LOGIC)
            kb.stl(reg, out_ptr, 4 * i)
        for i in range(4):
            kb.mov(chain[i], saved[i])

        kb.addq(in_ptr, in_ptr, Imm(16))
        kb.addq(out_ptr, out_ptr, Imm(16))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "block_loop")
        kb.halt()
        return kb.build()
