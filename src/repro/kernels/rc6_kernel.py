"""RC6 RISC-A kernel.

RC6's round is pure computation: two 32-bit multiplies (``x*(2x+1)``, a
power-of-two modulus so MULL suffices), two constant rotates by 5, two
data-dependent rotates, XORs and round-key adds.  No tables at all.

Coding notes mirroring the paper's findings:

* Without rotate instructions the four rotates per round are synthesized
  from shifts -- the paper's 24% rotate penalty for RC6.
* At OPT, ``a = rotl(a ^ rotl(t,5), ...)`` fuses into ROLX (the constant
  rotate XORs straight into the accumulator), and the variable rotate
  *amount* (the top five bits of the product) comes from a plain SRL on the
  IALU, relieving the rotator units.
"""

from __future__ import annotations

from repro.ciphers.modes import CBC
from repro.ciphers.rc6 import RC6, ROUNDS
from repro.isa import Imm
from repro.isa import opcodes as op
from repro.isa.program import Program
from repro.kernels.runtime import CipherKernel, Layout
from repro.sim.memory import Memory


class RC6Kernel(CipherKernel):
    name = "RC6"
    block_bytes = 16
    word_order = "raw"  # RC6 is specified little-endian
    tables_bytes = 64
    keys_bytes = 176

    def __init__(self, key: bytes, features):
        super().__init__(key, features)
        self.cipher = RC6(key)

    def reference_encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        return CBC(RC6(self.key), iv).encrypt(plaintext)

    def reference_decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        return CBC(RC6(self.key), iv).decrypt(ciphertext)

    def write_tables(self, memory: Memory, layout: Layout) -> None:
        memory.write_words32(layout.keys, self.cipher._round_keys)

    def build_program(self, layout: Layout, nblocks: int) -> Program:
        kb = self.builder()
        in_ptr, out_ptr, count = kb.regs("in_ptr", "out_ptr", "count")
        k_base = kb.reg("k_base")
        chain = kb.regs("c0", "c1", "c2", "c3")
        a, b, c, d = kb.regs("a", "b", "c", "d")
        t, u, amt, kp = kb.regs("t", "u", "amt", "kp")

        kb.ldiq(in_ptr, layout.input)
        kb.ldiq(out_ptr, layout.output)
        kb.ldiq(count, nblocks)
        kb.ldiq(k_base, layout.keys)
        for i in range(4):
            kb.ldl(chain[i], kb.zero, layout.iv + 4 * i)

        kb.label("block_loop")
        for i, reg in enumerate((a, b, c, d)):
            kb.ldl(reg, in_ptr, 4 * i)
            kb.xor(reg, reg, chain[i])
        kb.ldl(kp, k_base, 0)
        kb.addl(b, b, kp, category=op.ARITH)
        kb.ldl(kp, k_base, 4)
        kb.addl(d, d, kp, category=op.ARITH)

        for round_index in range(1, ROUNDS + 1):
            # t = rotl(b*(2b+1), 5); u = rotl(d*(2d+1), 5)
            kb.addl(t, b, b, category=op.ARITH)
            kb.addl(t, t, Imm(1), category=op.ARITH)
            kb.mull(t, b, t)
            kb.addl(u, d, d, category=op.ARITH)
            kb.addl(u, u, Imm(1), category=op.ARITH)
            kb.mull(u, d, u)
            if self.features.has_crypto:
                # a ^= rotl(t,5) fused; the rotate amount rotl(u,5)&31 is
                # just the product's top five bits.
                kb.rolxl(a, t, 5)
                kb.srl(amt, u, Imm(27), category=op.ROTATE)
                kb.rotl32_var(a, a, amt, masked=True)
                kb.ldl(kp, k_base, 4 * (2 * round_index))
                kb.addl(a, a, kp, category=op.ARITH)
                kb.rolxl(c, u, 5)
                kb.srl(amt, t, Imm(27), category=op.ROTATE)
                kb.rotl32_var(c, c, amt, masked=True)
                kb.ldl(kp, k_base, 4 * (2 * round_index + 1))
                kb.addl(c, c, kp, category=op.ARITH)
            else:
                kb.rotl32(t, t, 5)
                kb.rotl32(u, u, 5)
                kb.xor(a, a, t, category=op.LOGIC)
                kb.rotl32_var(a, a, u)
                kb.ldl(kp, k_base, 4 * (2 * round_index))
                kb.addl(a, a, kp, category=op.ARITH)
                kb.xor(c, c, u, category=op.LOGIC)
                kb.rotl32_var(c, c, t)
                kb.ldl(kp, k_base, 4 * (2 * round_index + 1))
                kb.addl(c, c, kp, category=op.ARITH)
            a, b, c, d = b, c, d, a

        kb.ldl(kp, k_base, 4 * (2 * ROUNDS + 2))
        kb.addl(a, a, kp, category=op.ARITH)
        kb.ldl(kp, k_base, 4 * (2 * ROUNDS + 3))
        kb.addl(c, c, kp, category=op.ARITH)

        for i, reg in enumerate((a, b, c, d)):
            kb.mov(chain[i], reg)
            kb.stl(reg, out_ptr, 4 * i)

        kb.addq(in_ptr, in_ptr, Imm(16))
        kb.addq(out_ptr, out_ptr, Imm(16))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "block_loop")
        kb.halt()
        return kb.build()

    def build_decrypt_program(self, layout: Layout, nblocks: int) -> Program:
        """Inverse rounds: subtractions and right rotates, reversed keys."""
        kb = self.builder()
        in_ptr, out_ptr, count = kb.regs("in_ptr", "out_ptr", "count")
        k_base = kb.reg("k_base")
        chain = kb.regs("c0", "c1", "c2", "c3")
        saved = kb.regs("n0", "n1", "n2", "n3")
        a, b, c, d = kb.regs("a", "b", "c", "d")
        t, u, kp = kb.regs("t", "u", "kp")

        kb.ldiq(in_ptr, layout.input)
        kb.ldiq(out_ptr, layout.output)
        kb.ldiq(count, nblocks)
        kb.ldiq(k_base, layout.keys)
        for i in range(4):
            kb.ldl(chain[i], kb.zero, layout.iv + 4 * i)

        kb.label("block_loop")
        for i, reg in enumerate((a, b, c, d)):
            kb.ldl(reg, in_ptr, 4 * i)
            kb.mov(saved[i], reg)
        kb.ldl(kp, k_base, 4 * (2 * ROUNDS + 3))
        kb.subl(c, c, kp, category=op.ARITH)
        kb.ldl(kp, k_base, 4 * (2 * ROUNDS + 2))
        kb.subl(a, a, kp, category=op.ARITH)

        for round_index in range(ROUNDS, 0, -1):
            a, b, c, d = d, a, b, c
            # u = rotl(d*(2d+1), 5); t = rotl(b*(2b+1), 5)
            kb.addl(u, d, d, category=op.ARITH)
            kb.addl(u, u, Imm(1), category=op.ARITH)
            kb.mull(u, d, u)
            kb.addl(t, b, b, category=op.ARITH)
            kb.addl(t, t, Imm(1), category=op.ARITH)
            kb.mull(t, b, t)
            kb.rotl32(u, u, 5)
            kb.rotl32(t, t, 5)
            # c = ror(c - S[2i+1], t) ^ u;  a = ror(a - S[2i], u) ^ t
            kb.ldl(kp, k_base, 4 * (2 * round_index + 1))
            kb.subl(c, c, kp, category=op.ARITH)
            kb.rotr32_var(c, c, t)
            kb.xor(c, c, u, category=op.LOGIC)
            kb.ldl(kp, k_base, 4 * (2 * round_index))
            kb.subl(a, a, kp, category=op.ARITH)
            kb.rotr32_var(a, a, u)
            kb.xor(a, a, t, category=op.LOGIC)

        kb.ldl(kp, k_base, 4)
        kb.subl(d, d, kp, category=op.ARITH)
        kb.ldl(kp, k_base, 0)
        kb.subl(b, b, kp, category=op.ARITH)

        for i, reg in enumerate((a, b, c, d)):
            kb.xor(reg, reg, chain[i], category=op.LOGIC)
            kb.stl(reg, out_ptr, 4 * i)
        for i in range(4):
            kb.mov(chain[i], saved[i])

        kb.addq(in_ptr, in_ptr, Imm(16))
        kb.addq(out_ptr, out_ptr, Imm(16))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "block_loop")
        kb.halt()
        return kb.build()
