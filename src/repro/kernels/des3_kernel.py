"""3DES RISC-A kernel -- the paper's headline slow cipher.

Structure (all verified against the reference implementation in tests):

* **Flat 48-round EDE**: one initial permutation, 16 rounds with key
  schedule 1, 16 with schedule 2 *reversed* (the decrypt direction), 16 with
  schedule 3, one final permutation.
* **Rotated-domain rounds**: both halves are kept rotated left by 7 so every
  expansion chunk of E(R) ^ K lands on a byte-aligned 6-bit field of
  ``u = R ^ k0`` or ``t = ror(R, 4) ^ k1`` -- the same trick the CryptSoft
  code the paper measured uses (with a different rotation constant).  The
  round keys and the combined S-box+P ("SP") tables are pre-rotated to
  match, so rounds are pure XOR/lookup work.
* **Permutations**: at OPT the initial/final permutations (with the domain
  rotation folded in) are XBOX sequences -- 8 XBOX + 7 OR on a 64-bit block,
  the paper's 7-instruction-per-32-bit scheme.  At baseline they are the
  classic five delta-swap (PERM_OP) sequences, ~30 instructions each.
* **S-box lookups**: at OPT, eight replicated 256-entry SP tables indexed
  directly by bytes of u/t (low two index bits don't-care, the paper's
  "replicate SBox entries" scheme).  Table ids 0-3 are scheduled onto the
  four SBox caches; ids 4-7 deliberately use the d-cache path rather than
  thrash a single-tag sector cache.  At baseline, the ``(u >> s) & 0xFC``
  scaled-load idiom against packed 64-entry tables.
"""

from __future__ import annotations

from repro.ciphers.des import key_schedule, permute, sp_tables
from repro.ciphers.des import FINAL_PERMUTATION, INITIAL_PERMUTATION
from repro.ciphers.des3 import TripleDES
from repro.ciphers.modes import CBC
from repro.isa import Imm
from repro.isa import opcodes as op
from repro.isa.builder import SCRATCH_REGS
from repro.isa.program import Program
from repro.kernels.runtime import CipherKernel, Layout
from repro.sim.memory import Memory
from repro.util.bits import MASK32, rotl32

ROT = 7  # domain rotation for byte-aligned chunk extraction

#: (u-or-t, shift) -> S-box index: which SP table each 6-bit window feeds.
U_SBOXES = (0, 6, 4, 2)   # u >> 2, 10, 18, 26
T_SBOXES = (7, 5, 3, 1)   # t >> 2, 10, 18, 26

#: Delta-swap (PERM_OP) decomposition of IP on (l, r); each entry is
#: (operands-swapped?, shift, mask).  FP is the same list reversed (each
#: delta swap is an involution).  Verified against the FIPS tables in tests.
_IP_STEPS = (
    (False, 4, 0x0F0F0F0F),
    (False, 16, 0x0000FFFF),
    (True, 2, 0x33333333),
    (True, 8, 0x00FF00FF),
    (False, 1, 0x55555555),
)


def rotated_sp_tables() -> list[list[int]]:
    """SP tables with outputs pre-rotated into the ROT domain."""
    return [[rotl32(v, ROT) for v in table] for table in sp_tables()]


def rotated_round_keys(subkey48: int) -> tuple[int, int]:
    """Split a 48-bit round key into the (k0, k1) XOR words for u and t."""
    chunks = [(subkey48 >> (42 - 6 * i)) & 0x3F for i in range(8)]
    k0 = (chunks[0] << 2) | (chunks[2] << 26) | (chunks[4] << 18) | (chunks[6] << 10)
    k1 = (chunks[7] << 2) | (chunks[5] << 10) | (chunks[3] << 18) | (chunks[1] << 26)
    return k0, k1


def ede_round_keys(key: bytes) -> list[int]:
    """96 interleaved (k0, k1) words: K1, reversed K2, K3 schedules."""
    schedules = [
        key_schedule(key[0:8]),
        list(reversed(key_schedule(key[8:16]))),
        key_schedule(key[16:24]),
    ]
    words = []
    for schedule in schedules:
        for subkey in schedule:
            words.extend(rotated_round_keys(subkey))
    return words


def _xbox_maps(transform) -> list[int]:
    """Derive the eight XBOX permutation maps realizing ``transform``.

    ``transform`` maps a 64-bit integer to a 64-bit integer and must be a
    pure bit permutation; each map packs eight 6-bit source-bit indices.
    """
    source_of = {}
    for bit in range(64):
        out = transform(1 << bit)
        out_bit = out.bit_length() - 1
        if out != 1 << out_bit:
            raise ValueError("transform is not a bit permutation")
        source_of[out_bit] = bit
    maps = []
    for byte_index in range(8):
        packed = 0
        for j in range(8):
            packed |= source_of[8 * byte_index + j] << (6 * j)
        maps.append(packed)
    return maps


def _ip_rot_transform(q: int) -> int:
    """q-layout block -> rotated-domain (l, r) pair, via the spec IP."""
    left, right = q & MASK32, q >> 32
    y = permute((left << 32) | right, 64, INITIAL_PERMUTATION)
    return (rotl32(y >> 32, ROT) << 32) | rotl32(y & MASK32, ROT)


def _fp_rot_transform(lr: int) -> int:
    """Rotated-domain (l, r) pair -> q-layout ciphertext, via the spec FP."""
    l_rot, r_rot = lr >> 32, lr & MASK32
    x = (rotl32(l_rot, 32 - ROT) << 32) | rotl32(r_rot, 32 - ROT)
    y = permute(x, 64, FINAL_PERMUTATION)
    return ((y & MASK32) << 32) | (y >> 32)


IP_XBOX_MAPS = _xbox_maps(_ip_rot_transform)
FP_XBOX_MAPS = _xbox_maps(_fp_rot_transform)

from repro.isa.grp import grp_controls_for_transform  # noqa: E402

IP_GRP_CONTROLS = grp_controls_for_transform(_ip_rot_transform)
FP_GRP_CONTROLS = grp_controls_for_transform(_fp_rot_transform)


#: Byte offset of the decryption round keys within the key region.
_DECRYPT_KEY_OFFSET = 48 * 8


class TripleDESKernel(CipherKernel):
    name = "3DES"
    block_bytes = 8
    word_order = "be"
    keys_bytes = 2 * 48 * 8

    def __init__(self, key: bytes, features, use_grp: bool = False):
        """``use_grp``: at OPT, code the initial/final permutations with
        Shi & Lee's GRP instruction (6 GRPQs) instead of XBOX sequences
        (8 XBOX + 7 OR) -- the paper's section 7 comparison."""
        super().__init__(key, features)
        self.cipher = TripleDES(key)
        self.use_grp = use_grp
        self.tables_bytes = 8192 if features.has_crypto else 2048

    def reference_encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        return CBC(TripleDES(self.key), iv).encrypt(plaintext)

    def reference_decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        return CBC(TripleDES(self.key), iv).decrypt(ciphertext)

    def write_tables(self, memory: Memory, layout: Layout) -> None:
        tables = rotated_sp_tables()
        if self.features.has_crypto:
            # Eight replicated 256-entry tables, physical order = the
            # byte-lane order of u then t.
            for phys, sbox_index in enumerate(U_SBOXES + T_SBOXES):
                replicated = [tables[sbox_index][x >> 2] for x in range(256)]
                memory.write_words32(layout.tables + 0x400 * phys, replicated)
        else:
            # Eight packed 64-entry tables, 256 bytes apart.
            for i, table in enumerate(tables):
                memory.write_words32(layout.tables + 0x100 * i, table)
        encrypt_keys = ede_round_keys(self.key)
        memory.write_words32(layout.keys, encrypt_keys)
        # EDE decryption = the same 48-round network with the (k0, k1)
        # pairs in fully reversed round order.
        pairs = [encrypt_keys[2 * r : 2 * r + 2] for r in range(48)]
        decrypt_keys = [w for pair in reversed(pairs) for w in pair]
        memory.write_words32(layout.keys + _DECRYPT_KEY_OFFSET, decrypt_keys)

    # -- permutation idioms ---------------------------------------------------

    def _xbox_permute(self, kb, dest, src, maps) -> None:
        """64-bit permutation: 8 x (LDIQ map; XBOX) + 7 OR merges."""
        t_val, t_map = SCRATCH_REGS[0], SCRATCH_REGS[1]
        for byte_index in range(8):
            kb.ldiq(t_map, maps[byte_index], category=op.PERMUTE)
            target = dest if byte_index == 0 else t_val
            kb.xbox(target, src, t_map, byte_index, category=op.PERMUTE)
            if byte_index:
                kb.bis(dest, dest, t_val, category=op.PERMUTE)

    def _hw_permute(self, kb, dest, src, maps, grp_controls) -> None:
        """Dispatch the 64-bit permutation to XBOX or GRP coding."""
        if self.use_grp:
            kb.permute64_grp(dest, src, grp_controls)
        else:
            self._xbox_permute(kb, dest, src, maps)

    def _perm_op(self, kb, a, b, shift, mask_reg) -> None:
        """Delta swap: t = ((a >> n) ^ b) & m; b ^= t; a ^= t << n."""
        t = SCRATCH_REGS[0]
        kb.srl(t, a, Imm(shift), category=op.PERMUTE)
        kb.xor(t, t, b, category=op.PERMUTE)
        kb.and_(t, t, mask_reg, category=op.PERMUTE)
        kb.xor(b, b, t, category=op.PERMUTE)
        kb.sll(t, t, Imm(shift), category=op.PERMUTE)
        kb.xor(a, a, t, category=op.PERMUTE)

    def _permop_sequence(self, kb, l, r, steps, mask_regs) -> None:
        for swapped, shift, mask in steps:
            a, b = (r, l) if swapped else (l, r)
            self._perm_op(kb, a, b, shift, mask_regs[mask])

    # -- S-box round ----------------------------------------------------------

    def _lookup_side(self, kb, l, word_reg, sboxes, table_ids, bases,
                     sp_base, f, v) -> None:
        """XOR the four SP contributions of one side (u or t) into ``l``.

        The four contributions are combined as a XOR tree (depth 2 plus the
        fold into ``l``), the schedule a compiler produces for the C code's
        single eight-way XOR expression.
        """
        targets = (f, v, SCRATCH_REGS[1], SCRATCH_REGS[2])
        if self.features.has_crypto:
            for byte_index in range(4):
                kb.sbox(targets[byte_index], bases[table_ids[byte_index]],
                        word_reg, byte_index=byte_index,
                        table_id=table_ids[byte_index], category=op.SUBST)
        else:
            t = SCRATCH_REGS[0]
            for position, sbox_index in enumerate(sboxes):
                if position == 0:
                    kb.and_(t, word_reg, Imm(0xFC), category=op.SUBST)
                else:
                    kb.srl(t, word_reg, Imm(8 * position), category=op.SUBST)
                    kb.and_(t, t, Imm(0xFC), category=op.SUBST)
                kb.addq(t, t, sp_base, category=op.SUBST)
                kb.ldl(targets[position], t, 0x100 * sbox_index,
                       category=op.SUBST)
        kb.xor(f, f, v, category=op.LOGIC)
        kb.xor(targets[2], targets[2], targets[3], category=op.LOGIC)
        kb.xor(f, f, targets[2], category=op.LOGIC)
        kb.xor(l, l, f, category=op.LOGIC)

    def build_program(self, layout: Layout, nblocks: int) -> Program:
        return self._build(layout, nblocks, decrypt=False)

    def build_decrypt_program(self, layout: Layout, nblocks: int) -> Program:
        """Same network against the reversed round-key schedule."""
        return self._build(layout, nblocks, decrypt=True)

    def _build(self, layout: Layout, nblocks: int, decrypt: bool) -> Program:
        kb = self.builder()
        in_ptr, out_ptr, count = kb.regs("in_ptr", "out_ptr", "count")
        k_base = kb.reg("k_base")
        u, t, v, f, kp = kb.regs("u", "t", "v", "f", "kp")
        opt = self.features.has_crypto
        if opt:
            bases = kb.regs(*[f"tb{i}" for i in range(8)])
            sp_base = None
            mask_regs = {}
        else:
            bases = None
            sp_base = kb.reg("sp_base")
            mask_regs = {}
            for _, __, mask in _IP_STEPS:
                if mask not in mask_regs:
                    mask_regs[mask] = kb.reg(f"mask_{mask:08x}")

        kb.ldiq(in_ptr, layout.input)
        kb.ldiq(out_ptr, layout.output)
        kb.ldiq(count, nblocks)
        kb.ldiq(k_base,
                layout.keys + (_DECRYPT_KEY_OFFSET if decrypt else 0))
        if opt:
            for i, base in enumerate(bases):
                kb.ldiq(base, layout.tables + 0x400 * i)
            for table_id in range(8):
                kb.sboxsync(table_id)
        else:
            kb.ldiq(sp_base, layout.tables)
            for mask, reg in mask_regs.items():
                kb.ldiq(reg, mask)

        if opt:
            chain_q = kb.reg("chain_q")
            block_q = kb.reg("block_q")
            lr = kb.reg("lr")
            if decrypt:
                next_chain_q = kb.reg("next_chain_q")
            kb.ldq(chain_q, kb.zero, layout.iv)
        else:
            cl, cr = kb.regs("chain_l", "chain_r")
            left, right = kb.regs("left", "right")
            if decrypt:
                ncl, ncr = kb.regs("next_cl", "next_cr")
            kb.ldl(cl, kb.zero, layout.iv)
            kb.ldl(cr, kb.zero, layout.iv + 4)

        kb.label("block_loop")
        if opt:
            kb.ldq(block_q, in_ptr, 0)
            if decrypt:
                kb.mov(next_chain_q, block_q)
            else:
                kb.xor(block_q, block_q, chain_q)
            # IP with the rot-7 domain folded in: lr = (l_rot<<32) | r_rot.
            self._hw_permute(kb, lr, block_q, IP_XBOX_MAPS, IP_GRP_CONTROLS)
            l, r = kb.reg("l32"), kb.reg("r32")
            kb.srl(l, lr, Imm(32), category=op.PERMUTE)
            kb.addl(r, lr, Imm(0), category=op.PERMUTE)
        else:
            kb.ldl(left, in_ptr, 0)
            kb.ldl(right, in_ptr, 4)
            if decrypt:
                kb.mov(ncl, left)
                kb.mov(ncr, right)
            else:
                kb.xor(left, left, cl)
                kb.xor(right, right, cr)
            self._permop_sequence(kb, left, right, _IP_STEPS, mask_regs)
            # Rotate both halves into the lookup domain.
            kb.rotl32(left, left, ROT)
            kb.rotl32(right, right, ROT)
            l, r = left, right

        for round_index in range(48):
            kb.ldl(kp, k_base, 8 * round_index)
            kb.xor(u, r, kp, category=op.LOGIC)
            kb.rotr32(t, r, 4)
            kb.ldl(kp, k_base, 8 * round_index + 4)
            kb.xor(t, t, kp, category=op.LOGIC)
            self._lookup_side(kb, l, u, U_SBOXES, (0, 1, 2, 3), bases,
                              sp_base, f, v)
            self._lookup_side(kb, l, t, T_SBOXES, (4, 5, 6, 7), bases,
                              sp_base, f, v)
            if round_index % 16 != 15:
                l, r = r, l
            # At a 16-round stage boundary the final swap is undone, which
            # cancels: keep (l, r) as-is.

        if opt:
            kb.sll(lr, l, Imm(32), category=op.PERMUTE)
            kb.bis(lr, lr, r, category=op.PERMUTE)
            self._hw_permute(kb, block_q, lr, FP_XBOX_MAPS, FP_GRP_CONTROLS)
            if decrypt:
                kb.xor(block_q, block_q, chain_q)
                kb.stq(block_q, out_ptr, 0)
                kb.mov(chain_q, next_chain_q)
            else:
                kb.stq(block_q, out_ptr, 0)
                kb.mov(chain_q, block_q)
        else:
            kb.rotr32(l, l, ROT)
            kb.rotr32(r, r, ROT)
            self._permop_sequence(kb, l, r, tuple(reversed(_IP_STEPS)),
                                  mask_regs)
            if decrypt:
                kb.xor(l, l, cl)
                kb.xor(r, r, cr)
                kb.stl(l, out_ptr, 0)
                kb.stl(r, out_ptr, 4)
                kb.mov(cl, ncl)
                kb.mov(cr, ncr)
            else:
                kb.stl(l, out_ptr, 0)
                kb.stl(r, out_ptr, 4)
                kb.mov(cl, l)
                kb.mov(cr, r)

        kb.addq(in_ptr, in_ptr, Imm(8))
        kb.addq(out_ptr, out_ptr, Imm(8))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "block_loop")
        kb.halt()
        return kb.build()
