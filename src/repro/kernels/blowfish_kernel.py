"""Blowfish RISC-A kernel.

Structure of the optimized C implementation the paper measured: the 16
Feistel rounds are fully unrolled, the half swaps are register renaming
(free), the P-array is loaded per round, and the F-function is four S-box
lookups combined with two 32-bit adds and an XOR.  The chaining vector lives
in registers across the whole CBC session.

Feature levels change only the S-box access idiom: three instructions
(extract byte / scaled add / load, 5 cycles) at baseline versus one SBOX
instruction at OPT (2 cycles via a d-cache port on 4W, 1 cycle via an SBox
cache on 4W+).  Blowfish barely uses rotates, so ROT == NOROT here.
"""

from __future__ import annotations

from repro.ciphers.blowfish import Blowfish
from repro.ciphers.modes import CBC
from repro.isa import Imm
from repro.isa import opcodes as op
from repro.isa.program import Program
from repro.kernels.runtime import CipherKernel, Layout
from repro.sim.memory import Memory


class BlowfishKernel(CipherKernel):
    name = "Blowfish"
    block_bytes = 8
    word_order = "be"

    def __init__(self, key: bytes, features):
        super().__init__(key, features)
        self.cipher = Blowfish(key)

    def reference_encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        return CBC(Blowfish(self.key), iv).encrypt(plaintext)

    def reference_decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        return CBC(Blowfish(self.key), iv).decrypt(ciphertext)

    def write_tables(self, memory: Memory, layout: Layout) -> None:
        for i, sbox in enumerate(self.cipher.sboxes):
            memory.write_words32(layout.tables + 0x400 * i, sbox)
        memory.write_words32(layout.keys, self.cipher.p_array)

    def build_program(self, layout: Layout, nblocks: int) -> Program:
        return self._build(layout, nblocks, decrypt=False)

    def build_decrypt_program(self, layout: Layout, nblocks: int) -> Program:
        """Decryption is the same network with the P-array walked backward."""
        return self._build(layout, nblocks, decrypt=True)

    def _build(self, layout: Layout, nblocks: int, decrypt: bool) -> Program:
        kb = self.builder()
        in_ptr, out_ptr, count = kb.regs("in_ptr", "out_ptr", "count")
        p_base = kb.reg("p_base")
        s_bases = kb.regs("s0", "s1", "s2", "s3")
        cl, cr = kb.regs("chain_l", "chain_r")
        left, right = kb.regs("left", "right")
        kp, fa, fb = kb.regs("kp", "fa", "fb")
        if decrypt:
            # Decryption chains with the *ciphertext* block, kept aside.
            ncl, ncr = kb.regs("next_cl", "next_cr")
        round_p = (
            [17 - i for i in range(16)] if decrypt else list(range(16))
        )
        whitening_r, whitening_l = (1, 0) if decrypt else (16, 17)

        kb.ldiq(in_ptr, layout.input)
        kb.ldiq(out_ptr, layout.output)
        kb.ldiq(count, nblocks)
        kb.ldiq(p_base, layout.keys)
        for i, base in enumerate(s_bases):
            kb.ldiq(base, layout.tables + 0x400 * i)
        kb.ldl(cl, kb.zero, layout.iv)
        kb.ldl(cr, kb.zero, layout.iv + 4)
        if self.features.has_crypto:
            for table_id in range(4):
                kb.sboxsync(table_id)

        kb.label("block_loop")
        kb.ldl(left, in_ptr, 0)
        kb.ldl(right, in_ptr, 4)
        if decrypt:
            kb.mov(ncl, left)
            kb.mov(ncr, right)
        else:
            kb.xor(left, left, cl)
            kb.xor(right, right, cr)

        # 16 unrolled rounds; the half swap is register renaming.
        l, r = left, right
        for p_index in round_p:
            kb.ldl(kp, p_base, 4 * p_index)
            kb.xor(l, l, kp, category=op.LOGIC)
            # F(l) = ((S0[a] + S1[b]) ^ S2[c]) + S3[d], a = top byte.
            kb.sbox_lookup(fa, s_bases[0], l, byte_index=3, table_id=0)
            kb.sbox_lookup(fb, s_bases[1], l, byte_index=2, table_id=1)
            kb.addl(fa, fa, fb, category=op.ARITH)
            kb.sbox_lookup(fb, s_bases[2], l, byte_index=1, table_id=2)
            kb.xor(fa, fa, fb, category=op.LOGIC)
            kb.sbox_lookup(fb, s_bases[3], l, byte_index=0, table_id=3)
            kb.addl(fa, fa, fb, category=op.ARITH)
            kb.xor(r, r, fa, category=op.LOGIC)
            l, r = r, l
        # Undo the final swap, then the output whitening XORs.
        l, r = r, l
        kb.ldl(kp, p_base, 4 * whitening_r)
        kb.xor(r, r, kp)
        kb.ldl(kp, p_base, 4 * whitening_l)
        kb.xor(l, l, kp)

        if decrypt:
            kb.xor(l, l, cl)
            kb.xor(r, r, cr)
            kb.stl(l, out_ptr, 0)
            kb.stl(r, out_ptr, 4)
            kb.mov(cl, ncl)
            kb.mov(cr, ncr)
        else:
            # Ciphertext block = (left ^ P17, right ^ P16); it is also the
            # next block's CBC chain.
            kb.stl(l, out_ptr, 0)
            kb.stl(r, out_ptr, 4)
            kb.mov(cl, l)
            kb.mov(cr, r)
        kb.addq(in_ptr, in_ptr, Imm(8))
        kb.addq(out_ptr, out_ptr, Imm(8))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "block_loop")
        kb.halt()
        return kb.build()
