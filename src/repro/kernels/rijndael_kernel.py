"""Rijndael (AES-128) RISC-A kernel.

The 32-bit T-table implementation the paper measured: each of the nine inner
rounds is sixteen table lookups XOR-folded with the round keys.  The final
round needs the plain S-box; instead of a fifth table (which would thrash a
dedicated SBox cache's single tag), the kernel exploits T0's layout --
byte 2 of ``T0[x]`` is ``S[x]`` -- extracting it with EXTBL/INSBL.  This
keeps all SBOX traffic on the four scheduled tables, exactly the kind of
"programmer schedules the SBox caches" usage the paper describes.

Rijndael uses no rotates, multiplies or permutations: its entire optimized
speedup comes from SBOX latency/bandwidth, which is why the paper singles it
out as nearly doubling in performance.
"""

from __future__ import annotations

from repro.ciphers.modes import CBC
from repro.ciphers.rijndael import Rijndael, inv_sbox, inv_t_tables, t_tables
from repro.isa import Imm
from repro.isa import opcodes as op
from repro.isa.program import Program
from repro.kernels.runtime import CipherKernel, Layout
from repro.sim.memory import Memory

ROUNDS = 10


#: Byte offsets within the tables/keys regions for the decryption data.
_IT_OFFSET = 0x1000           # four inverse T-tables
_INV_SBOX_OFFSET = 0x2000     # plain InvSubBytes table (32-bit entries)
_DECRYPT_KEY_OFFSET = 176     # equivalent-inverse-cipher round keys


class RijndaelKernel(CipherKernel):
    name = "Rijndael"
    block_bytes = 16
    word_order = "be"  # state columns are big-endian words
    tables_bytes = 0x2400
    keys_bytes = 352

    def __init__(self, key: bytes, features):
        super().__init__(key, features)
        self.cipher = Rijndael(key)

    def reference_encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        return CBC(Rijndael(self.key), iv).encrypt(plaintext)

    def reference_decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        return CBC(Rijndael(self.key), iv).decrypt(ciphertext)

    def write_tables(self, memory: Memory, layout: Layout) -> None:
        for i, table in enumerate(t_tables()):
            memory.write_words32(layout.tables + 0x400 * i, list(table))
        memory.write_words32(layout.keys, self.cipher._round_keys)
        # Decryption data: the equivalent inverse cipher's tables and keys.
        for i, table in enumerate(inv_t_tables()):
            memory.write_words32(
                layout.tables + _IT_OFFSET + 0x400 * i, list(table)
            )
        memory.write_words32(
            layout.tables + _INV_SBOX_OFFSET, list(inv_sbox())
        )
        memory.write_words32(
            layout.keys + _DECRYPT_KEY_OFFSET, self.cipher._inv_round_keys
        )

    def build_program(self, layout: Layout, nblocks: int) -> Program:
        return self._build(layout, nblocks, decrypt=False)

    def build_decrypt_program(self, layout: Layout, nblocks: int) -> Program:
        """The equivalent inverse cipher: identical T-table structure with
        inverse tables, InvMixColumns-adjusted round keys, and the opposite
        ShiftRows direction."""
        return self._build(layout, nblocks, decrypt=True)

    def _build(self, layout: Layout, nblocks: int, decrypt: bool) -> Program:
        kb = self.builder()
        in_ptr, out_ptr, count = kb.regs("in_ptr", "out_ptr", "count")
        k_base = kb.reg("k_base")
        bases = kb.regs("t0b", "t1b", "t2b", "t3b")
        chain = kb.regs("c0", "c1", "c2", "c3")
        state = kb.regs("s0", "s1", "s2", "s3")
        new = kb.regs("n0", "n1", "n2", "n3")
        acc, kp = kb.regs("acc", "kp")
        # ShiftRows direction: +1 encrypt, -1 (i.e. +3 mod 4) decrypt.
        shift = 1 if not decrypt else 3
        table_base = layout.tables + (_IT_OFFSET if decrypt else 0)
        if decrypt:
            saved = kb.regs("v0", "v1", "v2", "v3")
            invs_base = kb.reg("invs_base")

        kb.ldiq(in_ptr, layout.input)
        kb.ldiq(out_ptr, layout.output)
        kb.ldiq(count, nblocks)
        kb.ldiq(k_base,
                layout.keys + (_DECRYPT_KEY_OFFSET if decrypt else 0))
        for i, base in enumerate(bases):
            kb.ldiq(base, table_base + 0x400 * i)
        if decrypt:
            kb.ldiq(invs_base, layout.tables + _INV_SBOX_OFFSET)
        for i in range(4):
            kb.ldl(chain[i], kb.zero, layout.iv + 4 * i)
        if self.features.has_crypto:
            for table_id in range(4):
                kb.sboxsync(table_id)

        kb.label("block_loop")
        s = list(state)
        n = list(new)
        for i in range(4):
            kb.ldl(s[i], in_ptr, 4 * i)
            if decrypt:
                kb.mov(saved[i], s[i])
            else:
                kb.xor(s[i], s[i], chain[i])
            kb.ldl(kp, k_base, 4 * i)
            kb.xor(s[i], s[i], kp)

        key_offset = 16
        for _ in range(ROUNDS - 1):
            for col in range(4):
                # T0[b3 of s[col]] ^ T1[b2 of s[col+shift]] ^ ... ^ k
                kb.sbox_lookup(n[col], bases[0], s[col], 3, 0)
                kb.sbox_lookup(acc, bases[1], s[(col + shift) % 4], 2, 1)
                kb.xor(n[col], n[col], acc, category=op.LOGIC)
                kb.sbox_lookup(acc, bases[2], s[(col + 2 * shift) % 4], 1, 2)
                kb.xor(n[col], n[col], acc, category=op.LOGIC)
                kb.sbox_lookup(acc, bases[3], s[(col + 3 * shift) % 4], 0, 3)
                kb.xor(n[col], n[col], acc, category=op.LOGIC)
                kb.ldl(kp, k_base, key_offset + 4 * col)
                kb.xor(n[col], n[col], kp, category=op.LOGIC)
            s, n = n, s
            key_offset += 16

        # Final round: (Inv)SubBytes + (Inv)ShiftRows only.
        for col in range(4):
            for row in range(4):
                source = s[(col + row * shift) % 4]
                if decrypt:
                    # The InvS table's 32-bit entries are the bytes directly.
                    kb.sbox_lookup(acc, invs_base, source, 3 - row, 4)
                else:
                    # S[x] = byte 2 of T0[x]; extract and splice.
                    kb.sbox_lookup(acc, bases[0], source, 3 - row, 0)
                    kb.extbl(acc, acc, Imm(2), category=op.SUBST)
                if row == 0:
                    kb.insbl(n[col], acc, Imm(3), category=op.SUBST)
                else:
                    kb.insbl(acc, acc, Imm(3 - row), category=op.SUBST)
                    kb.bis(n[col], n[col], acc, category=op.SUBST)
            kb.ldl(kp, k_base, key_offset + 4 * col)
            if decrypt:
                kb.xor(n[col], n[col], kp)
                kb.xor(n[col], n[col], chain[col])
                kb.stl(n[col], out_ptr, 4 * col)
            else:
                kb.xor(chain[col], n[col], kp)
                kb.stl(chain[col], out_ptr, 4 * col)
        if decrypt:
            for i in range(4):
                kb.mov(chain[i], saved[i])

        kb.addq(in_ptr, in_ptr, Imm(16))
        kb.addq(out_ptr, out_ptr, Imm(16))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "block_loop")
        kb.halt()
        return kb.build()
