"""Registry for the key-setup kernels (Figure 6)."""

from __future__ import annotations

from repro.ciphers.suite import SUITE_BY_NAME
from repro.kernels.setup_base import SetupKernel
from repro.kernels.setup_complex import MARSSetup, TripleDESSetup, TwofishSetup
from repro.kernels.setup_simple import (
    BlowfishSetup,
    IDEASetup,
    RC4Setup,
    RC6Setup,
    RijndaelSetup,
)

SETUP_KERNELS: dict[str, type[SetupKernel]] = {
    "3DES": TripleDESSetup,
    "Blowfish": BlowfishSetup,
    "IDEA": IDEASetup,
    "Mars": MARSSetup,
    "RC4": RC4Setup,
    "RC6": RC6Setup,
    "Rijndael": RijndaelSetup,
    "Twofish": TwofishSetup,
}


def make_setup(name: str, key: bytes | None = None) -> SetupKernel:
    if name not in SETUP_KERNELS:
        raise KeyError(f"unknown setup kernel {name!r}")
    if key is None:
        key = bytes(range(SUITE_BY_NAME[name].key_bytes))
    return SETUP_KERNELS[name](key)
