"""Setup kernels for RC4, IDEA, RC6, Rijndael and Blowfish.

Blowfish is the paper's Figure 6 outlier: its setup runs the full encryption
kernel 521 times (the cost of encrypting ~8 KB), so its curve only drops
below 10% setup overhead past 64 KB sessions.  The other four are loops of
ordinary arithmetic over the raw key.
"""

from __future__ import annotations

from repro.ciphers.blowfish import Blowfish
from repro.ciphers.idea import expand_key as idea_expand
from repro.ciphers.rc4 import RC4
from repro.ciphers.rc6 import RC6, ROUNDS as RC6_ROUNDS
from repro.ciphers.rijndael import Rijndael, t_tables
from repro.isa import opcodes as op
from repro.isa.builder import Imm, SCRATCH_REGS
from repro.isa.program import Program
from repro.kernels.runtime import Layout, pack_words_be
from repro.kernels.setup_base import KEY_INPUT, STATIC_BASE, SetupKernel
from repro.sim.memory import Memory
from repro.util.pi import pi_hex_words


class RC4Setup(SetupKernel):
    """RC4 KSA: identity fill then 256 key-driven swaps."""

    name = "RC4"

    def stage_inputs(self, memory: Memory, layout: Layout) -> None:
        memory.write_bytes(KEY_INPUT, self.key)

    def expected_regions(self, layout: Layout) -> list[tuple[int, bytes]]:
        state = RC4(self.key)._state
        expected = b"".join(v.to_bytes(4, "little") for v in state)
        return [(layout.tables, expected)]

    def build_program(self, layout: Layout) -> Program:
        kb = self.builder()
        s_base, key_base = kb.regs("s_base", "key_base")
        i, j, si, sj, kv, addr_i, addr_j = kb.regs(
            "i", "j", "si", "sj", "kv", "addr_i", "addr_j"
        )
        count = kb.reg("count")
        kb.ldiq(s_base, layout.tables)
        kb.ldiq(key_base, KEY_INPUT)
        # S[i] = i.
        kb.ldiq(i, 0)
        kb.ldiq(count, 256)
        kb.label("fill")
        kb.s4addq(addr_i, i, s_base)
        kb.stl(i, addr_i, 0)
        kb.addl(i, i, Imm(1))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "fill")
        # Key-scheduling swaps.
        kb.ldiq(i, 0)
        kb.ldiq(j, 0)
        kb.ldiq(count, 256)
        kb.label("ksa")
        kb.s4addq(addr_i, i, s_base)
        kb.ldl(si, addr_i, 0)
        kb.and_(kv, i, Imm(len(self.key) - 1))  # key length is a power of two
        kb.addq(kv, kv, key_base)
        kb.ldbu(kv, kv, 0)
        kb.addl(j, j, si, category=op.ARITH)
        kb.addl(j, j, kv, category=op.ARITH)
        kb.and_(j, j, Imm(0xFF))
        kb.s4addq(addr_j, j, s_base)
        kb.ldl(sj, addr_j, 0)
        kb.stl(sj, addr_i, 0)
        kb.stl(si, addr_j, 0)
        kb.addl(i, i, Imm(1))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "ksa")
        kb.halt()
        return kb.build()


class IDEASetup(SetupKernel):
    """IDEA key expansion: 16-bit slices under 25-bit key rotations."""

    name = "IDEA"

    def stage_inputs(self, memory: Memory, layout: Layout) -> None:
        # Two 64-bit big-endian halves (LDQ-loadable after byte reversal).
        memory.write_bytes(KEY_INPUT, self.key[:8][::-1] + self.key[8:][::-1])

    def expected_regions(self, layout: Layout) -> list[tuple[int, bytes]]:
        expected = b"".join(
            k.to_bytes(2, "little") for k in idea_expand(self.key)
        )
        return [(layout.keys, expected)]

    def build_program(self, layout: Layout) -> Program:
        kb = self.builder()
        hi, lo, t0, t1, out = kb.regs("hi", "lo", "t0", "t1", "out")
        kb.ldq(hi, kb.zero, KEY_INPUT)
        kb.ldq(lo, kb.zero, KEY_INPUT + 8)
        kb.ldiq(out, layout.keys)
        produced = 0
        while produced < 52:
            batch = min(8, 52 - produced)
            for slot in range(batch):
                source, shift = (hi, 48 - 16 * slot) if slot < 4 else (
                    lo, 48 - 16 * (slot - 4)
                )
                if shift:
                    kb.srl(t0, source, Imm(shift), category=op.ARITH)
                    kb.stw(t0, out, 2 * (produced + slot))
                else:
                    kb.stw(source, out, 2 * (produced + slot))
            produced += batch
            if produced >= 52:
                break
            # Rotate the 128-bit key left by 25: hi' = hi<<25 | lo>>39, etc.
            kb.sll(t0, hi, Imm(25), category=op.ROTATE)
            kb.srl(t1, lo, Imm(39), category=op.ROTATE)
            kb.bis(t0, t0, t1, category=op.ROTATE)
            kb.sll(t1, lo, Imm(25), category=op.ROTATE)
            kb.srl(lo, hi, Imm(39), category=op.ROTATE)
            kb.bis(lo, t1, lo, category=op.ROTATE)
            kb.mov(hi, t0)
        kb.halt()
        return kb.build()


class RC6Setup(SetupKernel):
    """RC5/RC6 schedule: magic-constant fill + 132 mixing iterations."""

    name = "RC6"

    def stage_inputs(self, memory: Memory, layout: Layout) -> None:
        memory.write_bytes(KEY_INPUT, self.key)  # little-endian words

    def expected_regions(self, layout: Layout) -> list[tuple[int, bytes]]:
        expected = b"".join(
            w.to_bytes(4, "little") for w in RC6(self.key)._round_keys
        )
        return [(layout.keys, expected)]

    def build_program(self, layout: Layout) -> Program:
        kb = self.builder()
        s_base, l_base = kb.regs("s_base", "l_base")
        a, b, val, amt, count = kb.regs("a", "b", "val", "amt", "count")
        i_ptr, j_ptr, s_end, l_end = kb.regs("i_ptr", "j_ptr", "s_end", "l_end")
        q_reg = kb.reg("q")
        t_words = 2 * RC6_ROUNDS + 4
        kb.ldiq(s_base, layout.keys)
        kb.ldiq(l_base, KEY_INPUT)
        # S[0] = P32; S[i] = S[i-1] + Q32.
        kb.ldiq(val, 0xB7E15163)
        kb.ldiq(q_reg, 0x9E3779B9)
        kb.ldiq(count, t_words)
        kb.mov(i_ptr, s_base)
        kb.label("fill")
        kb.stl(val, i_ptr, 0)
        kb.addl(val, val, q_reg, category=op.ARITH)
        kb.addq(i_ptr, i_ptr, Imm(4))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "fill")
        # Mixing: 3 * max(c, t) = 132 iterations over S and L cyclically.
        kb.ldiq(a, 0)
        kb.ldiq(b, 0)
        kb.mov(i_ptr, s_base)
        kb.mov(j_ptr, l_base)
        kb.ldiq(s_end, layout.keys + 4 * t_words)
        kb.ldiq(l_end, KEY_INPUT + len(self.key))
        kb.ldiq(count, 3 * t_words)
        kb.label("mix")
        kb.ldl(val, i_ptr, 0)
        kb.addl(val, val, a, category=op.ARITH)
        kb.addl(val, val, b, category=op.ARITH)
        kb.rotl32(a, val, 3)
        kb.stl(a, i_ptr, 0)
        kb.ldl(val, j_ptr, 0)
        kb.addl(amt, a, b, category=op.ARITH)
        kb.addl(val, val, amt, category=op.ARITH)
        kb.rotl32_var(b, val, amt)
        kb.stl(b, j_ptr, 0)
        # Advance cyclic pointers.
        kb.addq(i_ptr, i_ptr, Imm(4))
        kb.cmpult(val, i_ptr, s_end)
        kb.cmoveq(i_ptr, val, s_base)  # wrap when past the end
        kb.addq(j_ptr, j_ptr, Imm(4))
        kb.cmpult(val, j_ptr, l_end)
        kb.cmoveq(j_ptr, val, l_base)
        kb.subq(count, count, Imm(1))
        kb.bne(count, "mix")
        kb.halt()
        return kb.build()


class RijndaelSetup(SetupKernel):
    """AES-128 key expansion, S-box drawn from byte 2 of the static T0 table."""

    name = "Rijndael"

    def stage_inputs(self, memory: Memory, layout: Layout) -> None:
        memory.write_bytes(KEY_INPUT, pack_words_be(self.key))
        memory.write_words32(STATIC_BASE, list(t_tables()[0]))

    def expected_regions(self, layout: Layout) -> list[tuple[int, bytes]]:
        expected = b"".join(
            w.to_bytes(4, "little") for w in Rijndael(self.key)._round_keys
        )
        return [(layout.keys, expected)]

    def _subword(self, kb, dest, src, t0_base, acc, t) -> None:
        """dest = SubWord(src): four S-box substitutions via T0's byte 2."""
        for byte_index in range(4):
            kb.extbl(t, src, Imm(byte_index), category=op.SUBST)
            kb.s4addq(t, t, t0_base, category=op.SUBST)
            kb.ldl(t, t, 0, category=op.SUBST)
            kb.extbl(t, t, Imm(2), category=op.SUBST)
            kb.insbl(t, t, Imm(byte_index), category=op.SUBST)
            if byte_index == 0:
                kb.mov(acc, t, category=op.SUBST)
            else:
                kb.bis(acc, acc, t, category=op.SUBST)
        kb.mov(dest, acc)

    def build_program(self, layout: Layout) -> Program:
        from repro.util.gf import GF2_8

        kb = self.builder()
        t0_base, out = kb.regs("t0_base", "out")
        w = kb.regs("w0", "w1", "w2", "w3")
        temp, acc, t = kb.regs("temp", "acc", "t")
        kb.ldiq(t0_base, STATIC_BASE)
        kb.ldiq(out, layout.keys)
        for i in range(4):
            kb.ldl(w[i], kb.zero, KEY_INPUT + 4 * i)
            kb.stl(w[i], out, 4 * i)
        field = GF2_8()
        rcon = 1
        for group in range(10):
            kb.rotl32(temp, w[3], 8)
            self._subword(kb, temp, temp, t0_base, acc, t)
            kb.ldiq(t, rcon << 24)
            kb.xor(temp, temp, t, category=op.LOGIC)
            rcon = field.mul(rcon, 2)
            kb.xor(w[0], w[0], temp, category=op.LOGIC)
            kb.xor(w[1], w[1], w[0], category=op.LOGIC)
            kb.xor(w[2], w[2], w[1], category=op.LOGIC)
            kb.xor(w[3], w[3], w[2], category=op.LOGIC)
            for i in range(4):
                kb.stl(w[i], out, 4 * (4 * (group + 1) + i))
        kb.halt()
        return kb.build()


class BlowfishSetup(SetupKernel):
    """Blowfish setup: key-XOR into P, then 521 chained kernel encryptions."""

    name = "Blowfish"

    def stage_inputs(self, memory: Memory, layout: Layout) -> None:
        # pi-initial tables; the routine overwrites them in place.
        words = pi_hex_words(18 + 1024)
        memory.write_words32(layout.keys, words[:18])
        for i in range(4):
            memory.write_words32(
                layout.tables + 0x400 * i, words[18 + 256 * i : 18 + 256 * (i + 1)]
            )
        memory.write_bytes(KEY_INPUT, pack_words_be(self.key))

    def expected_regions(self, layout: Layout) -> list[tuple[int, bytes]]:
        cipher = Blowfish(self.key)
        regions = [
            (layout.keys,
             b"".join(w.to_bytes(4, "little") for w in cipher.p_array))
        ]
        for i, sbox in enumerate(cipher.sboxes):
            regions.append(
                (layout.tables + 0x400 * i,
                 b"".join(w.to_bytes(4, "little") for w in sbox))
            )
        return regions

    def _encrypt_inline(self, kb, l, r, p_base, s_bases, kp, fa, fb) -> None:
        """One inlined 16-round Blowfish encryption; result back in (l, r).

        Output block = (loop-end right ^ P17, loop-end left ^ P16); a final
        three-move swap puts the halves back in their loop-invariant
        registers so the surrounding fill loop can repeat this body.
        """
        from repro.isa.builder import SCRATCH_REGS

        regs = [l, r]
        for round_index in range(16):
            kb.ldl(kp, p_base, 4 * round_index)
            kb.xor(regs[0], regs[0], kp, category=op.LOGIC)
            kb.sbox_lookup(fa, s_bases[0], regs[0], 3, 0)
            kb.sbox_lookup(fb, s_bases[1], regs[0], 2, 1)
            kb.addl(fa, fa, fb, category=op.ARITH)
            kb.sbox_lookup(fb, s_bases[2], regs[0], 1, 2)
            kb.xor(fa, fa, fb, category=op.LOGIC)
            kb.sbox_lookup(fb, s_bases[3], regs[0], 0, 3)
            kb.addl(fa, fa, fb, category=op.ARITH)
            kb.xor(regs[1], regs[1], fa, category=op.LOGIC)
            regs.reverse()
        # regs == [l, r] again (even number of swaps).
        kb.ldl(kp, p_base, 4 * 16)
        kb.xor(l, l, kp, category=op.LOGIC)   # loop-end left -> output right
        kb.ldl(kp, p_base, 4 * 17)
        kb.xor(r, r, kp, category=op.LOGIC)   # loop-end right -> output left
        t = SCRATCH_REGS[0]
        kb.mov(t, l)
        kb.mov(l, r)
        kb.mov(r, t)

    def build_program(self, layout: Layout) -> Program:
        kb = self.builder()
        p_base = kb.reg("p_base")
        s_bases = kb.regs("s0", "s1", "s2", "s3")
        l, r, kp, fa, fb = kb.regs("l", "r", "kp", "fa", "fb")
        kw = kb.regs("kw0", "kw1", "kw2", "kw3")
        ptr, end = kb.regs("ptr", "end")

        kb.ldiq(p_base, layout.keys)
        for i, base in enumerate(s_bases):
            kb.ldiq(base, layout.tables + 0x400 * i)
        for i in range(4):
            kb.ldl(kw[i], kb.zero, KEY_INPUT + 4 * i)
        # P[i] ^= key words (cyclic; 16-byte key -> period 4), unrolled.
        for i in range(18):
            kb.ldl(kp, p_base, 4 * i)
            kb.xor(kp, kp, kw[i % 4], category=op.LOGIC)
            kb.stl(kp, p_base, 4 * i)
        # Fill P then S with chained encryptions of the zero block.
        kb.ldiq(l, 0)
        kb.ldiq(r, 0)
        kb.mov(ptr, p_base)
        kb.ldiq(end, layout.keys + 4 * 18)
        kb.label("fill_p")
        self._encrypt_inline(kb, l, r, p_base, s_bases, kp, fa, fb)
        kb.stl(l, ptr, 0)
        kb.stl(r, ptr, 4)
        kb.addq(ptr, ptr, Imm(8))
        kb.cmpult(fa, ptr, end)
        kb.bne(fa, "fill_p")
        kb.ldiq(ptr, layout.tables)
        kb.ldiq(end, layout.tables + 4 * 1024)
        kb.label("fill_s")
        self._encrypt_inline(kb, l, r, p_base, s_bases, kp, fa, fb)
        kb.stl(l, ptr, 0)
        kb.stl(r, ptr, 4)
        kb.addq(ptr, ptr, Imm(8))
        kb.cmpult(fa, ptr, end)
        kb.bne(fa, "fill_s")
        kb.halt()
        return kb.build()
