"""Twofish RISC-A kernel (full-keying implementation).

The "full keying" software option the paper measured: at setup time the four
key-dependent S-boxes are fused with the MDS matrix columns into four
256 x 32-bit tables, so the round's g-function is four table lookups and
three XORs.  ``g(rol(r1, 8))`` needs no rotate at all -- rotating the input
by 8 just relabels which byte feeds which table, so the kernel picks bytes
(3, 0, 1, 2) instead (the standard trick in the reference C code).

Per round: 8 S-box lookups, PHT adds, two round-key loads, a 1-bit rotate
each way.  ``r3' = rol(r3, 1) ^ f1`` maps exactly onto the paper's ROLX
instruction at the OPT level.
"""

from __future__ import annotations

from repro.ciphers.modes import CBC
from repro.ciphers.twofish import Twofish
from repro.isa import Imm
from repro.isa import opcodes as op
from repro.isa.program import Program
from repro.kernels.runtime import CipherKernel, Layout
from repro.sim.memory import Memory


class TwofishKernel(CipherKernel):
    name = "Twofish"
    block_bytes = 16
    word_order = "raw"  # Twofish is specified little-endian
    tables_bytes = 4096
    keys_bytes = 160

    def __init__(self, key: bytes, features):
        super().__init__(key, features)
        self.cipher = Twofish(key)

    def reference_encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        return CBC(Twofish(self.key), iv).encrypt(plaintext)

    def reference_decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        return CBC(Twofish(self.key), iv).decrypt(ciphertext)

    def write_tables(self, memory: Memory, layout: Layout) -> None:
        for i, table in enumerate(self.cipher.fused_sboxes()):
            memory.write_words32(layout.tables + 0x400 * i, table)
        memory.write_words32(layout.keys, self.cipher.round_keys)

    def _g(self, kb, dest, src, bases, t_reg, rotated: bool) -> None:
        """dest = g(src) (or g(rol(src, 8)) when ``rotated``)."""
        byte_map = (3, 0, 1, 2) if rotated else (0, 1, 2, 3)
        kb.sbox_lookup(dest, bases[0], src, byte_index=byte_map[0], table_id=0)
        for table_id in (1, 2, 3):
            kb.sbox_lookup(t_reg, bases[table_id], src,
                           byte_index=byte_map[table_id], table_id=table_id)
            kb.xor(dest, dest, t_reg, category=op.LOGIC)

    def build_program(self, layout: Layout, nblocks: int) -> Program:
        kb = self.builder()
        in_ptr, out_ptr, count = kb.regs("in_ptr", "out_ptr", "count")
        k_base = kb.reg("k_base")
        bases = kb.regs("g0", "g1", "g2", "g3")
        chain = kb.regs("c0", "c1", "c2", "c3")
        state = kb.regs("r0", "r1", "r2", "r3")
        t0, t1, kp, tmp = kb.regs("t0", "t1", "kp", "tmp")

        kb.ldiq(in_ptr, layout.input)
        kb.ldiq(out_ptr, layout.output)
        kb.ldiq(count, nblocks)
        kb.ldiq(k_base, layout.keys)
        for i, base in enumerate(bases):
            kb.ldiq(base, layout.tables + 0x400 * i)
        for i in range(4):
            kb.ldl(chain[i], kb.zero, layout.iv + 4 * i)
        if self.features.has_crypto:
            for table_id in range(4):
                kb.sboxsync(table_id)

        kb.label("block_loop")
        r = list(state)
        for i in range(4):
            kb.ldl(r[i], in_ptr, 4 * i)
            kb.xor(r[i], r[i], chain[i])
            # Input whitening K0..K3.
            kb.ldl(kp, k_base, 4 * i)
            kb.xor(r[i], r[i], kp)

        for round_index in range(16):
            self._g(kb, t0, r[0], bases, tmp, rotated=False)
            self._g(kb, t1, r[1], bases, tmp, rotated=True)
            # PHT + round keys: f0 = t0+t1+K[2r+8], f1 = t0+2*t1+K[2r+9].
            kb.ldl(kp, k_base, 4 * (2 * round_index + 8))
            kb.addl(t0, t0, t1, category=op.ARITH)        # t0+t1
            kb.addl(tmp, t0, t1, category=op.ARITH)       # t0+2*t1
            kb.addl(t0, t0, kp, category=op.ARITH)        # f0
            kb.ldl(kp, k_base, 4 * (2 * round_index + 9))
            kb.addl(tmp, tmp, kp, category=op.ARITH)      # f1
            # r2' = ror(r2 ^ f0, 1); r3' = rol(r3, 1) ^ f1 (ROLX at OPT).
            kb.xor(r[2], r[2], t0, category=op.LOGIC)
            kb.rotr32(r[2], r[2], 1)
            kb.rotl32_xor(tmp, r[3], 1)                   # tmp = rol(r3,1)^f1
            # Swap-by-renaming: tmp's register is the new r1; the register
            # that held r3 becomes the new scratch.
            r, tmp = [r[2], tmp, r[0], r[1]], r[3]

        # Output whitening (the (i+2)%4 indexing undoes the last swap) and
        # CBC chain update.
        for i in range(4):
            kb.ldl(kp, k_base, 4 * (4 + i))
            kb.xor(chain[i], r[(i + 2) % 4], kp)
            kb.stl(chain[i], out_ptr, 4 * i)

        kb.addq(in_ptr, in_ptr, Imm(16))
        kb.addq(out_ptr, out_ptr, Imm(16))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "block_loop")
        kb.halt()
        return kb.build()

    def build_decrypt_program(self, layout: Layout, nblocks: int) -> Program:
        """Inverse rounds: same g-tables, PHT subtractions become the mirror
        whitening order, and the 1-bit rotates swap direction (paper: the
        decryption kernel is the reversed, inverted network)."""
        kb = self.builder()
        in_ptr, out_ptr, count = kb.regs("in_ptr", "out_ptr", "count")
        k_base = kb.reg("k_base")
        bases = kb.regs("g0", "g1", "g2", "g3")
        chain = kb.regs("c0", "c1", "c2", "c3")
        saved = kb.regs("n0", "n1", "n2", "n3")
        state = kb.regs("r0", "r1", "r2", "r3")
        t0, t1, kp, tmp = kb.regs("t0", "t1", "kp", "tmp")

        kb.ldiq(in_ptr, layout.input)
        kb.ldiq(out_ptr, layout.output)
        kb.ldiq(count, nblocks)
        kb.ldiq(k_base, layout.keys)
        for i, base in enumerate(bases):
            kb.ldiq(base, layout.tables + 0x400 * i)
        for i in range(4):
            kb.ldl(chain[i], kb.zero, layout.iv + 4 * i)
        if self.features.has_crypto:
            for table_id in range(4):
                kb.sboxsync(table_id)

        kb.label("block_loop")
        r = list(state)
        # Input whitening with K4..K7; R16_i = c[(i+2)%4] (see the reference
        # cipher's decrypt_block).
        loaded = list(saved)
        for i in range(4):
            kb.ldl(loaded[i], in_ptr, 4 * i)
        for i in range(4):
            kb.ldl(kp, k_base, 4 * (4 + ((i + 2) % 4)))
            kb.xor(r[i], loaded[(i + 2) % 4], kp)

        for round_index in range(15, -1, -1):
            self._g(kb, t0, r[2], bases, tmp, rotated=False)
            self._g(kb, t1, r[3], bases, tmp, rotated=True)
            kb.addl(tmp, t0, t1, category=op.ARITH)        # t0+t1
            kb.ldl(kp, k_base, 4 * (2 * round_index + 8))
            kb.addl(t0, tmp, kp, category=op.ARITH)        # f0
            kb.addl(tmp, tmp, t1, category=op.ARITH)       # t0+2*t1
            kb.ldl(kp, k_base, 4 * (2 * round_index + 9))
            kb.addl(tmp, tmp, kp, category=op.ARITH)       # f1
            # new r2 = rol(a,1) ^ f0; new r3 = ror(b ^ f1, 1).
            kb.rotl32_xor(t0, r[0], 1)
            kb.xor(r[1], r[1], tmp, category=op.LOGIC)
            kb.rotr32(r[1], r[1], 1)
            r, t0 = [r[2], r[3], t0, r[1]], r[0]

        # Output whitening with K0..K3, CBC chain XOR, chain update.
        for i in range(4):
            kb.ldl(kp, k_base, 4 * i)
            kb.xor(r[i], r[i], kp)
            kb.xor(r[i], r[i], chain[i])
            kb.stl(r[i], out_ptr, 4 * i)
        for i in range(4):
            kb.mov(chain[i], loaded[i])

        kb.addq(in_ptr, in_ptr, Imm(16))
        kb.addq(out_ptr, out_ptr, Imm(16))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "block_loop")
        kb.halt()
        return kb.build()
