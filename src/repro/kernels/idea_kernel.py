"""IDEA RISC-A kernel.

IDEA's kernel is 8 unrolled rounds of mul-add-xor on 16-bit words, plus the
output transform -- 34 modular multiplies per 8-byte block.  The multiply is
the whole story: at baseline it is the software low-high decomposition
around a (7-cycle on the Figure 4 baseline) integer multiply with a
highly-predictable zero test; at OPT it is one 4-cycle MULMOD.  The paper's
largest optimized speedup (159%) is this substitution.

16-bit hygiene: XOR and MULMOD tolerate garbage above bit 15 (MULMOD masks
its operands; XOR is bitwise), additions only carry upward, and STW stores
the low 16 bits -- so like the optimized C code, the kernel never masks.
The software multiply path re-masks its own operands (Alpha has no 16-bit
registers; the Compaq compiler emits the same ZAPNOTs).
"""

from __future__ import annotations

from repro.ciphers.idea import IDEA
from repro.ciphers.modes import CBC
from repro.isa import Imm
from repro.isa import opcodes as op
from repro.isa.program import Program
from repro.kernels.runtime import CipherKernel, Layout
from repro.sim.memory import Memory

ROUNDS = 8


#: Byte offset of the decryption subkeys within the key region.
_DECRYPT_KEY_OFFSET = 128


class IDEAKernel(CipherKernel):
    name = "IDEA"
    block_bytes = 8
    word_order = "be16"
    tables_bytes = 64
    keys_bytes = 256

    def __init__(self, key: bytes, features):
        super().__init__(key, features)
        self.cipher = IDEA(key)

    def reference_encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        return CBC(IDEA(self.key), iv).encrypt(plaintext)

    def reference_decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        return CBC(IDEA(self.key), iv).decrypt(ciphertext)

    def write_tables(self, memory: Memory, layout: Layout) -> None:
        for i, subkey in enumerate(self.cipher._encrypt_keys):
            memory.write(layout.keys + 2 * i, subkey, 2)
        # Decryption runs the identical kernel against the inverted schedule.
        for i, subkey in enumerate(self.cipher._decrypt_keys):
            memory.write(layout.keys + _DECRYPT_KEY_OFFSET + 2 * i, subkey, 2)

    def _mul_key(self, kb, dest, src, kp, k_base, key_index: int) -> None:
        kb.ldwu(kp, k_base, 2 * key_index)
        kb.mulmod16(dest, src, kp)

    def build_program(self, layout: Layout, nblocks: int) -> Program:
        return self._build(layout, nblocks, decrypt=False)

    def build_decrypt_program(self, layout: Layout, nblocks: int) -> Program:
        """Identical network against the inverted (decryption) schedule."""
        return self._build(layout, nblocks, decrypt=True)

    def _build(self, layout: Layout, nblocks: int, decrypt: bool) -> Program:
        kb = self.builder()
        in_ptr, out_ptr, count = kb.regs("in_ptr", "out_ptr", "count")
        k_base = kb.reg("k_base")
        chain = kb.regs("c0", "c1", "c2", "c3")
        x = kb.regs("x1", "x2", "x3", "x4")
        t0, t1, kp = kb.regs("t0", "t1", "kp")
        if decrypt:
            saved = kb.regs("n0", "n1", "n2", "n3")

        kb.ldiq(in_ptr, layout.input)
        kb.ldiq(out_ptr, layout.output)
        kb.ldiq(count, nblocks)
        kb.ldiq(k_base,
                layout.keys + (_DECRYPT_KEY_OFFSET if decrypt else 0))
        for i in range(4):
            kb.ldwu(chain[i], kb.zero, layout.iv + 2 * i)

        kb.label("block_loop")
        for i in range(4):
            kb.ldwu(x[i], in_ptr, 2 * i)
            if decrypt:
                kb.mov(saved[i], x[i])
            else:
                kb.xor(x[i], x[i], chain[i])

        x1, x2, x3, x4 = x
        key_index = 0
        for _ in range(ROUNDS):
            self._mul_key(kb, x1, x1, kp, k_base, key_index)
            kb.ldwu(kp, k_base, 2 * (key_index + 1))
            kb.addl(x2, x2, kp, category=op.ARITH)
            kb.ldwu(kp, k_base, 2 * (key_index + 2))
            kb.addl(x3, x3, kp, category=op.ARITH)
            self._mul_key(kb, x4, x4, kp, k_base, key_index + 3)
            kb.xor(t0, x1, x3, category=op.LOGIC)
            kb.xor(t1, x2, x4, category=op.LOGIC)
            self._mul_key(kb, t0, t0, kp, k_base, key_index + 4)
            kb.addl(t1, t1, t0, category=op.ARITH)
            self._mul_key(kb, t1, t1, kp, k_base, key_index + 5)
            kb.addl(t0, t0, t1, category=op.ARITH)
            kb.xor(x1, x1, t1, category=op.LOGIC)
            kb.xor(x4, x4, t0, category=op.LOGIC)
            # x2' = x3 ^ t1, x3' = x2 ^ t0 -- compute then swap by renaming.
            kb.xor(x3, x3, t1, category=op.LOGIC)
            kb.xor(x2, x2, t0, category=op.LOGIC)
            x2, x3 = x3, x2
            key_index += 6

        # Output transform (uses the pre-swap x2/x3 order).
        self._mul_key(kb, x1, x1, kp, k_base, key_index)
        kb.ldwu(kp, k_base, 2 * (key_index + 1))
        kb.addl(x3, x3, kp, category=op.ARITH)
        kb.ldwu(kp, k_base, 2 * (key_index + 2))
        kb.addl(x2, x2, kp, category=op.ARITH)
        self._mul_key(kb, x4, x4, kp, k_base, key_index + 3)

        # Output words: y = (x1, x3, x2, x4); STW keeps the low 16 bits,
        # but the CBC chain registers must be clean 16-bit values.
        outputs = (x1, x3, x2, x4)
        if decrypt:
            for i, reg in enumerate(outputs):
                kb.xor(reg, reg, chain[i], category=op.LOGIC)
                kb.zapnot(reg, reg, Imm(0x3), category=op.LOGIC)
                kb.stw(reg, out_ptr, 2 * i)
            for i in range(4):
                kb.mov(chain[i], saved[i])
        else:
            for i, reg in enumerate(outputs):
                kb.zapnot(chain[i], reg, Imm(0x3), category=op.LOGIC)
                kb.stw(chain[i], out_ptr, 2 * i)

        kb.addq(in_ptr, in_ptr, Imm(8))
        kb.addq(out_ptr, out_ptr, Imm(8))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "block_loop")
        kb.halt()
        return kb.build()
