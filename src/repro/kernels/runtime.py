"""Kernel runtime: memory layout, I/O conventions, execution harness.

Every cipher kernel follows the same session shape the paper measures: the
Python harness plays the role of key-setup caller and DMA engine -- it lays
out tables, key schedules, the IV and the plaintext in simulator memory --
and the RISC-A kernel encrypts the whole session in CBC mode (keeping the
chaining vector in registers, as the optimized C implementations do), after
which the harness validates the ciphertext byte-for-byte against the
reference cipher.

**Word-order convention.**  Simulator memory is little-endian (Alpha).
Ciphers specified with big-endian 32-bit words (DES, Blowfish, IDEA,
Rijndael) have their I/O buffers packed so that a 32-bit load yields the
spec's word value -- equivalent to running on a big-endian machine or to a
byte-swapping DMA engine, and identical in kernel instruction counts either
way.  Little-endian ciphers (MARS, RC6, Twofish) and byte-stream RC4 use raw
bytes.  Validation applies the same transform to the reference output, so it
remains an exact end-to-end check.

**Memory map** (all tables 1 KB-aligned as the SBOX instruction requires)::

    0x00001000  tables      (S-boxes, SP tables, fused g-tables, ...)
    0x0000D000  keys        (round-key schedules)
    0x0000F000  iv / misc parameters
    0x00010000  input buffer
    input+pad   output buffer
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.isa import Features, KernelBuilder
from repro.isa.program import Program
from repro.sim.machine import Machine, RunResult, SimulationError, StreamingTrace
from repro.sim.memory import Memory
from repro.sim.trace import DEFAULT_CHUNK_SIZE, Trace

TABLES_BASE = 0x1000
KEYS_BASE = 0xD000
IV_BASE = 0xF000
INPUT_BASE = 0x10000


def pack_words_be(data: bytes, width: int = 4) -> bytes:
    """Reverse each aligned ``width``-byte group (big-endian convention)."""
    if len(data) % width:
        raise ValueError(f"data must be a multiple of {width} bytes")
    out = bytearray(len(data))
    for i in range(0, len(data), width):
        out[i : i + width] = data[i : i + width][::-1]
    return bytes(out)


@dataclass
class Layout:
    """Resolved addresses for one kernel run."""

    tables: int
    keys: int
    iv: int
    input: int
    output: int
    session_bytes: int


@dataclass
class KernelRun:
    """Result of one functional kernel execution.

    ``trace`` is ``None`` for streamed executions (the trace chunks were
    consumed by a timing pipeline as they were produced; see
    :class:`KernelStream`).
    """

    trace: Trace | None
    ciphertext: bytes
    instructions: int
    session_bytes: int
    #: Address ranges the key setup just wrote (tables, schedules); passed to
    #: ``simulate(..., warm_ranges=...)`` so timing starts with them cached.
    warm_ranges: list[tuple[int, int]] = None

    @property
    def instructions_per_byte(self) -> float:
        """The paper's "1 CPI machine" metric basis."""
        return self.instructions / self.session_bytes


@dataclass
class KernelStream:
    """A kernel execution prepared for streaming consumption.

    ``source`` is a single-pass :class:`~repro.sim.machine.StreamingTrace`:
    the functional interpreter advances only as a consumer (normally a
    timing pipeline built by :func:`repro.sim.timing.make_pipeline`) pulls
    trace chunks, so the full dynamic trace never materializes.  Output validation necessarily
    moves to the end of the run: call :meth:`finalize` after exhausting the
    source to check the ciphertext against the reference cipher and get
    the usual :class:`KernelRun` record (with ``trace=None``).
    """

    source: StreamingTrace
    warm_ranges: list[tuple[int, int]]
    session_bytes: int
    _kernel: "CipherKernel"
    _layout: Layout
    _data: bytes
    _iv: bytes | None
    _decrypt: bool
    _validate: bool

    @property
    def program(self) -> Program:
        return self.source.program

    def finalize(self) -> KernelRun:
        """Validate the output once the stream is exhausted."""
        machine = self.source.machine
        if not machine.halted:
            raise SimulationError(
                f"{self._kernel.name}: stream not exhausted -- consume all "
                "trace chunks before finalize()"
            )
        kernel = self._kernel
        layout = self._layout
        data = self._data
        output = kernel._unpack(
            machine.memory.read_bytes(layout.output, len(data))
        )
        if self._validate:
            reference = (
                kernel.reference_decrypt if self._decrypt
                else kernel.reference_encrypt
            )
            expected = reference(data, self._iv or b"")
            if output != expected:
                direction = "decryption" if self._decrypt else "encryption"
                raise AssertionError(
                    f"{kernel.name} [{kernel.features.label}] {direction} "
                    f"output diverges from reference: {output[:16].hex()} "
                    f"!= {expected[:16].hex()}"
                )
        return KernelRun(
            trace=None,
            ciphertext=output,
            instructions=machine.instructions_executed,
            session_bytes=self.session_bytes,
            warm_ranges=self.warm_ranges,
        )


class CipherKernel(ABC):
    """A cipher's RISC-A implementation at one feature level.

    Subclasses provide table/key-schedule initialization and the kernel
    program; the base class provides the run-and-validate harness.
    """

    #: Cipher name (matches ``repro.ciphers.suite``).
    name: str = ""
    #: Block size in bytes (1 for the RC4 stream kernel).
    block_bytes: int = 0
    #: 'be' for big-endian 32-bit word ciphers, 'raw' otherwise.
    word_order: str = "raw"
    #: Bytes of table / key-schedule storage (for cache warming).
    tables_bytes: int = 4096
    keys_bytes: int = 512
    #: Shift applied to the whole memory layout (multi-session studies give
    #: each session a disjoint address space).
    base_offset: int = 0

    def __init__(self, key: bytes, features: Features = Features.OPT):
        self.key = key
        self.features = features
        self._program_cache: dict[int, Program] = {}

    # -- subclass interface ------------------------------------------------

    @abstractmethod
    def write_tables(self, memory: Memory, layout: Layout) -> None:
        """Write static tables and the key schedule into memory."""

    @abstractmethod
    def build_program(self, layout: Layout, nblocks: int) -> Program:
        """Emit the encryption kernel for ``nblocks`` blocks."""

    @abstractmethod
    def reference_encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        """Ground-truth CBC encryption via the reference cipher."""

    def build_decrypt_program(self, layout: Layout, nblocks: int) -> Program:
        """Emit the decryption kernel (kernels that implement one override)."""
        raise NotImplementedError(
            f"{self.name} kernel has no decryption coding"
        )

    def reference_decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        """Ground-truth CBC decryption via the reference cipher."""
        raise NotImplementedError(
            f"{self.name} kernel has no decryption reference"
        )

    @property
    def supports_decrypt(self) -> bool:
        return type(self).build_decrypt_program is not CipherKernel.build_decrypt_program

    # -- harness -------------------------------------------------------------

    def _pack(self, data: bytes) -> bytes:
        if self.word_order == "be":
            return pack_words_be(data)
        if self.word_order == "be16":
            return pack_words_be(data, 2)
        return data

    _unpack = _pack

    def layout_for(self, session_bytes: int) -> Layout:
        padded = (session_bytes + 63) & ~63
        shift = self.base_offset
        return Layout(
            tables=TABLES_BASE + shift,
            keys=KEYS_BASE + shift,
            iv=IV_BASE + shift,
            input=INPUT_BASE + shift,
            output=INPUT_BASE + shift + padded + 64,
            session_bytes=session_bytes,
        )

    def make_memory(self, layout: Layout) -> Memory:
        size = layout.output + layout.session_bytes + 4096
        return Memory(size)

    def program_for(self, session_bytes: int, decrypt: bool = False) -> Program:
        """Build (or reuse) the kernel program for a session length.

        Cheap relative to simulation -- the experiment runner uses this to
        content-hash a kernel without executing it.
        """
        if self.block_bytes > 1 and session_bytes % self.block_bytes:
            raise ValueError(
                f"{self.name}: session must be a whole number of "
                f"{self.block_bytes}-byte blocks"
            )
        nblocks = session_bytes // max(self.block_bytes, 1)
        cache_key = (nblocks, decrypt)
        program = self._program_cache.get(cache_key)
        if program is None:
            builder_fn = (
                self.build_decrypt_program if decrypt else self.build_program
            )
            program = builder_fn(self.layout_for(session_bytes), nblocks)
            self._program_cache[cache_key] = program
        return program

    def prepare(
        self, data: bytes, iv: bytes | None, decrypt: bool = False
    ) -> tuple[Program, Memory, Layout]:
        """Build the program and a fully initialized memory image."""
        program = self.program_for(len(data), decrypt=decrypt)
        layout = self.layout_for(len(data))
        memory = self.make_memory(layout)
        self.write_tables(memory, layout)
        if iv is not None:
            memory.write_bytes(layout.iv, self._pack(iv))
        memory.write_bytes(layout.input, self._pack(data))
        return program, memory, layout

    def _run(
        self,
        data: bytes,
        iv: bytes | None,
        decrypt: bool,
        record_trace: bool,
        record_values: bool,
        validate: bool,
        backend: str | None = None,
    ) -> KernelRun:
        if iv is None and self.block_bytes > 1:
            iv = bytes(self.block_bytes)
        program, memory, layout = self.prepare(data, iv, decrypt=decrypt)
        result = Machine(program, memory).execute(
            backend=backend,
            record_trace=record_trace, record_values=record_values,
        )
        assert isinstance(result, RunResult)
        output = self._unpack(memory.read_bytes(layout.output, len(data)))
        if validate:
            reference = (
                self.reference_decrypt if decrypt else self.reference_encrypt
            )
            expected = reference(data, iv or b"")
            if output != expected:
                direction = "decryption" if decrypt else "encryption"
                raise AssertionError(
                    f"{self.name} [{self.features.label}] {direction} output "
                    f"diverges from reference: {output[:16].hex()} != "
                    f"{expected[:16].hex()}"
                )
        return KernelRun(
            trace=result.trace,
            ciphertext=output,
            instructions=result.instructions,
            session_bytes=len(data),
            warm_ranges=[
                (layout.tables, self.tables_bytes),
                (layout.keys, self.keys_bytes),
                (layout.iv, 64),
            ],
        )

    def encrypt(
        self,
        plaintext: bytes,
        iv: bytes | None = None,
        record_trace: bool = True,
        record_values: bool = False,
        validate: bool = True,
        backend: str | None = None,
    ) -> KernelRun:
        """Run the kernel; validate ciphertext against the reference cipher."""
        return self._run(plaintext, iv, False, record_trace, record_values,
                         validate, backend)

    def decrypt(
        self,
        ciphertext: bytes,
        iv: bytes | None = None,
        record_trace: bool = True,
        record_values: bool = False,
        validate: bool = True,
        backend: str | None = None,
    ) -> KernelRun:
        """Run the decryption kernel; validate against the reference cipher.

        The returned record's ``ciphertext`` field holds the recovered
        plaintext (the field names the kernel's *output* buffer).
        """
        return self._run(ciphertext, iv, True, record_trace, record_values,
                         validate, backend)

    def stream(
        self,
        data: bytes,
        iv: bytes | None = None,
        decrypt: bool = False,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        record_values: bool = False,
        validate: bool = True,
        backend: str | None = None,
    ) -> KernelStream:
        """Prepare a streamed execution (the bounded-memory twin of
        :meth:`encrypt`/:meth:`decrypt`).

        Returns a :class:`KernelStream` whose ``source`` yields trace
        chunks as the kernel executes; validation happens in
        :meth:`KernelStream.finalize` because the output buffer is only
        complete once the stream is exhausted.
        """
        if iv is None and self.block_bytes > 1:
            iv = bytes(self.block_bytes)
        program, memory, layout = self.prepare(data, iv, decrypt=decrypt)
        machine = Machine(program, memory)
        source = machine.execute(
            stream=True, backend=backend,
            chunk_size=chunk_size, record_values=record_values,
        )
        assert isinstance(source, StreamingTrace)
        return KernelStream(
            source=source,
            warm_ranges=[
                (layout.tables, self.tables_bytes),
                (layout.keys, self.keys_bytes),
                (layout.iv, 64),
            ],
            session_bytes=len(data),
            _kernel=self,
            _layout=layout,
            _data=data,
            _iv=iv,
            _decrypt=decrypt,
            _validate=validate,
        )

    def builder(self) -> KernelBuilder:
        return KernelBuilder(self.features)
