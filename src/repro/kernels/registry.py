"""Registry mapping cipher names to their RISC-A kernel implementations."""

from __future__ import annotations

from repro.ciphers.suite import SUITE_BY_NAME
from repro.isa import Features
from repro.kernels.blowfish_kernel import BlowfishKernel
from repro.kernels.des3_kernel import TripleDESKernel
from repro.kernels.idea_kernel import IDEAKernel
from repro.kernels.mars_kernel import MARSKernel
from repro.kernels.rc4_kernel import RC4Kernel
from repro.kernels.rc6_kernel import RC6Kernel
from repro.kernels.rijndael_kernel import RijndaelKernel
from repro.kernels.runtime import CipherKernel
from repro.kernels.twofish_kernel import TwofishKernel

KERNELS: dict[str, type[CipherKernel]] = {
    "3DES": TripleDESKernel,
    "Blowfish": BlowfishKernel,
    "IDEA": IDEAKernel,
    "Mars": MARSKernel,
    "RC4": RC4Kernel,
    "RC6": RC6Kernel,
    "Rijndael": RijndaelKernel,
    "Twofish": TwofishKernel,
}

#: Paper order (Table 1).
KERNEL_NAMES = tuple(KERNELS)


def make_kernel(
    name: str,
    features: Features = Features.OPT,
    key: bytes | None = None,
) -> CipherKernel:
    """Instantiate a cipher kernel by suite name with a default-size key."""
    if name not in KERNELS:
        raise KeyError(f"unknown kernel {name!r}; have {sorted(KERNELS)}")
    if key is None:
        key = bytes(range(SUITE_BY_NAME[name].key_bytes))
    return KERNELS[name](key, features)
