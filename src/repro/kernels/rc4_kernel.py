"""RC4 RISC-A kernel.

RC4 is the suite's outlier (paper sections 4 and 6): a key-based random
number generator whose per-byte iterations are *mostly* independent, giving
it an order of magnitude more ILP than the block ciphers -- and it is the
only kernel that stores into its S-box, which is why the paper's SBOX
instruction has an ``aliased`` bit.  Aliased SBOX reads keep optimized
address generation but behave like loads in the memory-ordering logic, so
on a dynamically-scheduled machine the (rarely dependent, probability 1/256)
stores from the previous iteration stall them -- the paper's Figure 5
*Alias* bottleneck for RC4.

The state is held as 256 x 32-bit entries (the paper's 8-bit-entry scheme:
upper 24 bits zero), so it exactly fits one 1 KB SBOX table.
"""

from __future__ import annotations

from repro.ciphers.rc4 import RC4
from repro.isa import Imm
from repro.isa import opcodes as op
from repro.isa.program import Program
from repro.kernels.runtime import CipherKernel, Layout
from repro.sim.memory import Memory


class RC4Kernel(CipherKernel):
    name = "RC4"
    block_bytes = 1
    word_order = "raw"
    tables_bytes = 1024
    keys_bytes = 64

    def __init__(self, key: bytes, features):
        super().__init__(key, features)
        self.cipher = RC4(key)

    def reference_encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        return RC4(self.key).process(plaintext)

    def reference_decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        return RC4(self.key).process(ciphertext)

    def build_decrypt_program(self, layout, nblocks):
        """Stream cipher: decryption is the identical keystream XOR."""
        return self.build_program(layout, nblocks)

    def write_tables(self, memory: Memory, layout: Layout) -> None:
        memory.write_words32(layout.tables, list(self.cipher._state))

    def _state_read(self, kb, dest, base, index) -> None:
        """dest = S[index]; aliased SBOX at OPT, scaled-add load at baseline."""
        if self.features.has_crypto:
            kb.sbox(dest, base, index, byte_index=0, table_id=0,
                    aliased=True, category=op.SUBST)
        else:
            from repro.isa.builder import SCRATCH_REGS

            t0 = SCRATCH_REGS[0]
            kb.s4addq(t0, index, base, category=op.SUBST)
            kb.ldl(dest, t0, 0, category=op.SUBST)

    def build_program(self, layout: Layout, nblocks: int) -> Program:
        kb = self.builder()
        in_ptr, out_ptr, count = kb.regs("in_ptr", "out_ptr", "count")
        s_base = kb.reg("s_base")
        i_reg, j_reg = kb.regs("i", "j")
        si, sj, t, addr = kb.regs("si", "sj", "t", "addr")

        kb.ldiq(in_ptr, layout.input)
        kb.ldiq(out_ptr, layout.output)
        kb.ldiq(count, nblocks)
        kb.ldiq(s_base, layout.tables)
        # i and j resume from the key-setup state (0 after setup).
        kb.ldl(i_reg, kb.zero, layout.iv)
        kb.ldl(j_reg, kb.zero, layout.iv + 4)

        kb.label("byte_loop")
        kb.addl(i_reg, i_reg, Imm(1), category=op.ARITH)
        kb.and_(i_reg, i_reg, Imm(0xFF), category=op.LOGIC)
        self._state_read(kb, si, s_base, i_reg)
        kb.addl(j_reg, j_reg, si, category=op.ARITH)
        kb.and_(j_reg, j_reg, Imm(0xFF), category=op.LOGIC)
        self._state_read(kb, sj, s_base, j_reg)
        # Swap S[i] and S[j]: the stores go through normal d-cache ports.
        kb.s4addq(addr, i_reg, s_base, category=op.SUBST)
        kb.stl(sj, addr, 0, category=op.SUBST)
        kb.s4addq(addr, j_reg, s_base, category=op.SUBST)
        kb.stl(si, addr, 0, category=op.SUBST)
        kb.addl(t, si, sj, category=op.ARITH)
        kb.and_(t, t, Imm(0xFF), category=op.LOGIC)
        self._state_read(kb, t, s_base, t)
        kb.ldbu(si, in_ptr, 0)
        kb.xor(si, si, t, category=op.LOGIC)
        kb.stb(si, out_ptr, 0)
        kb.addq(in_ptr, in_ptr, Imm(1))
        kb.addq(out_ptr, out_ptr, Imm(1))
        kb.subq(count, count, Imm(1))
        kb.bne(count, "byte_loop")
        kb.halt()
        return kb.build()
