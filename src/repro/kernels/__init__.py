"""RISC-A cipher kernels: the paper's hand-optimized implementations."""

from repro.kernels.registry import KERNEL_NAMES, KERNELS, make_kernel
from repro.kernels.runtime import CipherKernel, KernelRun, Layout
from repro.kernels.setup_base import SetupKernel
from repro.kernels.setup_registry import SETUP_KERNELS, make_setup

__all__ = [
    "KERNEL_NAMES",
    "KERNELS",
    "make_kernel",
    "CipherKernel",
    "KernelRun",
    "Layout",
    "SetupKernel",
    "SETUP_KERNELS",
    "make_setup",
]
