"""RISC-A register file conventions.

32 integer registers of 64 bits.  ``r31`` always reads as zero and writes to
it are discarded, like the Alpha.  The paper's ISA extensions deliberately
stay within two register sources and one destination (plus an in-instruction
literal) to avoid adding register file ports -- see paper section 5.
"""

from __future__ import annotations

NUM_REGS = 32
ZERO_REG = 31
#: Registers reserved as assembler scratch for idiom expansions
#: (:class:`repro.isa.builder.KernelBuilder` re-exports this).
SCRATCH_REGS = (28, 29, 30)


def reg_name(index: int) -> str:
    """Canonical name for a register index."""
    if not 0 <= index < NUM_REGS:
        raise ValueError(f"register index {index} out of range")
    return f"r{index}"


def parse_reg(token: str) -> int:
    """Parse 'r<N>' (or 'zero') into a register index."""
    token = token.strip().lower()
    if token == "zero":
        return ZERO_REG
    if token.startswith("r"):
        try:
            index = int(token[1:])
        except ValueError as exc:
            raise ValueError(f"bad register {token!r}") from exc
        if 0 <= index < NUM_REGS:
            return index
    raise ValueError(f"bad register {token!r}")
