"""Programmatic assembler for cipher kernels.

:class:`KernelBuilder` is how the kernels in ``repro.kernels`` are written:
one Python "kernel source" per cipher emits RISC-A instructions through thin
per-opcode methods, and *idiom helpers* (:meth:`rotl32`, :meth:`sbox_lookup`,
:meth:`mulmod16`, :meth:`permute64`) that expand to different instruction
sequences depending on the kernel's :class:`~repro.isa.features.Features`
level -- exactly mirroring how the paper recodes each cipher for its ISA
extensions while keeping one algorithmic source.

Conventions:

* Registers are allocated by name (:meth:`reg`); ``r28``-``r30`` are reserved
  assembler scratch used inside idiom expansions; ``r31`` is hardwired zero.
* The second operand of operate instructions is a register index or
  :class:`Imm` (the Alpha-style 8-bit literal).
* Every emit method accepts ``category=`` to override the Figure 7
  classification (idiom helpers set it so, e.g., a shift inside a synthesized
  rotate counts as "rotate", matching the paper's by-hand accounting).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import opcodes as op
from repro.isa.features import Features
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS, SCRATCH_REGS, ZERO_REG
from repro.isa.verify.ranges import validate_emit


@dataclass(frozen=True)
class Imm:
    """An 8-bit operate literal (0..255)."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 255:
            raise ValueError(f"operate literal {self.value} must be 0..255")


class KernelBuilder:
    """Emit a RISC-A :class:`Program` with feature-gated idioms."""

    def __init__(self, features: Features = Features.OPT):
        self.features = features
        self.program = Program()
        self._regs: dict[str, int] = {}
        self._free = [
            r for r in range(NUM_REGS - 1, -1, -1)
            if r not in SCRATCH_REGS and r != ZERO_REG
        ]
        self._label_seq = 0

    # ------------------------------------------------------------------ #
    # Register management
    # ------------------------------------------------------------------ #

    def reg(self, name: str) -> int:
        """Allocate (or look up) a named register."""
        if name not in self._regs:
            if not self._free:
                raise RuntimeError(
                    f"out of registers allocating {name!r}; "
                    f"live: {sorted(self._regs)}"
                )
            self._regs[name] = self._free.pop()
        return self._regs[name]

    def regs(self, *names: str) -> list[int]:
        return [self.reg(name) for name in names]

    def free(self, *names: str) -> None:
        """Release named registers back to the pool."""
        for name in names:
            index = self._regs.pop(name)
            self._free.append(index)

    @property
    def zero(self) -> int:
        return ZERO_REG

    # ------------------------------------------------------------------ #
    # Labels and raw emission
    # ------------------------------------------------------------------ #

    def label(self, name: str) -> str:
        self.program.mark_label(name)
        return name

    def unique_label(self, stem: str) -> str:
        self._label_seq += 1
        return f"{stem}__{self._label_seq}"

    def build(self, verify: str | None = None) -> Program:
        """Finalize and return the program.

        ``verify`` opts into static verification: pass a severity threshold
        ("warning" or "error") to lint the finalized program against the
        builder's feature level and raise
        :class:`~repro.isa.verify.VerificationError` on findings at or
        above it.
        """
        program = self.program.finalize()
        if verify is not None:
            from repro.isa.verify import enforce, verify_program

            enforce(
                verify_program(program, features=self.features,
                               name="<builder>"),
                verify,
            )
        return program

    def _emit(self, instruction: Instruction) -> None:
        validate_emit(instruction)
        self.program.add(instruction)

    def _operate(self, code: int, dest: int, ra: int, rb, category=None) -> None:
        if isinstance(rb, Imm):
            instruction = Instruction(
                code, dest=dest, src1=ra, lit=rb.value, category=category
            )
        else:
            instruction = Instruction(
                code, dest=dest, src1=ra, src2=rb, category=category
            )
        self._emit(instruction)

    # ------------------------------------------------------------------ #
    # Thin per-opcode emitters
    # ------------------------------------------------------------------ #

    def addq(self, dest, ra, rb, category=None):
        self._operate(op.ADDQ, dest, ra, rb, category)

    def subq(self, dest, ra, rb, category=None):
        self._operate(op.SUBQ, dest, ra, rb, category)

    def addl(self, dest, ra, rb, category=None):
        self._operate(op.ADDL, dest, ra, rb, category)

    def subl(self, dest, ra, rb, category=None):
        self._operate(op.SUBL, dest, ra, rb, category)

    def and_(self, dest, ra, rb, category=None):
        self._operate(op.AND, dest, ra, rb, category)

    def bis(self, dest, ra, rb, category=None):
        self._operate(op.BIS, dest, ra, rb, category)

    def xor(self, dest, ra, rb, category=None):
        self._operate(op.XOR, dest, ra, rb, category)

    def bic(self, dest, ra, rb, category=None):
        self._operate(op.BIC, dest, ra, rb, category)

    def ornot(self, dest, ra, rb, category=None):
        self._operate(op.ORNOT, dest, ra, rb, category)

    def sll(self, dest, ra, rb, category=None):
        self._operate(op.SLL, dest, ra, rb, category)

    def srl(self, dest, ra, rb, category=None):
        self._operate(op.SRL, dest, ra, rb, category)

    def sra(self, dest, ra, rb, category=None):
        self._operate(op.SRA, dest, ra, rb, category)

    def mull(self, dest, ra, rb, category=None):
        self._operate(op.MULL, dest, ra, rb, category)

    def mulq(self, dest, ra, rb, category=None):
        self._operate(op.MULQ, dest, ra, rb, category)

    def cmpeq(self, dest, ra, rb, category=None):
        self._operate(op.CMPEQ, dest, ra, rb, category)

    def cmpult(self, dest, ra, rb, category=None):
        self._operate(op.CMPULT, dest, ra, rb, category)

    def cmpule(self, dest, ra, rb, category=None):
        self._operate(op.CMPULE, dest, ra, rb, category)

    def cmplt(self, dest, ra, rb, category=None):
        self._operate(op.CMPLT, dest, ra, rb, category)

    def cmple(self, dest, ra, rb, category=None):
        self._operate(op.CMPLE, dest, ra, rb, category)

    def extbl(self, dest, ra, rb, category=None):
        self._operate(op.EXTBL, dest, ra, rb, category)

    def insbl(self, dest, ra, rb, category=None):
        self._operate(op.INSBL, dest, ra, rb, category)

    def zapnot(self, dest, ra, rb, category=None):
        self._operate(op.ZAPNOT, dest, ra, rb, category)

    def s4addq(self, dest, ra, rb, category=None):
        self._operate(op.S4ADDQ, dest, ra, rb, category)

    def s8addq(self, dest, ra, rb, category=None):
        self._operate(op.S8ADDQ, dest, ra, rb, category)

    def cmoveq(self, dest, ra, rb, category=None):
        self._operate(op.CMOVEQ, dest, ra, rb, category)

    def cmovne(self, dest, ra, rb, category=None):
        self._operate(op.CMOVNE, dest, ra, rb, category)

    def mov(self, dest, ra, category=None):
        """Pseudo-op: dest = ra (BIS ra, ra)."""
        self._operate(op.BIS, dest, ra, ra, category)

    def lda(self, dest, base, disp, category=None):
        self._emit(Instruction(op.LDA, dest=dest, src2=base, disp=disp,
                               category=category))

    def ldiq(self, dest, value, category=None):
        self._emit(Instruction(op.LDIQ, dest=dest,
                               lit=value & 0xFFFFFFFFFFFFFFFF,
                               category=category))

    # Memory.
    def ldq(self, dest, base, disp=0, category=None):
        self._emit(Instruction(op.LDQ, dest=dest, src2=base, disp=disp,
                               category=category))

    def ldl(self, dest, base, disp=0, category=None):
        self._emit(Instruction(op.LDL, dest=dest, src2=base, disp=disp,
                               category=category))

    def ldwu(self, dest, base, disp=0, category=None):
        self._emit(Instruction(op.LDWU, dest=dest, src2=base, disp=disp,
                               category=category))

    def ldbu(self, dest, base, disp=0, category=None):
        self._emit(Instruction(op.LDBU, dest=dest, src2=base, disp=disp,
                               category=category))

    def stq(self, value, base, disp=0, category=None):
        self._emit(Instruction(op.STQ, src1=value, src2=base, disp=disp,
                               category=category))

    def stl(self, value, base, disp=0, category=None):
        self._emit(Instruction(op.STL, src1=value, src2=base, disp=disp,
                               category=category))

    def stw(self, value, base, disp=0, category=None):
        self._emit(Instruction(op.STW, src1=value, src2=base, disp=disp,
                               category=category))

    def stb(self, value, base, disp=0, category=None):
        self._emit(Instruction(op.STB, src1=value, src2=base, disp=disp,
                               category=category))

    # Branches.
    def br(self, target, category=None):
        self._emit(Instruction(op.BR, target=target, category=category))

    def beq(self, ra, target, category=None):
        self._emit(Instruction(op.BEQ, src1=ra, target=target, category=category))

    def bne(self, ra, target, category=None):
        self._emit(Instruction(op.BNE, src1=ra, target=target, category=category))

    def blt(self, ra, target, category=None):
        self._emit(Instruction(op.BLT, src1=ra, target=target, category=category))

    def ble(self, ra, target, category=None):
        self._emit(Instruction(op.BLE, src1=ra, target=target, category=category))

    def bgt(self, ra, target, category=None):
        self._emit(Instruction(op.BGT, src1=ra, target=target, category=category))

    def bge(self, ra, target, category=None):
        self._emit(Instruction(op.BGE, src1=ra, target=target, category=category))

    def halt(self):
        self._emit(Instruction(op.HALT))

    # Crypto extensions (only legal at Features.OPT, except plain rotates
    # which are legal at Features.ROT).
    def _require(self, needed: Features, what: str) -> None:
        if self.features < needed:
            raise RuntimeError(
                f"{what} requires {needed.name} features, kernel is "
                f"{self.features.name}"
            )

    def roll(self, dest, ra, rb, category=None):
        self._require(Features.ROT, "roll")
        self._operate(op.ROLL, dest, ra, rb, category)

    def rorl(self, dest, ra, rb, category=None):
        self._require(Features.ROT, "rorl")
        self._operate(op.RORL, dest, ra, rb, category)

    def rolq(self, dest, ra, rb, category=None):
        self._require(Features.ROT, "rolq")
        self._operate(op.ROLQ, dest, ra, rb, category)

    def rorq(self, dest, ra, rb, category=None):
        self._require(Features.ROT, "rorq")
        self._operate(op.RORQ, dest, ra, rb, category)

    def rolxl(self, dest, ra, amount, category=None):
        self._require(Features.OPT, "rolxl")
        self._operate(op.ROLXL, dest, ra, Imm(amount & 31), category)

    def rorxl(self, dest, ra, amount, category=None):
        self._require(Features.OPT, "rorxl")
        self._operate(op.RORXL, dest, ra, Imm(amount & 31), category)

    def mulmod(self, dest, ra, rb, category=None):
        self._require(Features.OPT, "mulmod")
        self._operate(op.MULMOD, dest, ra, rb, category)

    def grpl(self, dest, ra, rb, category=None):
        self._require(Features.OPT, "grpl")
        self._operate(op.GRPL, dest, ra, rb, category)

    def grpq(self, dest, ra, rb, category=None):
        self._require(Features.OPT, "grpq")
        self._operate(op.GRPQ, dest, ra, rb, category)

    def sbox(self, dest, table_base, index, byte_index, table_id,
             aliased=False, category=None):
        self._require(Features.OPT, "sbox")
        self._emit(Instruction(
            op.SBOX, dest=dest, src1=table_base, src2=index,
            bsel=byte_index, table=table_id, aliased=aliased,
            category=category,
        ))

    def sboxsync(self, table_id, category=None):
        self._require(Features.OPT, "sboxsync")
        self._emit(Instruction(op.SBOXSYNC, table=table_id, category=category))

    def xbox(self, dest, ra, map_reg, byte_index, category=None):
        self._require(Features.OPT, "xbox")
        self._emit(Instruction(
            op.XBOX, dest=dest, src1=ra, src2=map_reg, bsel=byte_index,
            category=category,
        ))

    # ------------------------------------------------------------------ #
    # Feature-gated idiom helpers (the paper's recoding knobs)
    # ------------------------------------------------------------------ #

    def rotl32(self, dest, src, amount: int, category=op.ROTATE) -> None:
        """dest = rotl32(src, constant amount).

        OPT/ROT: one ROLL.  NOROT: three instructions / two cycles (the
        paper's synthesized constant rotate): the shifted halves cannot
        overlap, so a 32-bit add merges them.
        """
        amount &= 31
        if self.features.has_rotates:
            self.roll(dest, src, Imm(amount), category=category)
            return
        t0, t1 = SCRATCH_REGS[0], SCRATCH_REGS[1]
        self.sll(t0, src, Imm(amount), category=category)
        self.srl(t1, src, Imm(32 - amount), category=category)
        self.addl(dest, t0, t1, category=category)

    def rotr32(self, dest, src, amount: int, category=op.ROTATE) -> None:
        self.rotl32(dest, src, (32 - amount) & 31, category=category)

    def rotl32_var(self, dest, src, amount_reg: int, masked: bool = False,
                   category=op.ROTATE) -> None:
        """dest = rotl32(src, reg amount).

        OPT/ROT: one ROLL.  NOROT: the paper's four-instruction synthesized
        variable rotate (three if the amount is already masked to 0..31).
        ``src`` must be a zero-extended 32-bit value.
        """
        if self.features.has_rotates:
            self.roll(dest, src, amount_reg, category=category)
            return
        t0, t1, t2 = SCRATCH_REGS
        shift = amount_reg
        if not masked:
            self.and_(t2, amount_reg, Imm(31), category=category)
            shift = t2
        self.sll(t0, src, shift, category=category)
        self.srl(t1, t0, Imm(32), category=category)
        self.addl(dest, t0, t1, category=category)

    def rotr32_var(self, dest, src, amount_reg: int, masked: bool = False,
                   category=op.ROTATE) -> None:
        """dest = rotr32(src, reg amount) = rotl32(src, 32 - amount)."""
        if self.features.has_rotates:
            self.rorl(dest, src, amount_reg, category=category)
            return
        # rotl by (32 - amount) mod 32: negate, then the masked-rotate idiom.
        t2 = SCRATCH_REGS[2]
        self.subq(t2, self.zero, amount_reg, category=category)
        self.rotl32_var(dest, src, t2, masked=False, category=category)

    def rotl32_xor(self, dest, src, amount: int, category=op.ROTATE) -> None:
        """dest ^= rotl32(src, constant amount) -- the ROLX combining op.

        OPT: one ROLXL.  ROT: ROLL + XOR.  NOROT: synthesized rotate + XOR.
        """
        if self.features.has_crypto:
            self.rolxl(dest, src, amount, category=category)
            return
        t2 = SCRATCH_REGS[2]
        self.rotl32(t2, src, amount, category=category)
        self.xor(dest, dest, t2, category=category)

    def rotr32_xor(self, dest, src, amount: int, category=op.ROTATE) -> None:
        if self.features.has_crypto:
            self.rorxl(dest, src, amount, category=category)
            return
        self.rotl32_xor(dest, src, (32 - amount) & 31, category=category)

    def sbox_lookup(self, dest, table_base, index, byte_index: int,
                    table_id: int, aliased: bool = False,
                    category=op.SUBST) -> None:
        """dest = table[byte_index'th byte of index], 256x32-bit table.

        OPT: one SBOX instruction (2 cycles via the d-cache port, 1 via an
        SBox cache).  Baseline: the paper's three-instruction sequence --
        extract byte, scaled add, load (5 cycles).
        """
        if self.features.has_crypto:
            self.sbox(dest, table_base, index, byte_index, table_id,
                      aliased=aliased, category=category)
            return
        t0 = SCRATCH_REGS[0]
        self.extbl(t0, index, Imm(byte_index), category=category)
        self.s4addq(t0, t0, table_base, category=category)
        self.ldl(dest, t0, 0, category=category)

    def mulmod16(self, dest, ra, rb, category=op.MULTIPLY) -> None:
        """dest = IDEA multiply of two 16-bit operands (0 means 2^16).

        OPT: one 4-cycle MULMOD.  Baseline: the standard software low-high
        decomposition with a (highly biased) zero test, as in the Ascom IDEA
        code the paper measured.
        """
        if self.features.has_crypto:
            self.mulmod(dest, ra, rb, category=category)
            return
        t0, t1, t2 = SCRATCH_REGS
        zero_case = self.unique_label("mulmod_zero")
        done = self.unique_label("mulmod_done")
        # Alpha has no 16-bit registers: mask both operands (the Compaq
        # compiler emits the same ZAPNOTs for uint16 arithmetic).  MULMOD
        # hardware masks internally, so the OPT path above skips this.
        self.zapnot(t1, ra, Imm(0x3), category=category)
        self.zapnot(t2, rb, Imm(0x3), category=category)
        ra, rb = t1, t2
        self.mull(t0, ra, rb, category=category)
        self.beq(t0, zero_case, category=op.CONTROL)
        self.srl(t1, t0, Imm(16), category=category)       # hi
        self.zapnot(t0, t0, Imm(0x3), category=category)   # lo (16 bits)
        self.cmpult(t2, t0, t1, category=category)         # borrow
        self.subl(t0, t0, t1, category=category)
        self.addl(t0, t0, t2, category=category)
        self.zapnot(dest, t0, Imm(0x3), category=category)
        self.br(done, category=op.CONTROL)
        self.label(zero_case)
        # t0 (the zero product) is free here; ra/rb live in t1/t2.
        self.ldiq(t0, 1, category=category)
        self.subl(t0, t0, ra, category=category)
        self.subl(t0, t0, rb, category=category)
        self.zapnot(dest, t0, Imm(0x3), category=category)
        self.label(done)

    def permute64(self, dest, src, map_regs: list[int],
                  category=op.PERMUTE) -> None:
        """dest = 64-bit bit-permutation of src given 8 preloaded map registers.

        OPT only: 8 XBOX (one per destination byte) + 7 OR merges -- the
        64-bit analogue of the paper's 7-instruction 32-bit permutation.
        Baseline kernels use algorithm-specific shift/mask idioms instead
        (see the 3DES kernel's PERM_OP).
        """
        self._require(Features.OPT, "permute64")
        if len(map_regs) != 8:
            raise ValueError("permute64 needs 8 permutation-map registers")
        t0 = SCRATCH_REGS[0]
        for byte_index in range(8):
            target = dest if byte_index == 0 else t0
            self.xbox(target, src, map_regs[byte_index], byte_index,
                      category=category)
            if byte_index:
                self.bis(dest, dest, t0, category=category)

    def permute64_grp(self, dest, src, controls: list[int],
                      category=op.PERMUTE) -> None:
        """dest = 64-bit permutation of src via six GRPQ stages (section 7).

        ``controls`` are the stage words from ``repro.isa.grp.grp_controls``;
        each is materialized with LDIQ into assembler scratch.  Six GRPs
        versus XBOX's 8-XBOX + 7-OR -- the Shi & Lee advantage the paper
        acknowledges.
        """
        self._require(Features.OPT, "permute64_grp")
        if len(controls) != 6:
            raise ValueError("a 64-bit GRP permutation needs 6 stage controls")
        t_ctrl = SCRATCH_REGS[1]
        current = src
        for control in controls:
            self.ldiq(t_ctrl, control, category=category)
            self.grpq(dest, current, t_ctrl, category=category)
            current = dest

    def load_const(self, dest, value: int, category=op.ARITH) -> None:
        """Materialize a constant (LDIQ; small constants via LDA from zero)."""
        value &= 0xFFFFFFFFFFFFFFFF
        if value < 0x8000:
            self.lda(dest, self.zero, value, category=category)
        else:
            self.ldiq(dest, value, category=category)
