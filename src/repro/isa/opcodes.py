"""RISC-A opcode definitions.

RISC-A is the 64-bit Alpha-like load/store ISA the reproduction's kernels are
written in, plus the paper's cryptography extensions (Figure 8).  Each opcode
carries:

* an integer code (the functional simulator dispatches on it),
* a *timing class* that selects the functional unit pool and latency in the
  timing simulator, and
* a default *operation category* for the paper's Figure 7 kernel
  characterization (builder helpers override it when an instruction is part
  of a synthesized idiom, e.g. a shift inside a software rotate counts as
  "rotate", matching the paper's by-hand classification).

Deviations from real Alpha, chosen for clarity and documented in DESIGN.md:
``ADDL``-family results are zero-extended rather than sign-extended (cipher
code treats words as unsigned), ``LDL`` zero-extends, and ``LDIQ`` materializes
a full 64-bit immediate in one instruction (real Alpha needs an LDAH/LDA
sequence or a literal pool; kernel constants are table addresses loaded in
setup code, so the simplification does not perturb kernel-loop statistics).
"""

from __future__ import annotations

from dataclasses import dataclass

# Timing classes -- functional unit pools in the timing model.
IALU = "ialu"          # single-cycle integer ops, compares, CMOVs, branches
MUL32 = "mul32"        # 32-bit multiply
MUL64 = "mul64"        # 64-bit multiply
MULMOD_UNIT = "mulmod" # 16-bit modular multiply (paper: 4 cycles)
ROTATOR = "rotator"    # rotate / rotate-xor / XBOX unit (paper Table 2)
LOAD = "load"
STORE = "store"
SBOX_UNIT = "sbox"     # SBOX instruction (d-cache port or SBox cache)
SYNC = "sync"

# Figure 7 operation categories.
ARITH = "arith"
LOGIC = "logic"
ROTATE = "rotate"
MULTIPLY = "multiply"
SUBST = "sbox"
PERMUTE = "permute"
LDST = "ldst"
CONTROL = "control"


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    code: int
    name: str
    fmt: str        # 'none' | 'op' | 'mem' | 'br' | 'ldi' | 'sbox' | 'sync' | 'xbox'
    klass: str      # timing class
    category: str   # default Figure 7 category
    writes_dest: bool = True
    reads_dest: bool = False  # ROLX/RORX and CMOV read their destination


_SPECS: list[OpSpec] = []


def _op(code, name, fmt, klass, category, writes_dest=True, reads_dest=False):
    spec = OpSpec(code, name, fmt, klass, category, writes_dest, reads_dest)
    _SPECS.append(spec)
    return code


# Control / machine.
HALT = _op(0, "halt", "none", IALU, CONTROL, writes_dest=False)

# Integer operate instructions (rb may be an 8-bit literal).
ADDQ = _op(1, "addq", "op", IALU, ARITH)
SUBQ = _op(2, "subq", "op", IALU, ARITH)
ADDL = _op(3, "addl", "op", IALU, ARITH)
SUBL = _op(4, "subl", "op", IALU, ARITH)
AND = _op(5, "and", "op", IALU, LOGIC)
BIS = _op(6, "bis", "op", IALU, LOGIC)
XOR = _op(7, "xor", "op", IALU, LOGIC)
BIC = _op(8, "bic", "op", IALU, LOGIC)
ORNOT = _op(9, "ornot", "op", IALU, LOGIC)
SLL = _op(10, "sll", "op", IALU, LOGIC)
SRL = _op(11, "srl", "op", IALU, LOGIC)
SRA = _op(12, "sra", "op", IALU, LOGIC)
MULL = _op(13, "mull", "op", MUL32, MULTIPLY)
MULQ = _op(14, "mulq", "op", MUL64, MULTIPLY)
CMPEQ = _op(15, "cmpeq", "op", IALU, ARITH)
CMPULT = _op(16, "cmpult", "op", IALU, ARITH)
CMPULE = _op(17, "cmpule", "op", IALU, ARITH)
CMPLT = _op(18, "cmplt", "op", IALU, ARITH)
CMPLE = _op(19, "cmple", "op", IALU, ARITH)
EXTBL = _op(20, "extbl", "op", IALU, LOGIC)
INSBL = _op(21, "insbl", "op", IALU, LOGIC)
ZAPNOT = _op(22, "zapnot", "op", IALU, LOGIC)
S4ADDQ = _op(23, "s4addq", "op", IALU, ARITH)
S8ADDQ = _op(24, "s8addq", "op", IALU, ARITH)
CMOVEQ = _op(25, "cmoveq", "op", IALU, LOGIC, reads_dest=True)
CMOVNE = _op(26, "cmovne", "op", IALU, LOGIC, reads_dest=True)

# Address/immediate materialization.
LDA = _op(27, "lda", "mem", IALU, ARITH)    # rc = rb + sext16(disp)
LDIQ = _op(28, "ldiq", "ldi", IALU, ARITH)  # rc = imm64 (simulator pseudo-op)

# Memory.
LDQ = _op(30, "ldq", "mem", LOAD, LDST)
LDL = _op(31, "ldl", "mem", LOAD, LDST)     # zero-extending (see module doc)
LDWU = _op(32, "ldwu", "mem", LOAD, LDST)
LDBU = _op(33, "ldbu", "mem", LOAD, LDST)
STQ = _op(34, "stq", "mem", STORE, LDST, writes_dest=False)
STL = _op(35, "stl", "mem", STORE, LDST, writes_dest=False)
STW = _op(36, "stw", "mem", STORE, LDST, writes_dest=False)
STB = _op(37, "stb", "mem", STORE, LDST, writes_dest=False)

# Branches (conditional branches test ra against zero).
BR = _op(40, "br", "br", IALU, CONTROL, writes_dest=False)
BEQ = _op(41, "beq", "br", IALU, CONTROL, writes_dest=False)
BNE = _op(42, "bne", "br", IALU, CONTROL, writes_dest=False)
BLT = _op(43, "blt", "br", IALU, CONTROL, writes_dest=False)
BLE = _op(44, "ble", "br", IALU, CONTROL, writes_dest=False)
BGT = _op(45, "bgt", "br", IALU, CONTROL, writes_dest=False)
BGE = _op(46, "bge", "br", IALU, CONTROL, writes_dest=False)

# Related-work extension (paper section 7): Shi & Lee's GRP instruction, a
# stable bit partition -- source bits whose control bit is 0 pack into the
# low end (original order), bits with 1 above them.  log2(N) GRPs realize
# any N-bit permutation (5 instructions for 32 bits vs XBOX's 7).
GRPL = _op(48, "grpl", "op", ROTATOR, PERMUTE)
GRPQ = _op(49, "grpq", "op", ROTATOR, PERMUTE)

# Cryptography extensions (paper Figure 8).
ROLL = _op(50, "roll", "op", ROTATOR, ROTATE)
RORL = _op(51, "rorl", "op", ROTATOR, ROTATE)
ROLQ = _op(52, "rolq", "op", ROTATOR, ROTATE)
RORQ = _op(53, "rorq", "op", ROTATOR, ROTATE)
ROLXL = _op(54, "rolxl", "op", ROTATOR, ROTATE, reads_dest=True)
RORXL = _op(55, "rorxl", "op", ROTATOR, ROTATE, reads_dest=True)
MULMOD = _op(56, "mulmod", "op", MULMOD_UNIT, MULTIPLY)
SBOX = _op(57, "sbox", "sbox", SBOX_UNIT, SUBST)
SBOXSYNC = _op(58, "sboxsync", "sync", SYNC, CONTROL, writes_dest=False)
XBOX = _op(59, "xbox", "xbox", ROTATOR, PERMUTE)

SPECS: dict[int, OpSpec] = {spec.code: spec for spec in _SPECS}
SPECS_BY_NAME: dict[str, OpSpec] = {spec.name: spec for spec in _SPECS}

BRANCH_CODES = frozenset({BR, BEQ, BNE, BLT, BLE, BGT, BGE})
COND_BRANCH_CODES = frozenset({BEQ, BNE, BLT, BLE, BGT, BGE})
LOAD_CODES = frozenset({LDQ, LDL, LDWU, LDBU})
STORE_CODES = frozenset({STQ, STL, STW, STB})
MEM_SIZES = {LDQ: 8, LDL: 4, LDWU: 2, LDBU: 1, STQ: 8, STL: 4, STW: 2, STB: 1}
