"""The verifier's checker suite.

Each checker is a function ``(VerifyContext) -> list[Diagnostic]`` registered
in :data:`CHECKERS` under its stable id.  Checker ids, severities, and the
rules they implement are catalogued in ``docs/lint.md``; the known-bad
corpus in ``tests/isa/test_verify_checkers.py`` pins one program per
checker class to its exact diagnostic.

All checkers operate on the same :class:`VerifyContext`: the CFG plus the
reaching-definitions and liveness solutions from the shared analysis
framework (:mod:`repro.isa.analysis`).  Checkers that need the lattice
passes (value range, width, the alias pass) pull the full
:class:`~repro.isa.analysis.passes.ProgramAnalyses` bundle via
:meth:`VerifyContext.passes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa import opcodes as op
from repro.isa.analysis.cfg import CFG
from repro.isa.analysis.dataflow import (
    ENTRY,
    Liveness,
    ReachingDefs,
    defs_of,
    uses_of,
)
from repro.isa.analysis.lattices import (
    UNKNOWN_WIDTH,
    make_range_step,
    make_width_step,
)
from repro.isa.analysis.passes import (
    ProgramAnalyses,
    table_pointer_taint,
    taint_step,
)
from repro.isa.analysis.solver import iterate
from repro.isa.features import Features
from repro.isa.program import Program
from repro.isa.registers import SCRATCH_REGS
from repro.isa.verify.diagnostics import Diagnostic
from repro.isa.verify.ranges import (
    encoding_violations,
    rotate_amount_violations,
)

#: Minimum feature level required to execute each extension opcode.
REQUIRED_FEATURES: dict[int, Features] = {
    op.ROLL: Features.ROT, op.RORL: Features.ROT,
    op.ROLQ: Features.ROT, op.RORQ: Features.ROT,
    op.ROLXL: Features.OPT, op.RORXL: Features.OPT,
    op.MULMOD: Features.OPT, op.SBOX: Features.OPT,
    op.SBOXSYNC: Features.OPT, op.XBOX: Features.OPT,
    op.GRPL: Features.OPT, op.GRPQ: Features.OPT,
}

@dataclass
class VerifyContext:
    """Shared analysis state handed to every checker."""

    program: Program
    cfg: CFG
    rdefs: ReachingDefs
    liveness: Liveness
    #: Feature level the program claims to target (None skips gating).
    features: Features | None = None
    #: The full pass-manager bundle (lattices, alias pass, loops); built
    #: lazily from the program when a checker first needs it.
    analyses: ProgramAnalyses | None = None

    def passes(self) -> ProgramAnalyses:
        if self.analyses is None:
            self.analyses = ProgramAnalyses(self.program)
        return self.analyses

    def render(self, index: int) -> str:
        return self.program.instructions[index].render()


def _diag(ctx, checker, severity, index, message, **detail) -> Diagnostic:
    return Diagnostic(
        checker=checker, severity=severity, message=message, index=index,
        instruction=ctx.render(index) if index is not None else None,
        detail=detail,
    )


# --------------------------------------------------------------------- #
# Dataflow lints
# --------------------------------------------------------------------- #

def check_use_before_def(ctx: VerifyContext) -> list[Diagnostic]:
    """A register read that may still hold its entry value on some path."""
    diagnostics = []
    instructions = ctx.program.instructions
    for block in ctx.cfg.blocks:
        if block.bid not in ctx.cfg.reachable:
            continue
        state = dict(ctx.rdefs.block_in[block.bid])
        for index in block.indices():
            instruction = instructions[index]
            for reg in uses_of(instruction):
                if ENTRY in state.get(reg, frozenset()):
                    every = state[reg] == frozenset({ENTRY})
                    path = "every path" if every else "some path"
                    diagnostics.append(_diag(
                        ctx, "use-before-def", "warning", index,
                        f"r{reg} is read before any definition on {path} "
                        f"(holds its entry value 0)",
                        reg=reg,
                    ))
            for reg in defs_of(instruction):
                state[reg] = frozenset({index})
    return diagnostics


def check_dead_write(ctx: VerifyContext) -> list[Diagnostic]:
    """A register definition no path reads before overwriting it."""
    diagnostics = []
    instructions = ctx.program.instructions
    for block in ctx.cfg.blocks:
        if block.bid not in ctx.cfg.reachable:
            continue
        live = set(ctx.liveness.live_out[block.bid])
        # Walk backwards so per-instruction liveness is one pass per block.
        for index in reversed(block.indices()):
            instruction = instructions[index]
            for reg in defs_of(instruction):
                if reg not in live:
                    diagnostics.append(_diag(
                        ctx, "dead-write", "warning", index,
                        f"r{reg} is written but never read before being "
                        f"overwritten (or the program ends)",
                        reg=reg,
                    ))
                live.discard(reg)
            for reg in uses_of(instruction):
                live.add(reg)
    diagnostics.reverse()
    return diagnostics


def check_unreachable(ctx: VerifyContext) -> list[Diagnostic]:
    """Basic blocks no path from the entry reaches."""
    diagnostics = []
    for block in ctx.cfg.blocks:
        if block.bid in ctx.cfg.reachable:
            continue
        diagnostics.append(_diag(
            ctx, "unreachable", "warning", block.start,
            f"instructions {block.start}..{block.end - 1} are unreachable",
            span=[block.start, block.end],
        ))
    return diagnostics


# --------------------------------------------------------------------- #
# Structural checks
# --------------------------------------------------------------------- #

def check_branch_targets(ctx: VerifyContext) -> list[Diagnostic]:
    """Branches past the end, fall-off-end paths, and degenerate branches."""
    diagnostics = []
    instructions = ctx.program.instructions
    n = len(instructions)
    for index, instruction in enumerate(instructions):
        if instruction.code not in op.BRANCH_CODES:
            continue
        target = instruction.target
        if not isinstance(target, int) or not 0 <= target < n:
            diagnostics.append(_diag(
                ctx, "branch-target", "error", index,
                f"branch target {target!r} is outside the program "
                f"(valid indices 0..{n - 1})",
                target=target,
            ))
            continue
        if target == index and instruction.code == op.BR:
            diagnostics.append(_diag(
                ctx, "branch-target", "error", index,
                "unconditional branch to itself never terminates",
                target=target,
            ))
        elif target == index + 1 \
                and instruction.code in op.COND_BRANCH_CODES:
            diagnostics.append(_diag(
                ctx, "branch-target", "warning", index,
                "conditional branch to its own fall-through has no effect",
                target=target,
            ))
    for block in ctx.cfg.blocks:
        if block.bid not in ctx.cfg.reachable or not block.falls_off_end:
            continue
        diagnostics.append(_diag(
            ctx, "branch-target", "error", block.end - 1,
            "execution can run past the program end (missing halt)",
        ))
    return diagnostics


def check_ranges(ctx: VerifyContext) -> list[Diagnostic]:
    """Encoding-width violations (errors) and masked rotate amounts."""
    diagnostics = []
    for index, instruction in enumerate(ctx.program.instructions):
        for field, message in encoding_violations(instruction):
            diagnostics.append(_diag(
                ctx, "range", "error", index, message, field=field,
            ))
        for field, message in rotate_amount_violations(instruction):
            diagnostics.append(_diag(
                ctx, "range", "warning", index, message, field=field,
            ))
    return diagnostics


def check_feature_gate(ctx: VerifyContext) -> list[Diagnostic]:
    """Extension instructions above the program's declared feature level."""
    if ctx.features is None:
        return []
    diagnostics = []
    for index, instruction in enumerate(ctx.program.instructions):
        needed = REQUIRED_FEATURES.get(instruction.code)
        if needed is not None and ctx.features < needed:
            diagnostics.append(_diag(
                ctx, "feature-gate", "error", index,
                f"{instruction.name} requires the {needed.name} feature "
                f"level; the program declares {ctx.features.name}",
                required=needed.name, declared=ctx.features.name,
            ))
    return diagnostics


def check_scratch_discipline(ctx: VerifyContext) -> list[Diagnostic]:
    """Assembler-scratch registers must stay local to their idiom.

    Two rules: scratch must never be consumed from program entry (an error
    -- the idiom that was supposed to define it is missing), and scratch
    must not be live across a loop back edge (a warning -- idiom
    expansions never span iterations, so a loop-carried scratch value
    means two idioms interleaved incorrectly).
    """
    diagnostics = []
    scratch = frozenset(SCRATCH_REGS)
    instructions = ctx.program.instructions
    for block in ctx.cfg.blocks:
        if block.bid not in ctx.cfg.reachable:
            continue
        state = dict(ctx.rdefs.block_in[block.bid])
        for index in block.indices():
            instruction = instructions[index]
            for reg in uses_of(instruction):
                if reg in scratch and ENTRY in state.get(reg, frozenset()):
                    diagnostics.append(_diag(
                        ctx, "scratch-discipline", "error", index,
                        f"scratch register r{reg} is consumed before any "
                        f"idiom defined it",
                        reg=reg,
                    ))
            for reg in defs_of(instruction):
                state[reg] = frozenset({index})
    for src, dst in ctx.cfg.back_edges():
        carried = sorted(scratch & ctx.liveness.live_in[dst])
        branch_index = ctx.cfg.blocks[src].end - 1
        for reg in carried:
            diagnostics.append(_diag(
                ctx, "scratch-discipline", "warning", branch_index,
                f"scratch register r{reg} is live across the loop back "
                f"edge to instruction {ctx.cfg.blocks[dst].start}",
                reg=reg, back_edge=[src, dst],
            ))
    return diagnostics


# --------------------------------------------------------------------- #
# SBox-cache coherence (the paper's SBOXSYNC rule)
# --------------------------------------------------------------------- #

def check_sbox_coherence(ctx: VerifyContext) -> list[Diagnostic]:
    """Stores into SBOX-backed tables need SBOXSYNC before the next read.

    The paper's coherence rule: the dedicated SBox caches snoop nothing,
    so after a store that may modify a table's backing memory the kernel
    must issue ``SBOXSYNC.t`` before the next non-aliased ``SBOX.t`` read
    -- on *every* CFG path.  Aliased SBOX reads (RC4's form) go through
    the load/store ordering machinery and are exempt.  "May modify" means
    the store's base register may point into table ``t`` according to the
    pointer-taint analysis seeded from SBOX base operands.
    """
    instructions = ctx.program.instructions
    taint_in, seeds = table_pointer_taint(ctx.program, ctx.cfg, ctx.rdefs)

    dirty_in: list[frozenset[int]] = [frozenset() for _ in ctx.cfg.blocks]

    def transfer(bid: int) -> frozenset[int]:
        dirty = set(dirty_in[bid])
        # Re-run the taint transfer locally so the dirty walk sees the
        # same per-point pointer sets the fixpoint computed.
        taint = dict(taint_in[bid])
        for index in ctx.cfg.blocks[bid].indices():
            instruction = instructions[index]
            if instruction.code in op.STORE_CODES \
                    and instruction.src2 is not None:
                dirty |= taint.get(instruction.src2, frozenset())
            elif instruction.code == op.SBOXSYNC:
                dirty.discard(instruction.table)
            taint_step(instruction, index, taint, seeds)
        return frozenset(dirty)

    def process(bid: int) -> list[int]:
        out = transfer(bid)
        changed = []
        for succ in ctx.cfg.blocks[bid].successors:
            if not out <= dirty_in[succ]:
                dirty_in[succ] = dirty_in[succ] | out
                changed.append(succ)
        return changed

    iterate(ctx.cfg.rpo, process)

    diagnostics = []
    for block in ctx.cfg.blocks:
        if block.bid not in ctx.cfg.reachable:
            continue
        dirty = set(dirty_in[block.bid])
        taint = dict(taint_in[block.bid])
        for index in block.indices():
            instruction = instructions[index]
            if instruction.code == op.SBOX and not instruction.aliased \
                    and instruction.table in dirty:
                diagnostics.append(_diag(
                    ctx, "sbox-coherence", "error", index,
                    f"SBOX reads table {instruction.table} after a store "
                    f"that may modify it, with no intervening "
                    f"sboxsync.{instruction.table} on some path",
                    table=instruction.table,
                ))
            if instruction.code in op.STORE_CODES \
                    and instruction.src2 is not None:
                dirty |= taint.get(instruction.src2, frozenset())
            elif instruction.code == op.SBOXSYNC:
                dirty.discard(instruction.table)
            taint_step(instruction, index, taint, seeds)
    return diagnostics


# --------------------------------------------------------------------- #
# Lattice-backed lints (value range, width, store forwarding)
# --------------------------------------------------------------------- #

#: Shift/rotate opcodes masked to 6 bits of amount by the machine.
_AMOUNT64_OPS = frozenset({op.SLL, op.SRL, op.SRA, op.ROLQ, op.RORQ})
#: 32-bit rotates: amounts are masked to 5 bits.
_AMOUNT32_OPS = frozenset({op.ROLL, op.RORL, op.ROLXL, op.RORXL})


def check_value_range(ctx: VerifyContext) -> list[Diagnostic]:
    """Register shift/rotate amounts that are provably out of range.

    The machine masks shift amounts to 6 bits (5 for 32-bit rotates), so
    an amount register whose value-range fact proves it *always* exceeds
    the mask means the code relies on silent wrap-around -- legal, but
    almost always a strength-reduction bug.  Literal amounts are already
    covered by the ``range`` checker; this one needs the value-range
    lattice to see through register dataflow.
    """
    analyses = ctx.passes()
    arrays = analyses.arrays
    blocks, _ = analyses.array_blocks
    entry = analyses.array_ranges
    step = make_range_step(arrays)
    diagnostics = []
    for k, (start, end) in enumerate(blocks):
        state = list(entry[k])
        for i in range(start, end):
            code = arrays.code[i]
            if arrays.lit[i] is None \
                    and (code in _AMOUNT64_OPS or code in _AMOUNT32_OPS):
                mask = 63 if code in _AMOUNT64_OPS else 31
                amount = arrays.src2[i]
                fact = None if amount == 31 else state[amount]
                if fact is not None and fact[0] > mask:
                    diagnostics.append(_diag(
                        ctx, "value-range", "warning", i,
                        f"r{amount} always holds "
                        + (f"{fact[0]}" if fact[0] == fact[1]
                           else f"at least {fact[0]}")
                        + f", which exceeds the {mask}-bit-masked "
                        f"shift/rotate amount range",
                        reg=amount, lo=fact[0], hi=fact[1], mask=mask,
                    ))
            step(state, i)
    return diagnostics


def check_width_trunc(ctx: VerifyContext) -> list[Diagnostic]:
    """32-bit rotates whose operand provably carries more than 32 bits.

    ``ROLL``/``RORL`` (and their XBOX-fused forms) operate on the low 32
    bits only; feeding them a value the width lattice proves is wider
    than 32 bits silently discards the upper half.  Kernels that mean to
    truncate do it explicitly (ZAPNOT / ADDL), so a provably-wide rotate
    operand is flagged.  ``UNKNOWN_WIDTH`` operands are *not* flagged --
    the lattice merely lost track, which happens at every join of a
    64-bit producer with anything.
    """
    analyses = ctx.passes()
    arrays = analyses.arrays
    blocks, _ = analyses.array_blocks
    entry = analyses.array_widths
    step = make_width_step(arrays)
    diagnostics = []
    for k, (start, end) in enumerate(blocks):
        state = list(entry[k])
        for i in range(start, end):
            if arrays.code[i] in _AMOUNT32_OPS:
                src = arrays.src1[i]
                w = 0 if src == 31 else state[src]
                if 32 < w < UNKNOWN_WIDTH:
                    diagnostics.append(_diag(
                        ctx, "width-trunc", "warning", i,
                        f"32-bit rotate reads r{src}, which provably "
                        f"carries up to {w} significant bits; the upper "
                        f"{w - 32} are silently discarded",
                        reg=src, width=w,
                    ))
            step(state, i)
    return diagnostics


#: Store-queue capacity of the smallest shipped machine (ALPHA21264):
#: a forwarding distance at or beyond this many younger stores means the
#: producing store can age out of the queue before the load issues.
STORE_FORWARD_DISTANCE = 32


def check_store_forward(ctx: VerifyContext) -> list[Diagnostic]:
    """Store-to-load pairs the store queue cannot forward cheaply.

    Built on the memory-interval alias pass: within a basic block, a load
    (or aliased SBOX read) whose proved byte interval overlaps an earlier
    store's is flagged when

    * the overlap is *partial* -- the load is not fully contained in the
      store, so the value must be stitched from the queue entry and the
      cache (real store queues stall or replay here), or
    * at least :data:`STORE_FORWARD_DISTANCE` younger stores separate the
      pair, so the entry can age out of the smallest shipped store queue
      before the load issues.

    Stores with unproved addresses between the pair veto the diagnostic
    (any of them could re-cover the load and forward cleanly).
    """
    analyses = ctx.passes()
    arrays = analyses.arrays
    memory = analyses.memory
    blocks, _ = analyses.array_blocks
    instructions = ctx.program.instructions
    diagnostics = []
    for start, end in blocks:
        # (position, interval-or-None) of every store so far in the block.
        stores: list[tuple[int, tuple[int, int] | None]] = []
        for i in range(start, end):
            instruction = instructions[i]
            if instruction.code in op.STORE_CODES:
                stores.append((i, memory.intervals[i]))
                continue
            is_aliased_sbox = (
                instruction.code == op.SBOX and instruction.aliased
            )
            if not (instruction.code in op.LOAD_CODES or is_aliased_sbox):
                continue
            load_iv = memory.intervals[i]
            if load_iv is None:
                continue
            for younger, (s, store_iv) in enumerate(reversed(stores)):
                if store_iv is None:
                    # An unproved store address: it could re-cover the
                    # load and forward cleanly, so stop reasoning here.
                    break
                if store_iv[1] <= load_iv[0] or load_iv[1] <= store_iv[0]:
                    continue
                contained = (store_iv[0] <= load_iv[0]
                             and load_iv[1] <= store_iv[1])
                if not contained:
                    diagnostics.append(_diag(
                        ctx, "store-forward", "warning", i,
                        f"load overlaps the store at instruction {s} "
                        f"only partially; the store queue cannot forward "
                        f"it and the load must wait for the cache",
                        store=s,
                        load_bytes=list(load_iv),
                        store_bytes=list(store_iv),
                    ))
                elif younger >= STORE_FORWARD_DISTANCE:
                    diagnostics.append(_diag(
                        ctx, "store-forward", "warning", i,
                        f"{younger} stores separate this load from its "
                        f"forwarding store at instruction {s}; the entry "
                        f"can age out of a {STORE_FORWARD_DISTANCE}-entry "
                        f"store queue before the load issues",
                        store=s, distance=younger,
                    ))
                break
    return diagnostics


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

Checker = Callable[[VerifyContext], list[Diagnostic]]

CHECKERS: dict[str, Checker] = {
    "use-before-def": check_use_before_def,
    "dead-write": check_dead_write,
    "unreachable": check_unreachable,
    "branch-target": check_branch_targets,
    "range": check_ranges,
    "feature-gate": check_feature_gate,
    "scratch-discipline": check_scratch_discipline,
    "sbox-coherence": check_sbox_coherence,
    "value-range": check_value_range,
    "width-trunc": check_width_trunc,
    "store-forward": check_store_forward,
}
