"""The verifier's checker suite.

Each checker is a function ``(VerifyContext) -> list[Diagnostic]`` registered
in :data:`CHECKERS` under its stable id.  Checker ids, severities, and the
rules they implement are catalogued in ``docs/lint.md``; the known-bad
corpus in ``tests/isa/test_verify_checkers.py`` pins one program per
checker class to its exact diagnostic.

All checkers operate on the same :class:`VerifyContext`: the CFG plus the
reaching-definitions and liveness solutions from
:mod:`repro.isa.verify.dataflow`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.isa import opcodes as op
from repro.isa.features import Features
from repro.isa.program import Program
from repro.isa.registers import SCRATCH_REGS
from repro.isa.verify.cfg import CFG
from repro.isa.verify.dataflow import (
    ENTRY,
    Liveness,
    ReachingDefs,
    defs_of,
    uses_of,
)
from repro.isa.verify.diagnostics import Diagnostic
from repro.isa.verify.ranges import (
    encoding_violations,
    rotate_amount_violations,
)

#: Minimum feature level required to execute each extension opcode.
REQUIRED_FEATURES: dict[int, Features] = {
    op.ROLL: Features.ROT, op.RORL: Features.ROT,
    op.ROLQ: Features.ROT, op.RORQ: Features.ROT,
    op.ROLXL: Features.OPT, op.RORXL: Features.OPT,
    op.MULMOD: Features.OPT, op.SBOX: Features.OPT,
    op.SBOXSYNC: Features.OPT, op.XBOX: Features.OPT,
    op.GRPL: Features.OPT, op.GRPQ: Features.OPT,
}

#: Opcodes whose result can carry a derived pointer (copies, address
#: arithmetic); loads and SBOX produce table *contents*, not pointers.
_POINTER_OPS = frozenset(
    spec.code for spec in op.SPECS.values()
    if spec.fmt == "op" and spec.klass in ("ialu", "rotator")
) | {op.LDA}


@dataclass
class VerifyContext:
    """Shared analysis state handed to every checker."""

    program: Program
    cfg: CFG
    rdefs: ReachingDefs
    liveness: Liveness
    #: Feature level the program claims to target (None skips gating).
    features: Features | None = None

    def render(self, index: int) -> str:
        return self.program.instructions[index].render()


def _diag(ctx, checker, severity, index, message, **detail) -> Diagnostic:
    return Diagnostic(
        checker=checker, severity=severity, message=message, index=index,
        instruction=ctx.render(index) if index is not None else None,
        detail=detail,
    )


# --------------------------------------------------------------------- #
# Dataflow lints
# --------------------------------------------------------------------- #

def check_use_before_def(ctx: VerifyContext) -> list[Diagnostic]:
    """A register read that may still hold its entry value on some path."""
    diagnostics = []
    instructions = ctx.program.instructions
    for block in ctx.cfg.blocks:
        if block.bid not in ctx.cfg.reachable:
            continue
        state = dict(ctx.rdefs.block_in[block.bid])
        for index in block.indices():
            instruction = instructions[index]
            for reg in uses_of(instruction):
                if ENTRY in state.get(reg, frozenset()):
                    every = state[reg] == frozenset({ENTRY})
                    path = "every path" if every else "some path"
                    diagnostics.append(_diag(
                        ctx, "use-before-def", "warning", index,
                        f"r{reg} is read before any definition on {path} "
                        f"(holds its entry value 0)",
                        reg=reg,
                    ))
            for reg in defs_of(instruction):
                state[reg] = frozenset({index})
    return diagnostics


def check_dead_write(ctx: VerifyContext) -> list[Diagnostic]:
    """A register definition no path reads before overwriting it."""
    diagnostics = []
    instructions = ctx.program.instructions
    for block in ctx.cfg.blocks:
        if block.bid not in ctx.cfg.reachable:
            continue
        live = set(ctx.liveness.live_out[block.bid])
        # Walk backwards so per-instruction liveness is one pass per block.
        for index in reversed(block.indices()):
            instruction = instructions[index]
            for reg in defs_of(instruction):
                if reg not in live:
                    diagnostics.append(_diag(
                        ctx, "dead-write", "warning", index,
                        f"r{reg} is written but never read before being "
                        f"overwritten (or the program ends)",
                        reg=reg,
                    ))
                live.discard(reg)
            for reg in uses_of(instruction):
                live.add(reg)
    diagnostics.reverse()
    return diagnostics


def check_unreachable(ctx: VerifyContext) -> list[Diagnostic]:
    """Basic blocks no path from the entry reaches."""
    diagnostics = []
    for block in ctx.cfg.blocks:
        if block.bid in ctx.cfg.reachable:
            continue
        diagnostics.append(_diag(
            ctx, "unreachable", "warning", block.start,
            f"instructions {block.start}..{block.end - 1} are unreachable",
            span=[block.start, block.end],
        ))
    return diagnostics


# --------------------------------------------------------------------- #
# Structural checks
# --------------------------------------------------------------------- #

def check_branch_targets(ctx: VerifyContext) -> list[Diagnostic]:
    """Branches past the end, fall-off-end paths, and degenerate branches."""
    diagnostics = []
    instructions = ctx.program.instructions
    n = len(instructions)
    for index, instruction in enumerate(instructions):
        if instruction.code not in op.BRANCH_CODES:
            continue
        target = instruction.target
        if not isinstance(target, int) or not 0 <= target < n:
            diagnostics.append(_diag(
                ctx, "branch-target", "error", index,
                f"branch target {target!r} is outside the program "
                f"(valid indices 0..{n - 1})",
                target=target,
            ))
            continue
        if target == index and instruction.code == op.BR:
            diagnostics.append(_diag(
                ctx, "branch-target", "error", index,
                "unconditional branch to itself never terminates",
                target=target,
            ))
        elif target == index + 1 \
                and instruction.code in op.COND_BRANCH_CODES:
            diagnostics.append(_diag(
                ctx, "branch-target", "warning", index,
                "conditional branch to its own fall-through has no effect",
                target=target,
            ))
    for block in ctx.cfg.blocks:
        if block.bid not in ctx.cfg.reachable or not block.falls_off_end:
            continue
        diagnostics.append(_diag(
            ctx, "branch-target", "error", block.end - 1,
            "execution can run past the program end (missing halt)",
        ))
    return diagnostics


def check_ranges(ctx: VerifyContext) -> list[Diagnostic]:
    """Encoding-width violations (errors) and masked rotate amounts."""
    diagnostics = []
    for index, instruction in enumerate(ctx.program.instructions):
        for field, message in encoding_violations(instruction):
            diagnostics.append(_diag(
                ctx, "range", "error", index, message, field=field,
            ))
        for field, message in rotate_amount_violations(instruction):
            diagnostics.append(_diag(
                ctx, "range", "warning", index, message, field=field,
            ))
    return diagnostics


def check_feature_gate(ctx: VerifyContext) -> list[Diagnostic]:
    """Extension instructions above the program's declared feature level."""
    if ctx.features is None:
        return []
    diagnostics = []
    for index, instruction in enumerate(ctx.program.instructions):
        needed = REQUIRED_FEATURES.get(instruction.code)
        if needed is not None and ctx.features < needed:
            diagnostics.append(_diag(
                ctx, "feature-gate", "error", index,
                f"{instruction.name} requires the {needed.name} feature "
                f"level; the program declares {ctx.features.name}",
                required=needed.name, declared=ctx.features.name,
            ))
    return diagnostics


def check_scratch_discipline(ctx: VerifyContext) -> list[Diagnostic]:
    """Assembler-scratch registers must stay local to their idiom.

    Two rules: scratch must never be consumed from program entry (an error
    -- the idiom that was supposed to define it is missing), and scratch
    must not be live across a loop back edge (a warning -- idiom
    expansions never span iterations, so a loop-carried scratch value
    means two idioms interleaved incorrectly).
    """
    diagnostics = []
    scratch = frozenset(SCRATCH_REGS)
    instructions = ctx.program.instructions
    for block in ctx.cfg.blocks:
        if block.bid not in ctx.cfg.reachable:
            continue
        state = dict(ctx.rdefs.block_in[block.bid])
        for index in block.indices():
            instruction = instructions[index]
            for reg in uses_of(instruction):
                if reg in scratch and ENTRY in state.get(reg, frozenset()):
                    diagnostics.append(_diag(
                        ctx, "scratch-discipline", "error", index,
                        f"scratch register r{reg} is consumed before any "
                        f"idiom defined it",
                        reg=reg,
                    ))
            for reg in defs_of(instruction):
                state[reg] = frozenset({index})
    for src, dst in ctx.cfg.back_edges():
        carried = sorted(scratch & ctx.liveness.live_in[dst])
        branch_index = ctx.cfg.blocks[src].end - 1
        for reg in carried:
            diagnostics.append(_diag(
                ctx, "scratch-discipline", "warning", branch_index,
                f"scratch register r{reg} is live across the loop back "
                f"edge to instruction {ctx.cfg.blocks[dst].start}",
                reg=reg, back_edge=[src, dst],
            ))
    return diagnostics


# --------------------------------------------------------------------- #
# SBox-cache coherence (the paper's SBOXSYNC rule)
# --------------------------------------------------------------------- #

def _taint_step(
    instruction,
    index: int,
    state: dict[int, frozenset[int]],
    seeds: dict[int, set[int]],
) -> None:
    """Apply one instruction's pointer-taint transfer to ``state`` in place."""
    for reg in defs_of(instruction):
        taint: frozenset[int] = frozenset(seeds.get(index, ()))
        if instruction.code in _POINTER_OPS:
            for src in uses_of(instruction):
                taint = taint | state.get(src, frozenset())
        if taint:
            state[reg] = taint
        else:
            state.pop(reg, None)


def _table_pointer_taint(
    ctx: VerifyContext,
) -> tuple[list[dict[int, frozenset[int]]], dict[int, set[int]]]:
    """Forward may-point-to analysis: register -> set of SBOX table ids.

    Seeds: every definition that reaches the *table base* operand (src1)
    of an SBOX instruction for table ``t`` produces a table-``t`` pointer.
    Propagation: copies and address arithmetic (operate-format IALU /
    rotator ops plus LDA) carry the union of their sources' taints; loads
    and SBOX results are table contents, not pointers, and any other
    definition kills the taint.
    """
    instructions = ctx.program.instructions
    # Seed pass: def site -> tables whose base it materializes.
    seeds: dict[int, set[int]] = {}
    for block in ctx.cfg.blocks:
        if block.bid not in ctx.cfg.reachable:
            continue
        state = dict(ctx.rdefs.block_in[block.bid])
        for index in block.indices():
            instruction = instructions[index]
            if instruction.code == op.SBOX and instruction.src1 is not None:
                for d in state.get(instruction.src1, frozenset()):
                    if d != ENTRY:
                        seeds.setdefault(d, set()).add(instruction.table)
            for reg in defs_of(instruction):
                state[reg] = frozenset({index})

    empty: dict[int, frozenset[int]] = {}
    block_in: list[dict[int, frozenset[int]]] = [
        dict(empty) for _ in ctx.cfg.blocks
    ]

    def transfer(bid: int) -> dict[int, frozenset[int]]:
        state = dict(block_in[bid])
        for index in ctx.cfg.blocks[bid].indices():
            _taint_step(instructions[index], index, state, seeds)
        return state

    worklist = list(ctx.cfg.rpo)
    on_list = set(worklist)
    while worklist:
        bid = worklist.pop(0)
        on_list.discard(bid)
        out = transfer(bid)
        for succ in ctx.cfg.blocks[bid].successors:
            succ_in = block_in[succ]
            changed = False
            for reg, taint in out.items():
                if not taint <= succ_in.get(reg, frozenset()):
                    succ_in[reg] = succ_in.get(reg, frozenset()) | taint
                    changed = True
            if changed and succ not in on_list:
                worklist.append(succ)
                on_list.add(succ)
    return block_in, seeds


def check_sbox_coherence(ctx: VerifyContext) -> list[Diagnostic]:
    """Stores into SBOX-backed tables need SBOXSYNC before the next read.

    The paper's coherence rule: the dedicated SBox caches snoop nothing,
    so after a store that may modify a table's backing memory the kernel
    must issue ``SBOXSYNC.t`` before the next non-aliased ``SBOX.t`` read
    -- on *every* CFG path.  Aliased SBOX reads (RC4's form) go through
    the load/store ordering machinery and are exempt.  "May modify" means
    the store's base register may point into table ``t`` according to the
    pointer-taint analysis seeded from SBOX base operands.
    """
    instructions = ctx.program.instructions
    taint_in, seeds = _table_pointer_taint(ctx)

    dirty_in: list[frozenset[int]] = [frozenset() for _ in ctx.cfg.blocks]

    def transfer(bid: int) -> frozenset[int]:
        dirty = set(dirty_in[bid])
        # Re-run the taint transfer locally so the dirty walk sees the
        # same per-point pointer sets the fixpoint computed.
        taint = dict(taint_in[bid])
        for index in ctx.cfg.blocks[bid].indices():
            instruction = instructions[index]
            if instruction.code in op.STORE_CODES \
                    and instruction.src2 is not None:
                dirty |= taint.get(instruction.src2, frozenset())
            elif instruction.code == op.SBOXSYNC:
                dirty.discard(instruction.table)
            _taint_step(instruction, index, taint, seeds)
        return frozenset(dirty)

    worklist = list(ctx.cfg.rpo)
    on_list = set(worklist)
    while worklist:
        bid = worklist.pop(0)
        on_list.discard(bid)
        out = transfer(bid)
        for succ in ctx.cfg.blocks[bid].successors:
            if not out <= dirty_in[succ]:
                dirty_in[succ] = dirty_in[succ] | out
                if succ not in on_list:
                    worklist.append(succ)
                    on_list.add(succ)

    diagnostics = []
    for block in ctx.cfg.blocks:
        if block.bid not in ctx.cfg.reachable:
            continue
        dirty = set(dirty_in[block.bid])
        taint = dict(taint_in[block.bid])
        for index in block.indices():
            instruction = instructions[index]
            if instruction.code == op.SBOX and not instruction.aliased \
                    and instruction.table in dirty:
                diagnostics.append(_diag(
                    ctx, "sbox-coherence", "error", index,
                    f"SBOX reads table {instruction.table} after a store "
                    f"that may modify it, with no intervening "
                    f"sboxsync.{instruction.table} on some path",
                    table=instruction.table,
                ))
            if instruction.code in op.STORE_CODES \
                    and instruction.src2 is not None:
                dirty |= taint.get(instruction.src2, frozenset())
            elif instruction.code == op.SBOXSYNC:
                dirty.discard(instruction.table)
            _taint_step(instruction, index, taint, seeds)
    return diagnostics


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

Checker = Callable[[VerifyContext], list[Diagnostic]]

CHECKERS: dict[str, Checker] = {
    "use-before-def": check_use_before_def,
    "dead-write": check_dead_write,
    "unreachable": check_unreachable,
    "branch-target": check_branch_targets,
    "range": check_ranges,
    "feature-gate": check_feature_gate,
    "scratch-discipline": check_scratch_discipline,
    "sbox-coherence": check_sbox_coherence,
}
