"""Encoding range tables for RISC-A instruction fields.

One authoritative table shared by the static verifier's range checker and
the :class:`~repro.isa.builder.KernelBuilder` emit-time validation, so the
two can never drift.  The ranges mirror what the simulators actually
encode (see ``repro.isa.opcodes`` module docs for the deliberate
deviations from real Alpha):

* register indices are 5 bits (0..31),
* operate literals are the Alpha 8-bit form (0..255),
* ``LDIQ`` materializes any unsigned 64-bit immediate,
* memory displacements are signed 16-bit, with one documented exception:
  a zero-register base (``disp(r31)``) is the simulator's absolute-address
  idiom and admits any address up to 2^31 (kernels use it for the IV and
  parameter block),
* SBOX table designators and byte selects are 3 bits (0..7) -- 3DES uses
  eight logical tables,
* rotate amounts are masked by hardware (to 5 or 6 bits), so an immediate
  outside the mask is reported by the lint *range* checker as a warning
  rather than rejected at emit time.
"""

from __future__ import annotations

from repro.isa import opcodes as op
from repro.isa.instruction import Instruction
from repro.isa.registers import NUM_REGS, ZERO_REG

REG_RANGE = (0, NUM_REGS - 1)
OPERATE_LIT_RANGE = (0, 255)
LDIQ_RANGE = (0, (1 << 64) - 1)
DISP_RANGE = (-(1 << 15), (1 << 15) - 1)
#: Absolute-address idiom: ``disp(r31)`` reaches the whole simulated
#: address space (see module docs).
DISP_ABSOLUTE_RANGE = (0, (1 << 31) - 1)
TABLE_RANGE = (0, 7)
BSEL_RANGE = (0, 7)

#: Hardware rotate-amount masks: 32-bit rotates use 5 bits, 64-bit 6 bits.
ROTATE_AMOUNT_BITS = {
    op.ROLL: 31, op.RORL: 31, op.ROLXL: 31, op.RORXL: 31,
    op.ROLQ: 63, op.RORQ: 63,
}


def _in(value: int, bounds: tuple[int, int]) -> bool:
    return bounds[0] <= value <= bounds[1]


def _check_reg(field: str, value, problems: list[tuple[str, str]]) -> None:
    if value is None:
        return
    if not isinstance(value, int) or not _in(value, REG_RANGE):
        problems.append((
            field,
            f"register index {value!r} out of range "
            f"{REG_RANGE[0]}..{REG_RANGE[1]}",
        ))


def encoding_violations(instruction: Instruction) -> list[tuple[str, str]]:
    """Hard encoding-width violations for one instruction.

    Returns ``(field, message)`` pairs; empty when every field fits its
    encoding.  These are the violations the :class:`KernelBuilder` raises
    on at emit time and the lint *range* checker reports as errors.
    """
    problems: list[tuple[str, str]] = []
    spec = instruction.spec
    _check_reg("dest", instruction.dest, problems)
    _check_reg("src1", instruction.src1, problems)
    _check_reg("src2", instruction.src2, problems)

    lit = instruction.lit
    if lit is not None:
        bounds = LDIQ_RANGE if spec.code == op.LDIQ else OPERATE_LIT_RANGE
        if not isinstance(lit, int) or not _in(lit, bounds):
            kind = "LDIQ immediate" if spec.code == op.LDIQ else "operate literal"
            problems.append((
                "lit",
                f"{kind} {lit!r} overflows its encoding "
                f"({bounds[0]}..{bounds[1]})",
            ))

    if spec.fmt == "mem":
        disp = instruction.disp
        absolute = instruction.src2 == ZERO_REG
        bounds = DISP_ABSOLUTE_RANGE if absolute else DISP_RANGE
        if not isinstance(disp, int) or not _in(disp, bounds):
            idiom = " (absolute-address idiom)" if absolute else ""
            problems.append((
                "disp",
                f"displacement {disp!r} outside signed encoding "
                f"{bounds[0]}..{bounds[1]}{idiom}",
            ))

    if spec.fmt in ("sbox", "sync") and not _in(instruction.table, TABLE_RANGE):
        problems.append((
            "table",
            f"table designator {instruction.table} out of range "
            f"{TABLE_RANGE[0]}..{TABLE_RANGE[1]}",
        ))
    if spec.fmt in ("sbox", "xbox") and not _in(instruction.bsel, BSEL_RANGE):
        problems.append((
            "bsel",
            f"byte select {instruction.bsel} out of range "
            f"{BSEL_RANGE[0]}..{BSEL_RANGE[1]}",
        ))
    return problems


def rotate_amount_violations(
    instruction: Instruction,
) -> list[tuple[str, str]]:
    """Soft range findings: a literal rotate amount the hardware will mask.

    Legal to encode (the rotator masks to 5/6 bits) but almost always a
    kernel bug, so the lint range checker reports these as warnings.
    """
    mask = ROTATE_AMOUNT_BITS.get(instruction.code)
    lit = instruction.lit
    if mask is None or lit is None or not isinstance(lit, int):
        return []
    if 0 <= lit <= mask:
        return []
    return [(
        "lit",
        f"rotate amount {lit} exceeds the {mask + 1}-value hardware mask "
        f"(executes as {lit & mask})",
    )]


def validate_emit(instruction: Instruction) -> None:
    """Raise ``ValueError`` on any hard encoding violation.

    The :meth:`KernelBuilder` emit path calls this so a bad register index
    or an overflowing immediate fails at the emitting source line instead
    of deep inside the functional simulator.
    """
    problems = encoding_violations(instruction)
    if problems:
        details = "; ".join(message for _, message in problems)
        raise ValueError(f"{instruction.name}: {details}")
