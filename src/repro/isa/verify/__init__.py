"""Static verification for RISC-A programs (``repro.isa.verify``).

:func:`verify_program` is the front door: build the CFG and dataflow
solutions once, run the checker suite, and attach the static critical-path
lower bound.  See ``docs/lint.md`` for the checker catalogue and the
soundness argument behind the critical-path oracle.

Typical use::

    from repro.isa.verify import verify_program

    result = verify_program(program, features=Features.OPT, name="Blowfish")
    if result.errors:
        ...

The ``verify=`` hooks on :meth:`KernelBuilder.build` and
:func:`repro.isa.assembler.assemble` call :func:`enforce` with a severity
threshold ("warning" or "error") and raise :class:`VerificationError` when
any diagnostic meets it.
"""

from __future__ import annotations

from repro.isa.analysis.passes import analyses_for
from repro.isa.features import Features
from repro.isa.program import Program
from repro.isa.verify.cfg import CFG, BasicBlock
from repro.isa.verify.checkers import CHECKERS, VerifyContext
from repro.isa.verify.critical_path import (
    CriticalPath,
    critical_path,
    min_latencies,
)
from repro.isa.verify.dataflow import ENTRY, Liveness, ReachingDefs
from repro.isa.verify.diagnostics import (
    LINT_SCHEMA,
    SEVERITIES,
    Diagnostic,
    VerificationError,
    VerifyResult,
    lint_document,
    record_lint_metrics,
    severity_rank,
)
from repro.isa.verify.ranges import (
    encoding_violations,
    rotate_amount_violations,
    validate_emit,
)

__all__ = [
    "BasicBlock", "CFG", "CHECKERS", "CriticalPath", "Diagnostic", "ENTRY",
    "Features", "LINT_SCHEMA", "Liveness", "ReachingDefs", "SEVERITIES",
    "VerificationError", "VerifyContext", "VerifyResult", "critical_path",
    "encoding_violations", "enforce", "lint_document", "min_latencies",
    "record_lint_metrics", "rotate_amount_violations", "severity_rank",
    "validate_emit", "verify_program",
]


def verify_program(
    program: Program,
    features: Features | None = None,
    name: str = "program",
    checkers: list[str] | None = None,
    with_critical_path: bool = True,
) -> VerifyResult:
    """Run the static verifier over a finalized program.

    ``features`` enables the feature-gate checker (pass the level the
    program claims to target); ``checkers`` restricts the suite to the
    named checker ids (default: all of :data:`CHECKERS`).  The result
    carries the critical-path lower bound for the DF machine unless
    ``with_critical_path`` is disabled.
    """
    if checkers is None:
        selected = list(CHECKERS)
    else:
        unknown = [c for c in checkers if c not in CHECKERS]
        if unknown:
            raise ValueError(
                f"unknown checker(s) {unknown}; pick from {sorted(CHECKERS)}"
            )
        selected = list(checkers)

    analyses = analyses_for(program)
    cfg = analyses.cfg
    rdefs = analyses.rdefs
    ctx = VerifyContext(
        program=program, cfg=cfg, rdefs=rdefs,
        liveness=analyses.liveness, features=features, analyses=analyses,
    )
    diagnostics: list[Diagnostic] = []
    for checker_id in selected:
        diagnostics.extend(CHECKERS[checker_id](ctx))
    diagnostics.sort(
        key=lambda d: (d.index if d.index is not None else -1, d.checker)
    )

    bound: int | None = None
    if with_critical_path:
        bound = critical_path(program, cfg=cfg, rdefs=rdefs).cycles
    return VerifyResult(
        name=name,
        instructions=len(program.instructions),
        diagnostics=diagnostics,
        critical_path=bound,
    )


def enforce(result: VerifyResult, threshold: str) -> VerifyResult:
    """Raise :class:`VerificationError` when any diagnostic meets ``threshold``.

    The shared backend of the ``verify=`` hooks; returns the result
    unchanged when the program is clean enough.
    """
    severity_rank(threshold)  # validate the name eagerly
    if result.at_or_above(threshold):
        raise VerificationError(result, threshold)
    return result
