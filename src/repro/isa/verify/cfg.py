"""Compatibility re-export: the CFG now lives in :mod:`repro.isa.analysis`.

The control-flow graph moved to :mod:`repro.isa.analysis.cfg` when the
shared analysis framework was introduced; this module keeps the
historical ``repro.isa.verify.cfg`` import path working.
"""

from repro.isa.analysis.cfg import CFG, BasicBlock

__all__ = ["BasicBlock", "CFG"]
