"""Compatibility re-export: dataflow now lives in :mod:`repro.isa.analysis`.

Reaching definitions and liveness moved to
:mod:`repro.isa.analysis.dataflow` when the shared analysis framework was
introduced; this module keeps the historical
``repro.isa.verify.dataflow`` import path working.
"""

from repro.isa.analysis.dataflow import (
    ENTRY,
    Liveness,
    ReachingDefs,
    defs_of,
    uses_of,
)

__all__ = ["ENTRY", "Liveness", "ReachingDefs", "defs_of", "uses_of"]
