"""Static critical-path estimation: a sound lower bound on DF cycles.

The dataflow (DF) machine removes every structural constraint, so its
cycle count is bounded below by the longest true register-dependence
chain.  This module computes that chain height statically:

* **Edges** come from :meth:`ReachingDefs.unique_dominating_def`: a use is
  chained to its producer only when exactly one real definition reaches it
  *and* that definition dominates the use.  Such a producer executes
  before every dynamic instance of the consumer, so the chain corresponds
  to a real dependence chain in every terminating run.
* **Edge weights** are per-instruction minimum result latencies -- the
  smallest ``complete - max(operand ready)`` gap the timing model can
  produce for that instruction class under the given
  :class:`MachineConfig` (store-forwarding, SBox-cache hits, and perfect
  memory are all assumed in the minimum, so the weight never exceeds what
  the scheduler charges).
* **The bound** is the maximum chain height over instructions in the
  CFG's *guaranteed* blocks (blocks on every entry-to-exit path), which
  execute at least once in any terminating run.  Since the timing model's
  final cycle count is at least the completion time of every executed
  instruction, ``height <= simulated cycles`` always holds.

``tests/isa/test_critical_path.py`` asserts the inequality against the DF
machine for every shipped cipher.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.isa.verify.cfg import CFG
from repro.isa.verify.dataflow import ENTRY, ReachingDefs, defs_of, uses_of
from repro.sim.config import DATAFLOW, MachineConfig


def min_latencies(config: MachineConfig) -> dict[str, int]:
    """Minimum result latency per instruction class under ``config``.

    Each entry is a provable lower bound on ``complete - earliest`` in
    :mod:`repro.sim.timing` for that class:

    * loads can complete via store-forwarding (address generation + 1),
      hence ``min(load_latency, 2)``;
    * SBOX reads can hit a dedicated cache after zero address-generation
      cycles or forward from a store, hence 1;
    * everything else completes a fixed latency after issue, and issue
      never precedes operand readiness.
    """
    return {
        "ialu": config.alu_latency,
        "rotator": config.rotator_latency,
        "load": min(config.load_latency, 2),
        "store": config.store_latency,
        "sbox": 1,
        "sync": 1,
        "mul32": config.mul32_latency,
        "mul64": config.mul64_latency,
        "mulmod": config.mulmod_latency,
    }


@dataclass
class CriticalPath:
    """The oracle's result: a lower bound plus the chain that realizes it."""

    #: Sound lower bound on the DF machine's simulated cycles.
    cycles: int
    #: Instruction indices of the realizing chain, producer first.
    chain: list[int] = field(default_factory=list)
    config: str = DATAFLOW.name

    def as_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "chain": list(self.chain),
            "config": self.config,
        }


def critical_path(
    program: Program,
    config: MachineConfig = DATAFLOW,
    cfg: CFG | None = None,
    rdefs: ReachingDefs | None = None,
) -> CriticalPath:
    """Compute the static dependence-height lower bound for ``program``."""
    if cfg is None:
        cfg = CFG(program)
    if rdefs is None:
        rdefs = ReachingDefs(cfg)
    latency = min_latencies(config)
    instructions = program.instructions
    default_latency = config.alu_latency  # timing model's fallback class

    heights: dict[int, int] = {}
    prev: dict[int, int | None] = {}

    # RPO guarantees a dominating def's block is processed before any block
    # it dominates, and the in-block walk keeps the reaching state (and the
    # unique-def test) incremental -- one pass per block.
    for bid in cfg.rpo:
        block = cfg.blocks[bid]
        state = dict(rdefs.block_in[bid])
        for index in block.indices():
            instruction = instructions[index]
            best = 0
            best_def: int | None = None
            for reg in uses_of(instruction):
                defs = state.get(reg, frozenset())
                if len(defs) != 1:
                    continue
                (d,) = defs
                if d == ENTRY:
                    continue
                def_bid = cfg.block_of[d]
                if def_bid != bid and not cfg.dominates(def_bid, bid):
                    continue
                h = heights.get(d, 0)
                if h > best:
                    best = h
                    best_def = d
            klass = instruction.spec.klass
            heights[index] = best + latency.get(klass, default_latency)
            prev[index] = best_def
            for reg in defs_of(instruction):
                state[reg] = frozenset({index})

    bound = 0
    leaf: int | None = None
    for bid in cfg.guaranteed:
        for index in cfg.blocks[bid].indices():
            h = heights.get(index, 0)
            if h > bound:
                bound = h
                leaf = index

    chain: list[int] = []
    node = leaf
    while node is not None:
        chain.append(node)
        node = prev.get(node)
    chain.reverse()
    return CriticalPath(cycles=bound, chain=chain, config=config.name)
