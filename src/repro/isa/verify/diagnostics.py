"""Diagnostic records produced by the RISC-A kernel verifier.

Every checker reports :class:`Diagnostic` instances; the set of records for
one program is a :class:`VerifyResult`.  Results render to the
``repro.isa.verify/1`` JSON schema (validated by
:func:`repro.obs.schema.validate_lint`) and fold into the metrics registry
as ``lint.diagnostics{checker,severity}`` counters, so lint output flows
through the same observability pipeline as simulator metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

LINT_SCHEMA = "repro.isa.verify/1"

#: Severity names in increasing order of badness.
SEVERITIES = ("info", "warning", "error")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity name (higher is worse)."""
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; pick from {SEVERITIES}"
        ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a checker id, a severity, and a program location.

    ``index`` is the instruction index the finding anchors to (``None`` for
    whole-program findings such as an undeclared feature set).
    ``instruction`` carries the rendered instruction text so reports stay
    readable without the program at hand.  ``detail`` holds checker-specific
    structured fields (register numbers, table ids, ...).
    """

    checker: str
    severity: str
    message: str
    index: int | None = None
    instruction: str | None = None
    detail: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        severity_rank(self.severity)  # validate eagerly

    def as_dict(self) -> dict:
        document = {
            "checker": self.checker,
            "severity": self.severity,
            "message": self.message,
            "index": self.index,
        }
        if self.instruction is not None:
            document["instruction"] = self.instruction
        if self.detail:
            document["detail"] = dict(self.detail)
        return document

    def render(self) -> str:
        where = "-" if self.index is None else f"#{self.index}"
        text = f" `{self.instruction}`" if self.instruction else ""
        return f"[{self.severity}] {self.checker} {where}:{text} {self.message}"


@dataclass
class VerifyResult:
    """All diagnostics for one program, plus identifying metadata."""

    name: str
    instructions: int
    diagnostics: list[Diagnostic]
    #: Static critical-path lower bound in cycles (None when not computed).
    critical_path: int | None = None

    def by_severity(self, severity: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity("error")

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity("warning")

    def worst_severity(self) -> str | None:
        if not self.diagnostics:
            return None
        return max(
            (d.severity for d in self.diagnostics), key=severity_rank
        )

    def at_or_above(self, severity: str) -> list[Diagnostic]:
        """Diagnostics whose severity is >= ``severity``."""
        floor = severity_rank(severity)
        return [
            d for d in self.diagnostics if severity_rank(d.severity) >= floor
        ]

    def summary(self) -> dict:
        counts = {name: 0 for name in SEVERITIES}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        return counts

    def as_dict(self) -> dict:
        document = {
            "program": self.name,
            "instructions": self.instructions,
            "summary": self.summary(),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }
        if self.critical_path is not None:
            document["critical_path_cycles"] = self.critical_path
        return document


def lint_document(results: list[VerifyResult], *, tool: str = "repro.tools.lint") -> dict:
    """Render verify results as a ``repro.isa.verify/1`` report document."""
    return {
        "schema": LINT_SCHEMA,
        "generated_by": tool,
        "programs": [result.as_dict() for result in results],
    }


def record_lint_metrics(metrics, results: list[VerifyResult]) -> None:
    """Fold lint results into a metrics registry.

    Emits ``lint.programs`` and per ``(checker, severity)`` pair a
    ``lint.diagnostics`` counter, matching the convention used by the
    simulator and runner metrics (see docs/observability.md).
    """
    metrics.counter("lint.programs").inc(len(results))
    for result in results:
        for diagnostic in result.diagnostics:
            metrics.counter(
                "lint.diagnostics",
                {"checker": diagnostic.checker,
                 "severity": diagnostic.severity},
            ).inc()


class VerificationError(ValueError):
    """Raised by the opt-in ``verify=`` hooks when a program fails lint.

    Carries the offending :class:`VerifyResult` so callers can inspect the
    individual diagnostics programmatically.
    """

    def __init__(self, result: VerifyResult, threshold: str):
        self.result = result
        self.threshold = threshold
        offending = result.at_or_above(threshold)
        lines = [
            f"{result.name}: {len(offending)} diagnostic(s) at or above "
            f"{threshold!r}:"
        ]
        lines.extend(f"  {d.render()}" for d in offending[:20])
        if len(offending) > 20:
            lines.append(f"  ... and {len(offending) - 20} more")
        super().__init__("\n".join(lines))
