"""Text assembler for RISC-A.

The kernels ship as :class:`KernelBuilder` sources, but a plain-text syntax is
useful for examples, tests, and exploratory work.  Syntax (one instruction
per line, ``;`` starts a comment; ``#`` introduces literals)::

    loop:
        ldl   r1, 8(r2)        ; load 32-bit, zero-extended
        addq  r3, r1, r4       ; dest first, Alpha-style operand order
        xor   r3, r3, #255     ; 8-bit literal second source
        roll  r5, r3, #13      ; crypto extension: 32-bit rotate
        rolxl r6, r5, #7       ; dest ^= rotl32(src, 7)
        sbox.2.1 r7, r8, r9    ; table 2, byte 1: r9 = SBOX(base=r7, idx=r8)
        sbox.0.0.a r7, r8, r9  ; aliased form
        sboxsync.2
        xbox.3 r1, r2, r3      ; permute into destination byte 3
        ldiq  r10, 0x123456789abc
        stl   r3, 0(r2)
        bne   r4, loop
        halt

Operand order note: the textual form puts the destination first (common
assembler style); the in-memory :class:`Instruction` stores Alpha-style
ra/rb/rc fields.
"""

from __future__ import annotations

import re

from repro.isa import opcodes as op
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.isa.registers import parse_reg

_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


class AssemblyError(ValueError):
    """Raised with a line number when assembly fails."""


def _parse_int(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise ValueError(f"bad integer {token!r}") from exc


def _operand(token: str):
    """Parse an operand: register index, or ('lit', value) for #literals."""
    token = token.strip()
    if token.startswith("#"):
        return ("lit", _parse_int(token[1:]))
    return parse_reg(token)


def assemble(text: str) -> Program:
    """Assemble RISC-A text into a finalized :class:`Program`."""
    program = Program()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        # ';' starts a comment ('#' introduces literals, so it cannot).
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        try:
            _assemble_line(program, line)
        except ValueError as exc:
            raise AssemblyError(f"line {line_number}: {exc}") from exc
    return program.finalize()


def _assemble_line(program: Program, line: str) -> None:
    while line.endswith(":") or ":" in line.split()[0]:
        label, _, rest = line.partition(":")
        program.mark_label(label.strip())
        line = rest.strip()
        if not line:
            return
    mnemonic, _, operand_text = line.partition(" ")
    operands = [t.strip() for t in operand_text.split(",")] if operand_text else []
    operands = [t for t in operands if t]

    name, *modifiers = mnemonic.lower().split(".")
    spec = op.SPECS_BY_NAME.get(name)
    if spec is None:
        raise ValueError(f"unknown mnemonic {name!r}")

    if spec.fmt == "none":
        program.add(Instruction(spec.code))
        return

    if spec.fmt == "sync":
        if len(modifiers) != 1:
            raise ValueError("sboxsync needs a table suffix, e.g. sboxsync.2")
        program.add(Instruction(spec.code, table=_parse_int(modifiers[0])))
        return

    if spec.fmt == "ldi":
        dest, value = operands
        program.add(Instruction(spec.code, dest=parse_reg(dest),
                                lit=_parse_int(value.lstrip("#"))))
        return

    if spec.fmt == "mem":
        if spec.klass == "store":
            value, address = operands
            base, disp = _parse_address(address)
            program.add(Instruction(spec.code, src1=parse_reg(value),
                                    src2=base, disp=disp))
        else:
            dest, address = operands
            base, disp = _parse_address(address)
            program.add(Instruction(spec.code, dest=parse_reg(dest),
                                    src2=base, disp=disp))
        return

    if spec.fmt == "br":
        if spec.code == op.BR:
            (target,) = operands
            program.add(Instruction(spec.code, target=target))
        else:
            reg, target = operands
            program.add(Instruction(spec.code, src1=parse_reg(reg),
                                    target=target))
        return

    if spec.fmt == "sbox":
        if len(modifiers) < 2:
            raise ValueError("sbox needs .table.byte modifiers, e.g. sbox.0.2")
        aliased = len(modifiers) > 2 and modifiers[2] == "a"
        base, index, dest = operands
        program.add(Instruction(
            spec.code, src1=parse_reg(base), src2=parse_reg(index),
            dest=parse_reg(dest), table=_parse_int(modifiers[0]),
            bsel=_parse_int(modifiers[1]), aliased=aliased,
        ))
        return

    if spec.fmt == "xbox":
        if len(modifiers) != 1:
            raise ValueError("xbox needs a byte modifier, e.g. xbox.3")
        ra, map_reg, dest = operands
        program.add(Instruction(
            spec.code, src1=parse_reg(ra), src2=parse_reg(map_reg),
            dest=parse_reg(dest), bsel=_parse_int(modifiers[0]),
        ))
        return

    # operate format: dest, ra, rb-or-literal
    dest, ra, rb = operands
    parsed = _operand(rb)
    if isinstance(parsed, tuple):
        program.add(Instruction(spec.code, dest=parse_reg(dest),
                                src1=parse_reg(ra), lit=parsed[1]))
    else:
        program.add(Instruction(spec.code, dest=parse_reg(dest),
                                src1=parse_reg(ra), src2=parsed))


def _parse_address(token: str) -> tuple[int, int]:
    """Parse 'disp(rN)' or '(rN)' into (base register, displacement)."""
    match = _MEM_RE.match(token.strip())
    if not match:
        raise ValueError(f"bad address {token!r} (expected disp(rN))")
    disp_text, reg_text = match.groups()
    disp = _parse_int(disp_text) if disp_text else 0
    return parse_reg(reg_text), disp
