"""Text assembler for RISC-A.

The kernels ship as :class:`KernelBuilder` sources, but a plain-text syntax is
useful for examples, tests, and exploratory work.  Syntax (one instruction
per line, ``;`` starts a comment; ``#`` introduces literals)::

    loop:
        ldl   r1, 8(r2)        ; load 32-bit, zero-extended
        addq  r3, r1, r4       ; dest first, Alpha-style operand order
        xor   r3, r3, #255     ; 8-bit literal second source
        roll  r5, r3, #13      ; crypto extension: 32-bit rotate
        rolxl r6, r5, #7       ; dest ^= rotl32(src, 7)
        sbox.2.1 r7, r8, r9    ; table 2, byte 1: r9 = SBOX(base=r7, idx=r8)
        sbox.0.0.a r7, r8, r9  ; aliased form
        sboxsync.2
        xbox.3 r1, r2, r3      ; permute into destination byte 3
        ldiq  r10, 0x123456789abc
        stl   r3, 0(r2)
        bne   r4, loop
        halt

Operand order note: the textual form puts the destination first (common
assembler style); the in-memory :class:`Instruction` stores Alpha-style
ra/rb/rc fields.

Failures raise :class:`AssemblyError` carrying the source ``line`` number,
the 1-based ``column`` of the offending token within it, and the ``token``
itself, so tooling can point at the exact spot.  The rendered message keeps
its historical ``line N: ...`` prefix.

``assemble(text, verify="error")`` additionally runs the static verifier
(:func:`repro.isa.verify.verify_program`) over the finalized program and
raises :class:`~repro.isa.verify.VerificationError` when any diagnostic
reaches the given severity threshold.
"""

from __future__ import annotations

import re

from repro.isa import opcodes as op
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.isa.registers import parse_reg
from repro.isa.verify.ranges import validate_emit

_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


class AssemblyError(ValueError):
    """Assembly failure with a source position.

    ``line`` / ``column`` are 1-based (``column`` may be ``None`` when the
    failure has no single offending token, e.g. a wrong operand count);
    ``token`` is the offending source fragment and ``source_line`` the raw
    line it came from.
    """

    def __init__(
        self,
        message: str,
        line: int | None = None,
        column: int | None = None,
        token: str | None = None,
        source_line: str | None = None,
    ):
        self.line = line
        self.column = column
        self.token = token
        self.source_line = source_line
        where = []
        if line is not None:
            where.append(f"line {line}")
        if column is not None:
            where.append(f"column {column}")
        prefix = ", ".join(where)
        super().__init__(f"{prefix}: {message}" if prefix else message)


class _TokenError(ValueError):
    """Internal: a parse failure tagged with the offending token."""

    def __init__(self, message: str, token: str | None = None):
        self.token = token
        super().__init__(message)


def _parse_int(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise _TokenError(f"bad integer {token!r}", token) from None


def _parse_reg(token: str) -> int:
    try:
        return parse_reg(token)
    except ValueError as exc:
        raise _TokenError(str(exc), token.strip()) from None


def _operand(token: str):
    """Parse an operand: register index, or ('lit', value) for #literals."""
    token = token.strip()
    if token.startswith("#"):
        return ("lit", _parse_int(token[1:]))
    return _parse_reg(token)


def _expect(operands: list[str], count: int, syntax: str) -> None:
    if len(operands) != count:
        raise _TokenError(
            f"expected {count} operand(s) ({syntax}), got {len(operands)}"
        )


def assemble(text: str, verify: str | None = None) -> Program:
    """Assemble RISC-A text into a finalized :class:`Program`.

    ``verify`` opts into static verification: pass a severity threshold
    ("warning" or "error") to lint the finalized program and raise
    :class:`~repro.isa.verify.VerificationError` on findings at or above
    it.
    """
    program = Program()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        # ';' starts a comment ('#' introduces literals, so it cannot).
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        try:
            _assemble_line(program, line)
        except AssemblyError:
            raise
        except ValueError as exc:
            token = getattr(exc, "token", None)
            column = None
            if token:
                at = raw_line.find(token)
                if at >= 0:
                    column = at + 1
            raise AssemblyError(
                str(exc), line=line_number, column=column, token=token,
                source_line=raw_line,
            ) from exc
    finalized = program.finalize()
    if verify is not None:
        from repro.isa.verify import enforce, verify_program

        enforce(verify_program(finalized, name="<assembly>"), verify)
    return finalized


def _add(program: Program, instruction: Instruction) -> None:
    """Validate encodable field ranges, then append to the program."""
    validate_emit(instruction)
    program.add(instruction)


def _assemble_line(program: Program, line: str) -> None:
    while line.endswith(":") or ":" in line.split()[0]:
        label, _, rest = line.partition(":")
        program.mark_label(label.strip())
        line = rest.strip()
        if not line:
            return
    mnemonic, _, operand_text = line.partition(" ")
    operands = [t.strip() for t in operand_text.split(",")] if operand_text else []
    operands = [t for t in operands if t]

    name, *modifiers = mnemonic.lower().split(".")
    spec = op.SPECS_BY_NAME.get(name)
    if spec is None:
        raise _TokenError(f"unknown mnemonic {name!r}", name)

    if spec.fmt == "none":
        _expect(operands, 0, "no operands")
        _add(program, Instruction(spec.code))
        return

    if spec.fmt == "sync":
        if len(modifiers) != 1:
            raise _TokenError(
                "sboxsync needs a table suffix, e.g. sboxsync.2", mnemonic
            )
        _add(program, Instruction(spec.code, table=_parse_int(modifiers[0])))
        return

    if spec.fmt == "ldi":
        _expect(operands, 2, "dest, imm64")
        dest, value = operands
        _add(program, Instruction(spec.code, dest=_parse_reg(dest),
                                lit=_parse_int(value.lstrip("#"))))
        return

    if spec.fmt == "mem":
        _expect(operands, 2, "reg, disp(base)")
        if spec.klass == "store":
            value, address = operands
            base, disp = _parse_address(address)
            _add(program, Instruction(spec.code, src1=_parse_reg(value),
                                    src2=base, disp=disp))
        else:
            dest, address = operands
            base, disp = _parse_address(address)
            _add(program, Instruction(spec.code, dest=_parse_reg(dest),
                                    src2=base, disp=disp))
        return

    if spec.fmt == "br":
        if spec.code == op.BR:
            _expect(operands, 1, "target")
            (target,) = operands
            _add(program, Instruction(spec.code, target=target))
        else:
            _expect(operands, 2, "reg, target")
            reg, target = operands
            _add(program, Instruction(spec.code, src1=_parse_reg(reg),
                                    target=target))
        return

    if spec.fmt == "sbox":
        if len(modifiers) < 2:
            raise _TokenError(
                "sbox needs .table.byte modifiers, e.g. sbox.0.2", mnemonic
            )
        aliased = len(modifiers) > 2 and modifiers[2] == "a"
        _expect(operands, 3, "base, index, dest")
        base, index, dest = operands
        _add(program, Instruction(
            spec.code, src1=_parse_reg(base), src2=_parse_reg(index),
            dest=_parse_reg(dest), table=_parse_int(modifiers[0]),
            bsel=_parse_int(modifiers[1]), aliased=aliased,
        ))
        return

    if spec.fmt == "xbox":
        if len(modifiers) != 1:
            raise _TokenError(
                "xbox needs a byte modifier, e.g. xbox.3", mnemonic
            )
        _expect(operands, 3, "src, map, dest")
        ra, map_reg, dest = operands
        _add(program, Instruction(
            spec.code, src1=_parse_reg(ra), src2=_parse_reg(map_reg),
            dest=_parse_reg(dest), bsel=_parse_int(modifiers[0]),
        ))
        return

    # operate format: dest, ra, rb-or-literal
    _expect(operands, 3, "dest, ra, rb-or-#lit")
    dest, ra, rb = operands
    parsed = _operand(rb)
    if isinstance(parsed, tuple):
        _add(program, Instruction(spec.code, dest=_parse_reg(dest),
                                src1=_parse_reg(ra), lit=parsed[1]))
    else:
        _add(program, Instruction(spec.code, dest=_parse_reg(dest),
                                src1=_parse_reg(ra), src2=parsed))


def _parse_address(token: str) -> tuple[int, int]:
    """Parse 'disp(rN)' or '(rN)' into (base register, displacement)."""
    token = token.strip()
    match = _MEM_RE.match(token)
    if not match:
        raise _TokenError(
            f"bad address {token!r} (expected disp(rN))", token
        )
    disp_text, reg_text = match.groups()
    disp = _parse_int(disp_text) if disp_text else 0
    return _parse_reg(reg_text), disp
