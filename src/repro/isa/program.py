"""RISC-A program container: instructions, labels, finalization.

A :class:`Program` is built by the assembler or the :class:`KernelBuilder`,
then *finalized*: labels resolve to instruction indices and per-instruction
static metadata is frozen.  The simulators require a finalized program.
"""

from __future__ import annotations

import hashlib

from repro.isa.instruction import Instruction
from repro.isa.opcodes import BRANCH_CODES


class Program:
    """An ordered list of instructions plus label definitions."""

    def __init__(self) -> None:
        self.instructions: list[Instruction] = []
        self.labels: dict[str, int] = {}
        self._finalized = False
        self._digest: str | None = None

    def __len__(self) -> int:
        return len(self.instructions)

    def add(self, instruction: Instruction) -> int:
        """Append an instruction; returns its index."""
        if self._finalized:
            raise RuntimeError("cannot modify a finalized program")
        self.instructions.append(instruction)
        return len(self.instructions) - 1

    def mark_label(self, name: str) -> None:
        """Define ``name`` at the next instruction's index."""
        if self._finalized:
            raise RuntimeError("cannot modify a finalized program")
        if name in self.labels:
            raise ValueError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)

    @property
    def finalized(self) -> bool:
        return self._finalized

    def finalize(self) -> "Program":
        """Resolve branch targets; freeze the program.  Returns self."""
        if self._finalized:
            return self
        for index, instruction in enumerate(self.instructions):
            if instruction.code in BRANCH_CODES:
                target = instruction.target
                if isinstance(target, str):
                    if target not in self.labels:
                        raise ValueError(
                            f"instruction {index}: undefined label {target!r}"
                        )
                    instruction.target = self.labels[target]
                elif not isinstance(target, int):
                    raise ValueError(f"instruction {index}: missing branch target")
                if not 0 <= instruction.target <= len(self.instructions):
                    raise ValueError(
                        f"instruction {index}: branch target "
                        f"{instruction.target} out of range"
                    )
        self._finalized = True
        return self

    def digest(self) -> str:
        """SHA-256 over the program's instruction bytes.

        Hashes every instruction's rendering plus its operation category
        (idiom tags affect analysis results but not the rendering), so any
        change to the emitted code changes the digest.  Requires a
        finalized program -- branch targets must be resolved indices.
        The hash is memoized: a finalized program is immutable, and the
        digest keys hot caches (the compiled backend's code cache, the
        runner's trace blobs).
        """
        if self._digest is not None:
            return self._digest
        if not self._finalized:
            raise ValueError("program must be finalized before hashing")
        hasher = hashlib.sha256()
        for instruction in self.instructions:
            hasher.update(instruction.render().encode("utf-8"))
            hasher.update(f"|{instruction.category}\n".encode("utf-8"))
        self._digest = hasher.hexdigest()
        return self._digest

    def listing(self) -> str:
        """Disassembly listing with labels, for debugging and examples."""
        by_index: dict[int, list[str]] = {}
        for name, index in self.labels.items():
            by_index.setdefault(index, []).append(name)
        lines = []
        for index, instruction in enumerate(self.instructions):
            for name in by_index.get(index, []):
                lines.append(f"{name}:")
            lines.append(f"  {index:5d}  {instruction.render()}")
        return "\n".join(lines)
