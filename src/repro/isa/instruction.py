"""The RISC-A instruction record.

A single mutable-until-finalized dataclass covers every format; the
functional and timing simulators read the fields appropriate to the opcode's
format (see ``repro.isa.opcodes``).  Field conventions:

* ``dest`` -- destination register (or None).
* ``src1`` -- first source register: operate ra, store *value* register,
  conditional-branch test register, SBOX *table base*, XBOX operand.
* ``src2`` -- second source register: operate rb (None when ``lit`` is used),
  memory *base* register, SBOX *index*, XBOX permutation map.
* ``lit`` -- 8-bit operate literal, or the 64-bit LDIQ immediate.
* ``disp`` -- signed 16-bit memory displacement.
* ``target`` -- branch target: a label string until the program is finalized,
  then an instruction index.
* ``table``/``bsel``/``aliased`` -- SBOX/XBOX modifiers.
* ``category`` -- Figure 7 operation category (builder helpers override the
  opcode default when an instruction belongs to a synthesized idiom).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import SPECS, OpSpec


@dataclass
class Instruction:
    code: int
    dest: int | None = None
    src1: int | None = None
    src2: int | None = None
    lit: int | None = None
    disp: int = 0
    target: str | int | None = None
    table: int = 0
    bsel: int = 0
    aliased: bool = False
    category: str | None = None

    def __post_init__(self) -> None:
        if self.code not in SPECS:
            raise ValueError(f"unknown opcode code {self.code}")
        if self.category is None:
            self.category = self.spec.category

    @property
    def spec(self) -> OpSpec:
        return SPECS[self.code]

    @property
    def name(self) -> str:
        return self.spec.name

    def source_regs(self) -> tuple[int, ...]:
        """Registers this instruction reads (for dependence tracking)."""
        sources = []
        if self.src1 is not None:
            sources.append(self.src1)
        if self.src2 is not None:
            sources.append(self.src2)
        if self.spec.reads_dest and self.dest is not None:
            sources.append(self.dest)
        return tuple(sources)

    def render(self) -> str:
        """Assembly-like rendering (for disassembly listings and debugging)."""
        spec = self.spec
        name = spec.name
        if spec.fmt == "none":
            return name
        if spec.fmt == "sync":
            return f"{name}.{self.table}"
        if spec.fmt == "ldi":
            return f"{name} r{self.dest}, 0x{self.lit:x}"
        if spec.fmt == "mem":
            if spec.klass == "store":
                return f"{name} r{self.src1}, {self.disp}(r{self.src2})"
            return f"{name} r{self.dest}, {self.disp}(r{self.src2})"
        if spec.fmt == "br":
            reg = "" if self.src1 is None else f"r{self.src1}, "
            return f"{name} {reg}{self.target}"
        if spec.fmt == "sbox":
            suffix = ".a" if self.aliased else ""
            return (
                f"{name}.{self.table}.{self.bsel}{suffix} "
                f"r{self.src1}, r{self.src2}, r{self.dest}"
            )
        if spec.fmt == "xbox":
            return f"{name}.{self.bsel} r{self.src1}, r{self.src2}, r{self.dest}"
        # operate format (destination first, matching the assembler syntax)
        rb = f"#{self.lit}" if self.src2 is None else f"r{self.src2}"
        return f"{name} r{self.dest}, r{self.src1}, {rb}"
