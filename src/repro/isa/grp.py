"""GRP permutation support (Shi & Lee; the paper's section 7 related work).

``GRP rd, rs, rc`` stably partitions the source bits by the control word:
bits whose control bit is 0 pack into the low end of the result in their
original order, bits with control 1 above them.  Because a radix sort of
destination indices is a sequence of stable partitions (LSB digit first),
any N-bit permutation decomposes into log2(N) GRPs -- 5 instructions for a
32-bit operand versus XBOX's 4-XBOX + 3-OR = 7, which is exactly the
comparison the paper draws.

:func:`grp_controls` computes the per-stage control words for an arbitrary
permutation; the 3DES kernel's optional GRP coding uses it for the
initial/final permutations.
"""

from __future__ import annotations


def grp_apply(value: int, control: int, width: int) -> int:
    """Reference semantics of one GRP (mirrors the simulator's)."""
    low = high = 0
    low_count = high_count = 0
    for i in range(width):
        bit = (value >> i) & 1
        if (control >> i) & 1:
            high |= bit << high_count
            high_count += 1
        else:
            low |= bit << low_count
            low_count += 1
    return low | (high << low_count)


def grp_controls(dest_of: list[int], width: int) -> list[int]:
    """Control words realizing ``dest_of`` as successive GRPs.

    ``dest_of[i]`` is the destination bit index of source bit ``i``; the
    returned list has ``log2(width)`` stage controls, applied first-to-last.
    Stage ``k`` partitions by bit ``k`` of each element's destination index
    (radix sort, LSB first); stability makes the composition exact.
    """
    if sorted(dest_of) != list(range(width)):
        raise ValueError("dest_of must be a permutation of bit indices")
    stages = width.bit_length() - 1
    if 1 << stages != width:
        raise ValueError("width must be a power of two")
    order = list(range(width))  # order[j] = source bit currently at slot j
    controls = []
    for k in range(stages):
        control = 0
        zeros, ones = [], []
        for j, src in enumerate(order):
            if (dest_of[src] >> k) & 1:
                control |= 1 << j
                ones.append(src)
            else:
                zeros.append(src)
        controls.append(control)
        order = zeros + ones
    if [dest_of[s] for s in order] != list(range(width)):
        raise AssertionError("GRP decomposition failed to converge")
    return controls


def grp_controls_for_transform(transform, width: int = 64) -> list[int]:
    """Stage controls for a bit-permutation given as an int -> int function."""
    dest_of = []
    for bit in range(width):
        out = transform(1 << bit)
        out_bit = out.bit_length() - 1
        if out != 1 << out_bit:
            raise ValueError("transform is not a bit permutation")
        dest_of.append(out_bit)
    return grp_controls(dest_of, width)
