"""RISC-A: the reproduction's Alpha-like ISA plus the paper's crypto extensions."""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.builder import Imm, KernelBuilder, SCRATCH_REGS
from repro.isa.features import Features
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.isa.verify import (
    VerificationError,
    VerifyResult,
    critical_path,
    verify_program,
)

__all__ = [
    "AssemblyError",
    "assemble",
    "Imm",
    "KernelBuilder",
    "SCRATCH_REGS",
    "Features",
    "Instruction",
    "Program",
    "VerificationError",
    "VerifyResult",
    "critical_path",
    "verify_program",
]
