"""Static per-(program, config) cycle-cost bounds (`repro.isa.analysis.cost`).

:func:`estimate_cost` brackets the timing simulator's cycle count for one
functional run without ever invoking the timing model:

* **Lower bound** -- the maximum of the register-dependence-height oracle
  (:func:`repro.isa.verify.critical_path`, which generalizes to any
  config via its per-class minimum latencies) and the machine's
  throughput limits: ``N`` dynamic instructions cannot fetch, issue or
  retire faster than the configured widths allow, and each functional
  unit class cannot serve its dynamic demand faster than
  ``demand / units`` cycles.  Every term is a provable floor on
  ``SimStats.cycles``, so the max is too.
* **Upper bound** -- a block-granular Graham bound.  For each static
  basic block, a serial-safe per-execution cost ``u_b`` is computed:
  front-end depth + fetch slots + the block's internal weighted
  dependence height + issue slots + per-FU slot demand + retirement
  slots + a fixed slop.  Dynamic cost is ``sum(count_b * u_b)`` over the
  block execution counts observed in the trace, plus a full mispredict
  penalty for every conditional-branch execution and the *exact* extra
  memory-hierarchy cycles obtained by replaying the trace's addresses
  through a fresh cache model (:func:`replay_memory`).  The induction:
  if cycle ``C`` bounds every completion and retirement through dynamic
  block ``m``, then block ``m+1`` finds all operands, window slots and
  resources free after ``C``, and finishes within ``u_b`` more cycles.

Both bounds are asserted against simulated DF/4W/8W+ cycles for the full
cipher matrix in ``tests/isa/test_cost_model.py``, plus a hypothesis
property over generated programs; see ``docs/analysis.md`` for the full
soundness argument.

This module deliberately imports :mod:`repro.sim` (and the verifier)
only inside functions: the analysis package stays importable on its own
and free of import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.isa.analysis.passes import ProgramAnalyses, analyses_for
from repro.isa.program import Program

if TYPE_CHECKING:  # function-level at runtime; see module docstring
    from repro.sim.config import MachineConfig
    from repro.sim.trace import Trace

#: Fixed per-block-execution slack in the upper bound: absorbs fetch-group
#: breaks on taken branches, retirement rounding, and the +-1 cycle
#: offsets between the model's fetch/dispatch/issue stages.
BLOCK_SLOP = 8

#: One-time pipeline-fill slack added to the upper bound.
STARTUP_SLOP = 8

#: Per-instruction overhead (fetch + issue + retire slots) charged when a
#: block is so large the window could recycle within it and the bound
#: falls back to fully serial execution.
SERIAL_OVERHEAD = 4


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def chain_weights(config: "MachineConfig") -> dict[str, int]:
    """Worst-case result latency per class for in-block dependence height.

    Each entry bounds ``complete - max(operand ready)`` for its class in
    the timing model, *excluding* memory-hierarchy extras (added exactly,
    once, from :func:`replay_memory`):

    * loads: one address-generation cycle plus the cache pipe
      (``load_latency - 1``), or address generation + 1 when forwarded;
    * stores: address resolution + ``store_latency``;
    * SBOX: the worst path is a dedicated-cache miss
      (``sbox_cache_latency + sbox_dcache_latency``); +1 slack covers the
      forwarded/aliased paths' address handling;
    * everything else: its configured fixed latency.
    """
    return {
        "ialu": config.alu_latency,
        "rotator": config.rotator_latency,
        "load": 1 + max(1, config.load_latency - 1),
        "store": config.store_latency + 1,
        "sbox": max(2, config.sbox_cache_latency
                    + config.sbox_dcache_latency) + 1,
        "sync": 1,
        "mul32": config.mul32_latency,
        "mul64": config.mul64_latency,
        "mulmod": config.mulmod_latency,
    }


# --------------------------------------------------------------------- #
# Memory replay
# --------------------------------------------------------------------- #

@dataclass
class MemoryReplay:
    """Exact memory-system facts from one program-order trace walk.

    The timing model's forwarding and cache decisions are pure functions
    of (program order, effective addresses, ``lsq_size``): the store
    queue is appended to and aged in program order, and every cache
    access happens in program order too.  Replaying the trace against a
    fresh queue + hierarchy therefore reproduces *exactly* which loads
    forward, which accesses consume d-cache ports, and how many extra
    hierarchy cycles (L1 misses, TLB walks) the simulation will charge --
    without computing any timing.
    """

    #: Dynamic trace length.
    instructions: int = 0
    #: Loads / aliased SBOX reads satisfied by store-forwarding.
    forwarded: int = 0
    #: Accesses charged to a d-cache port (non-forwarded loads, all
    #: stores, SBOX reads on the d-cache path).
    dport_uses: int = 0
    #: Accesses per dedicated SBox cache port.
    sport_uses: list[int] = field(default_factory=list)
    #: Total extra hierarchy cycles beyond the base access latency.
    extra_cycles: int = 0
    #: Dedicated SBox-cache misses.
    sbox_misses: int = 0
    #: Dynamic instruction count per timing class.
    class_counts: dict[str, int] = field(default_factory=dict)
    #: Total multiplier slot-cost demand (per-op cost summed).
    mul_cost: int = 0
    #: Dynamic conditional-branch executions.
    cond_branches: int = 0


def replay_memory(
    trace: "Trace",
    config: "MachineConfig",
    warm_ranges: "list[tuple[int, int]] | None" = None,
) -> MemoryReplay:
    """Walk the trace in program order through a fresh memory model.

    Mirrors :class:`repro.sim.timing.stages.MemoryOrderState` setup and
    the generic engine's access pattern exactly (same hierarchy
    parameters, same warm ranges, same store-queue aging, same SBox-cache
    scheduling rule), so the counts are those the simulation will see.
    """
    from repro.sim.caches import MemoryHierarchy
    from repro.sim.sboxcache import SBoxCacheArray

    hierarchy = None
    if not config.perfect_memory:
        hierarchy = MemoryHierarchy(
            l1_size=config.l1_size, l1_assoc=config.l1_assoc,
            l1_block=config.l1_block, l2_size=config.l2_size,
            l2_assoc=config.l2_assoc,
            l2_hit_latency=config.l2_hit_latency,
            memory_latency=config.memory_latency,
            tlb_entries=config.tlb_entries, tlb_assoc=config.tlb_assoc,
            page_size=config.page_size,
            tlb_miss_latency=config.tlb_miss_latency,
        )
        for start, length in warm_ranges or ():
            hierarchy.warm(start, length)
    sbox_array = SBoxCacheArray(config.sbox_caches) \
        if config.sbox_caches else None

    static = trace.static
    klass = static.klass
    mem_size = static.mem_size
    sbox_table = static.sbox_table
    sbox_aliased = static.sbox_aliased
    is_cond = static.is_cond_branch
    lsq_size = config.lsq_size

    out = MemoryReplay(sport_uses=[0] * (config.sbox_caches or 0))
    counts: dict[str, int] = {}
    recent_stores: list[tuple[int, int]] = []
    seq = trace.seq
    addrs = trace.addrs
    mul_costs = {
        "mul32": config.mul32_cost,
        "mul64": config.mul64_cost,
        "mulmod": config.mulmod_cost,
    }

    for j in range(len(seq)):
        s = seq[j]
        k = klass[s]
        counts[k] = counts.get(k, 0) + 1
        if is_cond[s]:
            out.cond_branches += 1
        cost = mul_costs.get(k)
        if cost is not None:
            out.mul_cost += cost
        if k == "load":
            addr = addrs[j]
            size = mem_size[s]
            forwarded = False
            for start, end in reversed(recent_stores):
                if addr < end and start < addr + size:
                    forwarded = True
                    break
            if forwarded:
                out.forwarded += 1
            else:
                out.dport_uses += 1
                if hierarchy is not None:
                    out.extra_cycles += hierarchy.access(addr)
        elif k == "store":
            addr = addrs[j]
            out.dport_uses += 1
            if hierarchy is not None:
                hierarchy.access(addr, is_store=True)
            recent_stores.append((addr, addr + mem_size[s]))
            if len(recent_stores) > lsq_size:
                recent_stores.pop(0)
        elif k == "sbox":
            addr = addrs[j]
            if sbox_aliased[s]:
                forwarded = False
                for start, end in reversed(recent_stores):
                    if addr < end and start < addr + 4:
                        forwarded = True
                        break
                if forwarded:
                    out.forwarded += 1
                else:
                    out.dport_uses += 1
                    if hierarchy is not None:
                        out.extra_cycles += hierarchy.access(addr)
            elif sbox_array is not None \
                    and sbox_table[s] < sbox_array.count:
                table = sbox_table[s]
                out.sport_uses[table % sbox_array.count] += 1
                if not sbox_array.access(table, addr):
                    out.sbox_misses += 1
            else:
                out.dport_uses += 1
                if hierarchy is not None:
                    out.extra_cycles += hierarchy.access(addr)
        elif k == "sync":
            if sbox_array is not None:
                sbox_array.sync(sbox_table[s])

    out.instructions = len(seq)
    out.class_counts = counts
    return out


# --------------------------------------------------------------------- #
# Per-block upper-bound cost
# --------------------------------------------------------------------- #

def _block_height(static, start: int, end: int,
                  weights: dict[str, int], default: int) -> int:
    """Weighted dependence height of one straight-line block.

    Register operands start at height 0 (block-entry values are covered
    by the induction hypothesis); loads and aliased SBOX reads are
    additionally ordered after the latest prior store in the block (the
    forwarding / address-ordering dependence), non-aliased SBOX reads
    after the latest SBOXSYNC.
    """
    klass = static.klass
    dest = static.dest
    srcs = static.srcs
    is_load = static.is_load
    is_store = static.is_store
    sbox_aliased = static.sbox_aliased
    is_sync = static.is_sync

    reg_height: dict[int, int] = {}
    last_store = 0
    last_sync = 0
    top = 0
    for i in range(start, end):
        ready = 0
        for r in srcs[i]:
            h = reg_height.get(r, 0)
            if h > ready:
                ready = h
        k = klass[i]
        if is_load[i] or (k == "sbox" and sbox_aliased[i]):
            if last_store > ready:
                ready = last_store
        elif k == "sbox":
            if last_sync > ready:
                ready = last_sync
        h = ready + weights.get(k, default)
        if is_store[i]:
            if h > last_store:
                last_store = h
        elif is_sync[i]:
            last_sync = h
        d = dest[i]
        if d >= 0:
            reg_height[d] = h
        if h > top:
            top = h
    return top


def _block_unit_cost(static, program, start: int, end: int,
                     config: "MachineConfig",
                     weights: dict[str, int]) -> int:
    """Serial-safe cycles one execution of block ``[start, end)`` adds."""
    n_b = end - start
    default = config.alu_latency
    window = config.window_size
    if window is not None and n_b >= window:
        # The window could recycle within the block: charge fully serial
        # execution (each instruction's full latency plus fixed per-slot
        # overhead) -- trivially at least the real cost.
        klass = static.klass
        total = sum(weights.get(klass[i], default) + SERIAL_OVERHEAD
                    for i in range(start, end))
        return total + BLOCK_SLOP

    cost = config.frontend_depth + BLOCK_SLOP
    if config.fetch_width is not None:
        cost += _ceil_div(n_b, config.fetch_width)
    cost += _block_height(static, start, end, weights, default)
    if config.issue_width is not None:
        cost += _ceil_div(n_b, config.issue_width)
    if config.retire_width is not None:
        cost += 2 * _ceil_div(n_b, config.retire_width)

    # Per-FU slot demand.
    klass = static.klass
    sbox_table = static.sbox_table
    sbox_aliased = static.sbox_aliased
    n_ialu = n_rot = n_dport = mul_cost = 0
    sport = [0] * (config.sbox_caches or 0)
    mul_costs = {
        "mul32": config.mul32_cost,
        "mul64": config.mul64_cost,
        "mulmod": config.mulmod_cost,
    }
    for i in range(start, end):
        k = klass[i]
        if k == "ialu":
            n_ialu += 1
        elif k == "rotator":
            n_rot += 1
        elif k in ("load", "store"):
            n_dport += 1
        elif k == "sbox":
            if (not sbox_aliased[i] and config.sbox_caches
                    and sbox_table[i] < config.sbox_caches):
                sport[sbox_table[i] % config.sbox_caches] += 1
            else:
                n_dport += 1
        else:
            c = mul_costs.get(k)
            if c is not None:
                mul_cost += c
    if config.num_ialu is not None and n_ialu:
        cost += _ceil_div(n_ialu, config.num_ialu)
    if config.num_rotator is not None and n_rot:
        cost += _ceil_div(n_rot, config.num_rotator)
    if config.mul_slots is not None and mul_cost:
        cost += _ceil_div(mul_cost, config.mul_slots)
    if config.dcache_ports is not None and n_dport:
        cost += _ceil_div(n_dport, config.dcache_ports)
    for uses in sport:
        if uses:
            cost += _ceil_div(uses, config.sbox_cache_ports)
    return cost


# --------------------------------------------------------------------- #
# The estimator
# --------------------------------------------------------------------- #

@dataclass
class CostReport:
    """Static cycle-cost bracket for one (program, config) pair."""

    name: str
    config: str
    #: Provable floor on the timing model's cycle count.
    lower_bound: int
    #: Provable ceiling on the timing model's cycle count.
    upper_bound: int
    #: Dynamic trace length the bounds were computed for.
    instructions: int
    #: Named contributions to each bound (for reports and the dashboard).
    components: dict = field(default_factory=dict)

    @property
    def gap(self) -> float:
        """Upper/lower ratio -- the bracket's tightness (1.0 = exact)."""
        return self.upper_bound / self.lower_bound if self.lower_bound \
            else float("inf")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "config": self.config,
            "lower_bound": self.lower_bound,
            "upper_bound": self.upper_bound,
            "instructions": self.instructions,
            "gap": round(self.gap, 4),
            "components": dict(self.components),
        }


def estimate_cost(
    program: Program,
    config: "MachineConfig",
    trace: "Trace",
    warm_ranges: "list[tuple[int, int]] | None" = None,
    analyses: "ProgramAnalyses | None" = None,
    name: str = "program",
) -> CostReport:
    """Bracket the simulated cycle count of ``trace`` under ``config``.

    ``trace`` is a *functional* trace (no timing attached); the bounds
    hold for ``simulate(trace, config, warm_ranges).cycles``.  Pass the
    same ``warm_ranges`` the simulation will use so the memory replay
    sees identical cache state.
    """
    from repro.isa.verify.critical_path import critical_path

    if analyses is None:
        analyses = analyses_for(program)
    static = trace.static
    replay = replay_memory(trace, config, warm_ranges)
    n = replay.instructions

    # ---- lower bound -------------------------------------------------- #
    cp = critical_path(
        program, config, cfg=analyses.cfg, rdefs=analyses.rdefs
    )
    lower_terms: dict[str, int] = {"critical_path": cp.cycles}
    if config.fetch_width is not None:
        lower_terms["fetch"] = _ceil_div(n, config.fetch_width)
    if config.issue_width is not None:
        lower_terms["issue"] = _ceil_div(n, config.issue_width)
    if config.retire_width is not None:
        lower_terms["retire"] = _ceil_div(n, config.retire_width)
    counts = replay.class_counts
    if config.num_ialu is not None and counts.get("ialu"):
        lower_terms["ialu"] = _ceil_div(counts["ialu"], config.num_ialu)
    if config.num_rotator is not None and counts.get("rotator"):
        lower_terms["rotator"] = _ceil_div(
            counts["rotator"], config.num_rotator
        )
    if config.mul_slots is not None and replay.mul_cost:
        lower_terms["mul"] = _ceil_div(replay.mul_cost, config.mul_slots)
    if config.dcache_ports is not None and replay.dport_uses:
        lower_terms["dcache_ports"] = _ceil_div(
            replay.dport_uses, config.dcache_ports
        )
    if replay.sport_uses:
        busiest = max(replay.sport_uses)
        if busiest:
            lower_terms["sbox_ports"] = _ceil_div(
                busiest, config.sbox_cache_ports
            )
    lower = max(lower_terms.values())

    # ---- upper bound --------------------------------------------------- #
    weights = chain_weights(config)
    blocks, _block_of = analyses.array_blocks
    exec_counts = [0] * len(program.instructions)
    for s in trace.seq:
        exec_counts[s] += 1

    block_cycles = 0
    for start, end in blocks:
        count = max(exec_counts[i] for i in range(start, end))
        if not count:
            continue
        block_cycles += count * _block_unit_cost(
            static, program, start, end, config, weights
        )
    mispredict = 0
    if not config.perfect_branch_prediction:
        mispredict = replay.cond_branches * config.mispredict_penalty
    upper = (STARTUP_SLOP + config.frontend_depth + block_cycles
             + mispredict + replay.extra_cycles)

    return CostReport(
        name=name,
        config=config.name,
        lower_bound=lower,
        upper_bound=upper,
        instructions=n,
        components={
            "lower": lower_terms,
            "upper": {
                "startup": STARTUP_SLOP + config.frontend_depth,
                "blocks": block_cycles,
                "mispredict": mispredict,
                "memory_extra": replay.extra_cycles,
            },
            "replay": {
                "forwarded": replay.forwarded,
                "dport_uses": replay.dport_uses,
                "sbox_misses": replay.sbox_misses,
            },
        },
    )
