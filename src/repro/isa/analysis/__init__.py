"""Unified static-analysis framework for RISC-A programs.

The package gathers every static analysis in the repo behind one worklist
solver and one pass manager:

* :mod:`~repro.isa.analysis.solver` -- the generic FIFO worklist
  (:func:`iterate`) plus array-level basic blocks and the monotone
  per-register fixpoint (:func:`infer_dataflow`).
* :mod:`~repro.isa.analysis.cfg` / :mod:`~repro.isa.analysis.dataflow` --
  the CFG, reaching definitions and liveness (the verifier re-exports
  these for compatibility).
* :mod:`~repro.isa.analysis.lattices` -- width, trailing-zeros, constant
  and value-range transfer functions (shared with the compiled backend's
  elision fixpoint).
* :mod:`~repro.isa.analysis.passes` -- :class:`ProgramAnalyses`, the
  cached pass manager (:func:`analyses_for`), SBOX pointer taint, natural
  loops and the memory-interval alias pass.
* :mod:`~repro.isa.analysis.cost` -- the static cycle-cost estimator:
  provable lower and upper bounds on simulated cycles per
  (program, config), driving ``repro.tools.analyze``.

See ``docs/analysis.md``.
"""

from repro.isa.analysis.cfg import CFG, BasicBlock
from repro.isa.analysis.cost import (
    CostReport,
    MemoryReplay,
    chain_weights,
    estimate_cost,
    replay_memory,
)
from repro.isa.analysis.dataflow import (
    ENTRY,
    Liveness,
    ReachingDefs,
    defs_of,
    uses_of,
)
from repro.isa.analysis.lattices import (
    UNKNOWN_WIDTH,
    WRITES_DEST,
    const_join,
    infer_constants,
    infer_ranges,
    infer_trailing_zeros,
    infer_widths,
    lit_width,
    make_const_step,
    make_range_step,
    make_tz_step,
    make_width_step,
    range_join,
    tz_of_int,
    zapnot_mask,
)
from repro.isa.analysis.passes import (
    POINTER_OPS,
    MemoryFacts,
    NaturalLoops,
    ProgramAnalyses,
    ProgramArrays,
    analyses_for,
    table_pointer_taint,
    taint_step,
)
from repro.isa.analysis.solver import (
    BRANCH_CODES,
    IMPLEMENTED_CODES,
    block_successors,
    infer_dataflow,
    iterate,
    split_blocks,
)

__all__ = [
    "BRANCH_CODES", "BasicBlock", "CFG", "CostReport", "ENTRY",
    "IMPLEMENTED_CODES", "Liveness", "MemoryFacts", "MemoryReplay",
    "NaturalLoops", "POINTER_OPS", "ProgramAnalyses", "ProgramArrays",
    "ReachingDefs", "UNKNOWN_WIDTH", "WRITES_DEST", "analyses_for",
    "block_successors", "chain_weights", "const_join", "defs_of",
    "estimate_cost", "infer_constants", "infer_dataflow", "infer_ranges",
    "infer_trailing_zeros", "infer_widths", "iterate", "lit_width",
    "make_const_step", "make_range_step", "make_tz_step",
    "make_width_step", "range_join", "replay_memory", "split_blocks",
    "table_pointer_taint", "taint_step", "tz_of_int", "uses_of",
    "zapnot_mask",
]
