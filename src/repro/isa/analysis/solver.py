"""Generic worklist machinery shared by every static analysis.

Three pieces, deliberately tiny:

* :func:`iterate` -- the FIFO worklist loop with an on-list dedup set.
  Every fixpoint in the repo (reaching definitions, liveness, pointer
  taint, the dirty-table walk, the lattice fixpoints below) is this loop
  with a different transfer function; sharing it pins one iteration
  order so ports cannot silently change convergence behavior.
* :func:`split_blocks` / :func:`block_successors` -- basic-block
  decomposition over the parallel instruction arrays (the compiled
  backend's representation; :class:`repro.isa.analysis.passes.\
ProgramArrays` builds the same arrays from a plain
  :class:`~repro.isa.program.Program`).
* :func:`infer_dataflow` -- the monotone per-register fixpoint the
  compiled backend's elision analyses run on, now shared by the width,
  trailing-zeros, constant and value-range lattices in
  :mod:`repro.isa.analysis.lattices`.

``split_blocks``/``infer_dataflow`` moved here verbatim from
:mod:`repro.sim.backends.compiled` (which now imports them back), so the
elision decisions -- and therefore every ``CompileReport`` counter --
are unchanged by the move.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable, Sequence, TypeVar

#: Opcodes that end a basic block by redirecting control flow.
BRANCH_CODES = frozenset({40, 41, 42, 43, 44, 45, 46})

#: Every opcode the functional interpreter implements (anything else
#: raises, so analyses treat it as a block terminator).
IMPLEMENTED_CODES = frozenset(
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18,
     19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 30, 31, 32, 33, 34, 35, 36,
     37, 40, 41, 42, 43, 44, 45, 46, 48, 49, 50, 51, 52, 53, 54, 55, 56,
     57, 58, 59}
)

T = TypeVar("T", bound=Hashable)


def iterate(seed: Iterable[T], process: Callable[[T], Iterable[T]]) -> None:
    """Run ``process`` over a FIFO worklist until it stops feeding itself.

    ``process(item)`` applies one transfer function and returns the items
    whose inputs it changed; those are enqueued unless already pending.
    FIFO order with the dedup set reproduces exactly the iteration order
    the verifier's solvers used before they shared this helper, so the
    port is behavior-preserving by construction.
    """
    queue: deque[T] = deque(seed)
    on_list = set(queue)
    while queue:
        item = queue.popleft()
        on_list.discard(item)
        for nxt in process(item):
            if nxt not in on_list:
                on_list.add(nxt)
                queue.append(nxt)


def split_blocks(
    code: Sequence[int], target: Sequence[int], n: int
) -> "tuple[list[tuple[int, int]], dict[int, int]]":
    """Basic blocks as (start, end_exclusive) plus leader-pc -> index."""
    leaders = {0}
    for i in range(n):
        if code[i] in BRANCH_CODES:
            t = target[i]
            if 0 <= t < n:
                leaders.add(t)
            if i + 1 < n:
                leaders.add(i + 1)
    blocks: list[tuple[int, int]] = []
    for start in sorted(leaders):
        end = start
        while True:
            c = code[end]
            if c in BRANCH_CODES or c == 0 or c not in IMPLEMENTED_CODES:
                end += 1
                break
            end += 1
            if end >= n or end in leaders:
                break
        blocks.append((start, end))
    block_of = {start: k for k, (start, _end) in enumerate(blocks)}
    return blocks, block_of


def block_successors(
    blocks: "list[tuple[int, int]]",
    code: Sequence[int],
    target: Sequence[int],
    n: int,
) -> "list[tuple[int, ...]]":
    """Successor block-start indices for each block of ``split_blocks``."""
    succs: "list[tuple[int, ...]]" = []
    for start, end in blocks:
        last = end - 1
        c = code[last]
        if c == 0 or c not in IMPLEMENTED_CODES:
            succs.append(())
        elif c == 40:
            succs.append((target[last],) if target[last] < n else ())
        elif c in BRANCH_CODES:
            out = []
            if target[last] < n:
                out.append(target[last])
            if last + 1 < n:
                out.append(last + 1)
            succs.append(tuple(out))
        else:
            succs.append((end,) if end < n else ())
    return succs


def infer_dataflow(
    blocks: "list[tuple[int, int]]",
    block_of: "dict[int, int]",
    succs: "list[tuple[int, ...]]",
    step: Callable[[list, int], None],
    *,
    top: object,
    join: Callable,
) -> "list[list]":
    """Per-block entry states via a monotone worklist fixpoint.

    ``top`` is the no-information value (assumed at the entry block and
    for unreachable blocks -- machines may be pre-seeded); ``join``
    merges the states reaching a block so a proved fact is valid on
    every path.  States are 33-slot lists: registers 0..31 plus the
    discard slot the array representation maps ``r31``/no-dest writes
    to.
    """
    nb = len(blocks)
    ins: "list[list | None]" = [None] * nb
    entry = block_of[0]
    ins[entry] = [top] * 33
    work = [entry]
    while work:
        k = work.pop()
        state = list(ins[k])  # type: ignore[arg-type]
        start, end = blocks[k]
        for i in range(start, end):
            step(state, i)
        for s in succs[k]:
            j = block_of[s]
            existing = ins[j]
            if existing is None:
                ins[j] = list(state)
                work.append(j)
            else:
                changed = False
                for r in range(33):
                    merged = join(state[r], existing[r])
                    if merged != existing[r]:
                        existing[r] = merged
                        changed = True
                if changed:
                    work.append(j)
    return [s if s is not None else [top] * 33 for s in ins]
