"""Control-flow graph construction for finalized RISC-A programs.

Basic blocks are maximal straight-line instruction runs; leaders are the
entry, every branch target, and every instruction after a branch.  The
graph carries:

* successor / predecessor edges (fall-through, branch-taken, both for
  conditional branches; HALT ends a path),
* reverse postorder (dominators of a block always precede it in RPO),
* immediate dominators via the Cooper/Harvey/Kennedy iterative algorithm,
* the *guaranteed* block set -- blocks every terminating execution must
  pass through (dominators of every exit block) -- which the critical-path
  oracle uses to keep its lower bound sound.

Index ``len(program)`` is modeled as a virtual "off-the-end" exit so a
branch past the last instruction (legal to :meth:`Program.finalize`, fatal
to the functional machine) is visible to the checkers.

Home of the shared analysis framework: the verifier re-exports this
module as :mod:`repro.isa.verify.cfg` for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import opcodes as op
from repro.isa.program import Program


@dataclass
class BasicBlock:
    """A maximal straight-line run ``[start, end)`` of instructions."""

    bid: int
    start: int
    end: int
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)
    #: True when the block ends a path by HALT.
    halts: bool = False
    #: True when falling out of this block runs past the program end.
    falls_off_end: bool = False

    def __len__(self) -> int:
        return self.end - self.start

    def indices(self) -> range:
        return range(self.start, self.end)


class CFG:
    """Basic blocks plus derived orderings and dominator information."""

    def __init__(self, program: Program):
        if not program.finalized:
            raise ValueError("verifier requires a finalized program")
        self.program = program
        self.blocks: list[BasicBlock] = []
        #: Block id containing instruction index i.
        self.block_of: list[int] = []
        self._build()
        self.rpo = self._reverse_postorder()
        self.reachable = frozenset(self.rpo)
        self.idom = self._dominators()
        self.guaranteed = self._guaranteed_blocks()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _build(self) -> None:
        instructions = self.program.instructions
        n = len(instructions)
        leaders = {0} if n else set()
        for index, instruction in enumerate(instructions):
            if instruction.code in op.BRANCH_CODES:
                target = instruction.target
                if isinstance(target, int) and 0 <= target < n:
                    leaders.add(target)
                if index + 1 < n:
                    leaders.add(index + 1)
        ordered = sorted(leaders)
        starts = {start: bid for bid, start in enumerate(ordered)}
        for bid, start in enumerate(ordered):
            end = ordered[bid + 1] if bid + 1 < len(ordered) else n
            self.blocks.append(BasicBlock(bid=bid, start=start, end=end))
        self.block_of = [0] * n
        for block in self.blocks:
            for index in block.indices():
                self.block_of[index] = block.bid

        for block in self.blocks:
            last = instructions[block.end - 1]
            if last.code == op.HALT:
                block.halts = True
                continue
            if last.code in op.BRANCH_CODES:
                target = last.target
                if isinstance(target, int) and 0 <= target < n:
                    block.successors.append(starts[target])
                elif isinstance(target, int) and target == n:
                    block.falls_off_end = True
                if last.code in op.COND_BRANCH_CODES:
                    if block.end < n:
                        block.successors.append(starts[block.end])
                    else:
                        block.falls_off_end = True
            else:
                if block.end < n:
                    block.successors.append(starts[block.end])
                else:
                    block.falls_off_end = True
        for block in self.blocks:
            # Deduplicate (a conditional branch to the fall-through).
            block.successors = list(dict.fromkeys(block.successors))
        for block in self.blocks:
            for succ in block.successors:
                self.blocks[succ].predecessors.append(block.bid)

    def _reverse_postorder(self) -> list[int]:
        if not self.blocks:
            return []
        seen = [False] * len(self.blocks)
        order: list[int] = []
        # Iterative DFS with an explicit stack of (block, successor-iter).
        stack = [(0, iter(self.blocks[0].successors))]
        seen[0] = True
        while stack:
            bid, succs = stack[-1]
            advanced = False
            for succ in succs:
                if not seen[succ]:
                    seen[succ] = True
                    stack.append((succ, iter(self.blocks[succ].successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(bid)
                stack.pop()
        order.reverse()
        return order

    # ------------------------------------------------------------------ #
    # Dominators
    # ------------------------------------------------------------------ #

    def _dominators(self) -> list[int | None]:
        """Immediate dominators (Cooper/Harvey/Kennedy); unreachable -> None."""
        idom: list[int | None] = [None] * len(self.blocks)
        if not self.blocks:
            return idom
        rpo_index = {bid: i for i, bid in enumerate(self.rpo)}
        idom[0] = 0
        changed = True
        while changed:
            changed = False
            for bid in self.rpo:
                if bid == 0:
                    continue
                new_idom: int | None = None
                for pred in self.blocks[bid].predecessors:
                    if idom[pred] is None and pred != 0:
                        continue
                    if pred not in rpo_index:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(
                            pred, new_idom, idom, rpo_index
                        )
                if new_idom is not None and idom[bid] != new_idom:
                    idom[bid] = new_idom
                    changed = True
        return idom

    @staticmethod
    def _intersect(a: int, b: int, idom, rpo_index) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    def dominates(self, a: int, b: int) -> bool:
        """True when block ``a`` dominates block ``b`` (reflexive)."""
        if a == b:
            return True
        node: int | None = b
        while node is not None and node != 0:
            node = self.idom[node]
            if node == a:
                return True
        return a == 0 and b in self.reachable

    def _guaranteed_blocks(self) -> frozenset[int]:
        """Blocks on every entry-to-exit path (dominators of all exits).

        Exits are reachable HALT blocks and off-the-end blocks.  With no
        exit at all (a provably non-terminating program) only the entry
        block is guaranteed.
        """
        exits = [
            block.bid for block in self.blocks
            if block.bid in self.reachable
            and (block.halts or block.falls_off_end)
        ]
        if not self.blocks:
            return frozenset()
        if not exits:
            return frozenset({0})
        guaranteed: set[int] | None = None
        for exit_bid in exits:
            doms = set()
            node: int | None = exit_bid
            while True:
                doms.add(node)
                if node == 0:
                    break
                node = self.idom[node]
                if node is None:
                    break
            guaranteed = doms if guaranteed is None else guaranteed & doms
        return frozenset(guaranteed or {0})

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def back_edges(self) -> list[tuple[int, int]]:
        """CFG edges ``(src, dst)`` where ``dst`` dominates ``src``."""
        edges = []
        for block in self.blocks:
            if block.bid not in self.reachable:
                continue
            for succ in block.successors:
                if self.dominates(succ, block.bid):
                    edges.append((block.bid, succ))
        return edges
