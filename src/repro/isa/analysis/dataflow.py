"""Register dataflow analyses over the analysis CFG.

Classic iterative bit-vector style analyses, specialized to RISC-A's 32
architectural registers:

* **Reaching definitions** (forward, may): which instruction indices may
  have produced each register's value at each program point.  The virtual
  definition :data:`ENTRY` stands for "the register's value at program
  entry" (architecturally zero), so a use whose reaching set contains
  :data:`ENTRY` is a potential use-before-def.
* **Liveness** (backward, may): which registers may still be read before
  being overwritten.  A definition that is not live immediately after the
  defining instruction is a dead write.

Writes to ``r31`` are architecturally discarded and reads of it are
constant zero, so ``r31`` is excluded from both defs and uses.

Both fixpoints run on :func:`repro.isa.analysis.solver.iterate`, the
shared FIFO worklist; the verifier re-exports this module as
:mod:`repro.isa.verify.dataflow` for compatibility.
"""

from __future__ import annotations

from repro.isa.analysis.cfg import CFG
from repro.isa.analysis.solver import iterate
from repro.isa.instruction import Instruction
from repro.isa.registers import ZERO_REG

#: Virtual definition index: the register's value at program entry.
ENTRY = -1


def defs_of(instruction: Instruction) -> tuple[int, ...]:
    """Registers this instruction writes (excluding the zero register)."""
    if instruction.spec.writes_dest and instruction.dest is not None \
            and instruction.dest != ZERO_REG:
        return (instruction.dest,)
    return ()


def uses_of(instruction: Instruction) -> tuple[int, ...]:
    """Registers this instruction reads (excluding the zero register)."""
    return tuple(
        reg for reg in instruction.source_regs() if reg != ZERO_REG
    )


class ReachingDefs:
    """Forward may-analysis: sets of defining instruction indices.

    ``block_in[bid]`` maps each register to a frozenset of instruction
    indices (or :data:`ENTRY`) whose definitions may reach the top of the
    block.  :meth:`at` walks a block to recover the state just before one
    instruction.
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        instructions = cfg.program.instructions
        entry_state = {reg: frozenset({ENTRY}) for reg in range(ZERO_REG)}
        empty: dict[int, frozenset[int]] = {
            reg: frozenset() for reg in range(ZERO_REG)
        }
        self.block_in: list[dict[int, frozenset[int]]] = [
            dict(empty) for _ in cfg.blocks
        ]
        if cfg.blocks:
            self.block_in[0] = dict(entry_state)
        # Precompute each block's transfer function: last def per register
        # plus the set of registers it writes at all.
        self._last_def: list[dict[int, int]] = []
        for block in cfg.blocks:
            last: dict[int, int] = {}
            for index in block.indices():
                for reg in defs_of(instructions[index]):
                    last[reg] = index
            self._last_def.append(last)
        iterate(self.cfg.rpo, self._process)

    def _transfer(self, bid: int) -> dict[int, frozenset[int]]:
        out = dict(self.block_in[bid])
        for reg, index in self._last_def[bid].items():
            out[reg] = frozenset({index})
        return out

    def _process(self, bid: int) -> list[int]:
        out = self._transfer(bid)
        changed_succs = []
        for succ in self.cfg.blocks[bid].successors:
            succ_in = self.block_in[succ]
            changed = False
            for reg, defs in out.items():
                if not defs <= succ_in[reg]:
                    succ_in[reg] = succ_in[reg] | defs
                    changed = True
            if changed:
                changed_succs.append(succ)
        return changed_succs

    def at(self, index: int) -> dict[int, frozenset[int]]:
        """Reaching definitions just *before* instruction ``index``."""
        bid = self.cfg.block_of[index]
        state = dict(self.block_in[bid])
        instructions = self.cfg.program.instructions
        for i in range(self.cfg.blocks[bid].start, index):
            for reg in defs_of(instructions[i]):
                state[reg] = frozenset({i})
        return state

    def unique_dominating_def(self, index: int, reg: int) -> int | None:
        """The single def of ``reg`` reaching ``index``, when it dominates.

        Returns the defining instruction index iff exactly one real
        definition reaches the use *and* that definition dominates it
        (same block earlier, or a strictly dominating block).  This is the
        edge relation the critical-path oracle builds chains from: such a
        def provably executes before every dynamic execution of the use.
        """
        defs = self.at(index).get(reg, frozenset())
        if len(defs) != 1:
            return None
        (d,) = defs
        if d == ENTRY:
            return None
        use_bid = self.cfg.block_of[index]
        def_bid = self.cfg.block_of[d]
        if def_bid == use_bid:
            return d if d < index else None
        return d if self.cfg.dominates(def_bid, use_bid) else None


class Liveness:
    """Backward may-analysis: registers read before overwritten."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        instructions = cfg.program.instructions
        self.live_in: list[frozenset[int]] = [
            frozenset() for _ in cfg.blocks
        ]
        self.live_out: list[frozenset[int]] = [
            frozenset() for _ in cfg.blocks
        ]
        # Upward-exposed uses and kill sets per block.
        self._gen: list[frozenset[int]] = []
        self._kill: list[frozenset[int]] = []
        for block in cfg.blocks:
            gen: set[int] = set()
            kill: set[int] = set()
            for index in block.indices():
                instruction = instructions[index]
                for reg in uses_of(instruction):
                    if reg not in kill:
                        gen.add(reg)
                for reg in defs_of(instruction):
                    kill.add(reg)
            self._gen.append(frozenset(gen))
            self._kill.append(frozenset(kill))
        iterate(reversed(self.cfg.rpo), self._process)

    def _process(self, bid: int) -> list[int]:
        out: frozenset[int] = frozenset()
        for succ in self.cfg.blocks[bid].successors:
            out = out | self.live_in[succ]
        new_in = self._gen[bid] | (out - self._kill[bid])
        self.live_out[bid] = out
        if new_in != self.live_in[bid]:
            self.live_in[bid] = new_in
            return list(self.cfg.blocks[bid].predecessors)
        return []

    def live_after(self, index: int) -> frozenset[int]:
        """Registers live just *after* instruction ``index``."""
        bid = self.cfg.block_of[index]
        block = self.cfg.blocks[bid]
        live = set(self.live_out[bid])
        instructions = self.cfg.program.instructions
        for i in range(block.end - 1, index, -1):
            instruction = instructions[i]
            for reg in defs_of(instruction):
                live.discard(reg)
            for reg in uses_of(instruction):
                live.add(reg)
        return frozenset(live)
