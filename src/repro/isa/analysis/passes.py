"""The pass manager: cached per-program analysis results.

:class:`ProgramAnalyses` bundles every static analysis the repo knows how
to run over one finalized :class:`~repro.isa.program.Program` -- the CFG,
reaching definitions, liveness, the four register lattices, SBOX pointer
taint, natural loops and the memory-interval alias pass -- each computed
lazily and memoized on the instance.  :func:`analyses_for` adds a
digest-keyed bounded cache on top so repeated verification / timing /
cost-estimation of the same program shares one set of results.

The SBOX pointer-taint analysis lives here (moved from
:mod:`repro.isa.verify.checkers`, which imports it back) because the
coherence checker and the alias pass both consume it.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import cached_property

from repro.isa import opcodes as op
from repro.isa.analysis.cfg import CFG
from repro.isa.analysis.dataflow import (
    ENTRY,
    Liveness,
    ReachingDefs,
    defs_of,
    uses_of,
)
from repro.isa.analysis.lattices import (
    M64,
    infer_constants,
    infer_ranges,
    infer_trailing_zeros,
    infer_widths,
    make_const_step,
    make_range_step,
    make_tz_step,
    make_width_step,
)
from repro.isa.analysis.solver import block_successors, iterate, split_blocks
from repro.isa.instruction import Instruction
from repro.isa.program import Program

#: Opcodes whose result can carry a derived pointer (copies, address
#: arithmetic); loads and SBOX produce table *contents*, not pointers.
POINTER_OPS = frozenset(
    spec.code for spec in op.SPECS.values()
    if spec.fmt == "op" and spec.klass in ("ialu", "rotator")
) | {op.LDA}

#: Bytes a memory opcode touches (SBOX reads one 4-byte table entry).
_MEM_SIZES = {
    op.LDQ: 8, op.LDL: 4, op.LDWU: 2, op.LDBU: 1,
    op.STQ: 8, op.STL: 4, op.STW: 2, op.STB: 1,
    op.SBOX: 4,
}


class ProgramArrays:
    """The compiled backend's parallel-array view, built from a Program.

    Matches :meth:`repro.sim.machine.Machine._compile` field for field
    (``dest`` slot 32 is the discard slot for ``r31`` writes; absent
    sources read as ``r31``) so the lattice transfer functions in
    :mod:`repro.isa.analysis.lattices` see identical inputs whether they
    run here or inside the backend's elision fixpoint.
    """

    def __init__(self, program: Program):
        if not program.finalized:
            raise ValueError("analysis requires a finalized program")
        instructions = program.instructions
        n = len(instructions)
        self.n = n
        self.code = [0] * n
        self.dest = [32] * n
        self.src1 = [31] * n
        self.src2 = [31] * n
        self.lit: "list[int | None]" = [None] * n
        self.disp = [0] * n
        self.target = [0] * n
        self.tbl = [0] * n
        self.bsel = [0] * n
        for i, instr in enumerate(instructions):
            self.code[i] = instr.code
            if instr.dest is not None:
                self.dest[i] = 32 if instr.dest == 31 else instr.dest
            if instr.src1 is not None:
                self.src1[i] = instr.src1
            if instr.src2 is not None:
                self.src2[i] = instr.src2
            self.lit[i] = instr.lit
            self.disp[i] = instr.disp
            if isinstance(instr.target, int):
                self.target[i] = instr.target
            self.tbl[i] = instr.table
            self.bsel[i] = instr.bsel


# --------------------------------------------------------------------- #
# SBOX pointer taint
# --------------------------------------------------------------------- #

def taint_step(
    instruction: Instruction,
    index: int,
    state: "dict[int, frozenset[int]]",
    seeds: "dict[int, set[int]]",
) -> None:
    """Apply one instruction's pointer-taint transfer to ``state`` in place."""
    for reg in defs_of(instruction):
        taint: frozenset[int] = frozenset(seeds.get(index, ()))
        if instruction.code in POINTER_OPS:
            for src in uses_of(instruction):
                taint = taint | state.get(src, frozenset())
        if taint:
            state[reg] = taint
        else:
            state.pop(reg, None)


def table_pointer_taint(
    program: Program, cfg: CFG, rdefs: ReachingDefs
) -> "tuple[list[dict[int, frozenset[int]]], dict[int, set[int]]]":
    """Forward may-point-to analysis: register -> set of SBOX table ids.

    Seeds: every definition that reaches the *table base* operand (src1)
    of an SBOX instruction for table ``t`` produces a table-``t`` pointer.
    Propagation: copies and address arithmetic (operate-format IALU /
    rotator ops plus LDA) carry the union of their sources' taints; loads
    and SBOX results are table contents, not pointers, and any other
    definition kills the taint.
    """
    instructions = program.instructions
    # Seed pass: def site -> tables whose base it materializes.
    seeds: dict[int, set[int]] = {}
    for block in cfg.blocks:
        if block.bid not in cfg.reachable:
            continue
        state = dict(rdefs.block_in[block.bid])
        for index in block.indices():
            instruction = instructions[index]
            if instruction.code == op.SBOX and instruction.src1 is not None:
                for d in state.get(instruction.src1, frozenset()):
                    if d != ENTRY:
                        seeds.setdefault(d, set()).add(instruction.table)
            for reg in defs_of(instruction):
                state[reg] = frozenset({index})

    block_in: list[dict[int, frozenset[int]]] = [{} for _ in cfg.blocks]

    def process(bid: int) -> list[int]:
        state = dict(block_in[bid])
        for index in cfg.blocks[bid].indices():
            taint_step(instructions[index], index, state, seeds)
        changed_succs = []
        for succ in cfg.blocks[bid].successors:
            succ_in = block_in[succ]
            changed = False
            for reg, taint in state.items():
                if not taint <= succ_in.get(reg, frozenset()):
                    succ_in[reg] = succ_in.get(reg, frozenset()) | taint
                    changed = True
            if changed:
                changed_succs.append(succ)
        return changed_succs

    iterate(cfg.rpo, process)
    return block_in, seeds


# --------------------------------------------------------------------- #
# Natural loops
# --------------------------------------------------------------------- #

class NaturalLoops:
    """Natural loops from the CFG's back edges.

    A back edge ``src -> header`` (header dominates src) induces the loop
    body: the header plus every block that reaches ``src`` without
    passing through the header.  Back edges sharing a header are merged
    into one loop.  ``depth[bid]`` counts the loop bodies containing the
    block (0 = not in any loop), which the timing IR surfaces as
    :attr:`TimingBlock.loop_depth`.
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        bodies: dict[int, set[int]] = {}
        for src, header in cfg.back_edges():
            body = bodies.setdefault(header, {header})
            stack = [src]
            while stack:
                bid = stack.pop()
                if bid in body:
                    continue
                body.add(bid)
                stack.extend(cfg.blocks[bid].predecessors)
        #: header block id -> frozen loop body (header included).
        self.loops: dict[int, frozenset[int]] = {
            header: frozenset(body) for header, body in bodies.items()
        }
        self.depth = [0] * len(cfg.blocks)
        for body in self.loops.values():
            for bid in body:
                self.depth[bid] += 1

    def depth_of_index(self, index: int) -> int:
        """Loop-nesting depth of the block holding instruction ``index``."""
        return self.depth[self.cfg.block_of[index]]


# --------------------------------------------------------------------- #
# Memory intervals (the alias pass)
# --------------------------------------------------------------------- #

class MemoryFacts:
    """Provable byte intervals for every memory access.

    Built on the constant lattice: a load/store whose base register holds
    a proved constant (the ``disp(r31)`` scratch idiom, or any LDA-built
    address) gets the exact half-open byte interval ``[addr, addr+size)``.
    An aliased SBOX read with a proved base gets its table row's 1 KiB
    region (exact entry when the selected index byte is also constant).
    ``None`` means the address could not be proved, so the access may
    alias anything.
    """

    def __init__(self, analyses: "ProgramAnalyses"):
        arrays = analyses.arrays
        program = analyses.program
        step = make_const_step(arrays)
        entry_consts = analyses.array_constants
        blocks, block_of = analyses.array_blocks
        #: Per-instruction interval ``(start, end)`` or None; only memory
        #: opcodes (loads, stores, SBOX) ever get a non-None entry.
        self.intervals: "list[tuple[int, int] | None]" = [None] * arrays.n
        covered = set()
        for k, (start, end) in enumerate(blocks):
            state = list(entry_consts[k])
            for i in range(start, end):
                if i in covered:
                    break
                covered.add(i)
                instr = program.instructions[i]
                size = _MEM_SIZES.get(instr.code)
                if size is not None and instr.code != op.SBOX:
                    base = arrays.src2[i]
                    bv = 0 if base == 31 else state[base]
                    if bv is not None:
                        addr = (bv + arrays.disp[i]) & M64
                        self.intervals[i] = (addr, addr + size)
                elif instr.code == op.SBOX and instr.aliased:
                    base = arrays.src1[i]
                    bv = None if base == 31 else state[base]
                    if bv is not None:
                        row = bv & ~0x3FF
                        idx_src = arrays.src2[i]
                        iv = 0 if idx_src == 31 else state[idx_src]
                        if iv is not None:
                            idx = (iv >> (arrays.bsel[i] * 8)) & 0xFF
                            addr = row | (idx << 2)
                            self.intervals[i] = (addr, addr + 4)
                        else:
                            self.intervals[i] = (row, row + 0x400)
                step(state, i)

    def disjoint(self, i: int, j: int) -> bool:
        """True when accesses ``i`` and ``j`` provably touch disjoint bytes."""
        a, b = self.intervals[i], self.intervals[j]
        if a is None or b is None:
            return False
        return a[1] <= b[0] or b[1] <= a[0]

    def may_alias(self, i: int, j: int) -> bool:
        return not self.disjoint(i, j)


# --------------------------------------------------------------------- #
# The pass manager
# --------------------------------------------------------------------- #

class ProgramAnalyses:
    """Lazily-computed, memoized analyses over one finalized program.

    Every attribute is a ``cached_property``: nothing runs until asked
    for, and nothing runs twice.  Share instances via
    :func:`analyses_for` so the verifier, the timing IR and the cost
    model all reuse one CFG and one set of fixpoints per program.
    """

    def __init__(self, program: Program):
        if not program.finalized:
            raise ValueError("analysis requires a finalized program")
        self.program = program

    @cached_property
    def arrays(self) -> ProgramArrays:
        return ProgramArrays(self.program)

    @cached_property
    def cfg(self) -> CFG:
        return CFG(self.program)

    @cached_property
    def rdefs(self) -> ReachingDefs:
        return ReachingDefs(self.cfg)

    @cached_property
    def liveness(self) -> Liveness:
        return Liveness(self.cfg)

    @cached_property
    def array_blocks(
        self,
    ) -> "tuple[list[tuple[int, int]], dict[int, int]]":
        a = self.arrays
        return split_blocks(a.code, a.target, a.n)

    @cached_property
    def array_successors(self) -> "list[tuple[int, ...]]":
        a = self.arrays
        blocks, _ = self.array_blocks
        return block_successors(blocks, a.code, a.target, a.n)

    @cached_property
    def array_widths(self) -> "list[list[int]]":
        blocks, block_of = self.array_blocks
        return infer_widths(
            blocks, block_of, self.array_successors,
            make_width_step(self.arrays),
        )

    @cached_property
    def array_trailing_zeros(self) -> "list[list[int]]":
        blocks, block_of = self.array_blocks
        return infer_trailing_zeros(
            blocks, block_of, self.array_successors,
            make_tz_step(self.arrays),
        )

    @cached_property
    def array_constants(self) -> "list[list]":
        blocks, block_of = self.array_blocks
        return infer_constants(
            blocks, block_of, self.array_successors,
            make_const_step(self.arrays),
        )

    @cached_property
    def array_ranges(self) -> "list[list]":
        blocks, block_of = self.array_blocks
        return infer_ranges(
            blocks, block_of, self.array_successors,
            make_range_step(self.arrays),
        )

    @cached_property
    def taint(
        self,
    ) -> "tuple[list[dict[int, frozenset[int]]], dict[int, set[int]]]":
        return table_pointer_taint(self.program, self.cfg, self.rdefs)

    @cached_property
    def loops(self) -> NaturalLoops:
        return NaturalLoops(self.cfg)

    @cached_property
    def memory(self) -> MemoryFacts:
        return MemoryFacts(self)


#: Bounded cache: program digest -> ProgramAnalyses (LRU on access).
_CACHE_LIMIT = 64
_cache: "OrderedDict[str, ProgramAnalyses]" = OrderedDict()


def analyses_for(program: Program) -> ProgramAnalyses:
    """The shared :class:`ProgramAnalyses` for a finalized program.

    Keyed by :meth:`Program.digest` with a small LRU bound, so verifying,
    timing and cost-estimating the same kernel reuse one result set while
    sweeps over many programs cannot grow memory without bound.
    """
    key = program.digest()
    found = _cache.get(key)
    if found is not None:
        _cache.move_to_end(key)
        return found
    analyses = ProgramAnalyses(program)
    _cache[key] = analyses
    while len(_cache) > _CACHE_LIMIT:
        _cache.popitem(last=False)
    return analyses
