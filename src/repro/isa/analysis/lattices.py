"""The lattice library: transfer functions over parallel instruction arrays.

Each ``make_*_step(arrays)`` returns a transfer function ``step(state, i)``
mutating a 33-slot per-register state in place (slots 0..31 are the
architectural registers, slot 32 is the discard slot that array builders
map ``r31``/no-dest writes to).  ``arrays`` is anything exposing the
compiled backend's parallel arrays -- a :class:`repro.sim.machine.Machine`
or a :class:`repro.isa.analysis.passes.ProgramArrays` -- so one transfer
function serves both the backend's elision fixpoint and program-level
analysis.

Lattices:

* **width** (`make_width_step`): register -> ``w`` such that the value is
  known to be a non-negative int < 2**w (``w`` <= 64), or
  :data:`UNKNOWN_WIDTH`.  Join is ``max`` (wider is less precise).
* **trailing zeros** (`make_tz_step`): register -> ``t`` such that the low
  ``t`` bits are known zero.  Join is ``min``.
* **constants** (`make_const_step`): register -> the exact interpreter
  value, or ``None``.  Join keeps a value only when both sides agree.
* **value range** (`make_range_step`): register -> ``(lo, hi)`` bounds on
  the held value (which is then provably non-negative), or ``None`` for
  no information.  Join is the interval hull; :func:`infer_ranges` adds
  widening so loop-carried intervals converge.

The width/trailing-zeros/constant transfer functions moved here verbatim
from :mod:`repro.sim.backends.compiled`, which imports them back: the
backend's elision decisions (and every ``CompileReport`` counter) are
unchanged by the move.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from repro.isa.analysis.solver import infer_dataflow

M32 = 0xFFFFFFFF
M64 = 0xFFFFFFFFFFFFFFFF

#: Register-width lattice top: value may be negative or >= 2**64, so no
#: mask or sign-handling may be elided.
UNKNOWN_WIDTH = 999

#: Opcodes that write a register result (everything but control flow,
#: stores, SBOXSYNC and HALT).  CMOV writes conditionally but still
#: needs its destination pinned and written back.
WRITES_DEST = frozenset(
    {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18,
     19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 30, 31, 32, 33, 48, 49,
     50, 51, 52, 53, 54, 55, 56, 57, 59}
)


class InstructionArrays(Protocol):
    """The parallel-array program representation the lattices consume."""

    code: Sequence[int]
    dest: Sequence[int]
    src1: Sequence[int]
    src2: Sequence[int]
    lit: "Sequence[int | None]"
    disp: Sequence[int]
    bsel: Sequence[int]


Step = Callable[[list, int], None]


def lit_width(value: "int | None") -> "int | None":
    """Bits needed for a literal; negative literals are unknown-width."""
    if value is None:
        return None
    return value.bit_length() if value >= 0 else UNKNOWN_WIDTH


def zapnot_mask(sel: int) -> int:
    return sum(0xFF << (8 * bit) for bit in range(8) if sel & (1 << bit))


def tz_of_int(value: int) -> int:
    """Trailing zero bits of a 64-bit value pattern (tz(0) == 64)."""
    value &= M64
    if value == 0:
        return 64
    return (value & -value).bit_length() - 1


# --------------------------------------------------------------------- #
# Width lattice
# --------------------------------------------------------------------- #

def make_width_step(arrays: InstructionArrays) -> Step:
    """Transfer function of the register-width dataflow.

    ``state`` maps register slot -> w such that the value is known to be
    a non-negative int < 2**w (w <= 64), or ``UNKNOWN_WIDTH``.  Shared by
    the fixpoint and by the compiled backend's code emission, so elision
    decisions always see exactly the widths the analysis proved.
    """
    code, dest, src1, src2 = (
        arrays.code, arrays.dest, arrays.src1, arrays.src2,
    )
    lit, disp, bsel = arrays.lit, arrays.disp, arrays.bsel

    def step(state: list, i: int) -> None:
        c = code[i]
        if c not in WRITES_DEST:
            return
        d = dest[i]
        w1 = 0 if src1[i] == 31 else state[src1[i]]
        L = lit[i]
        lw = lit_width(L)
        wb = lw if lw is not None else (
            0 if src2[i] == 31 else state[src2[i]]
        )
        if c == 1:  # ADDQ
            w = max(w1, wb) + 1 if max(w1, wb) < 64 else 64
        elif c == 2:  # SUBQ
            w = 64
        elif c == 3:  # ADDL
            w = max(w1, wb) + 1 if max(w1, wb) < 32 else 32
        elif c == 4:  # SUBL
            w = 32
        elif c == 5:  # AND (a >= 0 so result <= a even for negative b)
            w = min(w1, wb) if wb != UNKNOWN_WIDTH else w1
        elif c in (6, 7):  # BIS / XOR
            w = max(w1, wb)
        elif c == 8:  # BIC: result <= a
            w = min(w1, 64)
        elif c == 9:  # ORNOT
            w = 64
        elif c == 10:  # SLL
            if L is not None and w1 != UNKNOWN_WIDTH:
                w = min(w1 + (L & 63), 64)
            else:
                w = 64
        elif c == 11:  # SRL
            if w1 == UNKNOWN_WIDTH:
                w = UNKNOWN_WIDTH
            elif L is not None:
                w = max(w1 - (L & 63), 0)
            else:
                w = w1
        elif c == 12:  # SRA
            if w1 <= 63:
                w = max(w1 - (L & 63), 0) if L is not None else w1
            else:
                w = 64
        elif c == 13:  # MULL
            w1m = min(w1, 32)
            wbm = (L & M32).bit_length() if L is not None else min(wb, 32)
            w = min(w1m + wbm, 32)
        elif c == 14:  # MULQ
            w = w1 + wb if w1 + wb <= 64 else 64
        elif c in (15, 16, 17, 18, 19):  # compares
            w = 1
        elif c == 20:  # EXTBL
            w = 8
        elif c == 21:  # INSBL
            w = 8 + (L & 7) * 8 if L is not None else 64
        elif c == 22:  # ZAPNOT
            if L is not None:
                w = min(w1, zapnot_mask(L & 0xFF).bit_length())
            else:
                w = min(w1, 64)
        elif c == 23:  # S4ADDQ
            m = max(w1 + 2, wb)
            w = m + 1 if m < 64 else 64
        elif c == 24:  # S8ADDQ
            m = max(w1 + 3, wb)
            w = m + 1 if m < 64 else 64
        elif c in (25, 26):  # CMOV: may keep the old value
            w = max(state[d], wb)
        elif c == 27:  # LDA
            base = src2[i]
            dp = disp[i]
            if base == 31:
                w = (dp & M64).bit_length()
            else:
                wb2 = state[base]
                if dp == 0:
                    w = min(wb2, 64)
                elif wb2 != UNKNOWN_WIDTH and dp > 0:
                    m = max(wb2, dp.bit_length())
                    w = m + 1 if m < 64 else 64
                else:
                    w = 64
        elif c == 28:  # LDIQ
            w = lw if lw is not None else UNKNOWN_WIDTH
        elif c == 30:  # LDQ
            w = 64
        elif c in (31, 57):  # LDL / SBOX
            w = 32
        elif c == 32:  # LDWU
            w = 16
        elif c == 33:  # LDBU
            w = 8
        elif c == 48:  # GRPL
            w = 32
        elif c == 49:  # GRPQ
            w = 64
        elif c in (50, 51, 54, 55):  # ROLL/RORL/ROLXL/RORXL
            w = 32
        elif c in (52, 53):  # ROLQ / RORQ
            w = w1 if (L is not None and not (
                (L & 63) if c == 52 else ((64 - (L & 63)) & 63))) else 64
        elif c == 56:  # MULMOD
            w = 16
        elif c == 59:  # XBOX
            w = bsel[i] * 8 + 8
        else:  # pragma: no cover - WRITES_DEST covers every case above
            w = UNKNOWN_WIDTH
        state[d] = min(w, UNKNOWN_WIDTH)

    return step


def infer_widths(
    blocks: "list[tuple[int, int]]",
    block_of: "dict[int, int]",
    succs: "list[tuple[int, ...]]",
    step: Step,
) -> "list[list[int]]":
    """Register widths: bigger is less precise, so the join is ``max``."""
    return infer_dataflow(blocks, block_of, succs, step, top=64, join=max)


# --------------------------------------------------------------------- #
# Trailing-zeros lattice
# --------------------------------------------------------------------- #

def make_tz_step(arrays: InstructionArrays) -> Step:
    """Transfer function of the register-alignment dataflow.

    ``state`` maps register slot -> t such that the value's low ``t``
    bits are known to be zero (a lower bound; smaller is less precise).
    Used to elide alignment checks on load/store addresses.  All rules
    hold modulo 2**64, so the masked/unmasked distinction of the width
    lattice is irrelevant here.
    """
    code, dest, src1, src2 = (
        arrays.code, arrays.dest, arrays.src1, arrays.src2,
    )
    lit, disp = arrays.lit, arrays.disp

    def step(state: list, i: int) -> None:
        c = code[i]
        if c not in WRITES_DEST:
            return
        d = dest[i]
        s1 = src1[i]
        t1 = 64 if s1 == 31 else state[s1]
        L = lit[i]
        if L is not None:
            tb = tz_of_int(L)
        elif src2[i] == 31:
            tb = 64
        else:
            tb = state[src2[i]]
        if c in (1, 2, 3, 4):  # add/sub: masking never touches low bits
            state[d] = min(t1, tb)
        elif c == 5:  # AND only clears bits
            state[d] = max(t1, tb)
        elif c in (6, 7):  # BIS / XOR
            state[d] = min(t1, tb)
        elif c in (8, 22):  # BIC / ZAPNOT keep-or-clear source bits
            state[d] = t1
        elif c == 10:  # SLL
            state[d] = min(t1 + (L & 63), 64) if L is not None else t1
        elif c in (11, 12):  # SRL / SRA
            state[d] = max(t1 - (L & 63), 0) if L is not None else 0
        elif c in (13, 14):  # MULL / MULQ
            state[d] = min(t1 + tb, 64)
        elif c == 21:  # INSBL: (a & 0xFF) << (s * 8)
            state[d] = min(t1 + (L & 7) * 8, 64) if L is not None else t1
        elif c == 23:  # S4ADDQ
            state[d] = min(t1 + 2, tb)
        elif c == 24:  # S8ADDQ
            state[d] = min(t1 + 3, tb)
        elif c in (25, 26):  # CMOV: old value or the new operand
            state[d] = min(state[d], tb)
        elif c == 27:  # LDA
            dtz = tz_of_int(disp[i])
            base = src2[i]
            state[d] = dtz if base == 31 else min(state[base], dtz)
        elif c == 28:  # LDIQ
            state[d] = tz_of_int(L)
        else:  # loads, compares, rotates, GRP, XBOX, MULMOD, SBOX...
            state[d] = 0

    return step


def infer_trailing_zeros(
    blocks: "list[tuple[int, int]]",
    block_of: "dict[int, int]",
    succs: "list[tuple[int, ...]]",
    step: Step,
) -> "list[list[int]]":
    """Trailing zeros: smaller is less precise, so the join is ``min``."""
    return infer_dataflow(blocks, block_of, succs, step, top=0, join=min)


# --------------------------------------------------------------------- #
# Constant lattice
# --------------------------------------------------------------------- #

def const_join(a: "int | None", b: "int | None") -> "int | None":
    return a if a == b else None


def make_const_step(arrays: InstructionArrays) -> Step:
    """Transfer function of the register-constant dataflow.

    ``state`` maps register slot -> the exact value the interpreter
    would hold (LDIQ stores its literal raw, LDA masks to 64 bits), or
    ``None`` when unknown.  Only immediate-forming opcodes propagate;
    everything else conservatively clobbers.  Proved constants fold
    into operand positions, where CPython's own constant folding then
    collapses expressions like ``(4096 & -1024)``.
    """
    code, dest, src2 = arrays.code, arrays.dest, arrays.src2
    lit, disp = arrays.lit, arrays.disp

    def step(state: list, i: int) -> None:
        c = code[i]
        if c not in WRITES_DEST:
            return
        d = dest[i]
        if c == 28:  # LDIQ
            state[d] = lit[i]
        elif c == 27:  # LDA
            base = src2[i]
            bv = 0 if base == 31 else state[base]
            state[d] = None if bv is None else (bv + disp[i]) & M64
        else:
            state[d] = None

    return step


def infer_constants(
    blocks: "list[tuple[int, int]]",
    block_of: "dict[int, int]",
    succs: "list[tuple[int, ...]]",
    step: Step,
) -> "list[list]":
    """Exact constants: the join keeps a value only when paths agree."""
    return infer_dataflow(blocks, block_of, succs, step,
                          top=None, join=const_join)


# --------------------------------------------------------------------- #
# Value-range lattice
# --------------------------------------------------------------------- #

#: An interval fact ``(lo, hi)``: the register provably holds a plain
#: non-negative int in that range.  ``None`` is top (no information; the
#: value may even be a negative or >= 2**64 raw literal).
Range = "tuple[int, int] | None"


def range_join(a: Range, b: Range) -> Range:
    """Interval hull; ``None`` (no information) absorbs."""
    if a is None or b is None:
        return None
    return (min(a[0], b[0]), max(a[1], b[1]))


def make_range_step(arrays: InstructionArrays) -> Step:
    """Transfer function of the value-range dataflow.

    Every rule is justified against the functional interpreter: a fact is
    produced only when the opcode's result is provably a non-negative
    Python int within the interval for *any* operand values consistent
    with the incoming facts.  Opcodes that can produce negative or
    unmasked values (SUBQ, ORNOT, SRA of wide values, raw negative
    literals) go straight to top.
    """
    code, dest, src1, src2 = (
        arrays.code, arrays.dest, arrays.src1, arrays.src2,
    )
    lit, disp, bsel = arrays.lit, arrays.disp, arrays.bsel

    def operand(reg: int, state: list) -> Range:
        return (0, 0) if reg == 31 else state[reg]

    def step(state: list, i: int) -> None:
        c = code[i]
        if c not in WRITES_DEST:
            return
        d = dest[i]
        r1 = operand(src1[i], state)
        L = lit[i]
        if L is not None:
            rb: Range = (L, L) if 0 <= L <= M64 else None
        else:
            rb = operand(src2[i], state)
        out: Range = None
        if c == 1:  # ADDQ
            if r1 is not None and rb is not None \
                    and r1[1] + rb[1] <= M64:
                out = (r1[0] + rb[0], r1[1] + rb[1])
        elif c == 3:  # ADDL
            if r1 is not None and rb is not None \
                    and r1[1] + rb[1] <= M32:
                out = (r1[0] + rb[0], r1[1] + rb[1])
            else:
                out = (0, M32)
        elif c == 4:  # SUBL: masked to 32 bits
            out = (0, M32)
        elif c == 5:  # AND: result in [0, min(hi)] when either side is known
            if r1 is not None and rb is not None:
                out = (0, min(r1[1], rb[1]))
            elif r1 is not None:
                out = (0, r1[1])
            elif rb is not None:
                out = (0, rb[1])
        elif c == 6:  # BIS: >= each operand, < next power of two
            if r1 is not None and rb is not None:
                bits = max(r1[1].bit_length(), rb[1].bit_length())
                out = (max(r1[0], rb[0]), min((1 << bits) - 1, M64))
        elif c == 7:  # XOR
            if r1 is not None and rb is not None:
                bits = max(r1[1].bit_length(), rb[1].bit_length())
                out = (0, min((1 << bits) - 1, M64))
        elif c == 8:  # BIC: result <= a
            if r1 is not None:
                out = (0, r1[1])
        elif c == 10:  # SLL
            if L is not None and r1 is not None \
                    and (r1[1] << (L & 63)) <= M64:
                out = (r1[0] << (L & 63), r1[1] << (L & 63))
        elif c == 11:  # SRL
            if r1 is not None:
                if L is not None:
                    out = (r1[0] >> (L & 63), r1[1] >> (L & 63))
                else:
                    out = (0, r1[1])
        elif c == 12:  # SRA: equals SRL while the sign bit is clear
            if r1 is not None and r1[1] < 1 << 63:
                if L is not None:
                    out = (r1[0] >> (L & 63), r1[1] >> (L & 63))
                else:
                    out = (0, r1[1])
        elif c == 13:  # MULL
            out = (0, M32)
        elif c == 14:  # MULQ
            if r1 is not None and rb is not None \
                    and r1[1] * rb[1] <= M64:
                out = (r1[0] * rb[0], r1[1] * rb[1])
        elif c in (15, 16, 17, 18, 19):  # compares
            out = (0, 1)
        elif c == 20:  # EXTBL
            out = (0, 0xFF)
        elif c == 21:  # INSBL
            if L is not None:
                out = (0, 0xFF << ((L & 7) * 8))
        elif c == 22:  # ZAPNOT: a & mask, so bounded by both
            if L is not None:
                mask = zapnot_mask(L & 0xFF)
                hi = min(r1[1], mask) if r1 is not None else mask
                out = (0, hi)
            elif r1 is not None:
                out = (0, r1[1])
        elif c == 23:  # S4ADDQ
            if r1 is not None and rb is not None \
                    and 4 * r1[1] + rb[1] <= M64:
                out = (4 * r1[0] + rb[0], 4 * r1[1] + rb[1])
        elif c == 24:  # S8ADDQ
            if r1 is not None and rb is not None \
                    and 8 * r1[1] + rb[1] <= M64:
                out = (8 * r1[0] + rb[0], 8 * r1[1] + rb[1])
        elif c in (25, 26):  # CMOV: old value or the new operand
            out = range_join(state[d], rb)
        elif c == 27:  # LDA
            base = src2[i]
            dp = disp[i]
            if base == 31:
                v = dp & M64
                out = (v, v)
            else:
                rb2 = state[base]
                if rb2 is not None and rb2[0] + dp >= 0 \
                        and rb2[1] + dp <= M64:
                    out = (rb2[0] + dp, rb2[1] + dp)
        elif c == 28:  # LDIQ (raw literal; negative stays unmasked)
            if L is not None and 0 <= L <= M64:
                out = (L, L)
        elif c == 30:  # LDQ
            out = (0, M64)
        elif c in (31, 57):  # LDL / SBOX
            out = (0, M32)
        elif c == 32:  # LDWU
            out = (0, 0xFFFF)
        elif c == 33:  # LDBU
            out = (0, 0xFF)
        elif c == 48:  # GRPL
            out = (0, M32)
        elif c == 49:  # GRPQ
            out = (0, M64)
        elif c in (50, 51, 54, 55):  # 32-bit rotates
            out = (0, M32)
        elif c in (52, 53):  # ROLQ / RORQ
            out = (0, M64)
        elif c == 56:  # MULMOD
            out = (0, 0xFFFF)
        elif c == 59:  # XBOX
            out = (0, (1 << (bsel[i] * 8 + 8)) - 1)
        state[d] = out

    return step


#: Interval joins tolerated per (block, register) before widening to top.
WIDEN_AFTER = 3


def infer_ranges(
    blocks: "list[tuple[int, int]]",
    block_of: "dict[int, int]",
    succs: "list[tuple[int, ...]]",
    step: Step,
) -> "list[list]":
    """Value ranges with widening, so loop-carried intervals converge.

    The plain hull join never terminates on a counted loop (the induction
    variable's interval grows by one step per fixpoint pass), so after a
    register's interval at a block entry has been enlarged
    :data:`WIDEN_AFTER` times it is widened straight to top.  Widening
    only ever *loses* precision, so soundness is unaffected.
    """
    nb = len(blocks)
    ins: "list[list | None]" = [None] * nb
    bumps: dict[tuple[int, int], int] = {}
    entry = block_of[0]
    ins[entry] = [None] * 33
    work = [entry]
    while work:
        k = work.pop()
        state = list(ins[k])  # type: ignore[arg-type]
        start, end = blocks[k]
        for i in range(start, end):
            step(state, i)
        for s in succs[k]:
            j = block_of[s]
            existing = ins[j]
            if existing is None:
                ins[j] = list(state)
                work.append(j)
            else:
                changed = False
                for r in range(33):
                    merged = range_join(state[r], existing[r])
                    if merged != existing[r]:
                        count = bumps.get((j, r), 0) + 1
                        bumps[(j, r)] = count
                        existing[r] = (merged if count <= WIDEN_AFTER
                                       else None)
                        if existing[r] != merged or merged is not None:
                            changed = True
                if changed:
                    work.append(j)
    return [s if s is not None else [None] * 33 for s in ins]
