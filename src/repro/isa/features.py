"""Kernel feature levels: which ISA the kernel is compiled against.

The paper evaluates three codings of every cipher kernel:

* ``NOROT`` -- the original code on a machine *without* rotate instructions
  (like the real Alpha): rotates are synthesized from shifts, S-box lookups
  are three-instruction load sequences, permutations are shift/mask idioms,
  and IDEA's modular multiply is the software low-high decomposition.
* ``ROT`` -- the original code plus ROL/ROR (the paper's normalization
  baseline: "many architectures have fast rotates").
* ``OPT`` -- the hand-optimized kernels using every proposed extension:
  rotates, ROLX/RORX combining, MULMOD, SBOX/SBOXSYNC, and XBOX.

The same kernel source is emitted at each level; the
:class:`~repro.isa.builder.KernelBuilder` idiom helpers expand differently.
"""

from __future__ import annotations

import enum


class Features(enum.IntEnum):
    NOROT = 0
    ROT = 1
    OPT = 2

    @property
    def has_rotates(self) -> bool:
        return self >= Features.ROT

    @property
    def has_crypto(self) -> bool:
        """ROLX/RORX, MULMOD, SBOX, XBOX available."""
        return self >= Features.OPT

    @property
    def label(self) -> str:
        return {0: "orig-norot", 1: "orig-rot", 2: "opt"}[int(self)]
