"""Content-hashed on-disk result cache for the experiment runner.

Every cached record is keyed by a SHA-256 over a canonical JSON rendering
of *what produced it*: the kernel program bytes (disassembly digest), the
functional inputs (key, IV, plaintext), the machine configuration, and
:data:`RUNNER_VERSION`.  Changing any of those -- including editing a
kernel so it emits different code -- changes the key, so stale results are
never returned; they are simply orphaned on disk.

The cache is a plain directory of JSON files (``<root>/<k[:2]>/<k>.json``),
safe to delete at any time.  Reads that hit a corrupted, truncated or
schema-mismatched file are treated as misses (the bad file is removed
best-effort) and the result is recomputed; writes are atomic
(temp file + ``os.replace``) so concurrent runners never observe partial
records.

Alongside the JSON records the cache stores *blobs* -- pickled records
(``<root>/<k[:2]>/<k>.bin``) used for functional traces, whose
``array``-backed columns serialize as raw machine words rather than JSON
number lists.  Blobs follow the same key discipline, atomicity and
corruption-is-a-miss rules.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path

#: Bump whenever the simulators, kernels' table layouts, or the record
#: schema change in a way the content hash cannot see.
RUNNER_VERSION = 3  # v3: array-backed traces + streaming pipeline (PR 3)


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR``, else
    ``$XDG_CACHE_HOME/repro-runner``, else ``~/.cache/repro-runner``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-runner"


def _canonical(value):
    """Reduce ``value`` to JSON-stable primitives; bytes become digests."""
    if isinstance(value, bytes):
        return {"__bytes_sha256__": hashlib.sha256(value).hexdigest()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(value[key]) for key in sorted(value)}
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, int):           # covers IntEnum (Features)
        return int(value)
    raise TypeError(f"cannot canonicalize {type(value).__name__} for hashing")


def content_key(parts) -> str:
    """SHA-256 hex digest of a canonical JSON rendering of ``parts``."""
    blob = json.dumps(_canonical(parts), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed JSON store addressed by content key.

    ``enabled=False`` turns every operation into a no-op (the ``--no-cache``
    path); the runner logic stays identical either way.
    """

    def __init__(self, root: Path | str | None = None, enabled: bool = True):
        self.enabled = enabled
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.errors = 0
        #: Optional :class:`repro.obs.EventBus`: every hit/miss/write is
        #: published to the run ledger as ``source="cache"`` (the
        #: Observability session attaches this via ``--events-out``).
        self.bus = None

    def _publish(self, type: str, kind: str, key: str) -> None:
        if self.bus is not None:
            self.bus.publish("cache", type, {"kind": kind, "key": key[:12]})

    @classmethod
    def from_env(cls) -> "ResultCache":
        """Default cache: honors ``REPRO_NO_CACHE`` and ``REPRO_CACHE_DIR``."""
        return cls(enabled=not os.environ.get("REPRO_NO_CACHE"))

    @classmethod
    def disabled(cls) -> "ResultCache":
        return cls(enabled=False)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Fetch a record; any corruption is a miss, never an exception."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            self._publish("miss", "record", key)
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._discard(path)
            self.misses += 1
            self._publish("miss", "record", key)
            return None
        if not isinstance(record, dict) or record.get("key") != key:
            self._discard(path)
            self.misses += 1
            self._publish("miss", "record", key)
            return None
        self.hits += 1
        self._publish("hit", "record", key)
        return record

    def put(self, key: str, record: dict) -> None:
        """Atomically persist ``record`` under ``key`` (best effort)."""
        if not self.enabled:
            return
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(dict(record, key=key), handle)
                os.replace(tmp, path)
                self._publish("write", "record", key)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, TypeError, ValueError):
            # A full disk or unserializable record must never fail a run.
            self.errors += 1

    # -- pickled blobs (functional traces) --------------------------------

    def blob_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.bin"

    def has_blob(self, key: str) -> bool:
        """Cheap existence probe (no deserialization)."""
        return self.enabled and self.blob_path_for(key).is_file()

    def get_blob(self, key: str) -> dict | None:
        """Fetch a pickled record; any corruption is a miss."""
        if not self.enabled:
            return None
        path = self.blob_path_for(key)
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            self._publish("miss", "blob", key)
            return None
        except (OSError, EOFError, AttributeError, ImportError, IndexError,
                ValueError, pickle.UnpicklingError):
            self._discard(path)
            self.misses += 1
            self._publish("miss", "blob", key)
            return None
        if not isinstance(record, dict) or record.get("key") != key:
            self._discard(path)
            self.misses += 1
            self._publish("miss", "blob", key)
            return None
        self.hits += 1
        self._publish("hit", "blob", key)
        return record

    def put_blob(self, key: str, record: dict) -> None:
        """Atomically persist a pickled record under ``key`` (best effort)."""
        if not self.enabled:
            return
        path = self.blob_path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(dict(record, key=key), handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
                self._publish("write", "blob", key)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, TypeError, ValueError, pickle.PicklingError):
            self.errors += 1

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)

    def _discard(self, path: Path) -> None:
        self.errors += 1
        try:
            os.unlink(path)
        except OSError:
            pass
