"""The unified experiment engine: dedup, fan-out, and result caching.

One :class:`Runner` serves every analysis harness and CLI tool:

* **Functional dedup** -- one dynamic trace per distinct
  :class:`~repro.runner.experiment.ExperimentOptions` value is generated
  once (in-process memo) and shared across all timing configurations.
* **Fan-out** -- cache-missing work is grouped by options and dispatched
  across a ``multiprocessing`` pool when ``jobs > 1``; each worker runs the
  group's functional simulation once, then every timing config against the
  shared trace.  Timing simulation is deterministic, so parallel results
  are bit-identical to serial ones.  If a pool cannot be created (restricted
  sandboxes) the runner falls back to serial execution.
* **Result caching** -- per-(experiment, config) :class:`SimStats` records
  persist in a :class:`~repro.runner.cache.ResultCache` keyed by a content
  hash of the kernel program bytes, functional inputs, machine config and
  runner version, so repeated report/benchmark invocations are near-instant.
* **Metrics** -- per-run wall time (broken down by phase: functional
  simulation, timing simulation, cache probing), cache hit/miss and
  instructions simulated flow through :class:`RunnerStats` and an optional
  per-result ``stats_hook`` callable.
* **Observability** -- an optional :class:`repro.obs.MetricsRegistry`
  receives runner and simulator counters, and an optional
  :class:`repro.obs.Tracer` records spans for every phase (functional
  runs, cache probes, per-config timing runs, the parallel fan-out), ready
  for Chrome/Perfetto export.  Both default to ``None`` at zero cost; the
  CLI tools enable them via ``--metrics-out`` / ``--trace-out``.

See ``docs/runner.md`` and ``docs/observability.md`` for the full API
walkthrough.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from array import array
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields

from repro.ciphers.suite import SUITE_BY_NAME
from repro.kernels import registry as kernel_registry
from repro.kernels.runtime import KernelRun
from repro.kernels.setup_registry import make_setup
from repro.runner.cache import RUNNER_VERSION, ResultCache, content_key
from repro.runner.experiment import Experiment, ExperimentOptions
from repro.runner.telemetry import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_STUCK_AFTER,
    FleetMonitor,
)
from repro.sim.config import MachineConfig
from repro.sim.stats import SimStats
from repro.sim.timing import make_pipeline, record_sim_metrics, simulate
from repro.sim.trace import (
    ADDR_TYPECODE,
    DEFAULT_CHUNK_SIZE,
    SEQ_TYPECODE,
    StaticInfo,
    Trace,
    TraceSource,
)


@dataclass
class RunResult:
    """Outcome of one experiment: timing stats plus provenance metadata."""

    experiment: Experiment
    stats: SimStats
    #: Functional instruction count of the underlying kernel run.
    instructions: int
    session_bytes: int
    cached: bool = False
    wall_time: float = 0.0

    @property
    def cipher(self) -> str:
        return self.experiment.options.cipher

    @property
    def config_name(self) -> str:
        return self.experiment.config.name

    @property
    def instructions_per_byte(self) -> float:
        return self.instructions / self.session_bytes if self.session_bytes \
            else 0.0

    def bytes_per_kilocycle(self) -> float:
        return self.stats.bytes_per_kilocycle(self.session_bytes)


@dataclass
class RunnerStats:
    """Aggregate counters for one runner's lifetime.

    Wall time is accounted per phase -- functional simulation, timing
    simulation, and cache probing (key hashing + disk lookups) -- and
    covers work done in pool workers too: workers report their functional
    time back with their results.  ``wall_time`` is the sum of the phases.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    functional_runs: int = 0
    timing_runs: int = 0
    instructions_simulated: int = 0
    wall_time_functional: float = 0.0
    wall_time_timing: float = 0.0
    wall_time_cache: float = 0.0
    #: Largest dynamic-trace payload held in memory at once (bytes): one
    #: chunk on the streaming path, the whole trace on the batch path.
    peak_trace_bytes: int = 0

    def note_trace_bytes(self, nbytes: int) -> None:
        if nbytes > self.peak_trace_bytes:
            self.peak_trace_bytes = nbytes

    @property
    def wall_time(self) -> float:
        return (self.wall_time_functional + self.wall_time_timing
                + self.wall_time_cache)

    def phase_breakdown(self) -> dict[str, float]:
        return {
            "functional": self.wall_time_functional,
            "timing": self.wall_time_timing,
            "cache": self.wall_time_cache,
        }

    def summary(self) -> str:
        return (
            f"runner: {self.cache_hits} cache hits, "
            f"{self.cache_misses} misses, {self.functional_runs} functional "
            f"+ {self.timing_runs} timing runs, "
            f"{self.instructions_simulated} instructions simulated, "
            f"{self.wall_time:.1f}s wall "
            f"(functional {self.wall_time_functional:.1f}s, "
            f"timing {self.wall_time_timing:.1f}s, "
            f"cache {self.wall_time_cache:.1f}s)"
        )


def _stats_to_dict(stats: SimStats) -> dict:
    record = asdict(stats)
    record["extra"] = {
        key: value for key, value in stats.extra.items()
        if isinstance(value, (bool, int, float, str))
    }
    return record


def _stats_from_dict(record: dict) -> SimStats:
    known = {field.name for field in fields(SimStats)}
    if "config_name" not in record:
        raise KeyError("config_name")
    return SimStats(**{key: record[key] for key in record if key in known})


class Runner:
    """Parallel, cached driver for kernel timing experiments."""

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        jobs: int = 1,
        stats_hook=None,
        metrics=None,
        tracer=None,
        stream: bool = True,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        backend: str | None = None,
        timing_engine: str | None = None,
        bus=None,
        heartbeat_hook=None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        stuck_after: float = DEFAULT_STUCK_AFTER,
    ):
        self.cache = cache if cache is not None else ResultCache.from_env()
        self.jobs = max(1, int(jobs))
        self.stats_hook = stats_hook
        self.metrics = metrics
        self.tracer = tracer
        #: Optional :class:`repro.obs.EventBus`: fleet telemetry, cache
        #: traffic and per-experiment results are published to the run
        #: ledger (``--events-out``, ``repro.tools.dash``).
        self.bus = bus
        if bus is not None and getattr(self.cache, "bus", None) is None:
            self.cache.bus = bus
        #: Fleet-telemetry sinks: ``heartbeat_hook`` receives the event
        #: stream documented in :mod:`repro.runner.telemetry` (the CLI
        #: ``--progress`` flag plugs a ProgressReporter in here), emitted
        #: identically by the serial and multiprocessing paths.
        self.heartbeat_hook = heartbeat_hook
        self.heartbeat_interval = heartbeat_interval
        self.stuck_after = stuck_after
        #: Overlap functional execution and timing through the chunked
        #: trace stream (bounded memory).  Per-experiment
        #: ``ExperimentOptions.stream`` overrides; results are identical.
        self.stream = stream
        self.chunk_size = max(1, int(chunk_size))
        #: Default execution backend for functional runs; per-experiment
        #: ``ExperimentOptions.backend`` overrides.  Never part of cache
        #: keys: backends are bit-identical, so records interchange.
        self.backend = backend
        #: Default timing engine (``"generic"``/``"specialized"``);
        #: per-experiment ``ExperimentOptions.timing_engine`` overrides.
        #: Never part of cache keys: engines are bit-identical, so
        #: records interchange.
        self.timing_engine = timing_engine
        self.stats = RunnerStats()
        self._kernels: dict[tuple, object] = {}
        self._functional: dict[ExperimentOptions, object] = {}
        self._fingerprints: dict[ExperimentOptions, str] = {}

    def _span(self, name: str, category: str, args: dict | None = None):
        """A tracer span, or an inert stand-in when tracing is off."""
        if self.tracer is not None:
            return self.tracer.span(name, category, args)
        return _null_span(args)

    # -- kernel construction and content hashing ---------------------------

    def _resolved_key(self, options: ExperimentOptions) -> bytes:
        if options.key is not None:
            return options.key
        return bytes(range(SUITE_BY_NAME[options.cipher].key_bytes))

    def _kernel(self, options: ExperimentOptions):
        memo_key = (options.cipher, int(options.features),
                    self._resolved_key(options), options.base_offset)
        kernel = self._kernels.get(memo_key)
        if kernel is None:
            kernel = kernel_registry.KERNELS[options.cipher](
                self._resolved_key(options), options.features
            )
            kernel.base_offset = options.base_offset
            self._kernels[memo_key] = kernel
        return kernel

    def _resolved_backend(self, options: ExperimentOptions) -> str | None:
        return options.backend if options.backend is not None else self.backend

    def _resolved_timing_engine(
        self, options: ExperimentOptions
    ) -> str | None:
        if options.timing_engine is not None:
            return options.timing_engine
        return self.timing_engine

    def _warm_ranges(self, options: ExperimentOptions):
        """The cache-warm ranges a kernel run reports, without running it."""
        if options.kind == "setup":
            return None
        kernel = self._kernel(options)
        layout = kernel.layout_for(options.session_bytes)
        return [
            (layout.tables, kernel.tables_bytes),
            (layout.keys, kernel.keys_bytes),
            (layout.iv, 64),
        ]

    def fingerprint(self, options: ExperimentOptions) -> str:
        """Content hash of one functional run: program bytes + inputs.

        ``record_values`` is deliberately excluded -- recording destination
        values changes what the trace carries in memory, not any simulated
        result.
        """
        cached = self._fingerprints.get(options)
        if cached is not None:
            return cached
        key = self._resolved_key(options)
        if options.kind == "setup":
            setup = make_setup(options.cipher, key)
            program = setup.build_program(setup.layout()).finalize()
            inputs = {"plaintext": b"", "iv": b""}
        else:
            kernel = self._kernel(options)
            program = kernel.program_for(
                options.session_bytes, decrypt=options.kind == "decrypt"
            )
            inputs = {
                "plaintext": options.resolved_plaintext(),
                "iv": options.iv if options.iv is not None else b"",
            }
        digest = content_key({
            "runner_version": RUNNER_VERSION,
            "kind": options.kind,
            "cipher": options.cipher,
            "features": options.features.label,
            "session_bytes": options.session_bytes,
            "base_offset": options.base_offset,
            "key": key,
            "program": program.digest(),
            "warm": self._warm_ranges(options),
            **inputs,
        })
        self._fingerprints[options] = digest
        return digest

    def experiment_key(self, experiment: Experiment) -> str:
        """Content hash naming one (functional run, machine config) result."""
        return content_key({
            "record": "experiment",
            "fingerprint": self.fingerprint(experiment.options),
            "config": asdict(experiment.config),
        })

    # -- functional simulation (memoized + blob-cached) --------------------

    def _trace_blob_key(self, options: ExperimentOptions) -> str | None:
        """Disk key of the materialized functional trace, if cacheable."""
        if options.kind == "setup":
            return None
        return content_key({
            "record": "functional-trace",
            "version": RUNNER_VERSION,
            "fingerprint": self.fingerprint(options),
            "record_values": options.record_values,
        })

    def _run_from_blob(self, options: ExperimentOptions, blob: dict):
        """Rebuild a ``KernelRun`` from a cached trace blob."""
        kernel = self._kernel(options)
        program = kernel.program_for(
            options.session_bytes, decrypt=options.kind == "decrypt"
        )
        trace = Trace(
            program=program,
            static=StaticInfo.from_program(program),
            seq=blob["seq"],
            addrs=blob["addrs"],
            values=blob.get("values"),
            instructions_executed=int(blob["instructions"]),
        )
        return KernelRun(
            trace=trace,
            ciphertext=blob["ciphertext"],
            instructions=int(blob["instructions"]),
            session_bytes=int(blob["session_bytes"]),
            warm_ranges=[tuple(pair) for pair in blob["warm_ranges"]],
        )

    def functional(self, options: ExperimentOptions):
        """Run (or reuse) the functional simulation for ``options``.

        Returns the kernel's ``KernelRun`` (or ``SetupRun`` for
        ``kind='setup'``).  One trace per distinct options value per
        process, shared by every timing config.  Materialized traces are
        persisted as compact array blobs, so a later process asking for
        the same functional run deserializes it instead of re-executing.
        """
        run = self._functional.get(options)
        if run is not None:
            return run
        blob_key = self._trace_blob_key(options)
        if blob_key is not None:
            probe_start = time.perf_counter()
            blob = self.cache.get_blob(blob_key)
            self.stats.wall_time_cache += time.perf_counter() - probe_start
            if blob is not None:
                try:
                    run = self._run_from_blob(options, blob)
                except (KeyError, TypeError, ValueError):
                    self.cache.errors += 1
                    run = None
                if run is not None:
                    self.stats.note_trace_bytes(run.trace.nbytes)
                    self._functional[options] = run
                    return run
        start = time.perf_counter()
        with self._span(f"functional:{options.cipher}", "functional",
                        {"cipher": options.cipher, "kind": options.kind,
                         "session_bytes": options.session_bytes}):
            backend = self._resolved_backend(options)
            if options.kind == "setup":
                run = make_setup(
                    options.cipher, self._resolved_key(options)
                ).run(backend=backend)
            else:
                kernel = self._kernel(options)
                data = options.resolved_plaintext()
                if options.kind == "decrypt":
                    ciphertext = kernel.encrypt(
                        data, options.iv, record_trace=False, backend=backend
                    ).ciphertext
                    run = kernel.decrypt(
                        ciphertext, options.iv,
                        record_values=options.record_values,
                        backend=backend,
                    )
                else:
                    run = kernel.encrypt(
                        data, options.iv,
                        record_values=options.record_values,
                        backend=backend,
                    )
        elapsed = time.perf_counter() - start
        self.stats.functional_runs += 1
        self.stats.wall_time_functional += elapsed
        if self.metrics is not None:
            self.metrics.counter("runner.functional_runs").inc()
            self.metrics.histogram(
                "runner.functional.seconds", {"cipher": options.cipher}
            ).observe(elapsed)
        if run.trace is not None:
            self.stats.note_trace_bytes(run.trace.nbytes)
            if blob_key is not None:
                self.cache.put_blob(blob_key, {
                    "version": RUNNER_VERSION,
                    "seq": run.trace.seq,
                    "addrs": run.trace.addrs,
                    "values": run.trace.values,
                    "instructions": run.instructions,
                    "ciphertext": run.ciphertext,
                    "session_bytes": run.session_bytes,
                    "warm_ranges": run.warm_ranges,
                })
        self._functional[options] = run
        return run

    # -- the experiment pipeline -------------------------------------------

    def run(self, experiments) -> list[RunResult]:
        """Execute a batch of experiments; results keep the input order.

        Cache hits are served from disk; misses are grouped by options (one
        functional run per group) and executed serially or across the
        process pool.
        """
        experiments = list(experiments)
        results: list[RunResult | None] = [None] * len(experiments)
        pending: dict[ExperimentOptions, list[tuple[int, Experiment, str]]]
        pending = {}
        probe_start = time.perf_counter()
        with self._span("cache-probe", "cache",
                        {"experiments": len(experiments)}) as span_args:
            for index, experiment in enumerate(experiments):
                key = self.experiment_key(experiment)
                result = self._lookup(experiment, key)
                if result is not None:
                    self.stats.cache_hits += 1
                    results[index] = result
                    self._publish_result(result)
                    if self.stats_hook is not None:
                        self.stats_hook(result)
                else:
                    self.stats.cache_misses += 1
                    pending.setdefault(experiment.options, []).append(
                        (index, experiment, key)
                    )
            span_args["hits"] = len(experiments) - sum(
                len(entries) for entries in pending.values()
            )
            span_args["misses"] = len(experiments) - span_args["hits"]
        self.stats.wall_time_cache += time.perf_counter() - probe_start
        if self.metrics is not None:
            self.metrics.counter("runner.cache.hits").inc(span_args["hits"])
            self.metrics.counter("runner.cache.misses").inc(
                span_args["misses"]
            )
        if pending:
            self._execute_pending(pending, results)
        return results  # type: ignore[return-value]

    def run_one(self, experiment: Experiment) -> RunResult:
        return self.run([experiment])[0]

    def _lookup(self, experiment: Experiment, key: str) -> RunResult | None:
        record = self.cache.get(key)
        if record is None:
            return None
        try:
            return self._result_from_record(experiment, record, cached=True)
        except (KeyError, TypeError, ValueError):
            # Schema drift in an old record: recompute.
            self.cache.errors += 1
            return None

    def _monitor(self, pending) -> FleetMonitor:
        return FleetMonitor(
            total_groups=len(pending),
            total_experiments=sum(len(e) for e in pending.values()),
            jobs=self.jobs,
            hook=self.heartbeat_hook,
            metrics=self.metrics,
            tracer=self.tracer,
            bus=self.bus,
            interval=self.heartbeat_interval,
            stuck_after=self.stuck_after,
        )

    @staticmethod
    def _group_label(options: ExperimentOptions) -> str:
        return f"{options.cipher}/{options.kind}:{options.session_bytes}B"

    def _execute_pending(self, pending, results) -> None:
        # Groups whose trace already lives in this process run locally; cold
        # groups are eligible for the pool.
        local = {opts: entries for opts, entries in pending.items()
                 if opts in self._functional}
        cold = {opts: entries for opts, entries in pending.items()
                if opts not in self._functional}
        computed: dict[ExperimentOptions, list[dict]] = {}
        with self._monitor(pending) as monitor:
            if cold and self.jobs > 1 and len(cold) > 1:
                parallel = self._run_groups_parallel(cold, monitor)
                if parallel is not None:
                    computed.update(parallel)
                    cold = {}
            for options, entries in {**local, **cold}.items():
                monitor.dispatch(self._group_label(options))
                computed[options] = self._run_group_records(
                    options, [entry[1].config for entry in entries]
                )
                monitor.complete(self._group_label(options))
        for options, entries in pending.items():
            records = computed[options]
            for (index, experiment, key), record in zip(entries, records):
                self.cache.put(key, record)
                result = self._result_from_record(
                    experiment, record, cached=False
                )
                self.stats.timing_runs += 1
                self.stats.instructions_simulated += result.stats.instructions
                self.stats.wall_time_timing += result.wall_time
                if self.metrics is not None:
                    self.metrics.histogram(
                        "runner.experiment.seconds",
                        {"cipher": result.cipher,
                         "config": result.config_name},
                    ).observe(result.wall_time)
                results[index] = result
                self._publish_result(result)
                if self.stats_hook is not None:
                    self.stats_hook(result)

    def _publish_result(self, result: RunResult) -> None:
        """One ledger event per experiment result, with the slot account.

        The flattened ``slots.*`` fractions feed the dashboard's
        stall-category bars without it ever deserializing a SimStats.
        """
        if self.bus is None:
            return
        data = {
            "cipher": result.cipher,
            "config": result.config_name,
            "cycles": result.stats.cycles,
            "instructions": result.instructions,
            "ipc": round(result.stats.ipc, 4),
            "session_bytes": result.session_bytes,
            "cached": result.cached,
            "wall_time": round(result.wall_time, 6),
        }
        for category, fraction in result.stats.stall_fractions().items():
            data[f"slots.{category}"] = round(fraction, 6)
        self.bus.publish("runner", "result", data)

    def _run_groups_parallel(self, pending, monitor: FleetMonitor):
        specs = [
            (options, [entry[1].config for entry in entries],
             self.stream, self.chunk_size, self.backend, self.timing_engine)
            for options, entries in pending.items()
        ]
        labels = [self._group_label(spec[0]) for spec in specs]
        try:
            with self._span("parallel-fanout", "timing",
                            {"groups": len(specs), "jobs": self.jobs}):
                with multiprocessing.Pool(min(self.jobs, len(specs))) as pool:
                    # apply_async (not map) so each group's completion is
                    # observed live by the fleet monitor: the callback runs
                    # on the pool's result thread the moment a worker
                    # finishes, keeping heartbeats/ETA accurate.
                    handles = []
                    for spec, label in zip(specs, labels):
                        monitor.dispatch(label)
                        handles.append(pool.apply_async(
                            _worker_run_group, (spec,),
                            callback=lambda _out, label=label:
                                monitor.complete(label),
                        ))
                    outputs = [handle.get() for handle in handles]
        except Exception as error:  # pool unavailable or worker died
            # Keep the dispatched groups accounted (the serial fallback
            # runs exactly those; its dispatch() calls are idempotent),
            # but restart their timers and the watchdog's progress clock
            # so the ledger matches the pool path's event sequence.
            monitor.requeue_all()
            warnings.warn(
                f"parallel runner unavailable ({error!r}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        # Workers ran the functional simulations out of process; fold the
        # wall time (and peak trace memory) they report back.
        self.stats.functional_runs += len(specs)
        self.stats.wall_time_functional += sum(
            output["functional_wall_time"] for output in outputs
        )
        for output in outputs:
            self.stats.note_trace_bytes(output.get("peak_trace_bytes", 0))
        return dict(zip(
            (spec[0] for spec in specs),
            (output["records"] for output in outputs),
        ))

    def _should_stream(self, options: ExperimentOptions) -> bool:
        """Streaming eligibility for one experiment group.

        Streaming is skipped when the trace is already materialized in
        this process (or sitting in the blob cache -- reusing it beats
        re-executing), when the caller asked for recorded values (the
        value-prediction study reads the trace directly), and for setup
        runs (tiny traces, separate harness).
        """
        if options.kind == "setup" or options.record_values:
            return False
        enabled = options.stream if options.stream is not None else self.stream
        if not enabled:
            return False
        if options in self._functional:
            return False
        blob_key = self._trace_blob_key(options)
        return blob_key is None or not self.cache.has_blob(blob_key)

    def _run_group_records(self, options, configs) -> list[dict]:
        if self._should_stream(options):
            return self._stream_group_records(options, configs)
        run = self.functional(options)
        warm = None if options.kind == "setup" else run.warm_ranges
        records = []
        for config in configs:
            start = time.perf_counter()
            with self._span(f"timing:{options.cipher}:{config.name}",
                            "timing",
                            {"cipher": options.cipher,
                             "config": config.name}) as span_args:
                stats = simulate(run.trace, config, warm,
                                 metrics=self.metrics,
                                 engine=self._resolved_timing_engine(options))
                span_args["cycles"] = stats.cycles
            elapsed = time.perf_counter() - start
            if self.metrics is not None:
                self.metrics.histogram(
                    "runner.timing.seconds",
                    {"cipher": options.cipher, "config": config.name},
                ).observe(elapsed)
            records.append({
                "version": RUNNER_VERSION,
                "cipher": options.cipher,
                "config": config.name,
                "instructions": run.instructions,
                "session_bytes": options.session_bytes,
                "stats": _stats_to_dict(stats),
                "wall_time": elapsed,
            })
        return records

    def kernel_stream(self, options, chunk_size: int | None = None):
        """A live single-pass kernel stream for one experiment's options.

        The streaming execution path and the trace bisector
        (``repro.tools.diff bisect``) both need "the trace this
        experiment would produce" without materializing it; this builds
        exactly the stream the runner itself feeds to its pipelines --
        same backend resolution, same decrypt pre-encryption, same chunk
        sizing (``chunk_size`` overrides the experiment's, then the
        runner's).  Setup traces are short and always materialized, so
        they have no streaming form.
        """
        if options.kind == "setup":
            raise ValueError(
                "setup runs have no streaming form; use "
                "functional(options).trace"
            )
        kernel = self._kernel(options)
        data = options.resolved_plaintext()
        if chunk_size is None:
            chunk_size = (options.chunk_size
                          if options.chunk_size is not None
                          else self.chunk_size)
        backend = self._resolved_backend(options)
        if options.kind == "decrypt":
            # The preliminary encryption only provides the input bytes; no
            # trace is recorded for it.
            payload = kernel.encrypt(
                data, options.iv, record_trace=False, backend=backend
            ).ciphertext
            return kernel.stream(payload, options.iv, decrypt=True,
                                 chunk_size=chunk_size, backend=backend)
        return kernel.stream(data, options.iv, chunk_size=chunk_size,
                             backend=backend)

    def _stream_group_records(self, options, configs) -> list[dict]:
        """One machine stream feeding one timing pipeline per config.

        The functional interpreter advances chunk by chunk and every
        pipeline consumes each chunk as it is produced, so peak trace
        memory is one chunk regardless of session length, and functional
        work is still done once per group (the same dedup as the batch
        path).  Produces records identical to :meth:`_run_group_records`.
        """
        stream = self.kernel_stream(options)
        engine = self._resolved_timing_engine(options)
        pipelines = [
            make_pipeline(config, stream.source.static,
                          stream.source.program,
                          warm_ranges=stream.warm_ranges, engine=engine)
            for config in configs
        ]
        # With the disk cache on, accumulate the compact columns so the
        # trace blob can be written through -- a later functional() call
        # (same process or another) then deserializes instead of
        # re-executing.  Bounded peak memory is the --no-cache (or
        # already-cached) regime; the write-through costs one compact
        # trace, never the full Trace object graph.
        blob_key = self._trace_blob_key(options)
        keep = blob_key is not None and self.cache.enabled
        seq_acc = array(SEQ_TYPECODE) if keep else None
        addrs_acc = array(ADDR_TYPECODE) if keep else None
        tracer = self.tracer
        perf = time.perf_counter
        functional_time = 0.0
        timing_times = [0.0] * len(pipelines)
        peak = 0
        chunks = 0
        span_start = tracer.now_us() if tracer is not None else 0.0
        generator = stream.source.chunks()
        while True:
            chunk_ts = tracer.now_us() if tracer is not None else 0.0
            t0 = perf()
            chunk = next(generator, None)
            functional_time += perf() - t0
            if chunk is None:
                break
            chunks += 1
            if keep:
                seq_acc.extend(chunk.seq)
                addrs_acc.extend(chunk.addrs)
            nbytes = chunk.nbytes
            if nbytes > peak:
                peak = nbytes
            for index, pipeline in enumerate(pipelines):
                t0 = perf()
                pipeline.feed(chunk)
                timing_times[index] += perf() - t0
            if tracer is not None:
                tracer.add_event({
                    "name": f"chunk:{options.cipher}", "cat": "stream",
                    "ph": "X", "ts": chunk_ts,
                    "dur": tracer.now_us() - chunk_ts,
                    "pid": tracer.pid, "tid": 0,
                    "args": {"index": chunks - 1, "entries": len(chunk),
                             "bytes": nbytes},
                })
        t0 = perf()
        fin = stream.finalize()
        functional_time += perf() - t0
        if keep:
            held = (seq_acc.itemsize * len(seq_acc)
                    + addrs_acc.itemsize * len(addrs_acc))
            if held > peak:
                peak = held
            self.cache.put_blob(blob_key, {
                "version": RUNNER_VERSION,
                "seq": seq_acc,
                "addrs": addrs_acc,
                "values": None,
                "instructions": fin.instructions,
                "ciphertext": fin.ciphertext,
                "session_bytes": fin.session_bytes,
                "warm_ranges": fin.warm_ranges,
            })

        self.stats.functional_runs += 1
        self.stats.wall_time_functional += functional_time
        self.stats.note_trace_bytes(peak)
        if self.metrics is not None:
            self.metrics.counter("runner.functional_runs").inc()
            self.metrics.histogram(
                "runner.functional.seconds", {"cipher": options.cipher}
            ).observe(functional_time)
            self.metrics.gauge("runner.peak_trace_bytes").set(
                self.stats.peak_trace_bytes
            )
        if tracer is not None:
            # The phases ran interleaved; report each with its measured
            # share so span names and totals match the batch path.
            tracer.add_event({
                "name": f"functional:{options.cipher}", "cat": "functional",
                "ph": "X", "ts": span_start, "dur": functional_time * 1e6,
                "pid": tracer.pid, "tid": 0,
                "args": {"cipher": options.cipher, "kind": options.kind,
                         "session_bytes": options.session_bytes,
                         "streamed": True, "chunks": chunks},
            })

        records = []
        for index, (config, pipeline) in enumerate(zip(configs, pipelines)):
            t0 = perf()
            stats = pipeline.finish()
            elapsed = timing_times[index] + (perf() - t0)
            if self.metrics is not None:
                record_sim_metrics(self.metrics, config, stats)
                self.metrics.histogram(
                    "runner.timing.seconds",
                    {"cipher": options.cipher, "config": config.name},
                ).observe(elapsed)
            if tracer is not None:
                tracer.add_event({
                    "name": f"timing:{options.cipher}:{config.name}",
                    "cat": "timing", "ph": "X",
                    "ts": span_start, "dur": elapsed * 1e6,
                    "pid": tracer.pid, "tid": 0,
                    "args": {"cipher": options.cipher,
                             "config": config.name,
                             "cycles": stats.cycles, "streamed": True},
                })
            records.append({
                "version": RUNNER_VERSION,
                "cipher": options.cipher,
                "config": config.name,
                "instructions": fin.instructions,
                "session_bytes": options.session_bytes,
                "stats": _stats_to_dict(stats),
                "wall_time": elapsed,
            })
        return records

    def _result_from_record(
        self, experiment: Experiment, record: dict, cached: bool
    ) -> RunResult:
        return RunResult(
            experiment=experiment,
            stats=_stats_from_dict(record["stats"]),
            instructions=int(record["instructions"]),
            session_bytes=int(record["session_bytes"]),
            cached=cached,
            wall_time=float(record.get("wall_time", 0.0)),
        )

    # -- generic cached channels (synthetic traces, derived metrics) -------

    def simulate_trace(
        self,
        trace: Trace,
        config: MachineConfig,
        warm_ranges=None,
        *,
        key_parts=None,
    ) -> SimStats:
        """Timing-simulate an arbitrary trace, optionally disk-cached.

        ``key_parts`` must content-identify the trace (e.g. the component
        fingerprints of a multisession interleaving, or a program digest);
        without it the simulation runs uncached.
        """
        key = None
        if key_parts is not None:
            key = content_key({
                "record": "trace-sim",
                "version": RUNNER_VERSION,
                "parts": key_parts,
                "config": asdict(config),
                "warm": warm_ranges,
            })
            record = self.cache.get(key)
            if record is not None:
                try:
                    stats = _stats_from_dict(record["stats"])
                except (KeyError, TypeError, ValueError):
                    self.cache.errors += 1
                else:
                    self.stats.cache_hits += 1
                    return stats
            self.stats.cache_misses += 1
        start = time.perf_counter()
        self.stats.note_trace_bytes(getattr(trace, "nbytes", 0))
        with self._span(f"trace-sim:{config.name}", "timing",
                        {"config": config.name}):
            stats = simulate(trace, config, warm_ranges,
                             metrics=self.metrics,
                             engine=self.timing_engine)
        self.stats.timing_runs += 1
        self.stats.instructions_simulated += stats.instructions
        self.stats.wall_time_timing += time.perf_counter() - start
        if key is not None:
            self.cache.put(key, {
                "version": RUNNER_VERSION,
                "stats": _stats_to_dict(stats),
            })
        return stats

    def simulate_stream(
        self,
        source: TraceSource,
        configs,
        warm_ranges=None,
        *,
        key_parts=None,
        chunk_size: int | None = None,
    ) -> list[SimStats]:
        """Timing-simulate a single-pass trace source on several configs.

        The streaming twin of :meth:`simulate_trace`: one pipeline per
        config consumes each chunk as the source produces it, so a live
        :class:`~repro.sim.machine.StreamingTrace` is executed exactly
        once and never materialized.  Cache records are shared with
        :meth:`simulate_trace` (same ``trace-sim`` keys -- the results are
        bit-identical), keyed per config by ``key_parts``; when *every*
        config hits, the source is left untouched (the machine never
        runs).
        """
        configs = list(configs)
        stats_list: list[SimStats | None] = [None] * len(configs)
        keys: list[str | None] = [None] * len(configs)
        if key_parts is not None:
            for index, config in enumerate(configs):
                key = content_key({
                    "record": "trace-sim",
                    "version": RUNNER_VERSION,
                    "parts": key_parts,
                    "config": asdict(config),
                    "warm": warm_ranges,
                })
                keys[index] = key
                record = self.cache.get(key)
                if record is not None:
                    try:
                        stats_list[index] = _stats_from_dict(record["stats"])
                    except (KeyError, TypeError, ValueError):
                        self.cache.errors += 1
                if stats_list[index] is not None:
                    self.stats.cache_hits += 1
                else:
                    self.stats.cache_misses += 1
        missing = [i for i, stats in enumerate(stats_list) if stats is None]
        if not missing:
            return stats_list  # type: ignore[return-value]

        pipelines = {
            index: make_pipeline(configs[index], source.static,
                                 source.program, warm_ranges=warm_ranges,
                                 engine=self.timing_engine)
            for index in missing
        }
        perf = time.perf_counter
        functional_time = 0.0
        timing_time = 0.0
        peak = 0
        with self._span("stream-sim", "timing",
                        {"configs": [configs[i].name for i in missing]}):
            generator = source.chunks(chunk_size)
            while True:
                t0 = perf()
                chunk = next(generator, None)
                functional_time += perf() - t0
                if chunk is None:
                    break
                if chunk.nbytes > peak:
                    peak = chunk.nbytes
                t0 = perf()
                for pipeline in pipelines.values():
                    pipeline.feed(chunk)
                timing_time += perf() - t0
        self.stats.wall_time_functional += functional_time
        self.stats.note_trace_bytes(peak)
        for index, pipeline in pipelines.items():
            t0 = perf()
            stats = pipeline.finish()
            timing_time += perf() - t0
            stats_list[index] = stats
            self.stats.timing_runs += 1
            self.stats.instructions_simulated += stats.instructions
            if self.metrics is not None:
                record_sim_metrics(self.metrics, configs[index], stats)
            if keys[index] is not None:
                self.cache.put(keys[index], {
                    "version": RUNNER_VERSION,
                    "stats": _stats_to_dict(stats),
                })
        self.stats.wall_time_timing += timing_time
        if self.metrics is not None:
            self.metrics.gauge("runner.peak_trace_bytes").set(
                self.stats.peak_trace_bytes
            )
        return stats_list  # type: ignore[return-value]

    def cached_value(self, key_parts, compute):
        """Disk-cache an arbitrary JSON-serializable derived value.

        Used by harnesses whose result is not a :class:`SimStats` (op-mix
        histograms, value-prediction hit rates).  ``key_parts`` must include
        everything the value depends on -- typically a :meth:`fingerprint`.
        """
        key = content_key({
            "record": "value",
            "version": RUNNER_VERSION,
            "parts": key_parts,
        })
        record = self.cache.get(key)
        if record is not None and "value" in record:
            self.stats.cache_hits += 1
            return record["value"]
        if record is not None:
            self.cache.errors += 1
        self.stats.cache_misses += 1
        value = compute()
        self.cache.put(key, {"version": RUNNER_VERSION, "value": value})
        return value


@contextmanager
def _null_span(args: dict | None = None):
    """Stand-in for :meth:`repro.obs.Tracer.span` when tracing is off."""
    yield dict(args or {})


def _worker_run_group(spec):
    """Pool entry point: one functional run + its timing configs.

    Returns the records plus the worker's functional wall time and peak
    trace memory so the parent runner's accounting covers out-of-process
    work.
    """
    options, configs, stream, chunk_size, backend, timing_engine = spec
    worker = Runner(cache=ResultCache.disabled(), jobs=1,
                    stream=stream, chunk_size=chunk_size, backend=backend,
                    timing_engine=timing_engine)
    records = worker._run_group_records(options, configs)
    return {
        "records": records,
        "functional_wall_time": worker.stats.wall_time_functional,
        "peak_trace_bytes": worker.stats.peak_trace_bytes,
    }
