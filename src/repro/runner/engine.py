"""The unified experiment engine: dedup, fan-out, and result caching.

One :class:`Runner` serves every analysis harness and CLI tool:

* **Functional dedup** -- one dynamic trace per distinct
  :class:`~repro.runner.experiment.ExperimentOptions` value is generated
  once (in-process memo) and shared across all timing configurations.
* **Fan-out** -- cache-missing work is grouped by options and dispatched
  across a ``multiprocessing`` pool when ``jobs > 1``; each worker runs the
  group's functional simulation once, then every timing config against the
  shared trace.  Timing simulation is deterministic, so parallel results
  are bit-identical to serial ones.  If a pool cannot be created (restricted
  sandboxes) the runner falls back to serial execution.
* **Result caching** -- per-(experiment, config) :class:`SimStats` records
  persist in a :class:`~repro.runner.cache.ResultCache` keyed by a content
  hash of the kernel program bytes, functional inputs, machine config and
  runner version, so repeated report/benchmark invocations are near-instant.
* **Metrics** -- per-run wall time, cache hit/miss and instructions
  simulated flow through :class:`RunnerStats` and an optional per-result
  ``stats_hook`` callable.

See ``docs/runner.md`` for the full API walkthrough.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from dataclasses import asdict, dataclass, fields

from repro.ciphers.suite import SUITE_BY_NAME
from repro.kernels import registry as kernel_registry
from repro.kernels.setup_registry import make_setup
from repro.runner.cache import RUNNER_VERSION, ResultCache, content_key
from repro.runner.experiment import Experiment, ExperimentOptions
from repro.sim.config import MachineConfig
from repro.sim.stats import SimStats
from repro.sim.timing import simulate
from repro.sim.trace import Trace


@dataclass
class RunResult:
    """Outcome of one experiment: timing stats plus provenance metadata."""

    experiment: Experiment
    stats: SimStats
    #: Functional instruction count of the underlying kernel run.
    instructions: int
    session_bytes: int
    cached: bool = False
    wall_time: float = 0.0

    @property
    def cipher(self) -> str:
        return self.experiment.options.cipher

    @property
    def config_name(self) -> str:
        return self.experiment.config.name

    @property
    def instructions_per_byte(self) -> float:
        return self.instructions / self.session_bytes if self.session_bytes \
            else 0.0

    def bytes_per_kilocycle(self) -> float:
        return self.stats.bytes_per_kilocycle(self.session_bytes)


@dataclass
class RunnerStats:
    """Aggregate counters for one runner's lifetime."""

    cache_hits: int = 0
    cache_misses: int = 0
    functional_runs: int = 0
    timing_runs: int = 0
    instructions_simulated: int = 0
    wall_time: float = 0.0

    def summary(self) -> str:
        return (
            f"runner: {self.cache_hits} cache hits, "
            f"{self.cache_misses} misses, {self.functional_runs} functional "
            f"+ {self.timing_runs} timing runs, "
            f"{self.instructions_simulated} instructions simulated, "
            f"{self.wall_time:.1f}s simulating"
        )


def _stats_to_dict(stats: SimStats) -> dict:
    record = asdict(stats)
    record["extra"] = {
        key: value for key, value in stats.extra.items()
        if isinstance(value, (bool, int, float, str))
    }
    return record


def _stats_from_dict(record: dict) -> SimStats:
    known = {field.name for field in fields(SimStats)}
    if "config_name" not in record:
        raise KeyError("config_name")
    return SimStats(**{key: record[key] for key in record if key in known})


class Runner:
    """Parallel, cached driver for kernel timing experiments."""

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        jobs: int = 1,
        stats_hook=None,
    ):
        self.cache = cache if cache is not None else ResultCache.from_env()
        self.jobs = max(1, int(jobs))
        self.stats_hook = stats_hook
        self.stats = RunnerStats()
        self._kernels: dict[tuple, object] = {}
        self._functional: dict[ExperimentOptions, object] = {}
        self._fingerprints: dict[ExperimentOptions, str] = {}

    # -- kernel construction and content hashing ---------------------------

    def _resolved_key(self, options: ExperimentOptions) -> bytes:
        if options.key is not None:
            return options.key
        return bytes(range(SUITE_BY_NAME[options.cipher].key_bytes))

    def _kernel(self, options: ExperimentOptions):
        memo_key = (options.cipher, int(options.features),
                    self._resolved_key(options), options.base_offset)
        kernel = self._kernels.get(memo_key)
        if kernel is None:
            kernel = kernel_registry.KERNELS[options.cipher](
                self._resolved_key(options), options.features
            )
            kernel.base_offset = options.base_offset
            self._kernels[memo_key] = kernel
        return kernel

    def _warm_ranges(self, options: ExperimentOptions):
        """The cache-warm ranges a kernel run reports, without running it."""
        if options.kind == "setup":
            return None
        kernel = self._kernel(options)
        layout = kernel.layout_for(options.session_bytes)
        return [
            (layout.tables, kernel.tables_bytes),
            (layout.keys, kernel.keys_bytes),
            (layout.iv, 64),
        ]

    def fingerprint(self, options: ExperimentOptions) -> str:
        """Content hash of one functional run: program bytes + inputs.

        ``record_values`` is deliberately excluded -- recording destination
        values changes what the trace carries in memory, not any simulated
        result.
        """
        cached = self._fingerprints.get(options)
        if cached is not None:
            return cached
        key = self._resolved_key(options)
        if options.kind == "setup":
            setup = make_setup(options.cipher, key)
            program = setup.build_program(setup.layout()).finalize()
            inputs = {"plaintext": b"", "iv": b""}
        else:
            kernel = self._kernel(options)
            program = kernel.program_for(
                options.session_bytes, decrypt=options.kind == "decrypt"
            )
            inputs = {
                "plaintext": options.resolved_plaintext(),
                "iv": options.iv if options.iv is not None else b"",
            }
        digest = content_key({
            "runner_version": RUNNER_VERSION,
            "kind": options.kind,
            "cipher": options.cipher,
            "features": options.features.label,
            "session_bytes": options.session_bytes,
            "base_offset": options.base_offset,
            "key": key,
            "program": program.digest(),
            "warm": self._warm_ranges(options),
            **inputs,
        })
        self._fingerprints[options] = digest
        return digest

    def experiment_key(self, experiment: Experiment) -> str:
        """Content hash naming one (functional run, machine config) result."""
        return content_key({
            "record": "experiment",
            "fingerprint": self.fingerprint(experiment.options),
            "config": asdict(experiment.config),
        })

    # -- functional simulation (memoized) ----------------------------------

    def functional(self, options: ExperimentOptions):
        """Run (or reuse) the functional simulation for ``options``.

        Returns the kernel's ``KernelRun`` (or ``SetupRun`` for
        ``kind='setup'``).  One trace per distinct options value per
        process, shared by every timing config.
        """
        run = self._functional.get(options)
        if run is not None:
            return run
        start = time.perf_counter()
        if options.kind == "setup":
            run = make_setup(options.cipher, self._resolved_key(options)).run()
        else:
            kernel = self._kernel(options)
            data = options.resolved_plaintext()
            if options.kind == "decrypt":
                ciphertext = kernel.encrypt(data, options.iv).ciphertext
                run = kernel.decrypt(
                    ciphertext, options.iv,
                    record_values=options.record_values,
                )
            else:
                run = kernel.encrypt(
                    data, options.iv, record_values=options.record_values
                )
        self.stats.functional_runs += 1
        self.stats.wall_time += time.perf_counter() - start
        self._functional[options] = run
        return run

    # -- the experiment pipeline -------------------------------------------

    def run(self, experiments) -> list[RunResult]:
        """Execute a batch of experiments; results keep the input order.

        Cache hits are served from disk; misses are grouped by options (one
        functional run per group) and executed serially or across the
        process pool.
        """
        experiments = list(experiments)
        results: list[RunResult | None] = [None] * len(experiments)
        pending: dict[ExperimentOptions, list[tuple[int, Experiment, str]]]
        pending = {}
        for index, experiment in enumerate(experiments):
            key = self.experiment_key(experiment)
            result = self._lookup(experiment, key)
            if result is not None:
                self.stats.cache_hits += 1
                results[index] = result
                if self.stats_hook is not None:
                    self.stats_hook(result)
            else:
                self.stats.cache_misses += 1
                pending.setdefault(experiment.options, []).append(
                    (index, experiment, key)
                )
        if pending:
            self._execute_pending(pending, results)
        return results  # type: ignore[return-value]

    def run_one(self, experiment: Experiment) -> RunResult:
        return self.run([experiment])[0]

    def _lookup(self, experiment: Experiment, key: str) -> RunResult | None:
        record = self.cache.get(key)
        if record is None:
            return None
        try:
            return self._result_from_record(experiment, record, cached=True)
        except (KeyError, TypeError, ValueError):
            # Schema drift in an old record: recompute.
            self.cache.errors += 1
            return None

    def _execute_pending(self, pending, results) -> None:
        # Groups whose trace already lives in this process run locally; cold
        # groups are eligible for the pool.
        local = {opts: entries for opts, entries in pending.items()
                 if opts in self._functional}
        cold = {opts: entries for opts, entries in pending.items()
                if opts not in self._functional}
        computed: dict[ExperimentOptions, list[dict]] = {}
        if cold and self.jobs > 1 and len(cold) > 1:
            parallel = self._run_groups_parallel(cold)
            if parallel is not None:
                computed.update(parallel)
                cold = {}
        for options, entries in {**local, **cold}.items():
            computed[options] = self._run_group_records(
                options, [entry[1].config for entry in entries]
            )
        for options, entries in pending.items():
            records = computed[options]
            for (index, experiment, key), record in zip(entries, records):
                self.cache.put(key, record)
                result = self._result_from_record(
                    experiment, record, cached=False
                )
                self.stats.timing_runs += 1
                self.stats.instructions_simulated += result.stats.instructions
                self.stats.wall_time += result.wall_time
                results[index] = result
                if self.stats_hook is not None:
                    self.stats_hook(result)

    def _run_groups_parallel(self, pending):
        specs = [
            (options, [entry[1].config for entry in entries])
            for options, entries in pending.items()
        ]
        try:
            with multiprocessing.Pool(min(self.jobs, len(specs))) as pool:
                outputs = pool.map(_worker_run_group, specs)
        except Exception as error:  # pool unavailable or worker died
            warnings.warn(
                f"parallel runner unavailable ({error!r}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        # Workers ran the functional simulations out of process.
        self.stats.functional_runs += len(specs)
        return dict(zip((spec[0] for spec in specs), outputs))

    def _run_group_records(self, options, configs) -> list[dict]:
        run = self.functional(options)
        warm = None if options.kind == "setup" else run.warm_ranges
        records = []
        for config in configs:
            start = time.perf_counter()
            stats = simulate(run.trace, config, warm)
            records.append({
                "version": RUNNER_VERSION,
                "cipher": options.cipher,
                "config": config.name,
                "instructions": run.instructions,
                "session_bytes": options.session_bytes,
                "stats": _stats_to_dict(stats),
                "wall_time": time.perf_counter() - start,
            })
        return records

    def _result_from_record(
        self, experiment: Experiment, record: dict, cached: bool
    ) -> RunResult:
        return RunResult(
            experiment=experiment,
            stats=_stats_from_dict(record["stats"]),
            instructions=int(record["instructions"]),
            session_bytes=int(record["session_bytes"]),
            cached=cached,
            wall_time=float(record.get("wall_time", 0.0)),
        )

    # -- generic cached channels (synthetic traces, derived metrics) -------

    def simulate_trace(
        self,
        trace: Trace,
        config: MachineConfig,
        warm_ranges=None,
        *,
        key_parts=None,
    ) -> SimStats:
        """Timing-simulate an arbitrary trace, optionally disk-cached.

        ``key_parts`` must content-identify the trace (e.g. the component
        fingerprints of a multisession interleaving, or a program digest);
        without it the simulation runs uncached.
        """
        key = None
        if key_parts is not None:
            key = content_key({
                "record": "trace-sim",
                "version": RUNNER_VERSION,
                "parts": key_parts,
                "config": asdict(config),
                "warm": warm_ranges,
            })
            record = self.cache.get(key)
            if record is not None:
                try:
                    stats = _stats_from_dict(record["stats"])
                except (KeyError, TypeError, ValueError):
                    self.cache.errors += 1
                else:
                    self.stats.cache_hits += 1
                    return stats
            self.stats.cache_misses += 1
        start = time.perf_counter()
        stats = simulate(trace, config, warm_ranges)
        self.stats.timing_runs += 1
        self.stats.instructions_simulated += stats.instructions
        self.stats.wall_time += time.perf_counter() - start
        if key is not None:
            self.cache.put(key, {
                "version": RUNNER_VERSION,
                "stats": _stats_to_dict(stats),
            })
        return stats

    def cached_value(self, key_parts, compute):
        """Disk-cache an arbitrary JSON-serializable derived value.

        Used by harnesses whose result is not a :class:`SimStats` (op-mix
        histograms, value-prediction hit rates).  ``key_parts`` must include
        everything the value depends on -- typically a :meth:`fingerprint`.
        """
        key = content_key({
            "record": "value",
            "version": RUNNER_VERSION,
            "parts": key_parts,
        })
        record = self.cache.get(key)
        if record is not None and "value" in record:
            self.stats.cache_hits += 1
            return record["value"]
        if record is not None:
            self.cache.errors += 1
        self.stats.cache_misses += 1
        value = compute()
        self.cache.put(key, {"version": RUNNER_VERSION, "value": value})
        return value


def _worker_run_group(spec):
    """Pool entry point: one functional run + its timing configs."""
    options, configs = spec
    worker = Runner(cache=ResultCache.disabled(), jobs=1)
    return worker._run_group_records(options, configs)
