"""Unified parallel experiment engine with content-hashed result caching.

Public surface::

    options = ExperimentOptions(cipher="RC6", features=Features.ROT,
                                session_bytes=1024)
    runner = Runner(jobs=4)
    results = runner.run([Experiment(options, FOURW),
                          Experiment(options, DATAFLOW)])

Analysis harnesses that are not handed an explicit runner share the
process-wide :func:`default_runner` (serial, disk cache honoring
``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` / ``REPRO_JOBS``).  See
``docs/runner.md``.
"""

from __future__ import annotations

import os

from repro.runner.cache import (
    RUNNER_VERSION,
    ResultCache,
    content_key,
    default_cache_dir,
)
from repro.runner.engine import RunResult, Runner, RunnerStats
from repro.runner.telemetry import FleetMonitor, ProgressReporter
from repro.runner.experiment import (
    DEFAULT_SESSION_BYTES,
    Experiment,
    ExperimentOptions,
    experiment_grid,
)

_DEFAULT_RUNNER: Runner | None = None


def default_runner() -> Runner:
    """The process-wide shared runner (lazily created from the environment)."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = Runner(
            cache=ResultCache.from_env(),
            jobs=int(os.environ.get("REPRO_JOBS", "1")),
        )
    return _DEFAULT_RUNNER


def set_default_runner(runner: Runner | None) -> Runner | None:
    """Swap the shared runner (tests, CLIs); returns the previous one."""
    global _DEFAULT_RUNNER
    previous = _DEFAULT_RUNNER
    _DEFAULT_RUNNER = runner
    return previous


__all__ = [
    "DEFAULT_SESSION_BYTES",
    "Experiment",
    "ExperimentOptions",
    "FleetMonitor",
    "ProgressReporter",
    "ResultCache",
    "RunResult",
    "Runner",
    "RunnerStats",
    "RUNNER_VERSION",
    "content_key",
    "default_cache_dir",
    "default_runner",
    "experiment_grid",
    "set_default_runner",
]
