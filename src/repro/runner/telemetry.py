"""Live runner-fleet telemetry: heartbeats, progress/ETA, stuck watchdog.

The experiment runner executes work in *groups* (one functional run plus
its timing configs).  :class:`FleetMonitor` tracks every group from
dispatch to completion -- identically for the serial ``--jobs 1`` path
and the multiprocessing fan-out -- and periodically emits heartbeat
events carrying busy-worker counts, completion counts, and an ETA.

Sinks (all optional, all fed from the same account):

* an event ``hook`` -- any callable taking one event dict;
  :class:`ProgressReporter` is the stock hook behind the CLI tools'
  ``--progress`` flag (a live ``\\r``-refreshed status line on stderr);
* a :class:`repro.obs.MetricsRegistry` -- ``runner.worker.busy`` gauge,
  ``runner.group.seconds`` histogram, ``runner.worker.stuck`` counter;
* a :class:`repro.obs.Tracer` -- ``runner.worker.busy`` counter samples
  plus an instant event naming each stuck experiment;
* a :class:`repro.obs.EventBus` -- every event below published to the
  unified run ledger as ``source="runner"`` (``--events-out`` /
  ``repro.tools.dash``).

Event dicts (``type`` selects the shape)::

    {"type": "start",      "total_groups": N, "total_experiments": M}
    {"type": "dispatch",   "group": label}
    {"type": "group-done", "group": label, "elapsed": seconds}
    {"type": "heartbeat",  "busy": B, "done": D, "total": N,
                           "elapsed": seconds, "eta_seconds": T | None}
    {"type": "stuck",      "group": label, "quiet_seconds": seconds}
    {"type": "finish",     "done": D, "total": N, "elapsed": seconds}

The watchdog names the *offending experiment*: when no group has
completed for ``stuck_after`` seconds, the oldest groups that can
actually be running (at most ``jobs`` of them -- later dispatches are
still queued) are reported, once each.
"""

from __future__ import annotations

import sys
import threading
import time

#: Heartbeat cadence (seconds) and quiet period before a group is called
#: stuck.  Both are configurable per :class:`repro.runner.Runner`.
DEFAULT_HEARTBEAT_INTERVAL = 1.0
DEFAULT_STUCK_AFTER = 60.0


class FleetMonitor:
    """Tracks in-flight experiment groups and emits heartbeat telemetry.

    Thread-safe: ``dispatch``/``complete`` may be called from pool result
    callbacks while the heartbeat thread reads the account.  Inert (no
    thread, near-zero cost) when it has no sink.
    """

    def __init__(
        self,
        *,
        total_groups: int = 0,
        total_experiments: int = 0,
        jobs: int = 1,
        hook=None,
        metrics=None,
        tracer=None,
        bus=None,
        interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        stuck_after: float = DEFAULT_STUCK_AFTER,
        clock=time.monotonic,
    ):
        self.total_groups = total_groups
        self.total_experiments = total_experiments
        self.jobs = max(1, int(jobs))
        self.hook = hook
        self.metrics = metrics
        self.tracer = tracer
        self.bus = bus
        self.interval = interval
        self.stuck_after = stuck_after
        self._clock = clock
        self._lock = threading.Lock()
        #: label -> dispatch timestamp, insertion-ordered (dispatch order).
        self._inflight: dict[str, float] = {}
        self._warned: set[str] = set()
        self.done = 0
        self._started_at: float | None = None
        self._last_progress: float | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    @property
    def enabled(self) -> bool:
        return (self.hook is not None or self.metrics is not None
                or self.tracer is not None or self.bus is not None)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FleetMonitor":
        self._started_at = self._clock()
        self._last_progress = self._started_at
        if not self.enabled:
            return self
        self._emit({
            "type": "start",
            "total_groups": self.total_groups,
            "total_experiments": self.total_experiments,
        })
        self._publish_busy(0)
        if self.interval > 0:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._heartbeat_loop, name="repro-fleet-monitor",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        if not self.enabled or self._started_at is None:
            return
        self._publish_busy(0)
        self._emit({
            "type": "finish",
            "done": self.done,
            "total": self.total_groups,
            "elapsed": self._clock() - self._started_at,
        })

    def __enter__(self) -> "FleetMonitor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- group accounting --------------------------------------------------

    def dispatch(self, label: str) -> None:
        """Account one group dispatch.

        Idempotent for labels already in flight: the serial fallback
        walks groups the failed pool already dispatched, and those must
        not appear twice in the event ledger (see :meth:`requeue_all`).
        """
        now = self._clock()
        with self._lock:
            if label in self._inflight:
                return
            self._inflight[label] = now
            busy = min(len(self._inflight), self.jobs)
        if self.enabled:
            self._emit({"type": "dispatch", "group": label,
                        "busy": busy, "done": self.done,
                        "total": self.total_groups})
            self._publish_busy(busy)

    def complete(self, label: str) -> None:
        now = self._clock()
        with self._lock:
            dispatched = self._inflight.pop(label, now)
            self._warned.discard(label)
            self.done += 1
            done = self.done
            self._last_progress = now
            busy = min(len(self._inflight), self.jobs)
        if not self.enabled:
            return
        elapsed = now - dispatched
        self._emit({"type": "group-done", "group": label,
                    "elapsed": elapsed, "busy": busy, "done": done,
                    "total": self.total_groups})
        self._publish_busy(busy)
        if self.metrics is not None:
            self.metrics.histogram("runner.group.seconds").observe(elapsed)

    def abandon_all(self) -> None:
        """Forget every in-flight dispatch (parallel-fallback recovery).

        The serial fallback re-dispatches the same groups, so abandoned
        entries must not linger as phantom busy workers or double-count
        completions.
        """
        with self._lock:
            self._inflight.clear()
            self._warned.clear()
        if self.enabled:
            self._publish_busy(0)

    def requeue_all(self) -> None:
        """Re-time every in-flight dispatch (parallel-fallback recovery).

        When the pool dies, its groups stay *accounted* as dispatched --
        the serial fallback will run exactly those groups, and its
        :meth:`dispatch` calls are idempotent, so the ledger shows each
        group dispatched once, like the pool path.  Their timers restart
        here so ``group-done`` elapsed times measure the serial run, and
        the progress clock resets so the watchdog does not immediately
        call the first serial group stuck after a slow pool failure.
        Emits nothing: no work completed, none was forgotten.
        """
        now = self._clock()
        with self._lock:
            for label in self._inflight:
                self._inflight[label] = now
            self._warned.clear()
            self._last_progress = now

    # -- heartbeats and the stuck watchdog ---------------------------------

    def heartbeat(self) -> dict:
        """Emit (and return) one heartbeat event; runs the watchdog."""
        now = self._clock()
        with self._lock:
            busy = min(len(self._inflight), self.jobs)
            done = self.done
            # Only the oldest `jobs` dispatches can actually be running;
            # anything younger is still queued behind them.
            running = list(self._inflight.items())[:self.jobs]
            quiet_since = self._last_progress or now
        elapsed = now - (self._started_at or now)
        eta = None
        remaining = self.total_groups - done
        if done and remaining > 0 and elapsed > 0:
            eta = remaining * (elapsed / done)
        event = {
            "type": "heartbeat", "busy": busy, "done": done,
            "total": self.total_groups, "elapsed": elapsed,
            "eta_seconds": eta,
        }
        self._emit(event)
        self._publish_busy(busy)
        if self.stuck_after > 0 and now - quiet_since >= self.stuck_after:
            for label, dispatched in running:
                if label in self._warned:
                    continue
                self._warned.add(label)
                quiet = now - max(dispatched, quiet_since)
                self._emit({"type": "stuck", "group": label,
                            "quiet_seconds": quiet})
                if self.metrics is not None:
                    self.metrics.counter("runner.worker.stuck").inc()
                if self.tracer is not None:
                    self.tracer.instant(
                        f"stuck:{label}", "runner",
                        {"quiet_seconds": quiet},
                    )
        return event

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.heartbeat()

    # -- sinks -------------------------------------------------------------

    def _emit(self, event: dict) -> None:
        if self.hook is not None:
            self.hook(event)
        if self.bus is not None:
            data = {key: value for key, value in event.items()
                    if key != "type"}
            self.bus.publish("runner", event["type"], data)

    def _publish_busy(self, busy: int) -> None:
        if self.metrics is not None:
            self.metrics.gauge("runner.worker.busy").set(busy)
        if self.tracer is not None:
            self.tracer.counter("runner.worker.busy", {"busy": busy})


def _format_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class ProgressReporter:
    """Stock heartbeat hook: a live progress/ETA line for humans.

    Rewrites one status line in place (``\\r``) on heartbeats and
    completions, breaks the line for stuck-worker warnings so they stay
    visible, and finishes with a newline-terminated summary.
    """

    def __init__(self, stream=None, label: str = "runner"):
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self._line_open = False

    def __call__(self, event: dict) -> None:
        kind = event.get("type")
        if kind in ("heartbeat", "group-done", "dispatch"):
            self._status(event)
        elif kind == "stuck":
            self._break_line()
            print(
                f"[{self.label}] worker quiet "
                f"{_format_seconds(event['quiet_seconds'])}: "
                f"still running {event['group']}",
                file=self.stream, flush=True,
            )
        elif kind == "finish":
            self._break_line()
            print(
                f"[{self.label}] {event['done']}/{event['total']} groups "
                f"in {_format_seconds(event['elapsed'])}",
                file=self.stream, flush=True,
            )

    def _status(self, event: dict) -> None:
        done = event.get("done")
        if done is None:
            return
        text = (f"[{self.label}] {done}/{event['total']} groups, "
                f"{event.get('busy', 0)} busy")
        if event.get("type") == "heartbeat":
            eta = event.get("eta_seconds")
            if event.get("elapsed") is not None:
                text += f", elapsed {_format_seconds(event['elapsed'])}"
            if eta:
                text += f", eta ~{_format_seconds(eta)}"
        print(f"\r{text}", end="", file=self.stream, flush=True)
        self._line_open = True

    def _break_line(self) -> None:
        if self._line_open:
            print(file=self.stream)
            self._line_open = False
