"""Declarative experiment specs for the unified runner.

An :class:`ExperimentOptions` names one *functional* simulation -- which
cipher kernel, at which ISA feature level, over which session bytes -- and
an :class:`Experiment` pairs it with one machine configuration for a
*timing* run.  Every figure in the paper is a grid of such pairs; the
runner deduplicates the functional work (one dynamic trace per options
value) and fans the timing runs out.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.isa import Features
from repro.sim.config import BASE4W, MachineConfig

DEFAULT_SESSION_BYTES = 1024

#: Valid values for :attr:`ExperimentOptions.kind`.
KINDS = ("encrypt", "decrypt", "setup")


def default_plaintext(session_bytes: int) -> bytes:
    """The suite's standard sample payload (``i & 0xFF``)."""
    return bytes(i & 0xFF for i in range(session_bytes))


@dataclass(frozen=True)
class ExperimentOptions:
    """One functional kernel run, fully determined.

    ``key``, ``iv`` and ``plaintext`` default to the suite's standard
    patterns so that two modules asking for the same cipher/features/length
    share one trace.  ``kind='setup'`` runs the cipher's key-setup routine
    instead of the encryption kernel (``session_bytes``/``plaintext`` are
    ignored there).

    ``stream``, ``chunk_size``, ``backend`` and ``timing_engine``
    control *how* the runner executes the experiment -- overlapped
    functional/timing streaming versus materialize-then-simulate, the
    trace-chunk granularity, which execution backend
    (``"interpreter"``/``"compiled"``) runs the functional machine, and
    which timing engine (``"generic"``/``"specialized"``) runs the
    cycle-accurate pipeline.  ``None`` defers to the runner's defaults.
    They never enter the content fingerprint: results are bit-identical
    either way, so the same cache records serve every combination.
    """

    cipher: str
    features: Features = Features.ROT
    session_bytes: int = DEFAULT_SESSION_BYTES
    key: bytes | None = None
    iv: bytes | None = None
    plaintext: bytes | None = None
    base_offset: int = 0
    record_values: bool = False
    kind: str = "encrypt"
    stream: bool | None = None
    chunk_size: int | None = None
    backend: str | None = None
    timing_engine: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, not {self.kind!r}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    def resolved_plaintext(self) -> bytes:
        if self.plaintext is not None:
            return self.plaintext
        return default_plaintext(self.session_bytes)

    def with_(self, **changes) -> "ExperimentOptions":
        """Return a modified copy (dataclasses.replace wrapper)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class Experiment:
    """One timing measurement: a functional run scheduled on a machine."""

    options: ExperimentOptions
    config: MachineConfig = BASE4W


def experiment_grid(
    ciphers,
    configs,
    **option_kwargs,
) -> list[Experiment]:
    """The paper's standard sweep shape: every cipher on every machine.

    Experiments for one cipher are adjacent so callers can slice the
    runner's order-preserving result list by ``len(configs)``.
    """
    return [
        Experiment(ExperimentOptions(cipher=name, **option_kwargs), config)
        for name in ciphers
        for config in configs
    ]
