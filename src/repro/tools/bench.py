"""Benchmark-history CLI: record runs, detect regressions, show trends.

    python -m repro.tools.bench record --suite streaming \\
        --benchmark stream_vs_batch --wall 1.84 --extra session_bytes=16384
    python -m repro.tools.bench ingest BENCH_streaming.json
    python -m repro.tools.bench compare --threshold 0.10
    python -m repro.tools.bench report

All subcommands operate on the append-only history file
(``results/bench/history.jsonl`` by default, schema ``repro.obs.bench/1``;
override with ``--history`` or ``REPRO_BENCH_HISTORY``).  Every appended
record is stamped with the environment fingerprint (git sha, python,
platform, hostname) so each point is attributable to a commit.

``compare`` judges the newest run of every benchmark against the median
of its recent same-environment predecessors (robust MAD noise floor +
bootstrap confidence bound -- see :mod:`repro.obs.bench`) and exits
non-zero on a *confirmed* regression; CI runs it after recording the
benchmark smoke set.  ``report`` prints one trend sparkline per
benchmark.  ``ingest`` migrates a legacy ``BENCH_streaming.json``
artifact (written by ``benchmarks/test_streaming_memory.py``) into the
history.
"""

from __future__ import annotations

import argparse
import json

from repro.obs.bench import (
    DEFAULT_HISTORY_PATH,
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    BenchHistory,
    BenchRecord,
    compare_history,
    sparkline,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.bench",
                                     description=__doc__)
    parser.add_argument(
        "--history", metavar="PATH", default=None,
        help=f"history file (default {DEFAULT_HISTORY_PATH}, or "
             "$REPRO_BENCH_HISTORY)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser(
        "record", help="append one measurement to the history")
    record.add_argument("--suite", required=True)
    record.add_argument("--benchmark", required=True)
    record.add_argument("--wall", type=float, required=True,
                        metavar="SECONDS")
    record.add_argument("--throughput", type=float, default=None)
    record.add_argument("--throughput-unit", default=None)
    record.add_argument("--peak-memory", type=int, default=None,
                        metavar="BYTES")
    record.add_argument("--extra", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="attach a scalar (repeatable)")

    ingest = commands.add_parser(
        "ingest", help="migrate a BENCH_streaming.json artifact")
    ingest.add_argument("path")

    compare = commands.add_parser(
        "compare", help="judge the newest runs; exit 1 on a regression")
    compare.add_argument("--threshold", type=float,
                         default=DEFAULT_THRESHOLD,
                         help="flag runs slower than (1 + THRESHOLD) x "
                              "baseline median (default %(default)s)")
    compare.add_argument("--baseline", type=int, default=DEFAULT_WINDOW,
                         metavar="N",
                         help="baseline window: most recent N prior runs "
                              "(default %(default)s)")
    compare.add_argument("--benchmark", nargs="*", default=None,
                         help="only these benchmarks (default: all)")
    compare.add_argument("--any-env", action="store_true",
                         help="compare across environments too (default: "
                              "baseline is same hostname/platform only)")

    report = commands.add_parser(
        "report", help="per-benchmark trend sparklines")
    report.add_argument("--benchmark", nargs="*", default=None)
    report.add_argument("--limit", type=int, default=20, metavar="N",
                        help="trend points shown per benchmark "
                             "(default %(default)s)")

    args = parser.parse_args(argv)
    history = (BenchHistory(args.history) if args.history
               else BenchHistory.from_env())
    return {
        "record": _record,
        "ingest": _ingest,
        "compare": _compare,
        "report": _report,
    }[args.command](args, history)


def _parse_extra(pairs) -> dict:
    extra = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--extra wants KEY=VALUE, got {pair!r}")
        key, value = pair.split("=", 1)
        for kind in (int, float):
            try:
                value = kind(value)
                break
            except ValueError:
                continue
        extra[key] = value
    return extra


def _record(args, history: BenchHistory) -> int:
    document = history.append(BenchRecord(
        suite=args.suite,
        benchmark=args.benchmark,
        wall_seconds=args.wall,
        throughput=args.throughput,
        throughput_unit=args.throughput_unit,
        peak_memory_bytes=args.peak_memory,
        extra=_parse_extra(args.extra),
    ))
    print(f"recorded {document['suite']}::{document['benchmark']} "
          f"({document['wall_seconds']:.3f}s) -> {history.path}")
    return 0


def _ingest(args, history: BenchHistory) -> int:
    """Migrate one legacy streaming-benchmark artifact into the history."""
    with open(args.path) as handle:
        legacy = json.load(handle)
    try:
        wall = float(legacy["stream_seconds"])
        session_bytes = int(legacy["session_bytes"])
    except (KeyError, TypeError, ValueError) as error:
        raise SystemExit(
            f"{args.path}: not a BENCH_streaming.json artifact ({error!r})"
        )
    extra = {
        key: value for key, value in legacy.items()
        if isinstance(value, (bool, int, float, str))
        and key not in ("stream_seconds", "stream_peak_trace_bytes")
    }
    document = history.append(BenchRecord(
        suite="streaming",
        benchmark="stream_vs_batch",
        wall_seconds=wall,
        throughput=session_bytes / wall if wall > 0 else None,
        throughput_unit="bytes/s",
        peak_memory_bytes=legacy.get("stream_peak_trace_bytes"),
        extra=extra,
    ))
    print(f"ingested {args.path} -> {history.path} "
          f"({document['wall_seconds']:.3f}s, "
          f"{len(extra)} extra fields)")
    return 0


def _compare(args, history: BenchHistory) -> int:
    verdicts = compare_history(
        history,
        threshold=args.threshold,
        window=args.baseline,
        benchmarks=args.benchmark,
        match_env=not args.any_env,
    )
    if not verdicts:
        print(f"{history.path}: no benchmarks to compare")
        return 0
    regressions = 0
    for verdict in verdicts:
        print(verdict.summary())
        regressions += verdict.regressed
    if regressions:
        print(f"{regressions} confirmed regression(s)")
        return 1
    print("no confirmed regressions")
    return 0


def _report(args, history: BenchHistory) -> int:
    keys = history.benchmarks()
    if args.benchmark:
        keys = [key for key in keys
                if key[1] in args.benchmark
                or f"{key[0]}::{key[1]}" in args.benchmark]
    if not keys:
        print(f"{history.path}: no recorded benchmarks")
        return 0
    for suite, benchmark in keys:
        entries = history.entries(suite=suite, benchmark=benchmark)
        walls = [entry.wall_seconds for entry in entries][-args.limit:]
        latest = entries[-1]
        sha = latest.env.get("git_sha", "unknown")[:12]
        print(f"{suite}::{benchmark:<28} {sparkline(walls)}  "
              f"latest {walls[-1]:.3f}s over {len(walls)} runs "
              f"(last @ {sha})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
