"""Benchmark-history CLI: record runs, detect regressions, show trends.

    python -m repro.tools.bench record --suite streaming \\
        --benchmark stream_vs_batch --wall 1.84 --extra session_bytes=16384
    python -m repro.tools.bench ingest BENCH_streaming.json
    python -m repro.tools.bench compare --threshold 0.10
    python -m repro.tools.bench report

All subcommands operate on the append-only history file
(``results/bench/history.jsonl`` by default, schema ``repro.obs.bench/1``;
override with ``--history`` or ``REPRO_BENCH_HISTORY``).  Every appended
record is stamped with the environment fingerprint (git sha, python,
platform, hostname) so each point is attributable to a commit.

``compare`` judges the newest run of every benchmark against the median
of its recent same-environment predecessors (robust MAD noise floor +
bootstrap confidence bound -- see :mod:`repro.obs.bench`) and exits
non-zero on a *confirmed* regression; CI runs it after recording the
benchmark smoke set.  ``compare --explain`` additionally drills the
flagged benchmark (or, when nothing regressed, the first judged one)
into a ``repro.obs.diff/1`` report: the wall-time delta against its
noise floor, plus -- when the records' ``extra`` fields name a
(cipher, config) pair -- the per-category stall and hot-spot deltas
between cached reruns of the baseline and current experiments
(``--explain-out`` writes the report as JSON).  ``report`` prints one
trend sparkline per benchmark.  ``ingest`` migrates a legacy benchmark
artifact into the history; it understands ``BENCH_streaming.json``
(written by ``benchmarks/test_streaming_memory.py``),
``BENCH_timing.json`` (timing-engine grid: one record per engine) and
``BENCH_compiled.json`` (backend grid: one record per backend).
"""

from __future__ import annotations

import argparse
import json

from repro.obs.bench import (
    DEFAULT_HISTORY_PATH,
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    BenchHistory,
    BenchRecord,
    compare_history,
    environment_fingerprint,
    sparkline,
)
from repro.obs.diffing import (
    build_report,
    diff_bench_records,
    diff_stats,
    render_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.bench",
                                     description=__doc__)
    parser.add_argument(
        "--history", metavar="PATH", default=None,
        help=f"history file (default {DEFAULT_HISTORY_PATH}, or "
             "$REPRO_BENCH_HISTORY)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser(
        "record", help="append one measurement to the history")
    record.add_argument("--suite", required=True)
    record.add_argument("--benchmark", required=True)
    record.add_argument("--wall", type=float, required=True,
                        metavar="SECONDS")
    record.add_argument("--throughput", type=float, default=None)
    record.add_argument("--throughput-unit", default=None)
    record.add_argument("--peak-memory", type=int, default=None,
                        metavar="BYTES")
    record.add_argument("--extra", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="attach a scalar (repeatable)")

    ingest = commands.add_parser(
        "ingest", help="migrate a BENCH_streaming/timing/compiled.json "
                       "artifact")
    ingest.add_argument("path")

    compare = commands.add_parser(
        "compare", help="judge the newest runs; exit 1 on a regression")
    compare.add_argument("--threshold", type=float,
                         default=DEFAULT_THRESHOLD,
                         help="flag runs slower than (1 + THRESHOLD) x "
                              "baseline median (default %(default)s)")
    compare.add_argument("--baseline", type=int, default=DEFAULT_WINDOW,
                         metavar="N",
                         help="baseline window: most recent N prior runs "
                              "(default %(default)s)")
    compare.add_argument("--benchmark", nargs="*", default=None,
                         help="only these benchmarks (default: all)")
    compare.add_argument("--any-env", action="store_true",
                         help="compare across environments too (default: "
                              "baseline is same hostname/platform only)")
    compare.add_argument("--explain", action="store_true",
                         help="drill the flagged benchmark into a "
                              "repro.obs.diff/1 report (wall-time delta "
                              "vs noise floor; stall deltas via cached "
                              "reruns when the records name a "
                              "cipher/config)")
    compare.add_argument("--explain-out", metavar="PATH", default=None,
                         help="write the --explain report as JSON "
                              "(implies --explain)")

    report = commands.add_parser(
        "report", help="per-benchmark trend sparklines")
    report.add_argument("--benchmark", nargs="*", default=None)
    report.add_argument("--limit", type=int, default=20, metavar="N",
                        help="trend points shown per benchmark "
                             "(default %(default)s)")

    args = parser.parse_args(argv)
    history = (BenchHistory(args.history) if args.history
               else BenchHistory.from_env())
    return {
        "record": _record,
        "ingest": _ingest,
        "compare": _compare,
        "report": _report,
    }[args.command](args, history)


def _parse_extra(pairs) -> dict:
    extra = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--extra wants KEY=VALUE, got {pair!r}")
        key, value = pair.split("=", 1)
        for kind in (int, float):
            try:
                value = kind(value)
                break
            except ValueError:
                continue
        extra[key] = value
    return extra


def _record(args, history: BenchHistory) -> int:
    document = history.append(BenchRecord(
        suite=args.suite,
        benchmark=args.benchmark,
        wall_seconds=args.wall,
        throughput=args.throughput,
        throughput_unit=args.throughput_unit,
        peak_memory_bytes=args.peak_memory,
        extra=_parse_extra(args.extra),
    ))
    print(f"recorded {document['suite']}::{document['benchmark']} "
          f"({document['wall_seconds']:.3f}s) -> {history.path}")
    return 0


def _scalar_extras(legacy: dict, *, drop=()) -> dict:
    return {
        key: value for key, value in legacy.items()
        if isinstance(value, (bool, int, float, str)) and key not in drop
    }


def _ingest(args, history: BenchHistory) -> int:
    """Migrate one legacy benchmark artifact into the history.

    The artifact kind is sniffed from its keys: ``stream_seconds`` is the
    streaming benchmark, ``generic_seconds``/``specialized_seconds`` is
    the timing-engine grid (two records, each stamped with its engine so
    same-environment baselines never mix engines), and
    ``interpreter_seconds``/``compiled_seconds`` is the backend grid
    (two records, stamped per backend).
    """
    with open(args.path) as handle:
        legacy = json.load(handle)
    try:
        session_bytes = int(legacy["session_bytes"])
        if "stream_seconds" in legacy:
            documents = [history.append(BenchRecord(
                suite="streaming",
                benchmark="stream_vs_batch",
                wall_seconds=float(legacy["stream_seconds"]),
                throughput=(session_bytes / float(legacy["stream_seconds"])
                            if float(legacy["stream_seconds"]) > 0 else None),
                throughput_unit="bytes/s",
                peak_memory_bytes=legacy.get("stream_peak_trace_bytes"),
                extra=_scalar_extras(legacy, drop=(
                    "stream_seconds", "stream_peak_trace_bytes")),
            ))]
        elif "generic_seconds" in legacy and "specialized_seconds" in legacy:
            documents = []
            for engine in ("generic", "specialized"):
                env = environment_fingerprint()
                env["timing_engine"] = engine
                wall = float(legacy[f"{engine}_seconds"])
                documents.append(history.append(BenchRecord(
                    suite="timing",
                    benchmark=f"{legacy.get('cipher', '?').lower()}"
                              f"_timing_grid",
                    wall_seconds=wall,
                    throughput=(session_bytes / wall if wall > 0 else None),
                    throughput_unit="bytes/s",
                    extra=_scalar_extras(legacy, drop=(
                        "generic_seconds", "specialized_seconds")),
                    env=env,
                )))
        elif "interpreter_seconds" in legacy and "compiled_seconds" in legacy:
            documents = []
            for backend in ("interpreter", "compiled"):
                env = environment_fingerprint()
                env["backend"] = backend
                wall = float(legacy[f"{backend}_seconds"])
                documents.append(history.append(BenchRecord(
                    suite="backend",
                    benchmark=f"{legacy.get('cipher', '?').lower()}"
                              f"_functional",
                    wall_seconds=wall,
                    throughput=legacy.get(
                        f"{backend}_instructions_per_second"),
                    throughput_unit="instructions/s",
                    extra=_scalar_extras(legacy, drop=(
                        "interpreter_seconds", "compiled_seconds",
                        "interpreter_instructions_per_second",
                        "compiled_instructions_per_second")),
                    env=env,
                )))
        else:
            raise KeyError(
                "no stream_seconds / generic_seconds+specialized_seconds / "
                "interpreter_seconds+compiled_seconds"
            )
    except (KeyError, TypeError, ValueError) as error:
        raise SystemExit(
            f"{args.path}: not a recognized benchmark artifact ({error!r})"
        )
    for document in documents:
        print(f"ingested {document['suite']}::{document['benchmark']} "
              f"({document['wall_seconds']:.3f}s) from {args.path} "
              f"-> {history.path}")
    return 0


def _compare(args, history: BenchHistory) -> int:
    verdicts = compare_history(
        history,
        threshold=args.threshold,
        window=args.baseline,
        benchmarks=args.benchmark,
        match_env=not args.any_env,
    )
    if not verdicts:
        print(f"{history.path}: no benchmarks to compare")
        return 0
    regressions = 0
    for verdict in verdicts:
        print(verdict.summary())
        regressions += verdict.regressed
    if args.explain or args.explain_out:
        _explain(args, history, verdicts)
    if regressions:
        print(f"{regressions} confirmed regression(s)")
        return 1
    print("no confirmed regressions")
    return 0


def _explain(args, history: BenchHistory, verdicts) -> None:
    """Drill one verdict into a ``repro.obs.diff/1`` report.

    The flagged regression wins (first one, when several); with nothing
    flagged the first judged benchmark is explained so the report can be
    produced unconditionally in CI.  When both the current record and
    the newest baseline record carry ``cipher``/``config`` extras, the
    corresponding experiments are re-run through the (cached) runner and
    the report gains the full stall-category and hot-spot delta section
    -- the "where did the cycles go" answer behind the wall-time delta.
    """
    target = next((v for v in verdicts if v.regressed), verdicts[0])
    entries = history.entries(target.suite, target.benchmark)
    current, prior = entries[-1], entries[:-1]
    if not args.any_env:
        from repro.obs.bench import _same_environment
        prior = [run for run in prior
                 if _same_environment(run.env, current.env)]
    baseline = prior[-args.baseline:]
    section = diff_bench_records(current, baseline)
    stats = None
    newest = baseline[-1] if baseline else None
    if newest is not None:
        stats = _differential_stats(newest.extra, current.extra)
    report = build_report(
        "bench",
        {"label": f"{target.suite}::{target.benchmark} baseline",
         "runs": len(baseline),
         **({"config": newest.extra["config"]}
            if newest is not None and "config" in newest.extra else {})},
        {"label": f"{target.suite}::{target.benchmark} current",
         "wall_seconds": current.wall_seconds,
         "recorded_at": current.recorded_at,
         **({"config": current.extra["config"]}
            if "config" in current.extra else {})},
        identical=not target.regressed and not section["significant"],
        verdict=target.summary(),
        generated_by="repro.tools.bench compare --explain",
        bench=section,
        stats=stats,
    )
    print()
    print(render_report(report))
    if args.explain_out:
        with open(args.explain_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.explain_out}")


def _differential_stats(baseline_extra: dict, current_extra: dict):
    """Stall/hot-spot deltas between two records' named experiments.

    Returns ``None`` unless both records name a runnable (cipher,
    config); the reruns go through the normal runner cache, so
    explaining a regression over already-measured experiments costs two
    cache hits, not two simulations.
    """
    from repro.runner import Experiment, ExperimentOptions, Runner
    from repro.tools.cli import CONFIGS, FEATURE_LEVELS

    def experiment(extra: dict) -> Experiment | None:
        cipher = extra.get("cipher")
        config = extra.get("config")
        features = FEATURE_LEVELS.get(str(extra.get("features", "opt")))
        if not cipher or config not in CONFIGS or features is None:
            return None
        try:
            session_bytes = int(extra.get("session_bytes", 1024))
        except (TypeError, ValueError):
            return None
        return Experiment(
            ExperimentOptions(cipher=cipher, features=features,
                              session_bytes=session_bytes),
            CONFIGS[config],
        )

    side_a = experiment(baseline_extra)
    side_b = experiment(current_extra)
    if side_a is None or side_b is None:
        return None
    runner = Runner(jobs=1)
    if side_a == side_b:
        result_a = result_b = runner.run([side_a])[0]
    else:
        result_a, result_b = runner.run([side_a, side_b])
    return diff_stats(result_a.stats, result_b.stats)


def _report(args, history: BenchHistory) -> int:
    keys = history.benchmarks()
    if args.benchmark:
        keys = [key for key in keys
                if key[1] in args.benchmark
                or f"{key[0]}::{key[1]}" in args.benchmark]
    if not keys:
        print(f"{history.path}: no recorded benchmarks")
        return 0
    for suite, benchmark in keys:
        entries = history.entries(suite=suite, benchmark=benchmark)
        walls = [entry.wall_seconds for entry in entries][-args.limit:]
        latest = entries[-1]
        sha = latest.env.get("git_sha", "unknown")[:12]
        print(f"{suite}::{benchmark:<28} {sparkline(walls)}  "
              f"latest {walls[-1]:.3f}s over {len(walls)} runs "
              f"(last @ {sha})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
