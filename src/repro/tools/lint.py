"""Static lint for the shipped RISC-A kernels.

    python -m repro.tools.lint --all
    python -m repro.tools.lint --kernel Blowfish RC6 --features opt
    python -m repro.tools.lint --all --format json --out lint.json
    python -m repro.tools.lint --all --fail-on warning

Runs the :mod:`repro.isa.verify` checker suite (dataflow lints, branch and
encoding checks, feature gating, scratch discipline, SBox-cache coherence)
plus the static critical-path oracle over kernel and key-setup programs.
``--all`` covers every registered cipher kernel at every feature level, in
both directions, plus every key-setup program -- the configuration CI
enforces with ``--fail-on error``.

``--format json`` emits a ``repro.isa.verify/1`` report document (see
``docs/lint.md``); ``--out`` writes it to a file that
``python -m repro.tools.obs --check`` can validate.  The exit status is
non-zero when any program has a diagnostic at or above ``--fail-on``.
"""

from __future__ import annotations

import argparse
import json

from repro.isa.verify import (
    VerifyResult,
    lint_document,
    record_lint_metrics,
    severity_rank,
    verify_program,
)
from repro.kernels import KERNEL_NAMES
from repro.kernels.registry import make_kernel
from repro.kernels.setup_registry import SETUP_KERNELS, make_setup
from repro.tools.cli import (
    FEATURE_LEVELS,
    add_observability_arguments,
    observability_from_args,
)

#: Session length used to instantiate kernel programs for linting.  The
#: program shape is independent of the session length (it only changes the
#: loop-count immediate), so two blocks keep the loop structure while
#: staying cheap to analyze.
LINT_BLOCKS = 2


def iter_kernel_programs(names, levels):
    """Yield ``(name, program, features)`` for the requested kernels."""
    for name in names:
        for features in levels:
            kernel = make_kernel(name, features=features)
            session = max(kernel.block_bytes, 1) * LINT_BLOCKS
            if kernel.block_bytes <= 1:
                session = 64
            for decrypt in (False, True):
                direction = "decrypt" if decrypt else "encrypt"
                try:
                    program = kernel.program_for(session, decrypt=decrypt)
                except NotImplementedError:
                    continue
                yield (
                    f"{name}[{features.label}]/{direction}",
                    program,
                    features,
                )


def iter_setup_programs(names):
    """Yield ``(name, program, features)`` for the key-setup kernels."""
    for name in names:
        setup = make_setup(name)
        program = setup.build_program(setup.layout())
        yield f"setup/{name}", program, None


def lint_programs(programs) -> list[VerifyResult]:
    """Verify an iterable of ``(name, program, features)`` triples."""
    return [
        verify_program(program, features=features, name=name)
        for name, program, features in programs
    ]


def render_table(results: list[VerifyResult]) -> str:
    lines = [
        f"{'program':<28} {'instr':>6} {'cp':>5} {'err':>4} {'warn':>5}"
    ]
    for result in results:
        summary = result.summary()
        lines.append(
            f"{result.name:<28} {result.instructions:>6} "
            f"{result.critical_path if result.critical_path is not None else '-':>5} "
            f"{summary['error']:>4} {summary['warning']:>5}"
        )
        for diagnostic in result.diagnostics:
            lines.append(f"    {diagnostic.render()}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.lint",
                                     description=__doc__)
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument(
        "--all", action="store_true",
        help="lint every registered kernel (all feature levels, both "
             "directions) and every key-setup program",
    )
    what.add_argument(
        "--kernel", nargs="+", choices=KERNEL_NAMES, metavar="NAME",
        help="cipher kernel(s) to lint",
    )
    what.add_argument(
        "--setup", nargs="+", choices=sorted(SETUP_KERNELS), metavar="NAME",
        help="key-setup program(s) to lint",
    )
    parser.add_argument(
        "--features", nargs="+", choices=sorted(FEATURE_LEVELS),
        default=None, metavar="LEVEL",
        help="feature level(s) for --kernel (default: all three)",
    )
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="report format on stdout (default %(default)s)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON report document to PATH",
    )
    parser.add_argument(
        "--fail-on", choices=("warning", "error"), default="error",
        help="exit non-zero when any diagnostic reaches this severity "
             "(default %(default)s)",
    )
    add_observability_arguments(parser)
    args = parser.parse_args(argv)

    if args.all:
        levels = [FEATURE_LEVELS[key] for key in ("norot", "rot", "opt")]
        programs = list(iter_kernel_programs(KERNEL_NAMES, levels))
        programs.extend(iter_setup_programs(sorted(SETUP_KERNELS)))
    elif args.kernel:
        keys = args.features or sorted(FEATURE_LEVELS)
        levels = [FEATURE_LEVELS[key] for key in keys]
        programs = list(iter_kernel_programs(args.kernel, levels))
    else:
        programs = list(iter_setup_programs(args.setup))

    obs = observability_from_args(args, tool="lint")
    with obs:
        results = lint_programs(programs)
        if obs.metrics is not None:
            record_lint_metrics(obs.metrics, results)

    document = lint_document(results)
    if args.format == "json":
        print(json.dumps(document, indent=2))
    else:
        print(render_table(results))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2)
        print(f"wrote {args.out}")
    for path in obs.write():
        print(f"wrote {path}")

    floor = severity_rank(args.fail_on)
    failing = [
        result for result in results
        if any(severity_rank(d.severity) >= floor for d in result.diagnostics)
    ]
    if failing:
        print(
            f"FAIL: {len(failing)} of {len(results)} program(s) have "
            f"diagnostics at or above {args.fail_on!r}"
        )
        return 1
    print(f"OK: {len(results)} program(s), nothing at or above "
          f"{args.fail_on!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
