"""Shared command-line vocabulary for the repro tools.

Every experiment-running CLI in this repository speaks the same flags:

* ``--cipher``         -- suite cipher name (Table 1),
* ``--features``       -- ISA feature level (``norot``/``rot``/``opt``),
* ``--config``         -- machine model name (Table 2 plus the baselines),
* ``--session-bytes``  -- session length in bytes,
* ``--jobs``           -- worker processes for the experiment runner,
* ``--no-cache``       -- bypass the on-disk result cache,
* ``--metrics-out``    -- write a metrics-registry snapshot (JSON),
* ``--trace-out``      -- write a span trace (Chrome JSON or JSONL),
* ``--profile``        -- sample host stacks, print a subsystem breakdown
  (``--profile-hz`` rate, ``--profile-out`` collapsed stacks),
* ``--events-out``     -- append the unified run ledger (JSONL), rendered
  by ``repro.tools.dash``,
* ``--progress``       -- live progress/ETA line from the runner's fleet
  telemetry (heartbeats, stuck-worker warnings).

The helpers here add those arguments with consistent help text, defaults,
and backwards-compatible aliases, and build a configured
:class:`repro.runner.Runner` (plus an :class:`repro.obs.Observability`
session when telemetry outputs are requested) from the parsed namespace.
"""

from __future__ import annotations

import argparse

from repro.isa import Features
from repro.kernels import KERNEL_NAMES
from repro.obs import Observability
from repro.obs.profiler import DEFAULT_HZ
from repro.runner import ProgressReporter, ResultCache, Runner
from repro.sim.backends import DEFAULT_BACKEND, backend_names
from repro.sim.timing import DEFAULT_ENGINE, engine_names
from repro.sim import (
    ALPHA21264,
    BASE4W,
    DATAFLOW,
    DEFAULT_CHUNK_SIZE,
    EIGHTW_PLUS,
    FOURW,
    FOURW_PLUS,
)

#: Machine model names accepted by ``--config`` everywhere.
CONFIGS = {
    "base": BASE4W,
    "alpha": ALPHA21264,
    "4W": FOURW,
    "4W+": FOURW_PLUS,
    "8W+": EIGHTW_PLUS,
    "DF": DATAFLOW,
}

#: ISA feature levels accepted by ``--features`` everywhere.
FEATURE_LEVELS = {
    "norot": Features.NOROT,
    "rot": Features.ROT,
    "opt": Features.OPT,
}


def add_cipher_argument(
    parser: argparse.ArgumentParser,
    *,
    required: bool = True,
    choices: tuple[str, ...] = KERNEL_NAMES,
) -> None:
    parser.add_argument(
        "--cipher", required=required, choices=choices,
        help="suite cipher name, e.g. Twofish",
    )


def add_features_argument(
    parser: argparse.ArgumentParser, *, default: str = "opt"
) -> None:
    parser.add_argument(
        "--features", default=default, choices=sorted(FEATURE_LEVELS),
        help="ISA feature level (default %(default)s)",
    )


def add_config_argument(
    parser: argparse.ArgumentParser,
    *,
    multiple: bool = False,
    default=None,
) -> None:
    """``--config NAME`` (or ``--config NAME...`` with ``multiple``).

    ``--configs`` stays as a hidden alias for older scripts.
    """
    if multiple:
        parser.add_argument(
            "--config", "--configs", dest="configs", nargs="+",
            default=list(default or ["4W", "DF"]), choices=sorted(CONFIGS),
            help="machine model(s) (default %(default)s)",
        )
    else:
        parser.add_argument(
            "--config", default=default or "4W", choices=sorted(CONFIGS),
            help="machine model (default %(default)s)",
        )


def add_session_argument(
    parser: argparse.ArgumentParser, *, default: int = 1024
) -> None:
    """``--session-bytes N`` with ``--session`` kept as an alias."""
    parser.add_argument(
        "--session-bytes", "--session", dest="session_bytes", type=int,
        default=default,
        help="session length in bytes (default %(default)s)",
    )


def add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for timing simulations (default 1: serial)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="live progress line on stderr (groups done, busy workers, "
             "ETA, stuck-worker warnings); works with any --jobs value",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="trace entries per streamed chunk (default "
             f"{DEFAULT_CHUNK_SIZE}); results are identical at any size",
    )
    parser.add_argument(
        "--no-stream", action="store_true",
        help="materialize each functional trace before timing simulation "
             "instead of streaming it chunk by chunk",
    )
    add_backend_argument(parser)
    add_timing_engine_argument(parser)
    add_observability_arguments(parser)


def add_backend_argument(parser: argparse.ArgumentParser) -> None:
    """``--backend NAME``: which execution backend runs functional sims.

    Backends are bit-identical (same traces, same cache records); the
    choice only affects speed.  See ``docs/backends.md``.
    """
    parser.add_argument(
        "--backend", default=None, choices=backend_names(),
        help="functional execution backend (default: "
             f"{DEFAULT_BACKEND}); results are identical either way",
    )


def add_timing_engine_argument(parser: argparse.ArgumentParser) -> None:
    """``--timing-engine NAME``: which engine runs the timing pipeline.

    Engines are bit-identical (same SimStats, same cache records); the
    choice only affects speed.  See ``docs/timing.md``.
    """
    parser.add_argument(
        "--timing-engine", default=None, choices=engine_names(),
        help="cycle-accurate timing engine (default: "
             f"{DEFAULT_ENGINE}); results are identical either way",
    )


def add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """``--metrics-out`` / ``--trace-out`` telemetry outputs.

    See ``docs/observability.md`` for the file formats.
    """
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a metrics snapshot (counters, histograms) as JSON",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write runner/simulator spans: Chrome/Perfetto trace JSON, "
             "or one event per line if PATH ends in .jsonl",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="sample the host's Python stacks during the run and print a "
             "subsystem wall-time breakdown (see docs/observability.md)",
    )
    parser.add_argument(
        "--profile-hz", type=int, default=DEFAULT_HZ, metavar="HZ",
        help="profiler sampling rate (default %(default)s)",
    )
    parser.add_argument(
        "--profile-out", metavar="PATH", default=None,
        help="also write collapsed stacks (flamegraph.pl / speedscope "
             "format); implies --profile",
    )
    parser.add_argument(
        "--events-out", metavar="PATH", default=None,
        help="append the unified run ledger (JSONL, schema "
             "repro.obs.events/1): runner, cache, backend, bench and "
             "profiler events; render with repro.tools.dash",
    )


def observability_from_args(
    args: argparse.Namespace, *, tool: str | None = None
) -> Observability:
    """Build an :class:`Observability` session from the telemetry flags.

    Inert (no registry, no tracer) unless at least one output path was
    given, so tools can call it unconditionally.
    """
    obs = Observability(
        metrics_out=getattr(args, "metrics_out", None),
        trace_out=getattr(args, "trace_out", None),
        tool=tool,
        profile=getattr(args, "profile", False),
        profile_hz=getattr(args, "profile_hz", DEFAULT_HZ),
        profile_out=getattr(args, "profile_out", None),
        events_out=getattr(args, "events_out", None),
    )
    obs.backend = getattr(args, "backend", None) or DEFAULT_BACKEND
    obs.timing_engine = (getattr(args, "timing_engine", None)
                         or DEFAULT_ENGINE)
    return obs


def runner_from_args(
    args: argparse.Namespace, *, obs: Observability | None = None, **kwargs
) -> Runner:
    """Build a :class:`Runner` from ``add_runner_arguments`` flags.

    Pass the tool's :class:`Observability` session as ``obs`` to plumb its
    metrics registry and tracer into the runner.
    """
    cache = (ResultCache.disabled() if getattr(args, "no_cache", False)
             else ResultCache.from_env())
    if obs is not None:
        kwargs.setdefault("metrics", obs.metrics)
        kwargs.setdefault("tracer", obs.tracer)
        kwargs.setdefault("bus", obs.bus)
    if getattr(args, "progress", False):
        kwargs.setdefault("heartbeat_hook", ProgressReporter())
    kwargs.setdefault("stream", not getattr(args, "no_stream", False))
    chunk_size = getattr(args, "chunk_size", None)
    if chunk_size is not None:
        if chunk_size < 1:
            raise SystemExit("--chunk-size must be >= 1")
        kwargs.setdefault("chunk_size", chunk_size)
    kwargs.setdefault("backend", getattr(args, "backend", None))
    kwargs.setdefault("timing_engine", getattr(args, "timing_engine", None))
    return Runner(cache=cache, jobs=getattr(args, "jobs", 1), **kwargs)
