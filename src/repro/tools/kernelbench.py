"""One-shot kernel measurement CLI.

    python -m repro.tools.kernelbench --cipher Twofish --features opt \
        --configs 4W 4W+ 8W+ DF --session 1024

Prints instructions/byte, cycles, IPC, and bytes/1000cyc (== MB/s at 1 GHz)
for the chosen cipher kernel on each machine model, plus the decryption
direction with --decrypt.
"""

from __future__ import annotations

import argparse

from repro.isa import Features
from repro.kernels import KERNEL_NAMES, make_kernel
from repro.tools.riscasim import CONFIGS
from repro.sim import simulate

FEATURE_LEVELS = {
    "norot": Features.NOROT,
    "rot": Features.ROT,
    "opt": Features.OPT,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.kernelbench",
                                     description=__doc__)
    parser.add_argument("--cipher", required=True, choices=KERNEL_NAMES)
    parser.add_argument("--features", default="opt",
                        choices=sorted(FEATURE_LEVELS))
    parser.add_argument("--configs", nargs="+", default=["4W", "DF"],
                        choices=sorted(CONFIGS))
    parser.add_argument("--session", type=int, default=1024)
    parser.add_argument("--decrypt", action="store_true",
                        help="measure the decryption kernel instead")
    args = parser.parse_args(argv)

    kernel = make_kernel(args.cipher, FEATURE_LEVELS[args.features])
    block = max(kernel.block_bytes, 1)
    session = (args.session // block) * block
    data = bytes(i & 0xFF for i in range(session))
    iv = bytes(kernel.block_bytes) if kernel.block_bytes > 1 else None
    if args.decrypt:
        ciphertext = kernel.encrypt(data, iv).ciphertext
        run = kernel.decrypt(ciphertext, iv)
    else:
        run = kernel.encrypt(data, iv)

    direction = "decrypt" if args.decrypt else "encrypt"
    print(f"{args.cipher} [{kernel.features.label}] {direction} "
          f"{session} bytes: {run.instructions} instructions "
          f"({run.instructions_per_byte:.1f}/byte)")
    print(f"{'config':<8} {'cycles':>9} {'IPC':>6} {'B/1000cyc':>10}")
    for name in args.configs:
        stats = simulate(run.trace, CONFIGS[name], run.warm_ranges)
        print(f"{name:<8} {stats.cycles:>9} {stats.ipc:>6.2f} "
              f"{stats.bytes_per_kilocycle(session):>10.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
