"""One-shot kernel measurement CLI.

    python -m repro.tools.kernelbench --cipher Twofish --features opt \
        --config 4W 4W+ 8W+ DF --session-bytes 1024

Prints instructions/byte, cycles, IPC, and bytes/1000cyc (== MB/s at 1 GHz)
for the chosen cipher kernel on each machine model, plus the decryption
direction with --decrypt.  Results come from the shared experiment runner:
one functional simulation feeds every machine model, and repeat invocations
hit the on-disk cache (disable with --no-cache, parallelize with --jobs).
"""

from __future__ import annotations

import argparse

from repro.kernels import make_kernel
from repro.runner import Experiment, ExperimentOptions
from repro.tools.cli import (
    CONFIGS,
    FEATURE_LEVELS,
    add_cipher_argument,
    add_config_argument,
    add_features_argument,
    add_runner_arguments,
    add_session_argument,
    observability_from_args,
    runner_from_args,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.kernelbench",
                                     description=__doc__)
    add_cipher_argument(parser)
    add_features_argument(parser)
    add_config_argument(parser, multiple=True)
    add_session_argument(parser)
    parser.add_argument("--decrypt", action="store_true",
                        help="measure the decryption kernel instead")
    add_runner_arguments(parser)
    args = parser.parse_args(argv)

    features = FEATURE_LEVELS[args.features]
    block = max(make_kernel(args.cipher, features).block_bytes, 1)
    session = (args.session_bytes // block) * block
    options = ExperimentOptions(
        cipher=args.cipher,
        features=features,
        session_bytes=session,
        kind="decrypt" if args.decrypt else "encrypt",
    )
    obs = observability_from_args(args, tool="kernelbench")
    runner = runner_from_args(args, obs=obs)
    with obs:
        results = runner.run([
            Experiment(options, CONFIGS[name]) for name in args.configs
        ])

    first = results[0]
    print(f"{args.cipher} [{features.label}] {options.kind} "
          f"{session} bytes: {first.instructions} instructions "
          f"({first.instructions_per_byte:.1f}/byte)")
    print(f"{'config':<8} {'cycles':>9} {'IPC':>6} {'B/1000cyc':>10}")
    for name, result in zip(args.configs, results):
        stats = result.stats
        print(f"{name:<8} {stats.cycles:>9} {stats.ipc:>6.2f} "
              f"{stats.bytes_per_kilocycle(session):>10.2f}")
    for line in obs.report():
        print(line)
    for path in obs.write():
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
