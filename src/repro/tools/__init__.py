"""Command-line tools: encrypt/decrypt files, assemble RISC-A, measure kernels."""
