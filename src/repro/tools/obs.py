"""Stall-attribution explorer: where did the issue slots go?

    python -m repro.tools.obs --cipher Blowfish RC6 --config 4W 8W+
    python -m repro.tools.obs --cipher IDEA --config 4W --hotspots 10
    python -m repro.tools.obs --cipher Blowfish --config 4W+ \
        --pipeline 100:140 --trace-out blowfish.json
    python -m repro.tools.obs --check metrics.json

For each cipher x machine model this prints the issue-slot account from
the timing simulator's per-cycle stall attribution: the fraction of slots
that issued instructions, and the fraction lost to each stall category
(fetch, window, operands, memory ordering, per-pool FU contention, ...).
The categories sum exactly to 100% of ``cycles * issue_width`` -- see
``docs/observability.md`` for definitions and the mapping to the paper's
bottleneck terminology.

``--hotspots N`` adds the N static instructions that accumulated the most
wait cycles.  ``--pipeline START:END`` renders the ASCII pipeline for a
trace window and, with ``--trace-out``, also emits the window as
Chrome/Perfetto trace events alongside the runner spans.  ``--check PATH``
validates a previously written metrics or trace file against the schema
and exits non-zero on errors.
"""

from __future__ import annotations

import argparse
import json

from repro.kernels import KERNEL_NAMES
from repro.obs import (
    ANALYSIS_SCHEMA,
    BENCH_SCHEMA,
    DIFF_SCHEMA,
    EVENTS_SCHEMA,
    LINT_SCHEMA,
    schedule_trace_events,
    validate_analysis,
    validate_bench,
    validate_bench_history,
    validate_diff,
    validate_event_ledger,
    validate_lint,
    validate_metrics,
    validate_trace_events,
)
from repro.runner import Experiment, ExperimentOptions
from repro.sim.pipeview import render_pipeline, stall_summary
from repro.sim.stats import STALL_CATEGORIES
from repro.sim.timing import simulate
from repro.tools.cli import (
    CONFIGS,
    FEATURE_LEVELS,
    add_config_argument,
    add_features_argument,
    add_runner_arguments,
    add_session_argument,
    observability_from_args,
    runner_from_args,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.obs",
                                     description=__doc__)
    parser.add_argument(
        "--cipher", nargs="+", default=list(KERNEL_NAMES),
        choices=KERNEL_NAMES, metavar="NAME",
        help="cipher kernel(s) to account (default: the full suite)",
    )
    add_features_argument(parser)
    add_config_argument(parser, multiple=True, default=["4W", "8W+"])
    add_session_argument(parser)
    parser.add_argument(
        "--hotspots", type=int, default=0, metavar="N",
        help="also print the N hottest static instructions per run",
    )
    parser.add_argument(
        "--pipeline", metavar="START:END",
        help="render the pipeline schedule for a dynamic-instruction "
             "window (single cipher/config only); with --trace-out the "
             "window is exported as Perfetto trace events too",
    )
    parser.add_argument(
        "--check", metavar="PATH",
        help="validate a metrics/trace JSON file against the documented "
             "schema and exit (all other arguments are ignored)",
    )
    add_runner_arguments(parser)
    args = parser.parse_args(argv)

    if args.check:
        return check_file(args.check)

    features = FEATURE_LEVELS[args.features]
    obs = observability_from_args(args, tool="obs")
    runner = runner_from_args(args, obs=obs)

    with obs:
        for cipher in args.cipher:
            options = ExperimentOptions(
                cipher=cipher, features=features,
                session_bytes=args.session_bytes,
            )
            results = runner.run([
                Experiment(options, CONFIGS[name]) for name in args.configs
            ])
            print(breakdown_table(cipher, features.label, args.session_bytes,
                                  list(zip(args.configs, results))))
            if args.hotspots:
                for name, result in zip(args.configs, results):
                    print(hotspot_table(name, result.stats, args.hotspots))
            print()

        if args.pipeline:
            if len(args.cipher) != 1 or len(args.configs) != 1:
                parser.error("--pipeline needs exactly one cipher and config")
            render_window(runner, obs, args.cipher[0], features,
                          args.session_bytes, CONFIGS[args.configs[0]],
                          args.pipeline)

    for line in obs.report():
        print(line)
    for path in obs.write():
        print(f"wrote {path}")
    return 0


def check_file(path: str) -> int:
    """Validate a written metrics, trace, or bench-history file.

    The document kind is sniffed from its content: a ``metrics`` key means
    the metrics schema, a ``repro.obs.bench/1`` schema stamp (on a single
    object or on JSONL lines) means the benchmark history, a
    ``repro.obs.diff/1`` stamp means a run-comparison report, a
    ``repro.obs.events/1`` stamp on JSONL lines means a run ledger, a
    ``repro.isa.verify/1`` stamp means a lint report, a
    ``repro.isa.analysis/1`` stamp means a static cost-bound report,
    anything else is checked as Chrome/Perfetto trace events.  Returns 0
    iff valid.
    """
    with open(path) as handle:
        if path.endswith(".jsonl"):
            document = [json.loads(line) for line in handle if line.strip()]
        else:
            document = json.load(handle)
    if isinstance(document, dict) \
            and document.get("schema") == LINT_SCHEMA:
        errors, kind = validate_lint(document), "lint"
    elif isinstance(document, dict) \
            and document.get("schema") == ANALYSIS_SCHEMA:
        errors, kind = validate_analysis(document), "analysis"
    elif isinstance(document, dict) \
            and document.get("schema") == BENCH_SCHEMA:
        errors, kind = validate_bench(document), "bench"
    elif isinstance(document, dict) \
            and document.get("schema") == DIFF_SCHEMA:
        # Before the "metrics" key sniff: a diff report of kind
        # "metrics" carries delta rows under that key too.
        errors, kind = validate_diff(document), "diff report"
    elif isinstance(document, dict) and "metrics" in document:
        errors, kind = validate_metrics(document), "metrics"
    elif isinstance(document, list) and document and all(
        isinstance(entry, dict) and entry.get("schema") == BENCH_SCHEMA
        for entry in document
    ):
        errors, kind = validate_bench_history(document), "bench history"
    elif isinstance(document, list) and document and all(
        isinstance(entry, dict) and entry.get("schema") == EVENTS_SCHEMA
        for entry in document
    ):
        errors, kind = validate_event_ledger(document), "event ledger"
    else:
        errors, kind = validate_trace_events(document), "trace"
    if errors:
        print(f"{path}: {len(errors)} {kind} schema error(s)")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"{path}: valid {kind} document")
    return 0


def breakdown_table(cipher, features_label, session_bytes, named) -> str:
    """The issue-slot account for one cipher across machine models."""
    lines = [f"{cipher} [{features_label}] {session_bytes}B"]
    width = max(len(name) for name, _ in named)
    header = f"  {'slots':<12}" + "".join(
        f" {name:>{max(width, 8)}}" for name, _ in named
    )
    lines.append(header)

    def row(label, cells):
        return f"  {label:<12}" + "".join(
            f" {cell:>{max(width, 8)}}" for cell in cells
        )

    fractions = [result.stats.stall_fractions() for _, result in named]
    for category in ("issued",) + STALL_CATEGORIES:
        if not any(category in f for f in fractions):
            continue
        lines.append(row(category, [
            f"{f[category]:.1%}" if category in f else "-"
            for f in fractions
        ]))
    lines.append(row("cycles", [
        str(result.stats.cycles) for _, result in named
    ]))
    lines.append(row("IPC", [
        f"{result.stats.ipc:.2f}" for _, result in named
    ]))
    return "\n".join(lines)


def hotspot_table(config_name, stats, limit: int) -> str:
    """The static instructions with the most accumulated wait cycles.

    The header names the owning program (digest prefix) and the timing
    engine that produced the table, so two printed tables can never be
    silently read as comparable when they came from different programs.
    """
    if not stats.hotspots:
        return f"  [{config_name}] no hot spots recorded"
    digest = stats.extra.get("program_digest", "")
    provenance = f" program {digest[:12]}" if digest else ""
    engine = stats.extra.get("timing_engine")
    if engine:
        provenance += f" engine {engine}"
    lines = [f"  [{config_name}]{provenance} "
             f"hot spots (wait cycles by category):"]
    for spot in stats.hotspots[:limit]:
        reasons = ", ".join(
            f"{category} {cycles}" for category, cycles
            in sorted(spot["wait_cycles"].items(),
                      key=lambda item: -item[1])
        )
        lines.append(
            f"    #{spot['static_index']:<4} {spot['text']:<36} "
            f"x{spot['executions']:<6} {reasons}"
        )
    return "\n".join(lines)


def render_window(runner, obs, cipher, features, session_bytes, config,
                  window: str) -> None:
    """ASCII-render (and optionally trace-export) a schedule window."""
    start, end = (int(part) for part in window.split(":"))
    options = ExperimentOptions(
        cipher=cipher, features=features, session_bytes=session_bytes
    )
    run = runner.functional(options)
    stats = simulate(run.trace, config, run.warm_ranges,
                     schedule_range=(start, end))
    schedule = stats.extra["schedule"]
    print(render_pipeline(run.trace, schedule))
    print(", ".join(f"{key}={value:.1f}"
                    for key, value in stall_summary(schedule).items()))
    if obs.tracer is not None:
        instructions = run.trace.program.instructions
        obs.tracer.add_events(schedule_trace_events(
            schedule,
            labels=lambda index: instructions[index].render(),
            pid=1,
            track_prefix=f"{cipher}:{config.name}",
        ))


if __name__ == "__main__":
    raise SystemExit(main())
