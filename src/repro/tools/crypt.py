"""File encryption CLI over the reference cipher suite.

    python -m repro.tools.crypt encrypt --cipher Twofish --key <hex> \
        --iv <hex> input.bin output.bin
    python -m repro.tools.crypt decrypt --cipher Twofish --key <hex> \
        --iv <hex> output.bin recovered.bin

Zero-pads the final block (and records nothing about original length):
a demonstration tool for the reproduction, not a secure container format.
"""

from __future__ import annotations

import argparse
import sys

from repro.ciphers import CBC, get_cipher_info
from repro.tools.cli import add_cipher_argument


def _pad(data: bytes, block: int) -> bytes:
    remainder = len(data) % block
    return data + bytes(block - remainder) if remainder else data


def run(args: argparse.Namespace) -> int:
    info = get_cipher_info(args.cipher)
    key = bytes.fromhex(args.key)
    cipher = info.make(key)
    data = _read(args.input)

    if info.is_stream:
        result = cipher.process(data)
    else:
        iv = bytes.fromhex(args.iv) if args.iv else bytes(info.block_bytes)
        if len(iv) != info.block_bytes:
            raise SystemExit(f"IV must be {info.block_bytes} bytes")
        mode = CBC(cipher, iv)
        data = _pad(data, info.block_bytes)
        result = mode.encrypt(data) if args.action == "encrypt" else \
            mode.decrypt(data)
    _write(args.output, result)
    print(f"{args.action}ed {len(data)} bytes with {info.name}",
          file=sys.stderr)
    return 0


def _read(path: str) -> bytes:
    if path == "-":
        return sys.stdin.buffer.read()
    with open(path, "rb") as handle:
        return handle.read()


def _write(path: str, data: bytes) -> None:
    if path == "-":
        sys.stdout.buffer.write(data)
        return
    with open(path, "wb") as handle:
        handle.write(data)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.tools.crypt",
                                     description=__doc__)
    parser.add_argument("action", choices=("encrypt", "decrypt"))
    add_cipher_argument(parser)
    parser.add_argument("--key", required=True, help="hex key")
    parser.add_argument("--iv", default="", help="hex IV (CBC modes)")
    parser.add_argument("input", help="input file, or - for stdin")
    parser.add_argument("output", help="output file, or - for stdout")
    return parser


def main(argv: list[str] | None = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
