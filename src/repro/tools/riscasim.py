"""RISC-A assembler/simulator CLI -- the reproduction's sim-outorder.

    python -m repro.tools.riscasim program.s                 # run + stats
    python -m repro.tools.riscasim program.s --config DF     # pick a machine
    python -m repro.tools.riscasim program.s --list          # disassemble
    python -m repro.tools.riscasim program.s --view 0:30     # pipeline view
    python -m repro.tools.riscasim program.s --bottlenecks   # Figure 5 sweep

The program runs against a fresh 1 MB memory; use LDIQ-materialized
addresses and STL/STQ to produce observable results (dumped with --dump).
"""

from __future__ import annotations

import argparse
import sys

from repro.isa import assemble
from repro.sim import (
    ALPHA21264,
    BASE4W,
    BOTTLENECKS,
    DATAFLOW,
    DATAFLOW_BASEISA,
    EIGHTW_PLUS,
    FOURW,
    FOURW_PLUS,
    Machine,
    Memory,
    bottleneck_config,
    simulate,
)
from repro.sim.pipeview import render_pipeline, stall_summary

CONFIGS = {
    "base": BASE4W,
    "alpha": ALPHA21264,
    "4W": FOURW,
    "4W+": FOURW_PLUS,
    "8W+": EIGHTW_PLUS,
    "DF": DATAFLOW,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.riscasim",
                                     description=__doc__)
    parser.add_argument("source", help="assembly file, or - for stdin")
    parser.add_argument("--config", default="4W", choices=sorted(CONFIGS),
                        help="machine model (default 4W)")
    parser.add_argument("--list", action="store_true",
                        help="print the disassembly and exit")
    parser.add_argument("--view", metavar="START:END",
                        help="render the pipeline for a trace window")
    parser.add_argument("--bottlenecks", action="store_true",
                        help="run the Figure 5 single-bottleneck sweep")
    parser.add_argument("--dump", metavar="ADDR:LEN",
                        help="hex-dump a memory range after the run")
    parser.add_argument("--memory", type=int, default=1 << 20,
                        help="memory size in bytes")
    args = parser.parse_args(argv)

    text = (sys.stdin.read() if args.source == "-"
            else open(args.source).read())
    program = assemble(text)
    if args.list:
        print(program.listing())
        return 0

    memory = Memory(args.memory)
    result = Machine(program, memory).run()
    trace = result.trace
    config = CONFIGS[args.config]
    stats = simulate(trace, config)
    print(f"{result.instructions} instructions; {stats.summary()}")

    if args.dump:
        address, length = (int(part, 0) for part in args.dump.split(":"))
        print(memory.read_bytes(address, length).hex())

    if args.view:
        start, end = (int(part) for part in args.view.split(":"))
        window_stats = simulate(trace, config, schedule_range=(start, end))
        schedule = window_stats.extra["schedule"]
        print(render_pipeline(trace, schedule))
        print(", ".join(f"{k}={v:.1f}"
                        for k, v in stall_summary(schedule).items()))

    if args.bottlenecks:
        dataflow = simulate(trace, DATAFLOW_BASEISA).cycles
        print(f"{'bottleneck':<10} rel-to-DF")
        for which in BOTTLENECKS:
            cycles = simulate(trace, bottleneck_config(which)).cycles
            print(f"{which:<10} {dataflow / cycles:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
