"""RISC-A assembler/simulator CLI -- the reproduction's sim-outorder.

    python -m repro.tools.riscasim program.s                 # run + stats
    python -m repro.tools.riscasim program.s --config DF     # pick a machine
    python -m repro.tools.riscasim program.s --list          # disassemble
    python -m repro.tools.riscasim program.s --view 0:30     # pipeline view
    python -m repro.tools.riscasim program.s --bottlenecks   # Figure 5 sweep
    python -m repro.tools.riscasim --cipher Blowfish --profile --no-cache
    python -m repro.tools.riscasim --cipher RC4 --backend compiled --explain

The program runs against a fresh 1 MB memory; use LDIQ-materialized
addresses and STL/STQ to produce observable results (dumped with --dump).
Timing results are cached on disk keyed by the assembled program's content
hash (bypass with --no-cache); the functional run and the --view pipeline
rendering always execute live.

``--cipher NAME`` runs a suite cipher kernel (with its table/key memory
image) instead of an assembly source -- combined with ``--profile`` it is
the quickest way to see where *host* wall time goes for one cipher run.
"""

from __future__ import annotations

import argparse
import sys

from repro.isa import assemble
from repro.kernels import KERNEL_NAMES
from repro.runner import Experiment, ExperimentOptions
from repro.sim import (
    BOTTLENECKS,
    DATAFLOW_BASEISA,
    Machine,
    Memory,
    bottleneck_config,
    simulate,
)
from repro.sim.pipeview import render_pipeline, stall_summary
from repro.tools.cli import (
    CONFIGS,
    FEATURE_LEVELS,
    add_config_argument,
    add_features_argument,
    add_runner_arguments,
    add_session_argument,
    observability_from_args,
    runner_from_args,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.riscasim",
                                     description=__doc__)
    parser.add_argument("source", nargs="?",
                        help="assembly file, or - for stdin")
    parser.add_argument(
        "--cipher", choices=KERNEL_NAMES,
        help="run this suite cipher kernel instead of an assembly source",
    )
    add_features_argument(parser)
    add_session_argument(parser)
    add_config_argument(parser)
    parser.add_argument("--list", action="store_true",
                        help="print the disassembly and exit")
    parser.add_argument("--view", metavar="START:END",
                        help="render the pipeline for a trace window")
    parser.add_argument("--bottlenecks", action="store_true",
                        help="run the Figure 5 single-bottleneck sweep")
    parser.add_argument("--dump", metavar="ADDR:LEN",
                        help="hex-dump a memory range after the run")
    parser.add_argument("--memory", type=int, default=1 << 20,
                        help="memory size in bytes")
    parser.add_argument(
        "--explain", action="store_true",
        help="with --backend compiled and/or --timing-engine specialized: "
             "print the per-program codegen report(s) (elided checks, "
             "folded constants, compile time)",
    )
    add_runner_arguments(parser)
    args = parser.parse_args(argv)

    if bool(args.source) == bool(args.cipher):
        parser.error("give exactly one of: an assembly source, or --cipher")
    if args.cipher and (args.view or args.bottlenecks
                        or args.dump or args.list):
        parser.error("--cipher supports plain stats runs only "
                     "(no --list/--view/--dump/--bottlenecks)")
    if args.explain and args.backend != "compiled" \
            and args.timing_engine != "specialized":
        parser.error("--explain requires --backend compiled and/or "
                     "--timing-engine specialized")

    config = CONFIGS[args.config]
    obs = observability_from_args(args, tool="riscasim")
    runner = runner_from_args(args, obs=obs)

    if args.cipher:
        options = ExperimentOptions(
            cipher=args.cipher,
            features=FEATURE_LEVELS[args.features],
            session_bytes=args.session_bytes,
        )
        with obs:
            result = runner.run_one(Experiment(options, config))
        print(f"{args.cipher} [{options.features.label}] "
              f"{options.session_bytes}B on {config.name}: "
              f"{result.instructions} instructions; "
              f"{result.stats.summary()}")
        _print_slots(result.stats)
        if args.explain:
            _print_explain(args)
        _finish(obs)
        return 0

    text = (sys.stdin.read() if args.source == "-"
            else open(args.source).read())
    program = assemble(text)
    if args.list:
        print(program.listing())
        return 0

    memory = Memory(args.memory)
    key_base = ["riscasim", program.digest(), args.memory]
    # --view/--bottlenecks replay the trace several times and --dump needs
    # the post-run memory image, so those paths materialize; the plain
    # stats run streams chunk by chunk (bounded trace memory).
    needs_trace = bool(args.view or args.bottlenecks or args.dump)
    with obs:
        if runner.stream and not needs_trace:
            source = Machine(program, memory).execute(
                stream=True, backend=runner.backend,
                chunk_size=runner.chunk_size,
            )
            stats = runner.simulate_stream(
                source, [config], key_parts=key_base
            )[0]
            instructions = stats.instructions
            trace = None
        else:
            result = Machine(program, memory).execute(backend=runner.backend)
            trace = result.trace
            stats = runner.simulate_trace(trace, config, key_parts=key_base)
            instructions = result.instructions
    print(f"{instructions} instructions; {stats.summary()}")
    _print_slots(stats)

    if args.dump:
        address, length = (int(part, 0) for part in args.dump.split(":"))
        print(memory.read_bytes(address, length).hex())

    if args.view:
        start, end = (int(part) for part in args.view.split(":"))
        window_stats = simulate(trace, config, schedule_range=(start, end))
        schedule = window_stats.extra["schedule"]
        print(render_pipeline(trace, schedule))
        print(", ".join(f"{k}={v:.1f}"
                        for k, v in stall_summary(schedule).items()))

    if args.bottlenecks:
        dataflow = runner.simulate_trace(
            trace, DATAFLOW_BASEISA, key_parts=key_base
        ).cycles
        print(f"{'bottleneck':<10} rel-to-DF")
        for which in BOTTLENECKS:
            cycles = runner.simulate_trace(
                trace, bottleneck_config(which), key_parts=key_base
            ).cycles
            print(f"{which:<10} {dataflow / cycles:.3f}")

    if args.explain:
        _print_explain(args)
    _finish(obs)
    return 0


def _print_explain(args) -> None:
    if args.backend == "compiled":
        from repro.sim.backends.compiled import explain_table
        print(explain_table())
    if args.timing_engine == "specialized":
        from repro.sim.timing.specialized import explain_table
        print(explain_table())


def _print_slots(stats) -> None:
    fractions = stats.stall_fractions()
    if fractions:
        print("issue slots: " + ", ".join(
            f"{name} {share:.1%}" for name, share in fractions.items()
        ))


def _finish(obs) -> None:
    for line in obs.report():
        print(line)
    for path in obs.write():
        print(f"wrote {path}")


if __name__ == "__main__":
    raise SystemExit(main())
