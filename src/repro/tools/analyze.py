"""Static cycle-cost bounds for the shipped kernels, checked against sim.

    python -m repro.tools.analyze --all
    python -m repro.tools.analyze --cipher RC4 IDEA --config 4W 8W+
    python -m repro.tools.analyze --all --format json --out analysis.json
    python -m repro.tools.analyze --cipher Blowfish --static-only

For each cipher x feature level x machine model this runs the functional
kernel once, brackets its cycle count with the static cost model
(:func:`repro.isa.analysis.estimate_cost`: dependence-height/throughput
lower bound, block-granular list-scheduling upper bound), runs the timing
simulator on the same trace, and asserts soundness::

    lower_bound <= simulated cycles <= upper_bound

``--all`` sweeps every cipher at every feature level over the paper's
4W / 8W+ / DF models -- the matrix CI enforces.  Any unsound cell makes
the exit status non-zero.  ``--static-only`` skips the simulations and
reports bounds alone (no soundness check, always exits 0).

``--format json`` emits a ``repro.isa.analysis/1`` report document (see
``docs/analysis.md``); ``--out`` writes it to a file that
``python -m repro.tools.obs --check`` can validate.  With ``--events-out``
each cell also lands on the run ledger as an ``analysis``/``estimate``
event (rendered by ``repro.tools.dash``), and ``--metrics-out`` records
``analysis.*`` counters and gap gauges.
"""

from __future__ import annotations

import argparse
import json

from repro.isa.analysis import analyses_for, estimate_cost
from repro.kernels import KERNEL_NAMES
from repro.kernels.registry import make_kernel
from repro.obs import ANALYSIS_SCHEMA, publish_event
from repro.tools.cli import (
    CONFIGS,
    FEATURE_LEVELS,
    add_observability_arguments,
    add_session_argument,
    observability_from_args,
)

#: Machine models ``--all`` sweeps: the paper's enhanced 4-wide and
#: 8-wide models plus the dataflow limit (the three the soundness matrix
#: in ``tests/isa/test_cost_model.py`` pins).
SWEEP_CONFIGS = ("4W", "8W+", "DF")

#: Default session length for the sweep: a multiple of every kernel's
#: block size, long enough to execute the steady-state loop several
#: times, short enough that the full 72-cell matrix stays interactive.
DEFAULT_SESSION = 128


def analyze_cell(cipher, features, config_name, session_bytes,
                 simulate_cycles=True):
    """Bracket (and optionally simulate) one cipher/features/config cell.

    Returns the cell as a plain ``repro.isa.analysis/1`` program entry.
    """
    kernel = make_kernel(cipher, features=features)
    run = kernel.encrypt(bytes(session_bytes))
    name = f"{cipher}[{features.label}]"
    report = estimate_cost(
        run.trace.program, CONFIGS[config_name], run.trace,
        run.warm_ranges,
        analyses=analyses_for(run.trace.program), name=name,
    )
    cell = {
        "program": name,
        "config": config_name,
        "instructions": report.instructions,
        "lower_bound": report.lower_bound,
        "upper_bound": report.upper_bound,
        "gap": round(report.gap, 4),
        "components": dict(report.components),
    }
    if simulate_cycles:
        from repro.sim.timing import simulate

        stats = simulate(run.trace, CONFIGS[config_name], run.warm_ranges)
        cell["simulated_cycles"] = stats.cycles
        cell["sound"] = (
            report.lower_bound <= stats.cycles <= report.upper_bound
        )
    publish_event("analysis", "estimate", {
        "program": cell["program"],
        "config": cell["config"],
        "lower": cell["lower_bound"],
        "upper": cell["upper_bound"],
        "simulated": cell.get("simulated_cycles"),
        "sound": cell.get("sound"),
        "gap": cell["gap"],
    })
    return cell


def _median(values):
    ordered = sorted(values)
    if not ordered:
        return None
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def analysis_document(cells, session_bytes,
                      *, tool="repro.tools.analyze") -> dict:
    """Render analyzed cells as a ``repro.isa.analysis/1`` document."""
    summary = {
        "programs": len(cells),
        "session_bytes": session_bytes,
        "unsound": sum(1 for cell in cells if cell.get("sound") is False),
    }
    for config_name in sorted({cell["config"] for cell in cells}):
        median = _median([
            cell["gap"] for cell in cells if cell["config"] == config_name
        ])
        if median is not None:
            summary[f"median_gap_{config_name}"] = round(median, 4)
    return {
        "schema": ANALYSIS_SCHEMA,
        "generated_by": tool,
        "programs": list(cells),
        "summary": summary,
    }


def record_analysis_metrics(metrics, cells) -> None:
    """Fold analyzed cells into a metrics registry.

    Emits an ``analysis.estimates`` counter and ``analysis.gap`` gauge
    per machine model, plus a global ``analysis.unsound`` counter --
    the same ``analysis.*`` namespace the ledger events use.
    """
    for cell in cells:
        metrics.counter(
            "analysis.estimates", {"config": cell["config"]}
        ).inc()
        metrics.gauge(
            "analysis.gap",
            {"config": cell["config"], "program": cell["program"]},
        ).set(cell["gap"])
        if cell.get("sound") is False:
            metrics.counter("analysis.unsound").inc()


def render_table(cells) -> str:
    lines = [
        f"{'program':<20} {'config':<6} {'instr':>7} {'lower':>8} "
        f"{'sim':>8} {'upper':>8} {'gap':>7}  sound"
    ]
    for cell in cells:
        simulated = cell.get("simulated_cycles")
        sound = cell.get("sound")
        lines.append(
            f"{cell['program']:<20} {cell['config']:<6} "
            f"{cell['instructions']:>7} {cell['lower_bound']:>8} "
            f"{simulated if simulated is not None else '-':>8} "
            f"{cell['upper_bound']:>8} {cell['gap']:>6.2f}x  "
            f"{'-' if sound is None else 'yes' if sound else 'NO'}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.analyze",
                                     description=__doc__)
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument(
        "--all", action="store_true",
        help="analyze every cipher at every feature level over "
             f"{'/'.join(SWEEP_CONFIGS)} (the CI soundness matrix)",
    )
    what.add_argument(
        "--cipher", nargs="+", choices=KERNEL_NAMES, metavar="NAME",
        help="cipher kernel(s) to analyze",
    )
    parser.add_argument(
        "--features", nargs="+", choices=sorted(FEATURE_LEVELS),
        default=None, metavar="LEVEL",
        help="feature level(s) for --cipher (default: all three)",
    )
    parser.add_argument(
        "--config", "--configs", dest="configs", nargs="+",
        choices=sorted(CONFIGS), default=list(SWEEP_CONFIGS),
        metavar="NAME",
        help="machine model(s) (default %(default)s)",
    )
    add_session_argument(parser, default=DEFAULT_SESSION)
    parser.add_argument(
        "--static-only", action="store_true",
        help="skip the timing simulations; report bounds without the "
             "soundness check",
    )
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="report format on stdout (default %(default)s)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON report document to PATH",
    )
    add_observability_arguments(parser)
    args = parser.parse_args(argv)

    if args.all:
        ciphers = list(KERNEL_NAMES)
        levels = [FEATURE_LEVELS[key] for key in ("norot", "rot", "opt")]
    else:
        ciphers = args.cipher
        keys = args.features or sorted(FEATURE_LEVELS)
        levels = [FEATURE_LEVELS[key] for key in keys]

    obs = observability_from_args(args, tool="analyze")
    with obs:
        cells = [
            analyze_cell(cipher, features, config_name, args.session_bytes,
                         simulate_cycles=not args.static_only)
            for cipher in ciphers
            for features in levels
            for config_name in args.configs
        ]
        if obs.metrics is not None:
            record_analysis_metrics(obs.metrics, cells)

    document = analysis_document(cells, args.session_bytes)
    if args.format == "json":
        print(json.dumps(document, indent=2))
    else:
        print(render_table(cells))
        summary = document["summary"]
        gaps = ", ".join(
            f"{key[len('median_gap_'):]} {value:.2f}x"
            for key, value in summary.items()
            if key.startswith("median_gap_")
        )
        if gaps:
            print(f"median upper/lower gap: {gaps}")
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2)
        print(f"wrote {args.out}")
    for path in obs.write():
        print(f"wrote {path}")

    unsound = [cell for cell in cells if cell.get("sound") is False]
    if unsound:
        print(f"FAIL: {len(unsound)} of {len(cells)} cell(s) violate "
              "lower <= simulated <= upper")
        for cell in unsound:
            print(f"  {cell['program']} {cell['config']}: "
                  f"{cell['lower_bound']} <= {cell['simulated_cycles']} "
                  f"<= {cell['upper_bound']} is false")
        return 1
    checked = sum(1 for cell in cells if cell.get("sound") is True)
    print(f"OK: {len(cells)} cell(s), {checked} checked against "
          "simulation, all sound")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
