"""Regression forensics: diff two runs, or bisect to the first divergence.

    # Two fresh (cache-reusing) runner invocations, any stack combination:
    python -m repro.tools.diff run --cipher RC4 --config 4W \
        --a-backend interpreter --b-backend compiled \
        --a-engine generic --b-engine specialized
    # Where did the cycles go between two machine models?
    python -m repro.tools.diff run --cipher RC4 --config 4W 8W+
    # Phase alignment of two recorded run ledgers:
    python -m repro.tools.diff ledger before.jsonl after.jsonl
    # Two metrics snapshots:
    python -m repro.tools.diff metrics before.json after.json
    # A benchmark's latest record against its baseline window:
    python -m repro.tools.diff bench --suite timing \
        --benchmark rc4_timing_grid
    # First differing trace entry between two execution stacks:
    python -m repro.tools.diff bisect --cipher RC4 \
        --a-backend interpreter --b-backend compiled

Every comparison emits a schema-validated ``repro.obs.diff/1`` report
(``--format json`` / ``--out PATH``; validated by ``repro.tools.obs
--check``) whose verdict line says *where* the runs differ, not just
that they do.  Exit status follows ``diff(1)``: 0 when the sides are
identical, 1 when they differ, 2 on usage or input errors.  See
``docs/observability.md`` ("Regression forensics").
"""

from __future__ import annotations

import argparse
import json

from repro.obs.bench import BenchHistory
from repro.obs.diffing import (
    ProvenanceMismatch,
    bench_verdict,
    build_report,
    diff_bench_records,
    diff_ledger_runs,
    diff_metrics_docs,
    diff_stats,
    ledger_identical,
    ledger_verdict,
    metrics_identical,
    metrics_verdict,
    render_report,
    stats_identical,
    stats_verdict,
)
from repro.obs.events import load_ledger, split_runs
from repro.runner import Experiment, ExperimentOptions
from repro.sim.backends import DEFAULT_BACKEND, backend_names
from repro.sim.diverge import first_divergence, format_divergence
from repro.sim.timing import DEFAULT_ENGINE, engine_names
from repro.tools.cli import (
    CONFIGS,
    FEATURE_LEVELS,
    add_cipher_argument,
    add_features_argument,
    add_runner_arguments,
    add_session_argument,
    observability_from_args,
    runner_from_args,
)

#: diff(1)-style exit statuses.
IDENTICAL, DIFFERENT, TROUBLE = 0, 1, 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.diff",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="diff two runner invocations (cache-reusing)")
    add_cipher_argument(run)
    add_features_argument(run)
    add_session_argument(run)
    run.add_argument(
        "--config", "--configs", dest="configs", nargs="+", default=["4W"],
        choices=sorted(CONFIGS), metavar="NAME",
        help="one machine model for both sides, or two (side a, side b)",
    )
    for side in ("a", "b"):
        run.add_argument(
            f"--{side}-backend", default=None, choices=backend_names(),
            help=f"execution backend for side {side} (default: --backend)",
        )
        run.add_argument(
            f"--{side}-engine", default=None, choices=engine_names(),
            help=f"timing engine for side {side} (default: --timing-engine)",
        )
    add_runner_arguments(run)
    _add_output_arguments(run)

    ledger = sub.add_parser(
        "ledger", help="align two run ledgers phase by phase")
    ledger.add_argument("a", help="first ledger (JSONL)")
    ledger.add_argument("b", help="second ledger (JSONL)")
    ledger.add_argument(
        "--a-run", default=None, metavar="RUN_ID",
        help="run id inside the first file (default: its last run)",
    )
    ledger.add_argument(
        "--b-run", default=None, metavar="RUN_ID",
        help="run id inside the second file (default: its last run)",
    )
    _add_output_arguments(ledger)

    metrics = sub.add_parser(
        "metrics", help="diff two metrics snapshots")
    metrics.add_argument("a", help="first snapshot (JSON)")
    metrics.add_argument("b", help="second snapshot (JSON)")
    _add_output_arguments(metrics)

    bench = sub.add_parser(
        "bench", help="diff a benchmark's latest record vs its baseline")
    bench.add_argument("--suite", required=True)
    bench.add_argument("--benchmark", required=True)
    bench.add_argument(
        "--history", default=None, metavar="PATH",
        help="bench history file (default: REPRO_BENCH_HISTORY or "
             "results/bench/history.jsonl)",
    )
    _add_output_arguments(bench)

    bisect = sub.add_parser(
        "bisect", help="locate the first differing trace entry")
    add_cipher_argument(bisect)
    add_features_argument(bisect)
    add_session_argument(bisect)
    for side in ("a", "b"):
        bisect.add_argument(
            f"--{side}-backend", default=None, choices=backend_names(),
            help=f"execution backend for side {side}",
        )
    bisect.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="trace entries per compared window",
    )
    bisect.add_argument(
        "--context", type=int, default=3, metavar="N",
        help="surrounding trace entries to print (default %(default)s)",
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _diff_run(args)
        if args.command == "ledger":
            return _diff_ledger(args)
        if args.command == "metrics":
            return _diff_metrics(args)
        if args.command == "bench":
            return _diff_bench(args)
        return _bisect(args)
    except (OSError, ValueError, ProvenanceMismatch) as error:
        print(f"error: {error}")
        return TROUBLE


def _add_output_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format", default="table", choices=("table", "json"),
        help="report rendering on stdout (default %(default)s)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the repro.obs.diff/1 report as JSON",
    )


def _emit(report: dict, args) -> int:
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return IDENTICAL if report["identical"] else DIFFERENT


# -- subcommands -----------------------------------------------------------

def _diff_run(args) -> int:
    """Two runner invocations: cycle-provenance deltas between stacks."""
    if len(args.configs) > 2:
        raise ValueError("--config takes one or two machine models")
    config_a = args.configs[0]
    config_b = args.configs[-1]
    features = FEATURE_LEVELS[args.features]
    backend_a = args.a_backend or args.backend
    backend_b = args.b_backend or args.backend
    engine_a = args.a_engine or args.timing_engine
    engine_b = args.b_engine or args.timing_engine

    options = ExperimentOptions(
        cipher=args.cipher, features=features,
        session_bytes=args.session_bytes,
    )
    experiment_a = Experiment(
        options.with_(backend=backend_a, timing_engine=engine_a),
        CONFIGS[config_a],
    )
    experiment_b = Experiment(
        options.with_(backend=backend_b, timing_engine=engine_b),
        CONFIGS[config_b],
    )
    obs = observability_from_args(args, tool="diff")
    runner = runner_from_args(args, obs=obs)
    with obs:
        if experiment_a == experiment_b:
            result_a = result_b = runner.run([experiment_a])[0]
        else:
            result_a, result_b = runner.run([experiment_a, experiment_b])

        def label(config, backend, engine):
            return (f"{args.cipher}/{config} "
                    f"{backend or DEFAULT_BACKEND}"
                    f"+{engine or DEFAULT_ENGINE}")

        def side(config, backend, engine, result):
            return {
                "label": label(config, backend, engine),
                "cipher": args.cipher,
                "config": config,
                "features": features.label,
                "session_bytes": args.session_bytes,
                "backend": backend or DEFAULT_BACKEND,
                "timing_engine": engine or DEFAULT_ENGINE,
                "cached": bool(result.cached),
            }

        section = diff_stats(result_a.stats, result_b.stats)
        identical = stats_identical(section)
        report = build_report(
            "stats",
            side(config_a, backend_a, engine_a, result_a),
            side(config_b, backend_b, engine_b, result_b),
            identical=identical,
            verdict=stats_verdict(section,
                                  label(config_a, backend_a, engine_a),
                                  label(config_b, backend_b, engine_b)),
            generated_by="repro.tools.diff run",
            stats=section,
        )
    return _emit(report, args)


def _select_run(path: str, run_id: str | None):
    """One run's events from a (possibly multi-run) ledger file."""
    runs = split_runs(load_ledger(path))
    if not runs:
        if run_id is not None:
            raise ValueError(f"{path}: empty ledger has no run {run_id!r}")
        return "", []
    if run_id is None:
        return runs[-1]
    for found_id, events in runs:
        if found_id == run_id:
            return found_id, events
    known = ", ".join(found_id for found_id, _ in runs)
    raise ValueError(f"{path}: no run {run_id!r} (ledger holds: {known})")


def _diff_ledger(args) -> int:
    run_a, events_a = _select_run(args.a, args.a_run)
    run_b, events_b = _select_run(args.b, args.b_run)
    section = diff_ledger_runs(events_a, events_b)
    label_a = f"{args.a}:{run_a or '-'}"
    label_b = f"{args.b}:{run_b or '-'}"
    report = build_report(
        "ledger",
        {"label": label_a, "path": args.a, "run_id": run_a,
         "events": len(events_a)},
        {"label": label_b, "path": args.b, "run_id": run_b,
         "events": len(events_b)},
        identical=ledger_identical(section),
        verdict=ledger_verdict(section, label_a, label_b),
        generated_by="repro.tools.diff ledger",
        phases=section,
    )
    return _emit(report, args)


def _diff_metrics(args) -> int:
    with open(args.a, encoding="utf-8") as handle:
        document_a = json.load(handle)
    with open(args.b, encoding="utf-8") as handle:
        document_b = json.load(handle)
    rows = diff_metrics_docs(document_a, document_b)
    report = build_report(
        "metrics",
        {"label": args.a, "tool": (document_a.get("meta") or {}).get("tool")},
        {"label": args.b, "tool": (document_b.get("meta") or {}).get("tool")},
        identical=metrics_identical(rows),
        verdict=metrics_verdict(rows, args.a, args.b),
        generated_by="repro.tools.diff metrics",
        metrics=rows,
    )
    return _emit(report, args)


def _diff_bench(args) -> int:
    history = (BenchHistory(args.history) if args.history
               else BenchHistory.from_env())
    entries = history.entries(args.suite, args.benchmark)
    if not entries:
        raise ValueError(
            f"{history.path}: no records for "
            f"{args.suite}::{args.benchmark}"
        )
    current, baseline = entries[-1], entries[:-1]
    section = diff_bench_records(current, baseline)
    report = build_report(
        "bench",
        {"label": f"{args.suite}::{args.benchmark} baseline",
         "runs": len(baseline), "path": history.path},
        {"label": f"{args.suite}::{args.benchmark} latest",
         "recorded_at": current.recorded_at,
         "wall_seconds": current.wall_seconds},
        identical=not section["significant"],
        verdict=bench_verdict(section),
        generated_by="repro.tools.diff bench",
        bench=section,
    )
    return _emit(report, args)


def _bisect(args) -> int:
    """Stream both stacks in lockstep and report the first divergence."""
    from repro.runner import Runner

    features = FEATURE_LEVELS[args.features]
    options = ExperimentOptions(
        cipher=args.cipher, features=features,
        session_bytes=args.session_bytes,
    )
    runner = Runner(jobs=1)
    stream_a = runner.kernel_stream(
        options.with_(backend=args.a_backend), chunk_size=args.chunk_size)
    stream_b = runner.kernel_stream(
        options.with_(backend=args.b_backend), chunk_size=args.chunk_size)
    label_a = f"{args.cipher}/{args.a_backend or DEFAULT_BACKEND}"
    label_b = f"{args.cipher}/{args.b_backend or DEFAULT_BACKEND}"
    divergence = first_divergence(
        stream_a.source, stream_b.source,
        chunk_size=args.chunk_size, context=args.context,
    )
    if divergence is None:
        print(f"identical: {label_a} and {label_b} produce bit-identical "
              f"traces ({args.session_bytes}B session, "
              f"{features.label} features)")
        return IDENTICAL
    print(format_divergence(divergence, label_a, label_b))
    return DIFFERENT


if __name__ == "__main__":
    raise SystemExit(main())
