"""Live terminal dashboard for the unified run ledger.

    # attach to a running sweep (tail its --events-out ledger)
    python -m repro.tools.dash --follow telemetry/events.jsonl

    # replay a finished (or cancelled) run, animated
    python -m repro.tools.dash --replay telemetry/events.jsonl

    # deterministic single frame (CI, golden tests)
    python -m repro.tools.dash --once --replay telemetry/events.jsonl

Frames are a pure function of the events consumed so far (see
:mod:`repro.obs.dashboard`): replaying a ledger with ``--once`` prints
*exactly* the final frame a live ``--follow`` session showed, which makes
the output safe to diff in CI.

A ledger file appended to across several invocations holds several runs;
the newest run is rendered by default (``--run`` selects another).
``--follow`` exits when the run's ``runner``/``finish`` event arrives, or
on Ctrl-C.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.obs.dashboard import DEFAULT_WIDTH, DashState, build_state, render
from repro.obs.events import load_ledger, split_runs

#: Redraw cadence for --follow / animated --replay.
DEFAULT_INTERVAL = 0.5

_CLEAR = "\x1b[2J\x1b[H"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.dash",
                                     description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--follow", metavar="PATH",
        help="attach to a (possibly still growing) ledger and re-render "
             "as events arrive; exits when the run finishes",
    )
    mode.add_argument(
        "--replay", metavar="PATH",
        help="render a recorded ledger: animated frame-by-frame, or a "
             "single deterministic frame with --once",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print one frame (the current/final state) and exit; no "
             "screen clearing, safe for CI logs and golden tests",
    )
    parser.add_argument(
        "--run", metavar="RUN_ID", default=None,
        help="render this run_id instead of the newest run in the ledger",
    )
    parser.add_argument(
        "--interval", type=float, default=DEFAULT_INTERVAL, metavar="SEC",
        help="redraw cadence in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--width", type=int, default=DEFAULT_WIDTH, metavar="COLS",
        help="frame width in columns (default %(default)s)",
    )
    args = parser.parse_args(argv)

    if args.replay:
        return replay(args.replay, run_id=args.run, once=args.once,
                      interval=args.interval, width=args.width)
    return follow(args.follow, run_id=args.run, once=args.once,
                  interval=args.interval, width=args.width)


def _select_run(events: list[dict], run_id: str | None) -> list[dict]:
    runs = split_runs(events)
    if not runs:
        return []
    if run_id is None:
        return runs[-1][1]
    for candidate, run_events in runs:
        if candidate == run_id or candidate.startswith(run_id):
            return run_events
    raise SystemExit(f"run {run_id!r} not found; ledger holds: "
                     + ", ".join(candidate for candidate, _ in runs))


def replay(path: str, *, run_id: str | None = None, once: bool = False,
           interval: float = DEFAULT_INTERVAL,
           width: int = DEFAULT_WIDTH, stream=None) -> int:
    """Render a recorded ledger; deterministic final frame with ``once``."""
    stream = stream or sys.stdout
    events = _select_run(load_ledger(path), run_id)
    if once:
        print(render(build_state(events), width), file=stream)
        return 0
    state = DashState()
    for event in events:
        state.consume(event)
        print(_CLEAR + render(state, width), file=stream, flush=True)
        if interval > 0:
            time.sleep(min(interval, 0.1))
    return 0


def follow(path: str, *, run_id: str | None = None, once: bool = False,
           interval: float = DEFAULT_INTERVAL,
           width: int = DEFAULT_WIDTH, stream=None) -> int:
    """Tail a (possibly live) ledger, re-rendering as events arrive."""
    stream = stream or sys.stdout
    # Wait for the file to appear so `dash --follow` can be started
    # before the sweep it watches.
    while not os.path.exists(path):
        if once:
            raise SystemExit(f"{path}: no such ledger")
        time.sleep(interval or DEFAULT_INTERVAL)
    state = DashState()
    finished = False
    target_run = run_id
    try:
        with open(path, "r", encoding="utf-8") as handle:
            buffer = ""
            while True:
                chunk = handle.read()
                if chunk:
                    buffer += chunk
                    lines = buffer.split("\n")
                    buffer = lines.pop()  # partial trailing line, if any
                    for line in lines:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            event = json.loads(line)
                        except ValueError:
                            continue
                        event_run = event.get("run_id")
                        if target_run is None:
                            # Newest run wins: reset on a fresh run_id.
                            if state.run_id is not None \
                                    and event_run != state.run_id:
                                state = DashState()
                        elif event_run != target_run \
                                and not str(event_run).startswith(target_run):
                            continue
                        state.consume(event)
                        if event.get("source") == "runner" \
                                and event.get("type") == "finish":
                            finished = True
                if once:
                    print(render(state, width), file=stream)
                    return 0
                print(_CLEAR + render(state, width), file=stream, flush=True)
                if finished:
                    return 0
                time.sleep(interval or DEFAULT_INTERVAL)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
