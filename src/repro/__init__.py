"""Reproduction of Burke, McDonald & Austin, "Architectural Support for Fast
Symmetric-Key Cryptography" (ASPLOS 2000).

Public API layers:

* :mod:`repro.ciphers` -- reference implementations of the paper's eight
  symmetric ciphers plus ECB/CBC modes,
* :mod:`repro.isa` -- the RISC-A instruction set (Alpha-like base plus the
  paper's crypto extensions), text assembler and kernel builder,
* :mod:`repro.sim` -- functional simulator, dynamic traces, and the
  out-of-order timing model with the paper's machine configurations,
* :mod:`repro.kernels` -- hand-optimized RISC-A cipher kernels at three
  ISA feature levels, plus key-setup routines,
* :mod:`repro.analysis` -- harnesses regenerating every table and figure of
  the paper's evaluation.
"""

from repro.ciphers import SUITE, get_cipher_info
from repro.isa import Features, KernelBuilder, assemble
from repro.kernels import make_kernel
from repro.sim import (
    BASE4W,
    DATAFLOW,
    EIGHTW_PLUS,
    FOURW,
    FOURW_PLUS,
    Machine,
    Memory,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "SUITE",
    "get_cipher_info",
    "Features",
    "KernelBuilder",
    "assemble",
    "make_kernel",
    "BASE4W",
    "DATAFLOW",
    "EIGHTW_PLUS",
    "FOURW",
    "FOURW_PLUS",
    "Machine",
    "Memory",
    "simulate",
    "__version__",
]
