"""Trace-driven out-of-order timing model.

One pass over a dynamic trace assigns every instruction a fetch, issue,
completion and retirement cycle subject to the configured machine's
constraints:

* **Fetch** proceeds in program order at ``fetch_width`` instructions per
  cycle; with ``fetch_break_on_taken``, at most ``fetch_groups_per_cycle``
  taken branches are crossed per cycle (the paper's "1 block/cycle").  A
  mispredicted branch redirects fetch to ``complete + mispredict_penalty``.
* **Dispatch** into the window requires a free slot: instruction *i* may not
  enter until instruction *i - window_size* has retired.
* **Issue** waits for source operands, an issue slot (``issue_width`` per
  cycle) and a functional unit *in the same cycle*: IALUs, rotator/XBOX
  units, multiplier slots (a 64-bit multiply costs ``mul64_cost`` slots),
  data-cache ports, or a per-table SBox-cache port.  Older instructions
  claim slots first because the pass runs in program order -- the same
  priority an age-ordered scheduler gives.
* **Stores** resolve their address one cycle after their base register is
  ready; **loads** obey memory ordering: unless ``perfect_alias``, a load's
  cache access may not start before every prior store's address is known
  (the paper's conservative baseline).  A load overlapping a recent store
  forwards from it.  Non-aliased SBOX instructions skip ordering entirely
  (paper section 5); the aliased form (RC4's) is treated as a load.
* **Completion** adds the operation latency (plus cache-hierarchy extra
  latency when the memory system is realistic).
* **Retirement** is in-order, ``retire_width`` per cycle.

This is the standard cycle-assignment formulation of an out-of-order
machine; DESIGN.md substitution #1 discusses fidelity versus the paper's
execution-driven simulator.  With every constraint disabled (the DF config)
the pass computes the pure dataflow critical path.

**Streaming.**  The pass is organized as a :class:`TimingPipeline` whose
stage components -- :class:`FrontendState`, :class:`SchedulerState`,
:class:`MemoryOrderState`, :class:`AttributionState` -- carry their state
across :class:`~repro.sim.trace.TraceChunk` boundaries.  The pipeline
consumes any :class:`~repro.sim.trace.TraceSource` (a materialized
:class:`~repro.sim.trace.Trace` or a live
:class:`~repro.sim.machine.StreamingTrace`) chunk by chunk and produces
**bit-identical** :class:`~repro.sim.stats.SimStats` regardless of chunk
size, because every per-instruction decision depends only on carried state
plus at most one entry of lookahead (branch outcomes are inferred from the
next trace entry; the pipeline defers the final entry of each chunk until
the next chunk's first entry arrives).  :func:`simulate` is the one-call
wrapper.  See ``docs/architecture.md``.

**Stall attribution.**  On machines with a finite ``issue_width`` the pass
additionally produces an exact cycle account -- the paper's SimpleView
bottleneck analysis as data.  Every one of the run's
``cycles * issue_width`` issue slots is either used by an instruction or
attributed to exactly one stall category
(:data:`repro.sim.stats.STALL_CATEGORIES`), by blaming each cycle's empty
slots on whatever blocked the *oldest unissued* instruction at that cycle
(the standard attribution discipline of sim-outorder-style accounting):
fetch starvation, misprediction recovery, frontend depth, a full window,
operand waits, memory-ordering/alias stalls, issue-port contention, or a
busy functional-unit pool.  Cycles after the last issue are the
retirement drain.  The invariant

    ``stats.instructions + sum(stats.stall_slots.values())
    == stats.cycles * issue_width == stats.issue_slots``

holds exactly and is enforced by property tests across the cipher suite.
A complementary *instruction view* (``stats.wait_cycles`` plus the
``stats.hotspots`` table) accumulates the cycles each static instruction
spent blocked per category, independent of machine width.
"""

from __future__ import annotations

from array import array

from repro.isa.program import Program
from repro.sim.branch import BimodalPredictor
from repro.sim.caches import MemoryHierarchy
from repro.sim.config import MachineConfig
from repro.sim.sboxcache import SBoxCacheArray
from repro.sim.stats import STALL_CATEGORIES, WAIT_CATEGORIES, SimStats
from repro.sim.trace import StaticInfo, TraceChunk, TraceSource

_UNLIMITED = 1 << 30

# Stall-category indices (must mirror STALL_CATEGORIES order).
(_C_FETCH, _C_MISPREDICT, _C_FRONTEND, _C_WINDOW, _C_OPERAND, _C_ALIAS,
 _C_ISSUE, _C_FU_IALU, _C_FU_ROT, _C_FU_MUL, _C_FU_MEM, _C_FU_SBOX,
 _C_DRAIN) = range(len(STALL_CATEGORIES))
_N_WAIT = len(WAIT_CATEGORIES)
#: Instruction-view (wait) index of a stall category: categories _C_WINDOW
#: through _C_FU_SBOX map onto WAIT_CATEGORIES[cat - _C_WINDOW].
_HOTSPOT_LIMIT = 32


class FrontendState:
    """Fetch stage: program-order fetch bandwidth and redirect state."""

    __slots__ = ("fetch_cycle", "fetch_slots_used", "fetch_groups_used",
                 "mispredict_until", "predictor")

    def __init__(self, config: MachineConfig):
        self.fetch_cycle = 0
        self.fetch_slots_used = 0
        self.fetch_groups_used = 0
        self.mispredict_until = 0
        self.predictor = (
            None if config.perfect_branch_prediction
            else BimodalPredictor(config.predictor_entries)
        )


class SchedulerState:
    """Issue/FU/retire bookkeeping: per-cycle resource maps + scoreboard.

    ``reg_ready`` is sized lazily from the static metadata (interleaved
    multi-thread traces remap each thread into its own 32-register window).
    """

    __slots__ = ("issue_used", "ialu_used", "rot_used", "mul_used",
                 "dport_used", "sport_used", "retire_used", "no_fu",
                 "reg_ready", "retire_ring", "retire_prev", "max_complete",
                 "prune_mark", "trim_mark")

    def __init__(self, config: MachineConfig, static: StaticInfo):
        self.issue_used: dict[int, int] = {}
        self.ialu_used: dict[int, int] = {}
        self.rot_used: dict[int, int] = {}
        self.mul_used: dict[int, int] = {}
        self.dport_used: dict[int, int] = {}
        self.sport_used = [dict() for _ in range(config.sbox_caches or 0)]
        self.retire_used: dict[int, int] = {}
        self.no_fu: dict[int, int] = {}
        max_reg = 31
        for d in static.dest:
            if d > max_reg:
                max_reg = d
        for sources in static.srcs:
            for r in sources:
                if r > max_reg:
                    max_reg = r
        self.reg_ready = [0] * (max_reg + 1)
        window = config.window_size
        self.retire_ring = [0] * window if window else None
        self.retire_prev = 0
        self.max_complete = 0
        self.prune_mark = 0
        self.trim_mark = 0


class MemoryOrderState:
    """Memory-ordering/alias stage: store queue, sync barrier, hierarchies."""

    __slots__ = ("hierarchy", "sbox_array", "last_store_addr_known",
                 "recent_stores", "sync_barrier")

    def __init__(
        self,
        config: MachineConfig,
        warm_ranges: list[tuple[int, int]] | None,
    ):
        self.hierarchy = None
        if not config.perfect_memory:
            self.hierarchy = MemoryHierarchy(
                l1_size=config.l1_size, l1_assoc=config.l1_assoc,
                l1_block=config.l1_block, l2_size=config.l2_size,
                l2_assoc=config.l2_assoc,
                l2_hit_latency=config.l2_hit_latency,
                memory_latency=config.memory_latency,
                tlb_entries=config.tlb_entries, tlb_assoc=config.tlb_assoc,
                page_size=config.page_size,
                tlb_miss_latency=config.tlb_miss_latency,
            )
            for start, length in warm_ranges or ():
                self.hierarchy.warm(start, length)
        self.sbox_array = (
            SBoxCacheArray(config.sbox_caches) if config.sbox_caches else None
        )
        self.last_store_addr_known = 0
        self.recent_stores: list[tuple[int, int, int]] = []
        self.sync_barrier = 0


class AttributionState:
    """Stall-attribution stage: cycle labels and the running slot account."""

    __slots__ = ("reason_at", "stall_slots", "wait_totals", "frontier",
                 "flushed_until", "hot", "exec_counts")

    def __init__(self, static: StaticInfo):
        self.reason_at: dict[int, int] = {}
        self.stall_slots = [0] * len(STALL_CATEGORIES)
        self.wait_totals = [0] * _N_WAIT
        self.frontier = 0
        self.flushed_until = 0
        self.hot: dict[int, list[int]] = {}
        self.exec_counts = [0] * len(static.klass)


class TimingPipeline:
    """Incremental timing model over a chunked trace stream.

    Feed :class:`~repro.sim.trace.TraceChunk` objects in trace order with
    :meth:`feed`, then call :meth:`finish` for the final
    :class:`~repro.sim.stats.SimStats`.  Results are bit-identical to a
    single-chunk (batch) pass for any chunk partitioning: all stage state
    carries across chunk boundaries, and the one piece of lookahead the
    model needs -- the *next* trace entry, to infer whether a branch was
    taken -- is handled by deferring each chunk's final entry until the
    next chunk (or end of trace, where the outcome defaults to taken,
    matching ``Trace.taken``).  Chunks with explicit ``taken`` flags
    (synthetic interleavings) need no deferral.

    One pipeline consumes one trace; build a fresh pipeline per run.
    """

    def __init__(
        self,
        config: MachineConfig,
        static: StaticInfo,
        program: Program,
        warm_ranges: list[tuple[int, int]] | None = None,
        schedule_range: tuple[int, int] | None = None,
    ):
        self.config = config
        self.static = static
        self.program = program
        self.stats = SimStats(config_name=config.name, instructions=0)

        def limit(value):
            return _UNLIMITED if value is None else value

        self._issue_width = limit(config.issue_width)
        self._num_ialu = limit(config.num_ialu)
        self._num_rot = limit(config.num_rotator)
        self._mul_slots = limit(config.mul_slots)
        self._dports = limit(config.dcache_ports)
        self._retire_width = limit(config.retire_width)
        self._sbox_ports = limit(config.sbox_cache_ports)
        self._track_issue = self._issue_width != _UNLIMITED
        # Slot accounting is defined only when issue bandwidth is finite;
        # with unlimited width there is no fixed slot budget to attribute.
        self._attribute = self._track_issue

        self.frontend = FrontendState(config)
        self.scheduler = SchedulerState(config, static)
        self.memorder = MemoryOrderState(config, warm_ranges)
        self.attribution = (
            AttributionState(static) if self._attribute else None
        )

        self._schedule: list | None = None
        self._sched_start = self._sched_end = 0
        if schedule_range is not None:
            self._schedule = []
            self.stats.extra["schedule"] = self._schedule
            self._sched_start, self._sched_end = schedule_range
            cap = config.max_schedule_entries
            if cap is not None and self._sched_end - self._sched_start > cap:
                self._sched_end = self._sched_start + cap
                self.stats.extra["schedule_truncated"] = True

        #: Deferred final entry of the previous adjacency-mode chunk:
        #: ``(seq, addrs, start, index)`` referencing that chunk's arrays.
        self._carry: tuple[array, array, int, int] | None = None
        self._count = 0
        self._finished = False

    def feed(self, chunk: TraceChunk) -> None:
        """Advance the pipeline over one chunk of trace entries."""
        if self._finished:
            raise RuntimeError("TimingPipeline already finished")
        seq = chunk.seq
        n = len(seq)
        if n == 0:
            return
        if self._carry is not None:
            cseq, caddrs, cstart, cidx = self._carry
            self._carry = None
            self._advance(cseq, caddrs, None, cstart, cidx, cidx + 1, seq[0])
        if chunk.taken is not None:
            # Explicit branch outcomes: no lookahead needed, no deferral.
            self._advance(seq, chunk.addrs, chunk.taken, chunk.start, 0, n,
                          None)
        else:
            if n > 1:
                self._advance(seq, chunk.addrs, None, chunk.start, 0, n - 1,
                              None)
            self._carry = (seq, chunk.addrs, chunk.start, n - 1)

    def finish(self) -> SimStats:
        """Drain the deferred entry and finalize the statistics."""
        if self._finished:
            return self.stats
        self._finished = True
        if self._carry is not None:
            cseq, caddrs, cstart, cidx = self._carry
            self._carry = None
            # End of trace: the final branch outcome defaults to taken,
            # exactly as ``Trace.taken`` defines it.
            self._advance(cseq, caddrs, None, cstart, cidx, cidx + 1, None)

        stats = self.stats
        stats.instructions = self._count
        if self._count == 0:
            return stats
        scheduler = self.scheduler
        memorder = self.memorder
        frontend = self.frontend
        stats.cycles = max(scheduler.max_complete, scheduler.retire_prev)
        if memorder.hierarchy is not None:
            stats.l1_misses = memorder.hierarchy.l1.misses
            stats.l2_misses = memorder.hierarchy.l2.misses
            stats.tlb_misses = memorder.hierarchy.tlb.misses
        if memorder.sbox_array is not None:
            stats.extra["sbox_cache_hits"] = memorder.sbox_array.total_hits
        if frontend.predictor is not None:
            stats.extra["predictor_lookups"] = frontend.predictor.lookups

        if self._attribute:
            attribution = self.attribution
            self._flush_attribution(stats.cycles)
            stats.issue_slots = stats.cycles * self._issue_width
            stats.stall_slots = {
                name: attribution.stall_slots[index]
                for index, name in enumerate(STALL_CATEGORIES)
            }
            stats.wait_cycles = {
                name: attribution.wait_totals[index]
                for index, name in enumerate(WAIT_CATEGORIES)
            }
            stats.hotspots = _hotspot_table(
                self.program, attribution.hot, attribution.exec_counts
            )
        return stats

    def _flush_attribution(self, until: int) -> None:
        """Finalize slot counts for cycles below ``until``.

        Safe once no future instruction can issue there (every cycle below
        the prune horizon, and everything at the end of the run).  Cycles
        past the last labeled one are retirement drain.
        """
        attribution = self.attribution
        issue_width = self._issue_width
        pop_reason = attribution.reason_at.pop
        get_used = self.scheduler.issue_used.get
        stall_slots = attribution.stall_slots
        for cycle in range(attribution.flushed_until, until):
            stall_slots[pop_reason(cycle, _C_DRAIN)] += (
                issue_width - get_used(cycle, 0)
            )
        attribution.flushed_until = until

    def _advance(
        self,
        seq,
        addrs,
        taken_arr,
        base_pos: int,
        lo: int,
        hi: int,
        next_s,
    ) -> None:
        """Process trace entries ``seq[lo:hi]``.

        ``base_pos`` is the global trace position of ``seq[0]``.
        ``taken_arr`` carries explicit branch outcomes when present;
        otherwise outcomes are inferred from the following entry --
        ``seq[j + 1]`` in-bounds, else ``next_s`` (the first entry of the
        next chunk), else taken (``next_s is None`` = end of trace).

        The body is one flat loop over the entries with all carried state
        rebound to locals on entry and scalar state written back on exit --
        the dict/list state is mutated in place.  This keeps the streaming
        path within noise of the old monolithic pass.
        """
        config = self.config
        static = self.static
        stats = self.stats
        frontend = self.frontend
        scheduler = self.scheduler
        memorder = self.memorder
        attribution = self.attribution

        klass = static.klass
        dest = static.dest
        srcs = static.srcs
        addr_srcs = static.addr_srcs
        is_branch = static.is_branch
        is_cond = static.is_cond_branch
        mem_size = static.mem_size
        sbox_table = static.sbox_table
        sbox_aliased = static.sbox_aliased

        predictor = frontend.predictor
        hierarchy = memorder.hierarchy
        sbox_array = memorder.sbox_array

        issue_used = scheduler.issue_used
        ialu_used = scheduler.ialu_used
        rot_used = scheduler.rot_used
        mul_used = scheduler.mul_used
        dport_used = scheduler.dport_used
        sport_used = scheduler.sport_used
        retire_used = scheduler.retire_used
        _no_fu = scheduler.no_fu
        reg_ready = scheduler.reg_ready
        retire_ring = scheduler.retire_ring
        retire_prev = scheduler.retire_prev
        max_complete = scheduler.max_complete
        prune_mark = scheduler.prune_mark
        trim_mark = scheduler.trim_mark

        issue_width = self._issue_width
        num_ialu = self._num_ialu
        num_rot = self._num_rot
        mul_slots = self._mul_slots
        dports = self._dports
        retire_width = self._retire_width
        sbox_ports = self._sbox_ports
        track_issue = self._track_issue
        attribute = self._attribute
        window = config.window_size
        frontend_depth = config.frontend_depth
        alu_lat = config.alu_latency
        rot_lat = config.rotator_latency
        load_lat = config.load_latency
        store_lat = config.store_latency
        perfect_alias = config.perfect_alias
        lsq_size = config.lsq_size
        prune_interval = config.prune_interval

        fetch_cycle = frontend.fetch_cycle
        fetch_slots_used = frontend.fetch_slots_used
        fetch_groups_used = frontend.fetch_groups_used
        mispredict_until = frontend.mispredict_until
        fetch_width = config.fetch_width
        groups_per_cycle = config.fetch_groups_per_cycle
        break_on_taken = config.fetch_break_on_taken

        last_store_addr_known = memorder.last_store_addr_known
        recent_stores = memorder.recent_stores
        sync_barrier = memorder.sync_barrier

        bumps: list[int] = []
        if attribute:
            reason_at = attribution.reason_at
            wait_totals = attribution.wait_totals
            frontier = attribution.frontier
            hot = attribution.hot
            exec_counts = attribution.exec_counts
        else:
            frontier = 0

        def issue_at(cycle: int, fu_used: dict, fu_limit: int,
                     cost: int = 1, fu_cat: int = _C_ISSUE) -> int:
            """First cycle >= ``cycle`` with an issue slot and FU room."""
            if attribute:
                bumps.clear()
            while True:
                if track_issue and issue_used.get(cycle, 0) >= issue_width:
                    if attribute:
                        bumps.append(_C_ISSUE)
                    cycle += 1
                    continue
                if (fu_limit != _UNLIMITED
                        and fu_used.get(cycle, 0) + cost > fu_limit):
                    if attribute:
                        bumps.append(fu_cat)
                    cycle += 1
                    continue
                break
            if track_issue:
                issue_used[cycle] = issue_used.get(cycle, 0) + 1
            if fu_limit != _UNLIMITED:
                fu_used[cycle] = fu_used.get(cycle, 0) + cost
            return cycle

        schedule = self._schedule
        sched_start = self._sched_start
        sched_end = self._sched_end
        seq_len = len(seq)

        for j in range(lo, hi):
            pos = base_pos + j
            s = seq[j]
            k = klass[s]

            # ---- fetch ----------------------------------------------------
            this_fetch = fetch_cycle
            if fetch_width is not None:
                if fetch_slots_used >= fetch_width:
                    fetch_cycle += 1
                    fetch_slots_used = 0
                    fetch_groups_used = 0
                    this_fetch = fetch_cycle
                fetch_slots_used += 1

            # ---- dispatch / operands --------------------------------------
            enter = this_fetch + frontend_depth
            earliest = enter
            if window:
                freed = retire_ring[pos % window]
                if freed > earliest:
                    earliest = freed
            dispatch_floor = earliest
            for r in srcs[s]:
                t = reg_ready[r]
                if t > earliest:
                    earliest = t

            # ---- issue + execute ------------------------------------------
            # ``operand_end`` / ``request`` bound the attribution segments:
            # [dispatch_floor, operand_end) is operand wait (incl. address
            # generation), [operand_end, request) is memory-ordering/alias
            # stall, [request, issued) is issue/FU contention per ``bumps``.
            if k == "ialu":
                operand_end = request = earliest
                issued = issue_at(request, ialu_used, num_ialu,
                                  fu_cat=_C_FU_IALU)
                complete = issued + alu_lat
            elif k == "rotator":
                operand_end = request = earliest
                issued = issue_at(request, rot_used, num_rot,
                                  fu_cat=_C_FU_ROT)
                complete = issued + rot_lat
            elif k == "load":
                # Address generation, then ordered cache access.
                addr_ready = earliest + 1
                operand_end = addr_ready
                if not perfect_alias and last_store_addr_known > addr_ready:
                    addr_ready = last_store_addr_known
                addr = addrs[j]
                size = mem_size[s]
                forward = 0
                for start, end, data_ready in reversed(recent_stores):
                    if addr < end and start < addr + size:
                        forward = data_ready
                        break
                if forward:
                    request = max(addr_ready, forward)
                    issued = issue_at(request, _no_fu, _UNLIMITED)
                    complete = issued + 1
                    stats.store_forwards += 1
                else:
                    request = addr_ready
                    issued = issue_at(request, dport_used, dports,
                                      fu_cat=_C_FU_MEM)
                    extra = 0
                    if hierarchy is not None:
                        extra = hierarchy.access(addr)
                    complete = issued + (load_lat - 1) + extra
                stats.loads += 1
            elif k == "store":
                # The address resolves when the base register is ready.
                addr_known = dispatch_floor
                for r in addr_srcs[s]:
                    t = reg_ready[r]
                    if t > addr_known:
                        addr_known = t
                addr_known += 1
                operand_end = request = max(earliest, addr_known)
                issued = issue_at(request, dport_used, dports,
                                  fu_cat=_C_FU_MEM)
                addr = addrs[j]
                if hierarchy is not None:
                    hierarchy.access(addr, is_store=True)
                complete = issued + store_lat
                if not perfect_alias and addr_known > last_store_addr_known:
                    last_store_addr_known = addr_known
                recent_stores.append((addr, addr + mem_size[s], complete))
                if len(recent_stores) > lsq_size:
                    recent_stores.pop(0)
                stats.stores += 1
            elif k == "sbox":
                aliased = sbox_aliased[s]
                addr = addrs[j]
                stats.sbox_accesses += 1
                operand_end = earliest
                access_ready = earliest
                if (aliased and not perfect_alias
                        and last_store_addr_known > access_ready):
                    access_ready = last_store_addr_known
                if not aliased and sync_barrier > access_ready:
                    access_ready = sync_barrier
                forward = 0
                if aliased:
                    for start, end, data_ready in reversed(recent_stores):
                        if addr < end and start < addr + 4:
                            forward = data_ready
                            break
                if forward:
                    request = max(access_ready, forward)
                    issued = issue_at(request, _no_fu, _UNLIMITED)
                    complete = issued + 1
                    stats.store_forwards += 1
                elif (sbox_array is not None and not aliased
                      and sbox_table[s] < sbox_array.count):
                    # The table designator schedules this access onto a
                    # dedicated SBox cache; ids beyond the cache count (e.g.
                    # 3DES's eight logical tables) deliberately stay on the
                    # d-cache path so a single-tag sector cache is not
                    # thrashed between tables.
                    table = sbox_table[s]
                    port = table % sbox_array.count
                    request = access_ready
                    issued = issue_at(request, sport_used[port], sbox_ports,
                                      fu_cat=_C_FU_SBOX)
                    if sbox_array.access(table, addr):
                        complete = issued + config.sbox_cache_latency
                    else:
                        stats.sbox_cache_misses += 1
                        complete = (issued + config.sbox_cache_latency
                                    + config.sbox_dcache_latency)
                else:
                    request = access_ready
                    issued = issue_at(request, dport_used, dports,
                                      fu_cat=_C_FU_MEM)
                    extra = 0
                    if hierarchy is not None:
                        extra = hierarchy.access(addr)
                    complete = issued + config.sbox_dcache_latency + extra
            elif k == "mul32":
                operand_end = request = earliest
                issued = issue_at(request, mul_used, mul_slots,
                                  config.mul32_cost, fu_cat=_C_FU_MUL)
                complete = issued + config.mul32_latency
            elif k == "mul64":
                operand_end = request = earliest
                issued = issue_at(request, mul_used, mul_slots,
                                  config.mul64_cost, fu_cat=_C_FU_MUL)
                complete = issued + config.mul64_latency
            elif k == "mulmod":
                operand_end = request = earliest
                issued = issue_at(request, mul_used, mul_slots,
                                  config.mulmod_cost, fu_cat=_C_FU_MUL)
                complete = issued + config.mulmod_latency
            elif k == "sync":
                operand_end = request = earliest
                issued = issue_at(request, _no_fu, _UNLIMITED)
                complete = issued + 1
                if sbox_array is not None:
                    sbox_array.sync(sbox_table[s])
                sync_barrier = complete
            else:
                operand_end = request = earliest
                issued = issue_at(request, _no_fu, _UNLIMITED)
                complete = issued + alu_lat

            # ---- stall attribution ----------------------------------------
            if attribute:
                exec_counts[s] += 1
                # Machine view: label every cycle up to this issue with the
                # category blocking the oldest unissued instruction (cycles
                # below ``frontier`` were labeled by older instructions).
                if issued > frontier:
                    for cycle in range(frontier, issued):
                        if cycle < this_fetch:
                            cat = (_C_MISPREDICT if cycle < mispredict_until
                                   else _C_FETCH)
                        elif cycle < enter:
                            cat = _C_FRONTEND
                        elif cycle < dispatch_floor:
                            cat = _C_WINDOW
                        elif cycle < operand_end:
                            cat = _C_OPERAND
                        elif cycle < request:
                            cat = _C_ALIAS
                        else:
                            cat = bumps[cycle - request]
                        reason_at[cycle] = cat
                    frontier = issued
                # Instruction view: cycles *this* instruction spent blocked.
                window_wait = dispatch_floor - enter
                operand_wait = operand_end - dispatch_floor
                alias_wait = request - operand_end
                if window_wait or operand_wait or alias_wait or bumps:
                    row = hot.get(s)
                    if row is None:
                        row = hot[s] = [0] * _N_WAIT
                    row[_C_WINDOW - _C_WINDOW] += window_wait
                    row[_C_OPERAND - _C_WINDOW] += operand_wait
                    row[_C_ALIAS - _C_WINDOW] += alias_wait
                    wait_totals[0] += window_wait
                    wait_totals[1] += operand_wait
                    wait_totals[2] += alias_wait
                    for cat in bumps:
                        row[cat - _C_WINDOW] += 1
                        wait_totals[cat - _C_WINDOW] += 1

            # ---- branch resolution / fetch redirect -----------------------
            if is_branch[s]:
                if taken_arr is not None:
                    taken = bool(taken_arr[j])
                else:
                    jn = j + 1
                    if jn < seq_len:
                        taken = seq[jn] != s + 1
                    elif next_s is None:
                        taken = True
                    else:
                        taken = next_s != s + 1
                stats.branches += 1
                correct = True
                if predictor is not None and is_cond[s]:
                    correct = predictor.predict_and_update(s, taken)
                if not correct:
                    stats.mispredictions += 1
                    redirect = complete + config.mispredict_penalty
                    if redirect > fetch_cycle:
                        fetch_cycle = redirect
                        fetch_slots_used = 0
                        fetch_groups_used = 0
                        if redirect > mispredict_until:
                            mispredict_until = redirect
                elif taken and break_on_taken and fetch_width is not None:
                    fetch_groups_used += 1
                    if fetch_groups_used >= groups_per_cycle:
                        fetch_cycle += 1
                        fetch_slots_used = 0
                        fetch_groups_used = 0

            # ---- writeback / retire ---------------------------------------
            d = dest[s]
            if d >= 0:
                reg_ready[d] = complete
            if complete > max_complete:
                max_complete = complete

            r = complete + 1
            if r < retire_prev:
                r = retire_prev
            if retire_width != _UNLIMITED:
                while retire_used.get(r, 0) >= retire_width:
                    r += 1
                retire_used[r] = retire_used.get(r, 0) + 1
            retire_prev = r
            if window:
                retire_ring[pos % window] = r
            if schedule is not None and sched_start <= pos < sched_end:
                # dispatch_floor = window entry (fetch throttled by ROB
                # space), the honest "F" column for visualization.
                schedule.append((pos, s, dispatch_floor, issued, complete, r))

            # ---- prune resource maps --------------------------------------
            if pos - prune_mark >= prune_interval:
                prune_mark = pos
                # ``dispatch_floor`` is monotone in ``pos`` (fetch cycles
                # and in-order retirement both only move forward) and every
                # resource probe of every later instruction starts at or
                # above it, so cycles below it are final.  ``retire_prev``
                # guards the retirement map the same way.
                horizon = min(dispatch_floor, retire_prev) - 8192
                # Slot attribution for cycles below the horizon is final (no
                # later instruction can issue there): fold it into the
                # totals before the usage counts are trimmed away.
                if attribute and horizon > attribution.flushed_until:
                    attribution.frontier = frontier
                    self._flush_attribution(horizon)
                if horizon > trim_mark:
                    span = horizon - trim_mark
                    for counters in (issue_used, ialu_used, rot_used,
                                     mul_used, dport_used, retire_used,
                                     *sport_used):
                        if not counters:
                            continue
                        if len(counters) * 4 > span:
                            # Dense map: walk the dead cycle range (cycles
                            # are monotone, so each is visited once ever).
                            pop = counters.pop
                            for cycle in range(trim_mark, horizon):
                                pop(cycle, None)
                        else:
                            # Sparse map: scanning its keys is cheaper than
                            # walking the range.
                            for cycle in [c for c in counters
                                          if c < horizon]:
                                del counters[cycle]
                    trim_mark = horizon

        # ---- write carried scalar state back to the stage components ------
        frontend.fetch_cycle = fetch_cycle
        frontend.fetch_slots_used = fetch_slots_used
        frontend.fetch_groups_used = fetch_groups_used
        frontend.mispredict_until = mispredict_until
        scheduler.retire_prev = retire_prev
        scheduler.max_complete = max_complete
        scheduler.prune_mark = prune_mark
        scheduler.trim_mark = trim_mark
        memorder.last_store_addr_known = last_store_addr_known
        memorder.sync_barrier = sync_barrier
        if attribute:
            attribution.frontier = frontier
        self._count += hi - lo


def simulate(
    trace: TraceSource,
    config: MachineConfig,
    warm_ranges: list[tuple[int, int]] | None = None,
    schedule_range: tuple[int, int] | None = None,
    metrics=None,
    chunk_size: int | None = None,
) -> SimStats:
    """Run the timing model over a trace source; returns cycle statistics.

    ``trace`` -- any :class:`~repro.sim.trace.TraceSource`: a materialized
    :class:`~repro.sim.trace.Trace` (the batch path; the default
    ``chunk_size=None`` consumes it as one zero-copy chunk) or a live
    :class:`~repro.sim.machine.StreamingTrace`, which interleaves
    functional execution with timing at bounded memory.

    ``warm_ranges`` -- list of ``(start, length)`` address ranges installed
    into the cache hierarchy before timing begins (the tables and key
    schedules the setup code just wrote; see ``MemoryHierarchy.warm``).

    ``schedule_range`` -- optional ``(start, end)`` trace-position window;
    per-instruction ``(position, static_index, fetch, issue, complete,
    retire)`` tuples for that window are returned in
    ``stats.extra["schedule"]`` (the pipeline-viewer hook).  Capture is
    bounded by ``config.max_schedule_entries``; a clipped window sets
    ``stats.extra["schedule_truncated"]``.

    ``metrics`` -- optional :class:`repro.obs.MetricsRegistry`; when given,
    the run's headline counters and stall-slot breakdown are recorded
    under ``sim.*`` metric names labeled by config.

    ``chunk_size`` -- entries per pipeline step; ``None`` lets the source
    pick (a ``Trace`` yields itself whole, a ``StreamingTrace`` uses its
    configured chunk size).  Results are bit-identical for every value.
    """
    pipeline = TimingPipeline(
        config, trace.static, trace.program,
        warm_ranges=warm_ranges, schedule_range=schedule_range,
    )
    for chunk in trace.chunks(chunk_size):
        pipeline.feed(chunk)
    stats = pipeline.finish()
    if metrics is not None and stats.instructions:
        record_sim_metrics(metrics, config, stats)
    return stats


def _hotspot_table(program: Program, hot: dict, exec_counts: list) -> list[dict]:
    """Rank static instructions by accumulated wait cycles (top N).

    Window-entry waits rank last: they measure the machine's dispatch
    backlog, which every instruction in a saturated loop shares equally,
    so operand/alias/contention waits -- the paper's actual per-operation
    bottlenecks -- are the primary sort key.
    """
    ranked = sorted(
        hot.items(),
        key=lambda item: (sum(item[1][1:]), sum(item[1])),
        reverse=True,
    )[:_HOTSPOT_LIMIT]
    # Synthetic traces (e.g. the multisession interleaver) carry static
    # entries beyond their nominal program's instruction list.
    instructions = program.instructions
    table = []
    for static_index, waits in ranked:
        total = sum(waits)
        if not total:
            continue
        table.append({
            "static_index": static_index,
            "text": (instructions[static_index].render()
                     if static_index < len(instructions)
                     else f"static[{static_index}]"),
            "executions": exec_counts[static_index],
            "total_wait_cycles": total,
            "wait_cycles": {
                name: waits[index]
                for index, name in enumerate(WAIT_CATEGORIES)
                if waits[index]
            },
        })
    return table


def record_sim_metrics(metrics, config: MachineConfig, stats: SimStats) -> None:
    """Publish one run's headline counters into a metrics registry."""
    labels = {"config": config.name}
    metrics.counter("sim.runs", labels).inc()
    metrics.counter("sim.instructions", labels).inc(stats.instructions)
    metrics.counter("sim.cycles", labels).inc(stats.cycles)
    metrics.counter("sim.issue_slots", labels).inc(stats.issue_slots)
    for category, slots in stats.stall_slots.items():
        if slots:
            metrics.counter(
                "sim.stall_slots", {**labels, "category": category}
            ).inc(slots)
