"""Trace-driven out-of-order timing model.

One pass over a dynamic trace assigns every instruction a fetch, issue,
completion and retirement cycle subject to the configured machine's
constraints:

* **Fetch** proceeds in program order at ``fetch_width`` instructions per
  cycle; with ``fetch_break_on_taken``, at most ``fetch_groups_per_cycle``
  taken branches are crossed per cycle (the paper's "1 block/cycle").  A
  mispredicted branch redirects fetch to ``complete + mispredict_penalty``.
* **Dispatch** into the window requires a free slot: instruction *i* may not
  enter until instruction *i - window_size* has retired.
* **Issue** waits for source operands, an issue slot (``issue_width`` per
  cycle) and a functional unit *in the same cycle*: IALUs, rotator/XBOX
  units, multiplier slots (a 64-bit multiply costs ``mul64_cost`` slots),
  data-cache ports, or a per-table SBox-cache port.  Older instructions
  claim slots first because the pass runs in program order -- the same
  priority an age-ordered scheduler gives.
* **Stores** resolve their address one cycle after their base register is
  ready; **loads** obey memory ordering: unless ``perfect_alias``, a load's
  cache access may not start before every prior store's address is known
  (the paper's conservative baseline).  A load overlapping a recent store
  forwards from it.  Non-aliased SBOX instructions skip ordering entirely
  (paper section 5); the aliased form (RC4's) is treated as a load.
* **Completion** adds the operation latency (plus cache-hierarchy extra
  latency when the memory system is realistic).
* **Retirement** is in-order, ``retire_width`` per cycle.

This is the standard cycle-assignment formulation of an out-of-order
machine; DESIGN.md substitution #1 discusses fidelity versus the paper's
execution-driven simulator.  With every constraint disabled (the DF config)
the pass computes the pure dataflow critical path.

**Stall attribution.**  On machines with a finite ``issue_width`` the pass
additionally produces an exact cycle account -- the paper's SimpleView
bottleneck analysis as data.  Every one of the run's
``cycles * issue_width`` issue slots is either used by an instruction or
attributed to exactly one stall category
(:data:`repro.sim.stats.STALL_CATEGORIES`), by blaming each cycle's empty
slots on whatever blocked the *oldest unissued* instruction at that cycle
(the standard attribution discipline of sim-outorder-style accounting):
fetch starvation, misprediction recovery, frontend depth, a full window,
operand waits, memory-ordering/alias stalls, issue-port contention, or a
busy functional-unit pool.  Cycles after the last issue are the
retirement drain.  The invariant

    ``stats.instructions + sum(stats.stall_slots.values())
    == stats.cycles * issue_width == stats.issue_slots``

holds exactly and is enforced by property tests across the cipher suite.
A complementary *instruction view* (``stats.wait_cycles`` plus the
``stats.hotspots`` table) accumulates the cycles each static instruction
spent blocked per category, independent of machine width.
"""

from __future__ import annotations

from repro.sim.branch import BimodalPredictor
from repro.sim.caches import MemoryHierarchy
from repro.sim.config import MachineConfig
from repro.sim.sboxcache import SBoxCacheArray
from repro.sim.stats import STALL_CATEGORIES, WAIT_CATEGORIES, SimStats
from repro.sim.trace import Trace

_UNLIMITED = 1 << 30

# Stall-category indices (must mirror STALL_CATEGORIES order).
(_C_FETCH, _C_MISPREDICT, _C_FRONTEND, _C_WINDOW, _C_OPERAND, _C_ALIAS,
 _C_ISSUE, _C_FU_IALU, _C_FU_ROT, _C_FU_MUL, _C_FU_MEM, _C_FU_SBOX,
 _C_DRAIN) = range(len(STALL_CATEGORIES))
_N_WAIT = len(WAIT_CATEGORIES)
#: Instruction-view (wait) index of a stall category: categories _C_WINDOW
#: through _C_FU_SBOX map onto WAIT_CATEGORIES[cat - _C_WINDOW].
_HOTSPOT_LIMIT = 32


def simulate(
    trace: Trace,
    config: MachineConfig,
    warm_ranges: list[tuple[int, int]] | None = None,
    schedule_range: tuple[int, int] | None = None,
    metrics=None,
) -> SimStats:
    """Run the timing model over ``trace``; returns cycle-level statistics.

    ``warm_ranges`` -- list of ``(start, length)`` address ranges installed
    into the cache hierarchy before timing begins (the tables and key
    schedules the setup code just wrote; see ``MemoryHierarchy.warm``).

    ``schedule_range`` -- optional ``(start, end)`` trace-position window;
    per-instruction ``(position, static_index, fetch, issue, complete,
    retire)`` tuples for that window are returned in
    ``stats.extra["schedule"]`` (the pipeline-viewer hook).  Capture is
    bounded by ``config.max_schedule_entries``; a clipped window sets
    ``stats.extra["schedule_truncated"]``.

    ``metrics`` -- optional :class:`repro.obs.MetricsRegistry`; when given,
    the run's headline counters and stall-slot breakdown are recorded
    under ``sim.*`` metric names labeled by config.
    """
    static = trace.static
    seq = trace.seq
    addrs = trace.addrs
    n = len(seq)
    stats = SimStats(config_name=config.name, instructions=n)
    if n == 0:
        return stats

    klass = static.klass
    dest = static.dest
    srcs = static.srcs
    addr_srcs = static.addr_srcs
    is_branch = static.is_branch
    is_cond = static.is_cond_branch
    mem_size = static.mem_size
    sbox_table = static.sbox_table
    sbox_aliased = static.sbox_aliased

    predictor = (
        None if config.perfect_branch_prediction
        else BimodalPredictor(config.predictor_entries)
    )
    hierarchy = None
    if not config.perfect_memory:
        hierarchy = MemoryHierarchy(
            l1_size=config.l1_size, l1_assoc=config.l1_assoc,
            l1_block=config.l1_block, l2_size=config.l2_size,
            l2_assoc=config.l2_assoc, l2_hit_latency=config.l2_hit_latency,
            memory_latency=config.memory_latency,
            tlb_entries=config.tlb_entries, tlb_assoc=config.tlb_assoc,
            page_size=config.page_size,
            tlb_miss_latency=config.tlb_miss_latency,
        )
        for start, length in warm_ranges or ():
            hierarchy.warm(start, length)
    sbox_array = SBoxCacheArray(config.sbox_caches) if config.sbox_caches else None

    # Per-cycle resource usage maps.  A limit of _UNLIMITED disables the
    # constraint without branching in the hot loop.
    issue_used: dict[int, int] = {}
    ialu_used: dict[int, int] = {}
    rot_used: dict[int, int] = {}
    mul_used: dict[int, int] = {}
    dport_used: dict[int, int] = {}
    sport_used = [dict() for _ in range(config.sbox_caches or 0)]
    retire_used: dict[int, int] = {}

    def limit(value):
        return _UNLIMITED if value is None else value

    issue_width = limit(config.issue_width)
    num_ialu = limit(config.num_ialu)
    num_rot = limit(config.num_rotator)
    mul_slots = limit(config.mul_slots)
    dports = limit(config.dcache_ports)
    retire_width = limit(config.retire_width)
    sbox_ports = limit(config.sbox_cache_ports)
    window = config.window_size
    frontend = config.frontend_depth
    alu_lat = config.alu_latency
    rot_lat = config.rotator_latency
    load_lat = config.load_latency
    store_lat = config.store_latency
    perfect_alias = config.perfect_alias
    track_issue = issue_width != _UNLIMITED
    # Slot accounting is defined only when issue bandwidth is finite; with
    # unlimited width there is no fixed slot budget to attribute.
    attribute = track_issue

    # Size the register scoreboard for the trace: interleaved multi-thread
    # traces remap each thread into its own 32-register window.
    max_reg = 31
    for d in dest:
        if d > max_reg:
            max_reg = d
    for sources in srcs:
        for r in sources:
            if r > max_reg:
                max_reg = r
    reg_ready = [0] * (max_reg + 1)
    retire_ring = [0] * window if window else None
    retire_prev = 0
    max_complete = 0

    fetch_cycle = 0
    fetch_slots_used = 0
    fetch_groups_used = 0
    fetch_width = config.fetch_width
    groups_per_cycle = config.fetch_groups_per_cycle
    break_on_taken = config.fetch_break_on_taken

    last_store_addr_known = 0
    recent_stores: list[tuple[int, int, int]] = []
    lsq_size = config.lsq_size
    sync_barrier = 0

    # ---- stall-attribution state --------------------------------------
    # ``reason_at`` labels each cycle with the category blocking the oldest
    # unissued instruction; ``frontier`` is the first unlabeled cycle (the
    # running max of issue cycles); ``bumps`` records, for the current
    # instruction, why each scanned cycle in issue_at rejected it.
    reason_at: dict[int, int] = {}
    stall_slots = [0] * len(STALL_CATEGORIES)
    wait_totals = [0] * _N_WAIT
    bumps: list[int] = []
    frontier = 0
    flushed_until = 0
    mispredict_until = 0
    if attribute:
        exec_counts = [0] * len(klass)
        hot: dict[int, list[int]] = {}

    def flush_attribution(until: int) -> None:
        """Finalize slot counts for cycles below ``until``.

        Safe once no future instruction can issue there (every cycle below
        the prune horizon, and everything at the end of the run).  Cycles
        past the last labeled one are retirement drain.
        """
        nonlocal flushed_until
        pop_reason = reason_at.pop
        get_used = issue_used.get
        for cycle in range(flushed_until, until):
            stall_slots[pop_reason(cycle, _C_DRAIN)] += (
                issue_width - get_used(cycle, 0)
            )
        flushed_until = until

    def issue_at(cycle: int, fu_used: dict, fu_limit: int,
                 cost: int = 1, fu_cat: int = _C_ISSUE) -> int:
        """First cycle >= ``cycle`` with an issue slot and FU capacity."""
        if attribute:
            bumps.clear()
        while True:
            if track_issue and issue_used.get(cycle, 0) >= issue_width:
                if attribute:
                    bumps.append(_C_ISSUE)
                cycle += 1
                continue
            if fu_limit != _UNLIMITED and fu_used.get(cycle, 0) + cost > fu_limit:
                if attribute:
                    bumps.append(fu_cat)
                cycle += 1
                continue
            break
        if track_issue:
            issue_used[cycle] = issue_used.get(cycle, 0) + 1
        if fu_limit != _UNLIMITED:
            fu_used[cycle] = fu_used.get(cycle, 0) + cost
        return cycle

    _no_fu: dict[int, int] = {}
    prune_mark = 0
    prune_interval = config.prune_interval
    prune_entries = config.prune_entries
    schedule: list[tuple[int, int, int, int, int, int]] | None = None
    if schedule_range is not None:
        schedule = []
        stats.extra["schedule"] = schedule
        sched_start, sched_end = schedule_range
        cap = config.max_schedule_entries
        if cap is not None and sched_end - sched_start > cap:
            sched_end = sched_start + cap
            stats.extra["schedule_truncated"] = True

    for i in range(n):
        s = seq[i]
        k = klass[s]

        # ---- fetch ----------------------------------------------------
        this_fetch = fetch_cycle
        if fetch_width is not None:
            if fetch_slots_used >= fetch_width:
                fetch_cycle += 1
                fetch_slots_used = 0
                fetch_groups_used = 0
                this_fetch = fetch_cycle
            fetch_slots_used += 1

        # ---- dispatch / operands ---------------------------------------
        enter = this_fetch + frontend
        earliest = enter
        if window:
            freed = retire_ring[i % window]
            if freed > earliest:
                earliest = freed
        dispatch_floor = earliest
        for r in srcs[s]:
            t = reg_ready[r]
            if t > earliest:
                earliest = t

        # ---- issue + execute --------------------------------------------
        # ``operand_end`` / ``request`` bound the attribution segments:
        # [dispatch_floor, operand_end) is operand wait (incl. address
        # generation), [operand_end, request) is memory-ordering/alias
        # stall, [request, issued) is issue/FU contention per ``bumps``.
        if k == "ialu":
            operand_end = request = earliest
            issued = issue_at(request, ialu_used, num_ialu, fu_cat=_C_FU_IALU)
            complete = issued + alu_lat
        elif k == "rotator":
            operand_end = request = earliest
            issued = issue_at(request, rot_used, num_rot, fu_cat=_C_FU_ROT)
            complete = issued + rot_lat
        elif k == "load":
            # Address generation, then ordered cache access.
            addr_ready = earliest + 1
            operand_end = addr_ready
            if not perfect_alias and last_store_addr_known > addr_ready:
                addr_ready = last_store_addr_known
            addr = addrs[i]
            size = mem_size[s]
            forward = 0
            for start, end, data_ready in reversed(recent_stores):
                if addr < end and start < addr + size:
                    forward = data_ready
                    break
            if forward:
                request = max(addr_ready, forward)
                issued = issue_at(request, _no_fu, _UNLIMITED)
                complete = issued + 1
                stats.store_forwards += 1
            else:
                request = addr_ready
                issued = issue_at(request, dport_used, dports,
                                  fu_cat=_C_FU_MEM)
                extra = 0
                if hierarchy is not None:
                    extra = hierarchy.access(addr)
                complete = issued + (load_lat - 1) + extra
            stats.loads += 1
        elif k == "store":
            # The address resolves when the base register is ready.
            addr_known = dispatch_floor
            for r in addr_srcs[s]:
                t = reg_ready[r]
                if t > addr_known:
                    addr_known = t
            addr_known += 1
            operand_end = request = max(earliest, addr_known)
            issued = issue_at(request, dport_used, dports, fu_cat=_C_FU_MEM)
            addr = addrs[i]
            if hierarchy is not None:
                hierarchy.access(addr, is_store=True)
            complete = issued + store_lat
            if not perfect_alias and addr_known > last_store_addr_known:
                last_store_addr_known = addr_known
            recent_stores.append((addr, addr + mem_size[s], complete))
            if len(recent_stores) > lsq_size:
                recent_stores.pop(0)
            stats.stores += 1
        elif k == "sbox":
            aliased = sbox_aliased[s]
            addr = addrs[i]
            stats.sbox_accesses += 1
            operand_end = earliest
            access_ready = earliest
            if aliased and not perfect_alias and last_store_addr_known > access_ready:
                access_ready = last_store_addr_known
            if not aliased and sync_barrier > access_ready:
                access_ready = sync_barrier
            forward = 0
            if aliased:
                for start, end, data_ready in reversed(recent_stores):
                    if addr < end and start < addr + 4:
                        forward = data_ready
                        break
            if forward:
                request = max(access_ready, forward)
                issued = issue_at(request, _no_fu, _UNLIMITED)
                complete = issued + 1
                stats.store_forwards += 1
            elif (sbox_array is not None and not aliased
                  and sbox_table[s] < sbox_array.count):
                # The table designator schedules this access onto a dedicated
                # SBox cache; ids beyond the cache count (e.g. 3DES's eight
                # logical tables) deliberately stay on the d-cache path so a
                # single-tag sector cache is not thrashed between tables.
                table = sbox_table[s]
                port = table % sbox_array.count
                request = access_ready
                issued = issue_at(request, sport_used[port], sbox_ports,
                                  fu_cat=_C_FU_SBOX)
                if sbox_array.access(table, addr):
                    complete = issued + config.sbox_cache_latency
                else:
                    stats.sbox_cache_misses += 1
                    complete = (issued + config.sbox_cache_latency
                                + config.sbox_dcache_latency)
            else:
                request = access_ready
                issued = issue_at(request, dport_used, dports,
                                  fu_cat=_C_FU_MEM)
                extra = 0
                if hierarchy is not None:
                    extra = hierarchy.access(addr)
                complete = issued + config.sbox_dcache_latency + extra
        elif k == "mul32":
            operand_end = request = earliest
            issued = issue_at(request, mul_used, mul_slots,
                              config.mul32_cost, fu_cat=_C_FU_MUL)
            complete = issued + config.mul32_latency
        elif k == "mul64":
            operand_end = request = earliest
            issued = issue_at(request, mul_used, mul_slots,
                              config.mul64_cost, fu_cat=_C_FU_MUL)
            complete = issued + config.mul64_latency
        elif k == "mulmod":
            operand_end = request = earliest
            issued = issue_at(request, mul_used, mul_slots,
                              config.mulmod_cost, fu_cat=_C_FU_MUL)
            complete = issued + config.mulmod_latency
        elif k == "sync":
            operand_end = request = earliest
            issued = issue_at(request, _no_fu, _UNLIMITED)
            complete = issued + 1
            if sbox_array is not None:
                sbox_array.sync(sbox_table[s])
            sync_barrier = complete
        else:
            operand_end = request = earliest
            issued = issue_at(request, _no_fu, _UNLIMITED)
            complete = issued + alu_lat

        # ---- stall attribution -------------------------------------------
        if attribute:
            exec_counts[s] += 1
            # Machine view: label every cycle up to this issue with the
            # category blocking the oldest unissued instruction (cycles
            # below ``frontier`` were labeled by older instructions).
            if issued > frontier:
                for cycle in range(frontier, issued):
                    if cycle < this_fetch:
                        cat = (_C_MISPREDICT if cycle < mispredict_until
                               else _C_FETCH)
                    elif cycle < enter:
                        cat = _C_FRONTEND
                    elif cycle < dispatch_floor:
                        cat = _C_WINDOW
                    elif cycle < operand_end:
                        cat = _C_OPERAND
                    elif cycle < request:
                        cat = _C_ALIAS
                    else:
                        cat = bumps[cycle - request]
                    reason_at[cycle] = cat
                frontier = issued
            # Instruction view: cycles *this* instruction spent blocked.
            window_wait = dispatch_floor - enter
            operand_wait = operand_end - dispatch_floor
            alias_wait = request - operand_end
            if window_wait or operand_wait or alias_wait or bumps:
                row = hot.get(s)
                if row is None:
                    row = hot[s] = [0] * _N_WAIT
                row[_C_WINDOW - _C_WINDOW] += window_wait
                row[_C_OPERAND - _C_WINDOW] += operand_wait
                row[_C_ALIAS - _C_WINDOW] += alias_wait
                wait_totals[0] += window_wait
                wait_totals[1] += operand_wait
                wait_totals[2] += alias_wait
                for cat in bumps:
                    row[cat - _C_WINDOW] += 1
                    wait_totals[cat - _C_WINDOW] += 1

        # ---- branch resolution / fetch redirect --------------------------
        if is_branch[s]:
            taken = trace.taken(i)
            stats.branches += 1
            correct = True
            if predictor is not None and is_cond[s]:
                correct = predictor.predict_and_update(s, taken)
            if not correct:
                stats.mispredictions += 1
                redirect = complete + config.mispredict_penalty
                if redirect > fetch_cycle:
                    fetch_cycle = redirect
                    fetch_slots_used = 0
                    fetch_groups_used = 0
                    if redirect > mispredict_until:
                        mispredict_until = redirect
            elif taken and break_on_taken and fetch_width is not None:
                fetch_groups_used += 1
                if fetch_groups_used >= groups_per_cycle:
                    fetch_cycle += 1
                    fetch_slots_used = 0
                    fetch_groups_used = 0

        # ---- writeback / retire -------------------------------------------
        d = dest[s]
        if d >= 0:
            reg_ready[d] = complete
        if complete > max_complete:
            max_complete = complete

        r = complete + 1
        if r < retire_prev:
            r = retire_prev
        if retire_width != _UNLIMITED:
            while retire_used.get(r, 0) >= retire_width:
                r += 1
            retire_used[r] = retire_used.get(r, 0) + 1
        retire_prev = r
        if window:
            retire_ring[i % window] = r
        if schedule is not None and sched_start <= i < sched_end:
            # dispatch_floor = window entry (fetch throttled by ROB space),
            # the honest "F" column for visualization.
            schedule.append((i, s, dispatch_floor, issued, complete, r))

        # ---- prune resource maps ------------------------------------------
        if i - prune_mark >= prune_interval:
            prune_mark = i
            horizon = min(this_fetch, retire_prev) - 8192
            # Slot attribution for cycles below the horizon is final (no
            # later instruction can issue there): fold it into the totals
            # before the usage counts are trimmed away.
            if attribute and horizon > flushed_until:
                flush_attribution(horizon)
            for counters in (issue_used, ialu_used, rot_used, mul_used,
                             dport_used, retire_used, *sport_used):
                if len(counters) > prune_entries:
                    for cycle in [c for c in counters if c < horizon]:
                        del counters[cycle]

    stats.cycles = max(max_complete, retire_prev)
    if hierarchy is not None:
        stats.l1_misses = hierarchy.l1.misses
        stats.l2_misses = hierarchy.l2.misses
        stats.tlb_misses = hierarchy.tlb.misses
    if sbox_array is not None:
        stats.extra["sbox_cache_hits"] = sbox_array.total_hits
    if predictor is not None:
        stats.extra["predictor_lookups"] = predictor.lookups

    if attribute:
        flush_attribution(stats.cycles)
        stats.issue_slots = stats.cycles * issue_width
        stats.stall_slots = {
            name: stall_slots[index]
            for index, name in enumerate(STALL_CATEGORIES)
        }
        stats.wait_cycles = {
            name: wait_totals[index]
            for index, name in enumerate(WAIT_CATEGORIES)
        }
        stats.hotspots = _hotspot_table(trace, hot, exec_counts)

    if metrics is not None:
        _record_metrics(metrics, config, stats)
    return stats


def _hotspot_table(trace: Trace, hot: dict, exec_counts: list) -> list[dict]:
    """Rank static instructions by accumulated wait cycles (top N).

    Window-entry waits rank last: they measure the machine's dispatch
    backlog, which every instruction in a saturated loop shares equally,
    so operand/alias/contention waits -- the paper's actual per-operation
    bottlenecks -- are the primary sort key.
    """
    ranked = sorted(
        hot.items(),
        key=lambda item: (sum(item[1][1:]), sum(item[1])),
        reverse=True,
    )[:_HOTSPOT_LIMIT]
    # Synthetic traces (e.g. the multisession interleaver) carry static
    # entries beyond their nominal program's instruction list.
    instructions = trace.program.instructions
    table = []
    for static_index, waits in ranked:
        total = sum(waits)
        if not total:
            continue
        table.append({
            "static_index": static_index,
            "text": (instructions[static_index].render()
                     if static_index < len(instructions)
                     else f"static[{static_index}]"),
            "executions": exec_counts[static_index],
            "total_wait_cycles": total,
            "wait_cycles": {
                name: waits[index]
                for index, name in enumerate(WAIT_CATEGORIES)
                if waits[index]
            },
        })
    return table


def _record_metrics(metrics, config: MachineConfig, stats: SimStats) -> None:
    """Publish one run's headline counters into a metrics registry."""
    labels = {"config": config.name}
    metrics.counter("sim.runs", labels).inc()
    metrics.counter("sim.instructions", labels).inc(stats.instructions)
    metrics.counter("sim.cycles", labels).inc(stats.cycles)
    metrics.counter("sim.issue_slots", labels).inc(stats.issue_slots)
    for category, slots in stats.stall_slots.items():
        if slots:
            metrics.counter(
                "sim.stall_slots", {**labels, "category": category}
            ).inc(slots)
