"""Dedicated SBox caches (the paper's 4W+/8W+ configurations).

Each SBox cache is a one-line *sector cache*: a single tag (the 1 KB-aligned
table base address) plus a valid bit per 32-byte sector.  On a tag mismatch
the cache is flushed and the touched sector is demand-fetched from the data
cache; SBOXSYNC clears all sector valid bits, forcing refetch (that is how
stores to S-box storage become visible).  The caches are virtually tagged and
read-only, so task switches just invalidate the tag -- none of which the
kernels exercise, but the model implements the paper's stated semantics.
"""

from __future__ import annotations

TABLE_BYTES = 1024
SECTOR_BYTES = 32
NUM_SECTORS = TABLE_BYTES // SECTOR_BYTES


class SBoxCache:
    """One single-tag sector cache."""

    def __init__(self) -> None:
        self.tag: int | None = None
        self.valid = [False] * NUM_SECTORS
        self.hits = 0
        self.misses = 0
        self.flushes = 0

    def access(self, address: int) -> bool:
        """Access a 32-bit entry; True on sector hit, False on demand fetch."""
        base = address & ~(TABLE_BYTES - 1)
        sector = (address >> 5) & (NUM_SECTORS - 1)
        if self.tag != base:
            self.tag = base
            self.valid = [False] * NUM_SECTORS
            self.flushes += 1
        if self.valid[sector]:
            self.hits += 1
            return True
        self.valid[sector] = True
        self.misses += 1
        return False

    def sync(self) -> None:
        """SBOXSYNC: invalidate every sector (keep the tag)."""
        self.valid = [False] * NUM_SECTORS


class SBoxCacheArray:
    """The set of per-table SBox caches (4 in the paper's 4W+/8W+)."""

    def __init__(self, count: int = 4):
        self.count = count
        self.caches = [SBoxCache() for _ in range(count)]

    def cache_for(self, table_id: int) -> SBoxCache:
        return self.caches[table_id % self.count]

    def access(self, table_id: int, address: int) -> bool:
        return self.cache_for(table_id).access(address)

    def sync(self, table_id: int) -> None:
        self.cache_for(table_id).sync()

    @property
    def total_hits(self) -> int:
        return sum(c.hits for c in self.caches)

    @property
    def total_misses(self) -> int:
        return sum(c.misses for c in self.caches)
