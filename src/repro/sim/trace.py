"""Dynamic instruction traces, trace chunks, and per-program static metadata.

The functional simulator executes a program once and records a *compact*
trace: the sequence of static instruction indices, plus the effective address
of every memory-touching instruction.  Everything else the timing model needs
(opcode class, register sources/destination, branch-ness, SBOX modifiers,
Figure 7 category) is a property of the *static* instruction, precomputed
here into parallel arrays for fast indexed access.

Branch outcomes need no explicit recording: a branch at static index ``s``
was taken iff the next trace entry is not ``s + 1``.

**Storage.**  Dynamic columns are ``array``-backed (8 bytes per entry)
rather than Python lists (pointer + boxed int, ~10x larger): ``seq`` is
``array('q')`` (static indices), ``addrs`` and ``values`` are ``array('Q')``
(full unsigned 64-bit range -- register values and addresses routinely have
the top bit set), ``taken_flags`` is ``array('b')``.  Arrays compare
elementwise and pickle compactly, so traces keep value equality and can be
persisted (the runner's functional-trace cache) or shipped across process
boundaries cheaply.

**Streaming.**  The timing model does not require a materialized trace: it
consumes any *trace source* -- an object with ``program`` and ``static``
attributes and a ``chunks(chunk_size)`` method yielding
:class:`TraceChunk` objects in trace order.  Both :class:`Trace` (below)
and the live :class:`~repro.sim.machine.StreamingTrace` generator satisfy
the protocol, so ``simulate``/``make_pipeline`` run identically over a
full in-memory trace or a bounded-memory stream straight out of the
functional machine.  See ``docs/architecture.md``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterator, Protocol, runtime_checkable

from repro.isa import opcodes as op
from repro.isa.program import Program

#: Default number of trace entries per streamed chunk.  4096 entries keep
#: the working set around 64 KiB while amortizing per-chunk overhead to
#: noise; ``--chunk-size`` overrides it end to end.
DEFAULT_CHUNK_SIZE = 4096

#: array typecodes for the dynamic columns (8 bytes per entry each).
SEQ_TYPECODE = "q"       # static indices (never negative, fits signed)
ADDR_TYPECODE = "Q"      # effective addresses: full unsigned 64-bit range
VALUE_TYPECODE = "Q"     # destination values: full unsigned 64-bit range
TAKEN_TYPECODE = "b"     # branch outcomes for synthetic traces


@dataclass
class StaticInfo:
    """Parallel per-static-instruction arrays derived from a program."""

    klass: list[str]
    dest: list[int]            # -1 when no register result
    srcs: list[tuple[int, ...]]
    is_load: list[bool]
    is_store: list[bool]
    is_branch: list[bool]
    is_cond_branch: list[bool]
    mem_size: list[int]        # 0 for non-memory ops
    sbox_table: list[int]
    sbox_aliased: list[bool]
    is_sync: list[bool]
    category: list[str]
    #: True for CMP*-family results (single-bit flags, not data values).
    is_flag: list[bool]
    # Store address source registers (for the alias/memory-ordering model):
    # the registers the *address* depends on, excluding the stored value.
    addr_srcs: list[tuple[int, ...]]

    @classmethod
    def from_program(cls, program: Program) -> "StaticInfo":
        if not program.finalized:
            raise ValueError("program must be finalized")
        info = cls([], [], [], [], [], [], [], [], [], [], [], [], [], [])
        compare_codes = {op.CMPEQ, op.CMPULT, op.CMPULE, op.CMPLT, op.CMPLE}
        for instruction in program.instructions:
            spec = instruction.spec
            info.klass.append(spec.klass)
            dest = instruction.dest if spec.writes_dest else None
            info.dest.append(-1 if dest in (None, 31) else dest)
            sources = tuple(r for r in instruction.source_regs() if r != 31)
            info.srcs.append(sources)
            is_load = instruction.code in op.LOAD_CODES
            is_store = instruction.code in op.STORE_CODES
            info.is_load.append(is_load)
            info.is_store.append(is_store)
            info.is_branch.append(instruction.code in op.BRANCH_CODES)
            info.is_cond_branch.append(
                instruction.code in op.COND_BRANCH_CODES
            )
            if instruction.code == op.SBOX:
                info.mem_size.append(4)
            else:
                info.mem_size.append(op.MEM_SIZES.get(instruction.code, 0))
            info.sbox_table.append(instruction.table)
            info.sbox_aliased.append(instruction.aliased)
            info.is_sync.append(instruction.code == op.SBOXSYNC)
            info.category.append(instruction.category)
            info.is_flag.append(instruction.code in compare_codes)
            if is_store:
                base = instruction.src2
                info.addr_srcs.append(() if base in (None, 31) else (base,))
            else:
                info.addr_srcs.append(sources)
        return info


@dataclass
class TraceChunk:
    """A bounded, contiguous slice of a dynamic trace.

    ``seq``/``addrs`` (and optionally ``values``) are parallel arrays of
    the chunk's entries; ``start`` is the trace position of entry 0.
    ``taken`` is ``None`` when branch outcomes follow the adjacency rule
    (the consumer infers them with one entry of lookahead) and an explicit
    per-entry array for synthetic traces where adjacency is meaningless.
    """

    seq: array
    addrs: array
    start: int = 0
    taken: array | None = None
    values: array | None = None

    def __len__(self) -> int:
        return len(self.seq)

    @property
    def nbytes(self) -> int:
        """Bytes of dynamic trace payload held by this chunk."""
        total = (len(self.seq) * self.seq.itemsize
                 + len(self.addrs) * self.addrs.itemsize)
        if self.taken is not None:
            total += len(self.taken) * self.taken.itemsize
        if self.values is not None:
            total += len(self.values) * self.values.itemsize
        return total


@runtime_checkable
class TraceSource(Protocol):
    """What the timing model consumes: static metadata plus trace chunks.

    Implementations: :class:`Trace` (materialized, re-iterable) and
    :class:`repro.sim.machine.StreamingTrace` (live single-pass generator
    over a running functional machine).
    """

    program: Program
    static: StaticInfo

    def chunks(
        self, chunk_size: int | None = None
    ) -> Iterator[TraceChunk]:  # pragma: no cover - protocol signature
        ...


def _as_array(typecode: str, data) -> array:
    if data is None:
        return None
    if isinstance(data, array) and data.typecode == typecode:
        return data
    if typecode == TAKEN_TYPECODE:
        return array(typecode, (1 if item else 0 for item in data))
    return array(typecode, data)


@dataclass(eq=False)
class Trace:
    """One dynamic execution: static indices + memory addresses (+ values).

    ``addrs[i]`` is meaningful only when the static instruction at ``seq[i]``
    touches memory.  ``values`` is populated only when the functional run was
    asked to record destination values (the value-prediction study).
    ``taken_flags`` is populated for synthetic traces (thread interleavings)
    where branch outcomes cannot be inferred from trace adjacency.

    Lists passed to the constructor are coerced to the canonical array
    storage, so synthetic-trace builders can keep using plain lists.  Two
    traces are equal iff their programs, static metadata and dynamic
    columns are equal, and traces pickle compactly (arrays serialize as
    raw machine words).
    """

    program: Program
    static: StaticInfo
    seq: array
    addrs: array
    values: array | None = None
    instructions_executed: int = 0
    taken_flags: array | None = None

    def __post_init__(self) -> None:
        self.seq = _as_array(SEQ_TYPECODE, self.seq)
        self.addrs = _as_array(ADDR_TYPECODE, self.addrs)
        self.values = _as_array(VALUE_TYPECODE, self.values)
        self.taken_flags = _as_array(TAKEN_TYPECODE, self.taken_flags)

    def __len__(self) -> int:
        return len(self.seq)

    def __eq__(self, other) -> bool:
        """Value equality: same program bytes and same dynamic columns.

        Programs compare by content digest (identity would defeat pickle
        round-trips); static metadata is derived from the program and so
        needs no separate comparison.
        """
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.program.digest() == other.program.digest()
            and self.seq == other.seq
            and self.addrs == other.addrs
            and self.values == other.values
            and self.taken_flags == other.taken_flags
            and self.instructions_executed == other.instructions_executed
        )

    @property
    def nbytes(self) -> int:
        """Bytes of dynamic trace payload (the streaming pipeline's bound)."""
        total = (len(self.seq) * self.seq.itemsize
                 + len(self.addrs) * self.addrs.itemsize)
        if self.taken_flags is not None:
            total += len(self.taken_flags) * self.taken_flags.itemsize
        if self.values is not None:
            total += len(self.values) * self.values.itemsize
        return total

    def taken(self, position: int) -> bool:
        """Was the branch at trace position ``position`` taken?"""
        if self.taken_flags is not None:
            return bool(self.taken_flags[position])
        if position + 1 >= len(self.seq):
            return True
        return self.seq[position + 1] != self.seq[position] + 1

    def chunks(self, chunk_size: int | None = None) -> Iterator[TraceChunk]:
        """Yield the trace as :class:`TraceChunk` slices of ``chunk_size``.

        ``chunk_size=None`` yields one zero-copy chunk over the whole trace
        (the batch path).  Chunks carry explicit ``taken`` flags only when
        the trace itself does; otherwise consumers infer outcomes from
        adjacency exactly as :meth:`taken` would.
        """
        n = len(self.seq)
        if chunk_size is None or chunk_size >= n:
            if n:
                yield TraceChunk(
                    seq=self.seq, addrs=self.addrs, start=0,
                    taken=self.taken_flags, values=self.values,
                )
            return
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        for lo in range(0, n, chunk_size):
            hi = min(lo + chunk_size, n)
            yield TraceChunk(
                seq=self.seq[lo:hi],
                addrs=self.addrs[lo:hi],
                start=lo,
                taken=(None if self.taken_flags is None
                       else self.taken_flags[lo:hi]),
                values=None if self.values is None else self.values[lo:hi],
            )

    def category_counts(self) -> dict[str, int]:
        """Dynamic operation-category histogram (paper Figure 7)."""
        counts: dict[str, int] = {}
        category = self.static.category
        for static_index in self.seq:
            name = category[static_index]
            counts[name] = counts.get(name, 0) + 1
        return counts
