"""Dynamic instruction traces and per-program static metadata.

The functional simulator executes a program once and records a *compact*
trace: the sequence of static instruction indices, plus the effective address
of every memory-touching instruction.  Everything else the timing model needs
(opcode class, register sources/destination, branch-ness, SBOX modifiers,
Figure 7 category) is a property of the *static* instruction, precomputed
here into parallel arrays for fast indexed access.

Branch outcomes need no explicit recording: a branch at static index ``s``
was taken iff the next trace entry is not ``s + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import opcodes as op
from repro.isa.program import Program


@dataclass
class StaticInfo:
    """Parallel per-static-instruction arrays derived from a program."""

    klass: list[str]
    dest: list[int]            # -1 when no register result
    srcs: list[tuple[int, ...]]
    is_load: list[bool]
    is_store: list[bool]
    is_branch: list[bool]
    is_cond_branch: list[bool]
    mem_size: list[int]        # 0 for non-memory ops
    sbox_table: list[int]
    sbox_aliased: list[bool]
    is_sync: list[bool]
    category: list[str]
    #: True for CMP*-family results (single-bit flags, not data values).
    is_flag: list[bool]
    # Store address source registers (for the alias/memory-ordering model):
    # the registers the *address* depends on, excluding the stored value.
    addr_srcs: list[tuple[int, ...]]

    @classmethod
    def from_program(cls, program: Program) -> "StaticInfo":
        if not program.finalized:
            raise ValueError("program must be finalized")
        info = cls([], [], [], [], [], [], [], [], [], [], [], [], [], [])
        compare_codes = {op.CMPEQ, op.CMPULT, op.CMPULE, op.CMPLT, op.CMPLE}
        for instruction in program.instructions:
            spec = instruction.spec
            info.klass.append(spec.klass)
            dest = instruction.dest if spec.writes_dest else None
            info.dest.append(-1 if dest in (None, 31) else dest)
            sources = tuple(r for r in instruction.source_regs() if r != 31)
            info.srcs.append(sources)
            is_load = instruction.code in op.LOAD_CODES
            is_store = instruction.code in op.STORE_CODES
            info.is_load.append(is_load)
            info.is_store.append(is_store)
            info.is_branch.append(instruction.code in op.BRANCH_CODES)
            info.is_cond_branch.append(
                instruction.code in op.COND_BRANCH_CODES
            )
            if instruction.code == op.SBOX:
                info.mem_size.append(4)
            else:
                info.mem_size.append(op.MEM_SIZES.get(instruction.code, 0))
            info.sbox_table.append(instruction.table)
            info.sbox_aliased.append(instruction.aliased)
            info.is_sync.append(instruction.code == op.SBOXSYNC)
            info.category.append(instruction.category)
            info.is_flag.append(instruction.code in compare_codes)
            if is_store:
                base = instruction.src2
                info.addr_srcs.append(() if base in (None, 31) else (base,))
            else:
                info.addr_srcs.append(sources)
        return info


@dataclass
class Trace:
    """One dynamic execution: static indices + memory addresses (+ values).

    ``addrs[i]`` is meaningful only when the static instruction at ``seq[i]``
    touches memory.  ``values`` is populated only when the functional run was
    asked to record destination values (the value-prediction study).
    ``taken_flags`` is populated for synthetic traces (thread interleavings)
    where branch outcomes cannot be inferred from trace adjacency.
    """

    program: Program
    static: StaticInfo
    seq: list[int]
    addrs: list[int]
    values: list[int] | None = None
    instructions_executed: int = 0
    taken_flags: list[bool] | None = None

    def __len__(self) -> int:
        return len(self.seq)

    def taken(self, position: int) -> bool:
        """Was the branch at trace position ``position`` taken?"""
        if self.taken_flags is not None:
            return self.taken_flags[position]
        if position + 1 >= len(self.seq):
            return True
        return self.seq[position + 1] != self.seq[position] + 1

    def category_counts(self) -> dict[str, int]:
        """Dynamic operation-category histogram (paper Figure 7)."""
        counts: dict[str, int] = {}
        category = self.static.category
        for static_index in self.seq:
            name = category[static_index]
            counts[name] = counts.get(name, 0) + 1
        return counts
