"""Branch predictor for the timing model.

A bimodal table of 2-bit saturating counters indexed by static instruction
index (the simulator's PC analog).  Unconditional branches are always
predicted correctly (BTB hits: cipher kernels have tiny, hot footprints).
This matches the paper's observation that kernel branches are "quite
predictable, usually found in kernel loops" -- the predictor exists so the
Figure 5 *Branch* bottleneck toggle measures a real mechanism, not an
assumption.
"""

from __future__ import annotations


class BimodalPredictor:
    """2-bit saturating counters, weakly-taken initial state."""

    def __init__(self, entries: int = 2048):
        self.entries = entries
        self.table = [2] * entries  # 0..3; >=2 predicts taken
        self.lookups = 0
        self.mispredictions = 0

    def predict_and_update(self, static_index: int, taken: bool) -> bool:
        """Predict the branch at ``static_index``; update; return correctness."""
        slot = static_index % self.entries
        counter = self.table[slot]
        prediction = counter >= 2
        if taken and counter < 3:
            self.table[slot] = counter + 1
        elif not taken and counter > 0:
            self.table[slot] = counter - 1
        self.lookups += 1
        correct = prediction == taken
        if not correct:
            self.mispredictions += 1
        return correct
