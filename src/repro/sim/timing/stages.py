"""Stage components and the shared chunk-streaming pipeline base.

The timing model is organized as four stage components --
:class:`FrontendState`, :class:`SchedulerState`, :class:`MemoryOrderState`,
:class:`AttributionState` -- that carry all inter-instruction state across
:class:`~repro.sim.trace.TraceChunk` boundaries, plus a
:class:`PipelineBase` that owns chunk deferral (the one entry of branch
lookahead) and final statistics assembly.  Engines subclass
:class:`PipelineBase` and implement ``_advance`` only; everything an
engine computes lives in the stage components, which is what makes the
engines interchangeable mid-stream and bit-identical at the end.

See the package docstring (:mod:`repro.sim.timing`) for the model's
scheduling and stall-attribution contracts.
"""

from __future__ import annotations

from array import array

from repro.isa.program import Program
from repro.sim.branch import BimodalPredictor
from repro.sim.caches import MemoryHierarchy
from repro.sim.config import MachineConfig
from repro.sim.sboxcache import SBoxCacheArray
from repro.sim.stats import STALL_CATEGORIES, WAIT_CATEGORIES, SimStats
from repro.sim.trace import StaticInfo, TraceChunk

_UNLIMITED = 1 << 30

# Stall-category indices (must mirror STALL_CATEGORIES order).
(_C_FETCH, _C_MISPREDICT, _C_FRONTEND, _C_WINDOW, _C_OPERAND, _C_ALIAS,
 _C_ISSUE, _C_FU_IALU, _C_FU_ROT, _C_FU_MUL, _C_FU_MEM, _C_FU_SBOX,
 _C_DRAIN) = range(len(STALL_CATEGORIES))
_N_WAIT = len(WAIT_CATEGORIES)
#: Instruction-view (wait) index of a stall category: categories _C_WINDOW
#: through _C_FU_SBOX map onto WAIT_CATEGORIES[cat - _C_WINDOW].
_HOTSPOT_LIMIT = 32


class FrontendState:
    """Fetch stage: program-order fetch bandwidth and redirect state."""

    __slots__ = ("fetch_cycle", "fetch_slots_used", "fetch_groups_used",
                 "mispredict_until", "predictor")

    def __init__(self, config: MachineConfig):
        self.fetch_cycle = 0
        self.fetch_slots_used = 0
        self.fetch_groups_used = 0
        self.mispredict_until = 0
        self.predictor = (
            None if config.perfect_branch_prediction
            else BimodalPredictor(config.predictor_entries)
        )


class SchedulerState:
    """Issue/FU/retire bookkeeping: per-cycle resource maps + scoreboard.

    ``reg_ready`` is sized lazily from the static metadata (interleaved
    multi-thread traces remap each thread into its own 32-register window).

    ``retire_prev``/``retire_count`` track the in-order retirement
    frontier: because retirement cycles are non-decreasing, only the
    frontier cycle can ever receive another retirement, so a scalar count
    at that cycle is equivalent to the per-cycle ``retire_used`` map (the
    generic engine keeps the map, the specialized engine the scalar; both
    produce the same retirement cycles).
    """

    __slots__ = ("issue_used", "ialu_used", "rot_used", "mul_used",
                 "dport_used", "sport_used", "retire_used", "no_fu",
                 "reg_ready", "retire_ring", "retire_prev", "retire_count",
                 "max_complete", "prune_mark", "trim_mark")

    def __init__(self, config: MachineConfig, static: StaticInfo):
        self.issue_used: dict[int, int] = {}
        self.ialu_used: dict[int, int] = {}
        self.rot_used: dict[int, int] = {}
        self.mul_used: dict[int, int] = {}
        self.dport_used: dict[int, int] = {}
        self.sport_used = [dict() for _ in range(config.sbox_caches or 0)]
        self.retire_used: dict[int, int] = {}
        self.no_fu: dict[int, int] = {}
        max_reg = 31
        for d in static.dest:
            if d > max_reg:
                max_reg = d
        for sources in static.srcs:
            for r in sources:
                if r > max_reg:
                    max_reg = r
        self.reg_ready = [0] * (max_reg + 1)
        window = config.window_size
        self.retire_ring = [0] * window if window else None
        self.retire_prev = 0
        self.retire_count = 0
        self.max_complete = 0
        self.prune_mark = 0
        self.trim_mark = 0


class MemoryOrderState:
    """Memory-ordering/alias stage: store queue, sync barrier, hierarchies.

    The store queue exists in two equivalent representations: the generic
    engine's ``recent_stores`` list of ``(start, end, data_ready)``
    intervals (capacity ``lsq_size``, oldest popped first) and the
    specialized engine's ``store_map`` byte map of
    ``address -> (store_order, data_ready)`` entries plus a running
    ``store_count``, where an entry is live iff its order is within the
    last ``lsq_size`` stores.  A load consults whichever its engine
    maintains; both yield the data-ready cycle of the *latest* overlapping
    live store.
    """

    __slots__ = ("hierarchy", "sbox_array", "last_store_addr_known",
                 "recent_stores", "store_map", "store_count", "sync_barrier")

    def __init__(
        self,
        config: MachineConfig,
        warm_ranges: list[tuple[int, int]] | None,
    ):
        self.hierarchy = None
        if not config.perfect_memory:
            self.hierarchy = MemoryHierarchy(
                l1_size=config.l1_size, l1_assoc=config.l1_assoc,
                l1_block=config.l1_block, l2_size=config.l2_size,
                l2_assoc=config.l2_assoc,
                l2_hit_latency=config.l2_hit_latency,
                memory_latency=config.memory_latency,
                tlb_entries=config.tlb_entries, tlb_assoc=config.tlb_assoc,
                page_size=config.page_size,
                tlb_miss_latency=config.tlb_miss_latency,
            )
            for start, length in warm_ranges or ():
                self.hierarchy.warm(start, length)
        self.sbox_array = (
            SBoxCacheArray(config.sbox_caches) if config.sbox_caches else None
        )
        self.last_store_addr_known = 0
        self.recent_stores: list[tuple[int, int, int]] = []
        self.store_map: dict[int, tuple[int, int]] = {}
        self.store_count = 0
        self.sync_barrier = 0


class AttributionState:
    """Stall-attribution stage: cycle labels and the running slot account."""

    __slots__ = ("reason_at", "stall_slots", "wait_totals", "frontier",
                 "flushed_until", "hot", "exec_counts")

    def __init__(self, static: StaticInfo):
        self.reason_at: dict[int, int] = {}
        self.stall_slots = [0] * len(STALL_CATEGORIES)
        self.wait_totals = [0] * _N_WAIT
        self.frontier = 0
        self.flushed_until = 0
        self.hot: dict[int, list[int]] = {}
        self.exec_counts = [0] * len(static.klass)


class PipelineBase:
    """Incremental timing model over a chunked trace stream.

    Feed :class:`~repro.sim.trace.TraceChunk` objects in trace order with
    :meth:`feed`, then call :meth:`finish` for the final
    :class:`~repro.sim.stats.SimStats`.  Results are bit-identical to a
    single-chunk (batch) pass for any chunk partitioning: all stage state
    carries across chunk boundaries, and the one piece of lookahead the
    model needs -- the *next* trace entry, to infer whether a branch was
    taken -- is handled by deferring each chunk's final entry until the
    next chunk (or end of trace, where the outcome defaults to taken,
    matching ``Trace.taken``).  Chunks with explicit ``taken`` flags
    (synthetic interleavings) need no deferral.

    One pipeline consumes one trace; build a fresh pipeline per run.
    Subclasses (the engines) implement ``_advance`` only.
    """

    #: Registry name of the engine that built this pipeline.
    engine_name = "generic"

    def __init__(
        self,
        config: MachineConfig,
        static: StaticInfo,
        program: Program,
        warm_ranges: list[tuple[int, int]] | None = None,
        schedule_range: tuple[int, int] | None = None,
    ):
        self.config = config
        self.static = static
        self.program = program
        self.stats = SimStats(config_name=config.name, instructions=0)

        def limit(value):
            return _UNLIMITED if value is None else value

        self._issue_width = limit(config.issue_width)
        self._num_ialu = limit(config.num_ialu)
        self._num_rot = limit(config.num_rotator)
        self._mul_slots = limit(config.mul_slots)
        self._dports = limit(config.dcache_ports)
        self._retire_width = limit(config.retire_width)
        self._sbox_ports = limit(config.sbox_cache_ports)
        self._track_issue = self._issue_width != _UNLIMITED
        # Slot accounting is defined only when issue bandwidth is finite;
        # with unlimited width there is no fixed slot budget to attribute.
        self._attribute = self._track_issue

        self.frontend = FrontendState(config)
        self.scheduler = SchedulerState(config, static)
        self.memorder = MemoryOrderState(config, warm_ranges)
        self.attribution = (
            AttributionState(static) if self._attribute else None
        )

        self._schedule: list | None = None
        self._sched_start = self._sched_end = 0
        if schedule_range is not None:
            self._schedule = []
            self.stats.extra["schedule"] = self._schedule
            self._sched_start, self._sched_end = schedule_range
            cap = config.max_schedule_entries
            if cap is not None and self._sched_end - self._sched_start > cap:
                self._sched_end = self._sched_start + cap
                self.stats.extra["schedule_truncated"] = True

        #: Deferred final entry of the previous adjacency-mode chunk:
        #: ``(seq, addrs, start, index)`` referencing that chunk's arrays.
        self._carry: tuple[array, array, int, int] | None = None
        self._count = 0
        self._finished = False

    def feed(self, chunk: TraceChunk) -> None:
        """Advance the pipeline over one chunk of trace entries."""
        if self._finished:
            raise RuntimeError(
                f"{type(self).__name__} already finished; build a fresh "
                "pipeline per run (make_pipeline)"
            )
        seq = chunk.seq
        n = len(seq)
        if n == 0:
            return
        if self._carry is not None:
            cseq, caddrs, cstart, cidx = self._carry
            self._carry = None
            self._advance(cseq, caddrs, None, cstart, cidx, cidx + 1, seq[0])
        if chunk.taken is not None:
            # Explicit branch outcomes: no lookahead needed, no deferral.
            self._advance(seq, chunk.addrs, chunk.taken, chunk.start, 0, n,
                          None)
        else:
            if n > 1:
                self._advance(seq, chunk.addrs, None, chunk.start, 0, n - 1,
                              None)
            self._carry = (seq, chunk.addrs, chunk.start, n - 1)

    def finish(self) -> SimStats:
        """Drain the deferred entry and finalize the statistics."""
        if self._finished:
            return self.stats
        self._finished = True
        if self._carry is not None:
            cseq, caddrs, cstart, cidx = self._carry
            self._carry = None
            # End of trace: the final branch outcome defaults to taken,
            # exactly as ``Trace.taken`` defines it.
            self._advance(cseq, caddrs, None, cstart, cidx, cidx + 1, None)
        self._finalize_engine()

        stats = self.stats
        stats.instructions = self._count
        # Provenance stamps: which program's statics the hot-spot table
        # indexes into, and which engine produced the result.  Diff
        # tooling refuses to align hot spots across different digests;
        # SimStats equality ignores both (stats.PROVENANCE_KEYS).
        if self.program.finalized:
            stats.extra["program_digest"] = self.program.digest()
        stats.extra["timing_engine"] = self.engine_name
        if self._count == 0:
            return stats
        scheduler = self.scheduler
        memorder = self.memorder
        frontend = self.frontend
        stats.cycles = max(scheduler.max_complete, scheduler.retire_prev)
        if memorder.hierarchy is not None:
            stats.l1_misses = memorder.hierarchy.l1.misses
            stats.l2_misses = memorder.hierarchy.l2.misses
            stats.tlb_misses = memorder.hierarchy.tlb.misses
        if memorder.sbox_array is not None:
            stats.extra["sbox_cache_hits"] = memorder.sbox_array.total_hits
        if frontend.predictor is not None:
            stats.extra["predictor_lookups"] = frontend.predictor.lookups

        if self._attribute:
            attribution = self.attribution
            self._flush_attribution(stats.cycles)
            stats.issue_slots = stats.cycles * self._issue_width
            stats.stall_slots = {
                name: attribution.stall_slots[index]
                for index, name in enumerate(STALL_CATEGORIES)
            }
            stats.wait_cycles = {
                name: attribution.wait_totals[index]
                for index, name in enumerate(WAIT_CATEGORIES)
            }
            stats.hotspots = _hotspot_table(
                self.program, attribution.hot, attribution.exec_counts
            )
            ranked = sum(1 for waits in attribution.hot.values()
                         if sum(waits))
            if ranked > len(stats.hotspots):
                # Per-static deltas over a clipped table can't sum to the
                # category totals; diff reports read this to say so.
                stats.extra["hotspots_truncated"] = True
        return stats

    def _flush_attribution(self, until: int) -> None:
        """Finalize slot counts for cycles below ``until``.

        Safe once no future instruction can issue there (every cycle below
        the prune horizon, and everything at the end of the run).  Cycles
        past the last labeled one are retirement drain.
        """
        attribution = self.attribution
        issue_width = self._issue_width
        pop_reason = attribution.reason_at.pop
        get_used = self.scheduler.issue_used.get
        stall_slots = attribution.stall_slots
        for cycle in range(attribution.flushed_until, until):
            stall_slots[pop_reason(cycle, _C_DRAIN)] += (
                issue_width - get_used(cycle, 0)
            )
        attribution.flushed_until = until

    def _finalize_engine(self) -> None:
        """Hook: fold engine-private accumulators into the stage state.

        Called by :meth:`finish` after the deferred final entry is drained
        and before the statistics are assembled.
        """

    def _advance(
        self,
        seq,
        addrs,
        taken_arr,
        base_pos: int,
        lo: int,
        hi: int,
        next_s,
    ) -> None:  # pragma: no cover - abstract
        """Process trace entries ``seq[lo:hi]``; implemented per engine."""
        raise NotImplementedError


def _hotspot_table(program: Program, hot: dict, exec_counts: list) -> list[dict]:
    """Rank static instructions by accumulated wait cycles (top N).

    Window-entry waits rank last: they measure the machine's dispatch
    backlog, which every instruction in a saturated loop shares equally,
    so operand/alias/contention waits -- the paper's actual per-operation
    bottlenecks -- are the primary sort key.
    """
    # The static index breaks ties deterministically: engines accumulate
    # rows in different orders (the specialized engine pre-creates every
    # block's rows), so a stable sort alone would leak insertion order
    # into the table.
    ranked = sorted(
        hot.items(),
        key=lambda item: (-sum(item[1][1:]), -sum(item[1]), item[0]),
    )[:_HOTSPOT_LIMIT]
    # Synthetic traces (e.g. the multisession interleaver) carry static
    # entries beyond their nominal program's instruction list.
    instructions = program.instructions
    table = []
    for static_index, waits in ranked:
        total = sum(waits)
        if not total:
            continue
        table.append({
            "static_index": static_index,
            "text": (instructions[static_index].render()
                     if static_index < len(instructions)
                     else f"static[{static_index}]"),
            "executions": exec_counts[static_index],
            "total_wait_cycles": total,
            "wait_cycles": {
                name: waits[index]
                for index, name in enumerate(WAIT_CATEGORIES)
                if waits[index]
            },
        })
    return table


def record_sim_metrics(metrics, config: MachineConfig, stats: SimStats) -> None:
    """Publish one run's headline counters into a metrics registry."""
    labels = {"config": config.name}
    metrics.counter("sim.runs", labels).inc()
    metrics.counter("sim.instructions", labels).inc(stats.instructions)
    metrics.counter("sim.cycles", labels).inc(stats.cycles)
    metrics.counter("sim.issue_slots", labels).inc(stats.issue_slots)
    for category, slots in stats.stall_slots.items():
        if slots:
            metrics.counter(
                "sim.stall_slots", {**labels, "category": category}
            ).inc(slots)
